//! Workspace task runner. Currently one task:
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! runs the invariant lint pass over `crates/` and exits non-zero if any
//! finding survives (CI runs it next to fmt and clippy).

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the workspace root is one level up
    // from this crate's manifest.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = workspace_root();
            let findings = xtask::lint_tree(&root);
            if findings.is_empty() {
                println!("xtask lint: clean");
                return;
            }
            for f in &findings {
                println!("{f}");
            }
            eprintln!("xtask lint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- lint   (got {:?})",
                other.unwrap_or_default()
            );
            std::process::exit(2);
        }
    }
}
