//! Workspace lint pass: textual invariants clippy cannot express.
//!
//! Five rules, each encoding a repo-wide contract that the type system
//! does not enforce:
//!
//! 1. **simd-containment** — `std::arch` may appear only under
//!    `crates/shims/simd`; everything else must go through the shim's safe
//!    dispatch layer, so the scalar fallback stays the only portable path.
//! 2. **local-view-phase** — while a `local_view` binding is live, no
//!    communication may run: a collective (or one-sided bulk get) inside
//!    the phase either deadlocks on the held shard locks or reads state
//!    mid-mutation. The runtime catches this dynamically; the lint catches
//!    it before a test has to.
//! 3. **stats-accessor** — `CommStats` counters outside `crates/pgas` are
//!    read-only: incrementing through `.stats()` bypasses the accounting
//!    accessors and silently skews the paper-facing traffic numbers.
//! 4. **no-naked-unwrap** — `unwrap()`/`expect(` in `pgas`/`dht`
//!    non-test code turns a data-dependent surprise into an unexplained
//!    panic inside a collective, which the whole team experiences as a
//!    poisoned barrier. Sites that are provably infallible carry a
//!    `// lint: allow(unwrap): <why>` escape on the same or previous line.
//! 5. **untagged-collective** — every collective entry point in
//!    `crates/pgas` must be `#[track_caller]`: the conformance checker's
//!    diagnostics (and the aggregator leak-detector) report
//!    `Location::caller()`, so an untagged collective would report the
//!    runtime's own source line instead of the user's call site.
//!
//! The pass is deliberately line-based (no syn, no rustc internals — the
//! workspace vendors nothing): it strips `//` comments, tracks
//! string-literal state only where a rule needs it, and treats everything
//! after a `#[cfg(test)]` attribute in a file as test code (the repo
//! convention keeps unit tests in a trailing `mod tests`). False-positive
//! escapes are explicit `// lint: allow(<rule>)` comments, so every
//! exception is visible and greppable.

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path as given to [`lint_source`] (repo-relative in [`lint_tree`]).
    pub path: String,
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Stable rule identifier, e.g. `"untagged-collective"`.
    pub rule: &'static str,
    /// Human-readable explanation naming the offending construct.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Strips a line-end `//` comment, respecting string literals well enough
/// for this codebase (no raw strings containing `//` on lint-relevant
/// lines).
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// Escape comments live in the *raw* lines — comment stripping would hide
/// them from the rules they exempt.
fn has_escape(raw_lines: &[&str], idx: usize, rule: &str) -> bool {
    let tag = format!("lint: allow({rule})");
    raw_lines[idx].contains(&tag) || (idx > 0 && raw_lines[idx - 1].contains(&tag))
}

/// Collective entry points in `crates/pgas` that must be `#[track_caller]`
/// (rule 5). `finish` covers all three aggregator flavours; `deliver` is
/// the node-leader hop that forwards the user's call site.
const COLLECTIVE_FNS: &[&str] = &[
    "barrier",
    "share",
    "broadcast",
    "allreduce_sum_u64",
    "allreduce_max_u64",
    "allreduce_min_u64",
    "allreduce_sum_f64",
    "allreduce_max_f64",
    "allreduce_min_f64",
    "allreduce_any",
    "reduce_u64_with",
    "reduce_f64_with",
    "exchange",
    "exchange_map",
    "deliver",
    "finish",
];

/// Calls that must not run while a `local_view` phase is open (rule 2).
const PHASE_BANNED_CALLS: &[&str] = &[
    ".barrier(",
    ".exchange(",
    ".exchange_map(",
    ".get_many(",
    ".get_many_onesided(",
    ".allreduce_",
    ".share(",
];

/// True if `line` defines a function named exactly `name` (`fn name(` or
/// `fn name<`), not merely one sharing a prefix.
fn defines_fn(line: &str, name: &str) -> bool {
    let Some(pos) = line.find("fn ") else {
        return false;
    };
    let rest = &line[pos + 3..];
    rest.starts_with(name)
        && matches!(
            rest.as_bytes().get(name.len()),
            Some(b'(') | Some(b'<') | None
        )
}

/// Lints one file's source text. `path` controls which rules apply (rules
/// are keyed on repo-relative path prefixes) and is echoed into findings.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let norm = path.replace('\\', "/");
    let in_simd_shim = norm.starts_with("crates/shims/simd");
    let in_pgas = norm.starts_with("crates/pgas");
    let in_hot_crate = in_pgas || norm.starts_with("crates/dht");
    let in_test_file = norm.contains("/tests/") || norm.contains("/benches/");

    let raw_lines: Vec<&str> = src.lines().collect();
    let code_lines: Vec<&str> = raw_lines.iter().map(|l| strip_comment(l)).collect();
    let mut findings = Vec::new();

    let mut in_tests = false; // everything after `#[cfg(test)]`
    let mut depth: i64 = 0;
    // Open local_view phase: (binding name, brace depth at the `let`).
    let mut phase: Option<(String, i64)> = None;

    for (idx, &code) in code_lines.iter().enumerate() {
        let line_no = idx + 1;
        if code.contains("#[cfg(test)]") {
            in_tests = true;
        }
        let opens = code.bytes().filter(|&b| b == b'{').count() as i64;
        let closes = code.bytes().filter(|&b| b == b'}').count() as i64;

        // Rule 1: std::arch containment. Applies everywhere, tests included
        // (a test reaching for intrinsics directly is still a portability
        // hole).
        if !in_simd_shim && code.contains("std::arch") && !has_escape(&raw_lines, idx, "std-arch") {
            findings.push(Finding {
                path: path.to_string(),
                line: line_no,
                rule: "simd-containment",
                message: "direct std::arch use outside crates/shims/simd; route through the \
                          simd shim's dispatch layer"
                    .to_string(),
            });
        }

        if in_tests || in_test_file {
            depth += opens - closes;
            continue;
        }

        // Rule 2: no communication inside an open local_view phase.
        if let Some((name, at_depth)) = &phase {
            let ended_by_drop = code.contains(&format!("drop({name})"));
            for banned in PHASE_BANNED_CALLS {
                if code.contains(banned) && !has_escape(&raw_lines, idx, "local-view") {
                    findings.push(Finding {
                        path: path.to_string(),
                        line: line_no,
                        rule: "local-view-phase",
                        message: format!(
                            "communication call `{}` while local_view binding `{name}` is live \
                             (phase opened holds the shard locks)",
                            banned.trim_start_matches('.').trim_end_matches('('),
                        ),
                    });
                }
            }
            if ended_by_drop || depth + opens - closes < *at_depth {
                phase = None;
            }
        }
        if phase.is_none() && code.contains(".local_view(") {
            if let Some(rest) = code.trim_start().strip_prefix("let ") {
                let name: String = rest
                    .chars()
                    .take_while(|&c| c == '_' || c.is_ascii_alphanumeric())
                    .collect();
                if !name.is_empty() && name != "_" {
                    phase = Some((name, depth));
                }
            }
        }

        // Rule 3: CommStats counters are written through accessors only.
        if !in_pgas {
            let writes = code.contains(".fetch_add(")
                || code.contains(".fetch_sub(")
                || code.contains(".store(");
            if writes && !has_escape(&raw_lines, idx, "stats") {
                let window_start = idx.saturating_sub(2);
                if code_lines[window_start..=idx]
                    .iter()
                    .any(|l| l.contains(".stats("))
                {
                    findings.push(Finding {
                        path: path.to_string(),
                        line: line_no,
                        rule: "stats-accessor",
                        message: "CommStats counter written directly; use the Ctx recording \
                                  accessors so traffic accounting stays consistent"
                            .to_string(),
                    });
                }
            }
        }

        // Rule 4: no naked unwrap/expect in pgas/dht non-test code.
        if in_hot_crate
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !has_escape(&raw_lines, idx, "unwrap")
        {
            findings.push(Finding {
                path: path.to_string(),
                line: line_no,
                rule: "no-naked-unwrap",
                message: "unwrap/expect in a pgas/dht hot path; handle the error or add \
                          `// lint: allow(unwrap): <why it cannot fail>`"
                    .to_string(),
            });
        }

        // Rule 5: collective entry points in pgas carry #[track_caller].
        if in_pgas && code.contains("pub fn ") {
            for name in COLLECTIVE_FNS {
                if defines_fn(code, name) && !has_escape(&raw_lines, idx, "untagged") {
                    let tagged = raw_lines[idx.saturating_sub(6)..idx]
                        .iter()
                        .any(|l| l.contains("#[track_caller]"));
                    if !tagged {
                        findings.push(Finding {
                            path: path.to_string(),
                            line: line_no,
                            rule: "untagged-collective",
                            message: format!(
                                "collective `{name}` lacks #[track_caller]; conformance \
                                 diagnostics would blame the runtime instead of the caller"
                            ),
                        });
                    }
                }
            }
        }

        depth += opens - closes;
    }
    findings
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lints every `.rs` file under `<root>/crates`, returning findings with
/// repo-relative paths.
pub fn lint_tree(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    let mut findings = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(&file) else {
            continue;
        };
        findings.extend(lint_source(&rel, &src));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn std_arch_outside_the_shim_is_flagged_and_inside_is_not() {
        let src = "use std::arch::x86_64::_mm_loadu_si128;\n";
        assert_eq!(rules("crates/kmers/src/lib.rs", src), ["simd-containment"]);
        assert_eq!(rules("crates/shims/simd/src/sse.rs", src), [] as [&str; 0]);
        // Commented-out intrinsics are not findings.
        assert_eq!(
            rules("crates/kmers/src/lib.rs", "// std::arch is off-limits\n"),
            [] as [&str; 0]
        );
    }

    #[test]
    fn traffic_inside_a_local_view_phase_is_flagged() {
        let src = "fn f(ctx: &Ctx, map: &DistMap<u64, u64>) {\n\
                       let view = map.local_view(ctx);\n\
                       ctx.barrier();\n\
                   }\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "local-view-phase");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("`view`"));
    }

    #[test]
    fn traffic_after_the_phase_closes_is_clean() {
        let with_drop = "fn f(ctx: &Ctx, map: &DistMap<u64, u64>) {\n\
                             let view = map.local_view(ctx);\n\
                             drop(view);\n\
                             ctx.barrier();\n\
                         }\n";
        let with_scope = "fn f(ctx: &Ctx, map: &DistMap<u64, u64>) {\n\
                              {\n\
                                  let view = map.local_view(ctx);\n\
                              }\n\
                              ctx.barrier();\n\
                          }\n";
        assert_eq!(rules("crates/core/src/x.rs", with_drop), [] as [&str; 0]);
        assert_eq!(rules("crates/core/src/x.rs", with_scope), [] as [&str; 0]);
    }

    #[test]
    fn direct_stats_writes_outside_pgas_are_flagged() {
        let src = "fn f(ctx: &Ctx) {\n\
                       ctx.stats().cache_hits.fetch_add(1, Ordering::Relaxed);\n\
                   }\n";
        assert_eq!(rules("crates/dht/src/cache.rs", src), ["stats-accessor"]);
        // pgas itself owns the counters.
        assert_eq!(rules("crates/pgas/src/team.rs", src), [] as [&str; 0]);
    }

    #[test]
    fn naked_unwrap_in_hot_crates_needs_an_escape() {
        let naked = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let escaped = "fn f(x: Option<u32>) -> u32 {\n\
                           // lint: allow(unwrap): x is checked by the caller\n\
                           x.unwrap()\n\
                       }\n";
        assert_eq!(rules("crates/pgas/src/team.rs", naked), ["no-naked-unwrap"]);
        assert_eq!(rules("crates/dht/src/x.rs", naked), ["no-naked-unwrap"]);
        assert_eq!(rules("crates/pgas/src/team.rs", escaped), [] as [&str; 0]);
        // Other crates may unwrap freely (clippy governs them).
        assert_eq!(rules("crates/core/src/x.rs", naked), [] as [&str; 0]);
        // Test code is exempt.
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n{naked}}}\n");
        assert_eq!(rules("crates/pgas/src/team.rs", &in_tests), [] as [&str; 0]);
    }

    #[test]
    fn untagged_collectives_in_pgas_are_flagged() {
        let untagged = "impl Ctx<'_> {\n    pub fn barrier(&self) {\n    }\n}\n";
        let tagged = "impl Ctx<'_> {\n\
                          #[track_caller]\n\
                          pub fn barrier(&self) {\n\
                          }\n\
                      }\n";
        let f = lint_source("crates/pgas/src/team.rs", untagged);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "untagged-collective");
        assert!(f[0].message.contains("`barrier`"));
        assert_eq!(rules("crates/pgas/src/team.rs", tagged), [] as [&str; 0]);
        // A similarly named non-collective is not matched.
        let prefix = "impl Ctx<'_> {\n    pub fn barrier_count(&self) -> u64 {\n    }\n}\n";
        assert_eq!(rules("crates/pgas/src/team.rs", prefix), [] as [&str; 0]);
        // Outside pgas the rule does not apply.
        assert_eq!(rules("crates/core/src/x.rs", untagged), [] as [&str; 0]);
    }

    #[test]
    fn the_checked_in_tree_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
        let findings = lint_tree(&root);
        assert!(
            findings.is_empty(),
            "lint findings in the canon tree:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
