//! Integration tests for determinism across rank counts and for the sequence
//! I/O round trips used when persisting assemblies.

use mhm_core::{AssemblyConfig, MetaHipMer};
use pgas::Team;
use seqio::{parse_fasta, write_fasta, FastaRecord};

#[test]
fn assembly_identical_for_one_two_and_four_ranks() {
    let (refs, consensus) = mgsim::generate_community(&mgsim::CommunityParams {
        num_taxa: 3,
        genome_len_range: (4_000, 5_000),
        seed: 99,
        ..Default::default()
    });
    let library = mgsim::simulate_reads(
        &refs,
        &mgsim::ReadSimParams {
            read_len: 90,
            seed: 100,
            ..Default::default()
        }
        .with_target_coverage(&refs, 18.0),
    );
    let mut cfg = AssemblyConfig::small_test();
    cfg.local_assembly = false; // keep runtime low; determinism of the rest is the point
    let assembler = MetaHipMer::new(cfg);
    let mut previous: Option<Vec<Vec<u8>>> = None;
    for ranks in [1usize, 2, 4] {
        let out = assembler.assemble(&Team::single_node(ranks), &library, Some(&consensus));
        let mut seqs = out.sequences();
        seqs.sort();
        if let Some(prev) = &previous {
            assert_eq!(
                prev, &seqs,
                "assembly changed between rank counts (ranks={ranks})"
            );
        }
        previous = Some(seqs);
    }
}

#[test]
fn lookup_batching_on_or_off_yields_identical_scaffolds() {
    // The aggregated request–response lookups are a pure communication
    // optimisation: the same seed must produce byte-identical scaffolds with
    // batching disabled (batch size 1, fine-grained reads), with a small
    // batch, and with the default large batch — with local assembly on, so
    // the one-sided pool-fetch batching is exercised too.
    let (refs, consensus) = mgsim::generate_community(&mgsim::CommunityParams {
        num_taxa: 2,
        genome_len_range: (4_000, 5_000),
        seed: 77,
        ..Default::default()
    });
    let library = mgsim::simulate_reads(
        &refs,
        &mgsim::ReadSimParams {
            read_len: 90,
            seed: 78,
            ..Default::default()
        }
        .with_target_coverage(&refs, 18.0),
    );
    let mut baseline: Option<Vec<Vec<u8>>> = None;
    for batch in [1usize, 4, 4096] {
        let cfg = AssemblyConfig::small_test().with_lookup_batch(batch);
        let out = MetaHipMer::new(cfg).assemble(&Team::single_node(3), &library, Some(&consensus));
        let seqs = out.sequences();
        match &baseline {
            None => baseline = Some(seqs),
            Some(expect) => assert_eq!(
                expect, &seqs,
                "lookup batch size {batch} changed the scaffolds"
            ),
        }
    }
}

#[test]
fn scaffolds_round_trip_through_fasta() {
    let (refs, consensus) = mgsim::generate_community(&mgsim::CommunityParams {
        num_taxa: 2,
        genome_len_range: (4_000, 4_500),
        seed: 123,
        ..Default::default()
    });
    let library = mgsim::simulate_reads(
        &refs,
        &mgsim::ReadSimParams {
            read_len: 90,
            seed: 124,
            ..Default::default()
        }
        .with_target_coverage(&refs, 20.0),
    );
    let out = MetaHipMer::new(AssemblyConfig::small_test()).assemble(
        &Team::single_node(2),
        &library,
        Some(&consensus),
    );
    let records: Vec<FastaRecord> = out
        .scaffolds
        .scaffolds
        .iter()
        .map(|s| FastaRecord {
            id: format!("scaffold_{}", s.id),
            description: format!("contigs={} length={}", s.num_contigs(), s.len()),
            seq: s.seq.clone(),
        })
        .collect();
    let text = write_fasta(&records, 80);
    let back = parse_fasta(&text).expect("written FASTA parses");
    assert_eq!(back.len(), records.len());
    for (a, b) in back.iter().zip(&records) {
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.id, b.id);
    }
}
