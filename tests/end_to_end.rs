//! Cross-crate integration tests: the full pipeline from simulated reads to
//! evaluated scaffolds.

use asm_metrics::{evaluate, EvalParams};
use mgsim::{CommunityParams, ReadSimParams};
use mhm_core::{AssemblyConfig, MetaHipMer};
use pgas::Team;
use seqio::ReferenceSet;

fn community(taxa: usize, seed: u64) -> (ReferenceSet, seqio::ReadLibrary, Vec<u8>) {
    let (refs, consensus) = mgsim::generate_community(&CommunityParams {
        num_taxa: taxa,
        genome_len_range: (5_000, 7_000),
        abundance_sigma: 0.8,
        strain_variants: 1,
        rrna_len: 300,
        seed,
        ..Default::default()
    });
    let reads = mgsim::simulate_reads(
        &refs,
        &ReadSimParams {
            read_len: 100,
            insert_size: 300,
            error_rate: 0.004,
            seed: seed + 1,
            ..Default::default()
        }
        .with_target_coverage(&refs, 20.0),
    );
    (refs, reads, consensus)
}

fn eval_params() -> EvalParams {
    EvalParams {
        min_block: 200,
        length_thresholds: vec![1_000, 2_500],
        ..Default::default()
    }
}

#[test]
fn metahipmer_assembles_a_small_community_accurately() {
    let (refs, library, consensus) = community(4, 2026);
    let team = Team::single_node(4);
    let out =
        MetaHipMer::new(AssemblyConfig::small_test()).assemble(&team, &library, Some(&consensus));
    let report = evaluate(&out.sequences(), &refs, &eval_params());
    assert!(
        report.genome_fraction > 0.85,
        "genome fraction {:.3} too low ({})",
        report.genome_fraction,
        report.summary_line()
    );
    assert!(
        report.misassemblies <= 3,
        "too many misassemblies: {}",
        report.misassemblies
    );
    // Contiguity: scaffolds should be much longer than reads.
    assert!(
        out.scaffolds.n50() > 1_000,
        "N50 {} too small",
        out.scaffolds.n50()
    );
    // rRNA regions are planted in every genome; most should be recovered.
    assert!(
        report.rrna_recovered * 2 >= report.rrna_total,
        "rRNA recovery too low: {}/{}",
        report.rrna_recovered,
        report.rrna_total
    );
}

#[test]
fn pipeline_stage_accounting_is_complete() {
    let (_refs, library, consensus) = community(3, 2027);
    let team = Team::single_node(2);
    let out =
        MetaHipMer::new(AssemblyConfig::small_test()).assemble(&team, &library, Some(&consensus));
    for stage in [
        "kmer_analysis",
        "graph_traversal",
        "alignment",
        "scaffolding",
    ] {
        assert!(
            out.stage_seconds(stage) > 0.0,
            "stage {stage} has no recorded time"
        );
    }
    // Communication happened and was accounted.
    let total_msgs: u64 = out.stages.iter().map(|(_, _, s)| s.msgs_sent).sum();
    assert!(total_msgs > 0, "no aggregated messages were recorded");
    assert_eq!(out.local_assembly_work.len(), 2);
}

#[test]
fn read_localization_improves_cache_hit_rate_without_changing_the_assembly() {
    let (_refs, library, consensus) = community(4, 2028);
    let team = Team::single_node(4);
    let mut with = AssemblyConfig::small_test();
    with.read_localization = true;
    let mut without = AssemblyConfig::small_test();
    without.read_localization = false;
    let out_with = MetaHipMer::new(with).assemble(&team, &library, Some(&consensus));
    let out_without = MetaHipMer::new(without).assemble(&team, &library, Some(&consensus));
    // Same assembly either way (localisation is a performance optimisation).
    let mut a = out_with.sequences();
    let mut b = out_without.sequences();
    a.sort();
    b.sort();
    assert_eq!(a, b, "read localisation must not change the result");
    // The alignment stage should see a cache hit rate at least as good.
    let hit_with = out_with.stage_stats("alignment").cache_hit_rate();
    let hit_without = out_without.stage_stats("alignment").cache_hit_rate();
    assert!(
        hit_with + 1e-9 >= hit_without,
        "localisation should not lower cache reuse: with={hit_with:.3} without={hit_without:.3}"
    );
}

#[test]
fn baselines_rank_in_the_expected_order_on_uneven_coverage() {
    use baselines::{Assembler, HipMerLike, MetaHipMerAssembler};
    // A strongly skewed two-species community (the §II-C scenario).
    let ds = mgsim::two_species_skewed(2029);
    let team = Team::single_node(2);
    let eval = eval_params();
    let mhm = MetaHipMerAssembler {
        config: AssemblyConfig::small_test(),
    }
    .assemble(&team, &ds.library, Some(&ds.rrna_consensus));
    let hip = HipMerLike {
        config: AssemblyConfig::small_test(),
    }
    .assemble(&team, &ds.library, Some(&ds.rrna_consensus));
    let mhm_report = evaluate(&mhm.sequences(), &ds.refs, &eval);
    let hip_report = evaluate(&hip.sequences(), &ds.refs, &eval);
    // Within anchoring noise at this tiny scale; the full-size comparison is
    // made by the Table I harness.
    assert!(
        mhm_report.genome_fraction >= hip_report.genome_fraction - 0.03,
        "MetaHipMer ({:.3}) must cover at least as much as HipMer ({:.3})",
        mhm_report.genome_fraction,
        hip_report.genome_fraction
    );
}
