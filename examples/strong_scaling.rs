//! Strong-scaling demo: assemble the same input with 1, 2, 4, ... SPMD ranks
//! and report the speedup, parallel efficiency and per-stage breakdown — a
//! laptop-scale rendition of Figures 4 and 5.
//!
//! Run with `cargo run --release --example strong_scaling`.

use mhm_core::{AssemblyConfig, MetaHipMer};
use pgas::Team;
use std::time::Instant;

fn main() {
    let dataset = mgsim::wetlands_sim(2, 11);
    println!(
        "Wetlands-sim subset: {} genomes, {} read pairs",
        dataset.refs.len(),
        dataset.library.num_pairs()
    );
    let max_ranks = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let assembler = MetaHipMer::new(AssemblyConfig::default());
    let mut baseline = None;
    let mut ranks = 1usize;
    while ranks <= max_ranks {
        let team = Team::single_node(ranks);
        let start = Instant::now();
        let out = assembler.assemble(&team, &dataset.library, Some(&dataset.rrna_consensus));
        let secs = start.elapsed().as_secs_f64();
        let efficiency = match baseline {
            None => {
                baseline = Some(secs);
                100.0
            }
            Some(t1) => 100.0 * t1 / (secs * ranks as f64),
        };
        println!(
            "ranks={ranks:<2} time={secs:>6.2}s efficiency={efficiency:>5.1}%  scaffolds={} N50={}",
            out.scaffolds.len(),
            out.scaffolds.n50()
        );
        let total: f64 = out.stages.iter().map(|(_, s, _)| *s).sum();
        for (stage, secs, _) in &out.stages {
            println!("    {stage:<18} {:>5.1}%", 100.0 * secs / total.max(1e-9));
        }
        ranks *= 2;
    }
}
