//! Assemble the MG64-substitute community (the paper's quality benchmark) and
//! compare MetaHipMer against the HipMer single-genome baseline — the
//! experiment that motivates metagenome-specific assembly (Table I, bottom
//! row).
//!
//! Run with `cargo run --release --example metagenome_quality`.

use baselines::{Assembler, HipMerLike, MetaHipMerAssembler};
use mhm_core::AssemblyConfig;
use pgas::Team;

fn main() {
    let dataset = mgsim::mg64_sim(mgsim::Mg64Scale::Tiny, 7);
    println!(
        "MG64-sim (tiny): {} genomes, {} read pairs",
        dataset.refs.len(),
        dataset.library.num_pairs()
    );
    let team = Team::single_node(4);
    let eval = asm_metrics::EvalParams {
        min_block: 200,
        length_thresholds: vec![1_000, 2_500, 5_000],
        ..Default::default()
    };
    for assembler in [
        Box::new(MetaHipMerAssembler {
            config: AssemblyConfig::default(),
        }) as Box<dyn Assembler>,
        Box::new(HipMerLike {
            config: AssemblyConfig::default(),
        }),
    ] {
        let out = assembler.assemble(&team, &dataset.library, Some(&dataset.rrna_consensus));
        let report = asm_metrics::evaluate(&out.sequences(), &dataset.refs, &eval);
        println!(
            "{:<12} scaffolds={:<4} N50={:<6} genome-fraction={:>5.1}%  misassemblies={}  rRNA={}/{}",
            assembler.name(),
            out.scaffolds.len(),
            out.scaffolds.n50(),
            100.0 * report.genome_fraction,
            report.misassemblies,
            report.rrna_recovered,
            report.rrna_total,
        );
        // Per-genome coverage of the five least-abundant genomes: this is
        // where the metagenome-specific algorithms earn their keep.
        let mut per = report.per_genome.clone();
        per.sort_by_key(|a| a.covered);
        for g in per.iter().take(5) {
            println!(
                "    {:<14} {:>6} bp  covered {:>5.1}%  NGA50 {}",
                g.name,
                g.genome_len,
                100.0 * g.genome_fraction,
                g.nga50
            );
        }
    }
}
