//! Quickstart: simulate a small metagenome community, assemble it with
//! MetaHipMer on a team of SPMD ranks, and print the assembly statistics.
//!
//! Run with `cargo run --release --example quickstart`.

use mgsim::{CommunityParams, ReadSimParams};
use mhm_core::{AssemblyConfig, MetaHipMer};
use pgas::Team;

fn main() {
    // 1. A synthetic community: 6 genomes with log-normally distributed
    //    abundances, strain variants and a conserved rRNA-like operon.
    let (refs, rrna_consensus) = mgsim::generate_community(&CommunityParams {
        num_taxa: 6,
        genome_len_range: (8_000, 12_000),
        abundance_sigma: 1.0,
        strain_variants: 1,
        seed: 42,
        ..Default::default()
    });
    // 2. Paired-end reads at ~18x mean coverage with 0.5% error.
    let library = mgsim::simulate_reads(
        &refs,
        &ReadSimParams {
            read_len: 100,
            insert_size: 300,
            error_rate: 0.005,
            seed: 43,
            ..Default::default()
        }
        .with_target_coverage(&refs, 18.0),
    );
    println!(
        "community: {} genomes, {} bp; reads: {} pairs",
        refs.len(),
        refs.total_bases(),
        library.num_pairs()
    );

    // 3. Assemble on 4 SPMD ranks.
    let team = Team::single_node(4);
    let assembler = MetaHipMer::new(AssemblyConfig::default());
    let output = assembler.assemble(&team, &library, Some(&rrna_consensus));

    // 4. Report.
    println!(
        "assembly: {} scaffolds, {} bp, N50 = {} bp, total {:.1}s",
        output.scaffolds.len(),
        output.scaffolds.total_bases(),
        output.scaffolds.n50(),
        output.total_seconds
    );
    for (stage, secs, stats) in &output.stages {
        println!(
            "  stage {stage:<18} {secs:>7.2}s  msgs={} off-node-frac={:.2} cache-hit={:.2}",
            stats.msgs_sent,
            stats.remote_fraction(),
            stats.cache_hit_rate()
        );
    }
    // 5. Check the result against the known references.
    let report = asm_metrics::evaluate(
        &output.sequences(),
        &refs,
        &asm_metrics::EvalParams::default(),
    );
    println!("evaluation: {}", report.summary_line());
}
