//! Ribosomal-region recovery: assemble a community whose genomes share a
//! conserved rRNA-like operon and show how the profile HMM recognises the
//! assembled copies — the capability §III-C of the paper adds for downstream
//! phylogenetic analysis.
//!
//! Run with `cargo run --release --example rrna_recovery`.

use mgsim::{CommunityParams, ReadSimParams};
use mhm_core::{AssemblyConfig, MetaHipMer};
use pgas::Team;
use rrna_hmm::RrnaDetector;

fn main() {
    let (refs, consensus) = mgsim::generate_community(&CommunityParams {
        num_taxa: 5,
        genome_len_range: (9_000, 12_000),
        rrna_len: 400,
        rrna_divergence: 0.03,
        seed: 31,
        ..Default::default()
    });
    let library = mgsim::simulate_reads(
        &refs,
        &ReadSimParams {
            read_len: 100,
            seed: 32,
            ..Default::default()
        }
        .with_target_coverage(&refs, 20.0),
    );
    let team = Team::single_node(4);
    let output =
        MetaHipMer::new(AssemblyConfig::default()).assemble(&team, &library, Some(&consensus));

    let detector = RrnaDetector::from_consensus(&consensus);
    let mut hits = 0usize;
    for scaffold in &output.scaffolds.scaffolds {
        if detector.is_hit(&scaffold.seq) {
            hits += 1;
            println!(
                "scaffold {:>3} ({:>6} bp, {} contigs) carries an rRNA-like region (score {:.2})",
                scaffold.id,
                scaffold.len(),
                scaffold.num_contigs(),
                detector.score(&scaffold.seq)
            );
        }
    }
    println!(
        "\n{} of {} genomes' rRNA operons recovered in {} scaffolds",
        asm_metrics::evaluate(
            &output.sequences(),
            &refs,
            &asm_metrics::EvalParams::default()
        )
        .rrna_recovered,
        refs.len(),
        hits
    );
}
