//! MetaHipMer-rs: a facade crate re-exporting the whole workspace.
//!
//! This crate exists so that examples, integration tests and downstream users
//! can depend on a single package and reach every layer of the reproduction:
//!
//! * [`mhm_core`] — the MetaHipMer pipeline (iterative contig generation,
//!   local assembly, scaffolding) — the paper's primary contribution;
//! * [`pgas`] / [`dht`] — the UPC-substitute SPMD runtime and distributed
//!   hash tables it runs on;
//! * [`seqio`] / [`kmers`] / [`readstore`] — sequences, reads and packed
//!   k-mers, plus the block-sharded distributed read store;
//! * [`mgsim`] — the synthetic community and read simulator (the paper's
//!   MGSim / WGSim);
//! * [`mod@dbg`] / [`aligner`] / [`scaffolding`] / [`rrna_hmm`] — the pipeline
//!   stages as reusable libraries;
//! * [`baselines`] — the comparator assemblers of Table I;
//! * [`asm_metrics`] — the metaQUAST-substitute quality evaluation.
//!
//! See `examples/quickstart.rs` for the three-line end-to-end use.

pub use aligner;
pub use asm_metrics;
pub use baselines;
pub use dbg;
pub use dht;
pub use kmers;
pub use mgsim;
pub use mhm_core;
pub use pgas;
pub use readstore;
pub use rrna_hmm;
pub use scaffolding;
pub use seqio;

pub use mhm_core::{AssemblyConfig, MetaHipMer};
