//! merAligner substitute: distributed seed-and-extend read-to-contig alignment.
//!
//! The paper maps reads onto contigs twice per iteration (for local assembly
//! and for scaffolding) using merAligner, a distributed seed-and-extend
//! aligner built on the same hash-table machinery as the rest of the
//! pipeline. This crate reproduces its structure:
//!
//! * [`seed_index`] — a distributed hash table mapping canonical seed k-mers
//!   of the contigs to their positions (the "seed index"); construction is an
//!   update-only aggregated phase, lookups are a read-only phase served
//!   through a per-rank [`dht::CachedView`]: cache hits are answered locally
//!   and all misses of a read block travel to their owner ranks in one
//!   aggregated request–response round trip (the paper's batched lookups;
//!   a fine-grained per-seed mode remains as the ablation baseline);
//! * [`align`] — seed lookup, candidate voting by diagonal, and ungapped
//!   extension/verification producing [`align::Alignment`] records (our
//!   simulated reads contain substitutions but no indels, so ungapped
//!   verification loses nothing; see DESIGN.md);
//! * [`localize`] — the read-localisation optimisation of §II-I: after the
//!   first round of alignments, read pairs are reassigned to the rank
//!   `contig mod P` of the contig they aligned to, so subsequent alignment
//!   rounds hit the software cache and k-mer exchanges become cache friendly.

pub mod align;
pub mod localize;
pub mod seed_index;

pub use align::{align_reads, align_reads_ref, AlignParams, Alignment, AlignmentSet};
pub use localize::{localize_pairs, ReadDistribution};
pub use seed_index::{build_seed_index, build_seed_index_ref, SeedHit, SeedIndex};
