//! The distributed seed index over a contig set.

use dbg::{ContigId, ContigSet};
use dht::{bulk_merge, DistMap};
use kmers::{kmer_positions, Kmer};
use pgas::Ctx;
use std::sync::Arc;

/// One occurrence of a seed k-mer in a contig.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedHit {
    /// The contig containing the seed.
    pub contig: ContigId,
    /// Position of the seed's first base in the contig.
    pub pos: u32,
    /// True if the canonical seed k-mer appears in the contig in forward
    /// orientation at `pos`; false if the contig holds its reverse complement.
    pub forward: bool,
}

/// The distributed seed index: canonical seed k-mer → occurrences.
/// Seeds occurring more than [`SeedIndex::MAX_HITS_PER_SEED`] times are
/// truncated (they are repetitive and carry no placement information), the
/// same defence merAligner uses against high-frequency seeds.
pub struct SeedIndex {
    pub map: Arc<DistMap<Kmer, Vec<SeedHit>>>,
    pub seed_len: usize,
}

impl SeedIndex {
    /// Hits beyond this per seed are dropped.
    pub const MAX_HITS_PER_SEED: usize = 32;
}

/// Collectively builds the seed index for a contig set.
///
/// Every rank indexes a block of the contigs; the hit lists are merged on the
/// owner ranks with aggregated messages (global update-only phase).
pub fn build_seed_index(ctx: &Ctx, contigs: &ContigSet, seed_len: usize) -> SeedIndex {
    assert!(
        seed_len >= 3 && seed_len % 2 == 1,
        "seed length must be odd and >= 3"
    );
    let map: Arc<DistMap<Kmer, Vec<SeedHit>>> = DistMap::shared(ctx);
    let my_range = ctx.block_range(contigs.len());
    let items = contigs.contigs[my_range].iter().flat_map(|c| {
        kmer_positions(&c.seq, seed_len)
            .into_iter()
            .map(move |(pos, km)| {
                let (canon, was_rc) = km.canonical();
                (
                    canon,
                    vec![SeedHit {
                        contig: c.id,
                        pos: pos as u32,
                        forward: !was_rc,
                    }],
                )
            })
    });
    bulk_merge(ctx, &map, items, 4096, |a, mut b| {
        if a.len() < SeedIndex::MAX_HITS_PER_SEED {
            a.append(&mut b);
            a.truncate(SeedIndex::MAX_HITS_PER_SEED);
        }
    });
    SeedIndex { map, seed_len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::Team;

    fn contig_set(seqs: &[&str], k: usize) -> ContigSet {
        ContigSet::from_sequences(
            k,
            seqs.iter().map(|s| (s.as_bytes().to_vec(), 10.0)).collect(),
        )
    }

    #[test]
    fn every_seed_of_every_contig_is_indexed() {
        let contigs = contig_set(
            &[
                "ACGGTCAGGTTCAAGGACTTACGGACCATG",
                "TTGACCGATTACAGGACCGATACCGATTAG",
            ],
            15,
        );
        let team = Team::single_node(3);
        let totals = team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            ctx.barrier();
            let mut hits = 0usize;
            index.map.for_each_local(ctx, |_, v| hits += v.len());
            ctx.allreduce_sum_u64(hits as u64)
        });
        // Each 30-base contig contributes 16 seed positions.
        assert_eq!(totals[0], 32);
    }

    #[test]
    fn seed_lookup_finds_contig_and_position() {
        let seq = "ACGGTCAGGTTCAAGGACTTACGGACCATG";
        let contigs = contig_set(&[seq], 15);
        let team = Team::single_node(2);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            ctx.barrier();
            // Look up the seed at position 5 of the contig (in storage
            // orientation the contig may be reverse-complemented).
            let stored = &contigs.contigs[0].seq;
            let seed = Kmer::from_bytes(&stored[5..20]).unwrap();
            let (canon, was_rc) = seed.canonical();
            let hits = index.map.get_cloned(ctx, &canon).expect("seed present");
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].contig, 0);
            assert_eq!(hits[0].pos, 5);
            assert_eq!(hits[0].forward, !was_rc);
        });
    }

    #[test]
    fn repetitive_seeds_are_capped() {
        // A single contig consisting of a tandem repeat: the same seed occurs
        // many times and must be truncated at the cap.
        let unit = "ACGGTCAGGTTCAAGGACT";
        let repeat: String = unit.repeat(40);
        let contigs = contig_set(&[&repeat], 15);
        let team = Team::single_node(2);
        let max_hits = team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            ctx.barrier();
            let mut max = 0usize;
            index.map.for_each_local(ctx, |_, v| max = max.max(v.len()));
            ctx.allreduce_max_u64(max as u64)
        });
        assert!(max_hits[0] as usize <= SeedIndex::MAX_HITS_PER_SEED);
        assert!(max_hits[0] >= 2, "repeat seeds should still be present");
    }

    #[test]
    #[should_panic]
    fn even_seed_length_rejected() {
        let contigs = contig_set(&["ACGGTCAGGTTCAAGGACT"], 15);
        let team = Team::single_node(1);
        team.run(|ctx| {
            let _ = build_seed_index(ctx, &contigs, 16);
        });
    }
}
