//! The distributed seed index over a contig set.

use dbg::{ContigId, ContigSet, ContigsRef};
use dht::{bulk_merge, DistMap};
use kmers::{kmer_positions, Kmer};
use pgas::Ctx;
use std::sync::Arc;

/// One occurrence of a seed k-mer in a contig.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedHit {
    /// The contig containing the seed.
    pub contig: ContigId,
    /// Position of the seed's first base in the contig.
    pub pos: u32,
    /// True if the canonical seed k-mer appears in the contig in forward
    /// orientation at `pos`; false if the contig holds its reverse complement.
    pub forward: bool,
}

/// The distributed seed index: canonical seed k-mer → occurrences.
/// Seeds occurring more than [`SeedIndex::MAX_HITS_PER_SEED`] times are
/// truncated (they are repetitive and carry no placement information), the
/// same defence merAligner uses against high-frequency seeds.
pub struct SeedIndex {
    pub map: Arc<DistMap<Kmer, Vec<SeedHit>>>,
    pub seed_len: usize,
}

impl SeedIndex {
    /// Hits beyond this per seed are dropped.
    pub const MAX_HITS_PER_SEED: usize = 32;
}

/// Collectively builds the seed index for a replicated contig set.
pub fn build_seed_index(ctx: &Ctx, contigs: &ContigSet, seed_len: usize) -> SeedIndex {
    build_seed_index_ref(ctx, ContigsRef::Local(contigs), seed_len)
}

/// Extracts the seed items of one contig sequence.
fn seed_items(id: ContigId, seq: &[u8], seed_len: usize) -> Vec<(Kmer, Vec<SeedHit>)> {
    kmer_positions(seq, seed_len)
        .into_iter()
        .map(|(pos, km)| {
            let (canon, was_rc) = km.canonical();
            (
                canon,
                vec![SeedHit {
                    contig: id,
                    pos: pos as u32,
                    forward: !was_rc,
                }],
            )
        })
        .collect()
}

/// Merges a batch of arriving hits into a hit list kept **sorted by
/// `(contig, pos)` and capped** at [`SeedIndex::MAX_HITS_PER_SEED`]. Keeping
/// the smallest hits under the cap (instead of the first arrivals) makes the
/// index content independent of arrival order — and therefore identical
/// across rank counts and across the replicated/distributed contig sources,
/// which index different contig subsets per rank.
fn merge_hits(a: &mut Vec<SeedHit>, mut b: Vec<SeedHit>) {
    a.append(&mut b);
    a.sort_unstable_by_key(|h| (h.contig, h.pos));
    a.truncate(SeedIndex::MAX_HITS_PER_SEED);
}

/// Collectively builds the seed index for a contig source.
///
/// With a replicated set every rank indexes a block of the contigs; with a
/// distributed [`dbg::ContigStore`] every rank indexes exactly the contigs it
/// owns (an owner-local read pass — no sequence ever travels for indexing).
/// Either way the hit lists are merged on the owner ranks with aggregated
/// messages (global update-only phase) into the same deterministic index.
pub fn build_seed_index_ref(ctx: &Ctx, contigs: ContigsRef<'_>, seed_len: usize) -> SeedIndex {
    assert!(
        seed_len >= 3 && seed_len % 2 == 1,
        "seed length must be odd and >= 3"
    );
    let map: Arc<DistMap<Kmer, Vec<SeedHit>>> = DistMap::shared(ctx);
    match contigs {
        ContigsRef::Local(set) => {
            let my_range = ctx.block_range(set.len());
            let items = set.contigs[my_range]
                .iter()
                .flat_map(|c| seed_items(c.id, &c.seq, seed_len));
            bulk_merge(ctx, &map, items, 4096, merge_hits);
        }
        ContigsRef::Store(store) => {
            // Unpack this rank's owned contigs once (O(shard) bytes), then
            // stream the per-position items lazily into the aggregated
            // exchange exactly like the replicated arm — buffering one item
            // per base here would transiently dwarf the packed shard the
            // store exists to bound.
            let mut owned: Vec<(ContigId, Vec<u8>)> = Vec::new();
            store
                .map()
                .for_each_local(ctx, |id, packed| owned.push((*id, packed.unpack())));
            let items = owned
                .iter()
                .flat_map(|(id, seq)| seed_items(*id, seq, seed_len));
            bulk_merge(ctx, &map, items, 4096, merge_hits);
        }
    }
    SeedIndex { map, seed_len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::Team;

    fn contig_set(seqs: &[&str], k: usize) -> ContigSet {
        ContigSet::from_sequences(
            k,
            seqs.iter().map(|s| (s.as_bytes().to_vec(), 10.0)).collect(),
        )
    }

    #[test]
    fn every_seed_of_every_contig_is_indexed() {
        let contigs = contig_set(
            &[
                "ACGGTCAGGTTCAAGGACTTACGGACCATG",
                "TTGACCGATTACAGGACCGATACCGATTAG",
            ],
            15,
        );
        let team = Team::single_node(3);
        let totals = team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            ctx.barrier();
            let mut hits = 0usize;
            index.map.for_each_local(ctx, |_, v| hits += v.len());
            ctx.allreduce_sum_u64(hits as u64)
        });
        // Each 30-base contig contributes 16 seed positions.
        assert_eq!(totals[0], 32);
    }

    #[test]
    fn seed_lookup_finds_contig_and_position() {
        let seq = "ACGGTCAGGTTCAAGGACTTACGGACCATG";
        let contigs = contig_set(&[seq], 15);
        let team = Team::single_node(2);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            ctx.barrier();
            // Look up the seed at position 5 of the contig (in storage
            // orientation the contig may be reverse-complemented).
            let stored = &contigs.contigs[0].seq;
            let seed = Kmer::from_bytes(&stored[5..20]).unwrap();
            let (canon, was_rc) = seed.canonical();
            let hits = index.map.get_cloned(ctx, &canon).expect("seed present");
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].contig, 0);
            assert_eq!(hits[0].pos, 5);
            assert_eq!(hits[0].forward, !was_rc);
        });
    }

    #[test]
    fn repetitive_seeds_are_capped() {
        // A single contig consisting of a tandem repeat: the same seed occurs
        // many times and must be truncated at the cap.
        let unit = "ACGGTCAGGTTCAAGGACT";
        let repeat: String = unit.repeat(40);
        let contigs = contig_set(&[&repeat], 15);
        let team = Team::single_node(2);
        let max_hits = team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            ctx.barrier();
            let mut max = 0usize;
            index.map.for_each_local(ctx, |_, v| max = max.max(v.len()));
            ctx.allreduce_max_u64(max as u64)
        });
        assert!(max_hits[0] as usize <= SeedIndex::MAX_HITS_PER_SEED);
        assert!(max_hits[0] >= 2, "repeat seeds should still be present");
    }

    #[test]
    #[should_panic]
    fn even_seed_length_rejected() {
        let contigs = contig_set(&["ACGGTCAGGTTCAAGGACT"], 15);
        let team = Team::single_node(1);
        team.run(|ctx| {
            let _ = build_seed_index(ctx, &contigs, 16);
        });
    }
}
