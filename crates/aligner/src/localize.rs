//! Read localisation (§II-I).
//!
//! After the first iteration's alignments are known, read pairs are reassigned
//! to ranks so that all reads aligning to the same contig live on the same
//! rank (`rank = contig mod P`). Reads mapped to the same contig are similar,
//! so the next alignment round's seed lookups hit the per-rank software cache
//! instead of generating off-node traffic, and the next k-mer-analysis round's
//! incoming k-mer batches are clustered (better local cache reuse). Pairs with
//! no alignment keep a deterministic hash-based home rank.

use crate::align::Alignment;
use dht::fx_hash_one;
use pgas::Ctx;
use seqio::ReadId;

/// Which rank owns which read pairs. `per_rank[r]` lists pair indices assigned
/// to rank `r`; the distribution is identical on every rank after
/// [`localize_pairs`] (it is broadcast).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadDistribution {
    pub per_rank: Vec<Vec<u64>>,
    /// The rank-count-independent form of a localised distribution:
    /// `targets[pair]` is the contig the pair follows (`u64::MAX` for
    /// unaligned pairs, which take a hash home). Empty for the initial
    /// block distribution. A checkpoint persists this vector instead of
    /// `per_rank` so a resume at a different rank count can rebuild the
    /// placement with [`ReadDistribution::from_targets`].
    pub targets: Vec<u64>,
}

impl ReadDistribution {
    /// The initial block distribution of `num_pairs` pairs over `ranks` ranks
    /// (what the pipeline uses before any alignment exists).
    pub fn block(num_pairs: usize, ranks: usize) -> Self {
        let mut per_rank = vec![Vec::new(); ranks];
        for (r, pairs) in per_rank.iter_mut().enumerate() {
            let range = pgas::team::block_range_for(r, ranks, num_pairs);
            *pairs = range.map(|p| p as u64).collect();
        }
        ReadDistribution {
            per_rank,
            targets: Vec::new(),
        }
    }

    /// Rebuilds the localised placement from its rank-count-independent
    /// form: pair `p` goes to rank `targets[p] % ranks`, or to a
    /// deterministic hash home when `targets[p]` is `u64::MAX`. For a
    /// given `targets` vector the result is a pure function of `ranks`,
    /// which is what makes checkpoint resume elastic.
    pub fn from_targets(targets: Vec<u64>, ranks: usize) -> Self {
        let mut per_rank = vec![Vec::new(); ranks];
        for (pair, contig) in targets.iter().enumerate() {
            let rank = if *contig == u64::MAX {
                // Unaligned pair: deterministic hash home.
                (fx_hash_one(&(pair as u64)) % ranks as u64) as usize
            } else {
                (*contig % ranks as u64) as usize
            };
            per_rank[rank].push(pair as u64);
        }
        ReadDistribution { per_rank, targets }
    }

    /// Total number of pairs across all ranks.
    pub fn total_pairs(&self) -> usize {
        self.per_rank.iter().map(|v| v.len()).sum()
    }

    /// The pairs owned by a rank.
    pub fn pairs_of(&self, rank: usize) -> &[u64] {
        &self.per_rank[rank]
    }

    /// Read ids (2 per pair) owned by a rank.
    pub fn read_ids_of(&self, rank: usize) -> Vec<ReadId> {
        self.per_rank[rank]
            .iter()
            .flat_map(|&p| [2 * p, 2 * p + 1])
            .collect()
    }

    /// Load-balance ratio of the distribution (1.0 = perfectly even).
    pub fn balance(&self) -> f64 {
        let sizes: Vec<f64> = self.per_rank.iter().map(|v| v.len() as f64).collect();
        pgas::stats::load_balance_ratio(&sizes)
    }
}

/// Collectively computes the localised distribution: each pair goes to rank
/// `(contig of its best alignment) mod P`. `local_alignments` are the
/// alignments this rank produced for the pairs it currently owns.
pub fn localize_pairs(
    ctx: &Ctx,
    num_pairs: usize,
    local_alignments: &[Alignment],
) -> ReadDistribution {
    let ranks = ctx.ranks();
    // For every locally known pair, pick the contig of the best alignment of
    // either mate (deterministic: highest matches, ties to lower contig id).
    let mut best: std::collections::HashMap<u64, (usize, u64)> = std::collections::HashMap::new();
    for a in local_alignments {
        let pair = a.read_id / 2;
        let entry = best.entry(pair).or_insert((0, u64::MAX));
        let key = (a.matches, u64::MAX - a.contig);
        let cur = (entry.0, u64::MAX - entry.1);
        if key > cur {
            *entry = (a.matches, a.contig);
        }
    }
    let assignments: Vec<(u64, u64)> = best
        .into_iter()
        .map(|(pair, (_m, contig))| (pair, contig))
        .collect();

    // Gather all assignments on rank 0 and build the full distribution.
    let mut outgoing: Vec<Vec<(u64, u64)>> = vec![Vec::new(); ranks];
    outgoing[0] = assignments;
    let gathered = ctx.exchange(outgoing);
    let dist = if ctx.rank() == 0 {
        let mut targets = vec![u64::MAX; num_pairs];
        for (pair, contig) in gathered {
            if (pair as usize) < num_pairs {
                targets[pair as usize] = contig;
            }
        }
        ReadDistribution::from_targets(targets, ranks)
    } else {
        ReadDistribution::default()
    };
    ctx.broadcast(|| dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::Team;

    #[test]
    fn block_distribution_covers_all_pairs() {
        let dist = ReadDistribution::block(10, 3);
        assert_eq!(dist.total_pairs(), 10);
        assert_eq!(dist.per_rank.len(), 3);
        assert_eq!(dist.pairs_of(0), &[0, 1, 2, 3]);
        assert_eq!(dist.read_ids_of(1), vec![8, 9, 10, 11, 12, 13]);
        assert!(dist.balance() > 0.7);
    }

    #[test]
    fn pairs_with_same_contig_land_on_same_rank() {
        let team = Team::single_node(4);
        let num_pairs = 40usize;
        let dists = team.run(|ctx| {
            // This rank aligned its block of pairs; pair p maps to contig p % 5.
            let range = ctx.block_range(num_pairs);
            let alignments: Vec<Alignment> = range
                .map(|p| Alignment {
                    read_id: 2 * p as u64,
                    contig: (p % 5) as u64,
                    forward: true,
                    contig_offset: 0,
                    aligned_len: 100,
                    matches: 100,
                })
                .collect();
            localize_pairs(ctx, num_pairs, &alignments)
        });
        for d in &dists[1..] {
            assert_eq!(d, &dists[0], "distribution must be identical on all ranks");
        }
        let dist = &dists[0];
        assert_eq!(dist.total_pairs(), num_pairs);
        // All pairs of contig c sit on rank c % 4 together.
        for c in 0..5u64 {
            let expected_rank = (c % 4) as usize;
            for p in 0..num_pairs as u64 {
                if p % 5 == c {
                    assert!(
                        dist.per_rank[expected_rank].contains(&p),
                        "pair {p} (contig {c}) not on rank {expected_rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn from_targets_is_elastic_across_rank_counts() {
        // targets is the rank-count-independent form: rebuilding it at any
        // rank count covers every pair exactly once, keeps same-contig pairs
        // together, and a localised distribution round-trips through it.
        let targets: Vec<u64> = (0..24u64)
            .map(|p| if p % 7 == 0 { u64::MAX } else { p % 5 })
            .collect();
        for ranks in [1usize, 2, 3, 4, 8] {
            let dist = ReadDistribution::from_targets(targets.clone(), ranks);
            assert_eq!(dist.total_pairs(), 24, "ranks={ranks}");
            assert_eq!(dist.per_rank.len(), ranks);
            for c in 0..5u64 {
                let home = (c % ranks as u64) as usize;
                for (p, t) in targets.iter().enumerate() {
                    if *t == c {
                        assert!(dist.per_rank[home].contains(&(p as u64)));
                    }
                }
            }
        }
        // The team-computed distribution carries the same targets vector it
        // was built from.
        let team = Team::single_node(3);
        let dists = team.run(|ctx| {
            let alignments: Vec<Alignment> = ctx
                .block_range(12)
                .map(|p| Alignment {
                    read_id: 2 * p as u64,
                    contig: (p % 5) as u64,
                    forward: true,
                    contig_offset: 0,
                    aligned_len: 100,
                    matches: 100,
                })
                .collect();
            localize_pairs(ctx, 12, &alignments)
        });
        let rebuilt = ReadDistribution::from_targets(dists[0].targets.clone(), 3);
        assert_eq!(rebuilt, dists[0]);
        let widened = ReadDistribution::from_targets(dists[0].targets.clone(), 6);
        assert_eq!(widened.total_pairs(), 12);
    }

    #[test]
    fn unaligned_pairs_are_spread_deterministically() {
        let team = Team::single_node(3);
        let dists = team.run(|ctx| localize_pairs(ctx, 30, &[]));
        assert_eq!(dists[0], dists[1]);
        assert_eq!(dists[0].total_pairs(), 30);
        // Hash distribution should not put everything on one rank.
        assert!(dists[0].per_rank.iter().all(|v| !v.is_empty()));
    }

    #[test]
    fn mate_alignment_decides_when_first_read_unaligned() {
        let team = Team::single_node(2);
        let dists = team.run(|ctx| {
            let alignments = if ctx.rank() == 0 {
                vec![Alignment {
                    read_id: 1, // second mate of pair 0
                    contig: 7,
                    forward: false,
                    contig_offset: 3,
                    aligned_len: 80,
                    matches: 80,
                }]
            } else {
                Vec::new()
            };
            localize_pairs(ctx, 2, &alignments)
        });
        let dist = &dists[0];
        // Pair 0 follows contig 7 -> rank 7 % 2 = 1.
        assert!(dist.per_rank[1].contains(&0));
    }
}
