//! Seed-and-extend alignment of reads onto contigs.
//!
//! Seed lookups against the distributed seed index come in two flavours,
//! selected by [`AlignParams::lookup_batch`]:
//!
//! * **aggregated** (`lookup_batch > 1`, the default): the seeds of a whole
//!   block of reads are gathered, cache hits are served locally, and every
//!   miss of the block travels to its owner rank in one aggregated
//!   request–response round trip ([`dht::CachedView`]) — the paper's batched
//!   lookups (use case 3 of §II-A). This path is **collective**: every rank
//!   must call [`align_reads`] in the same phase, even with no reads.
//! * **fine-grained** (`lookup_batch <= 1`): one synchronous index probe per
//!   seed through the software cache, the unaggregated baseline the
//!   `ablation_batched_lookup` harness measures against.
//!
//! Both paths feed identical seed results into identical voting and
//! verification code, so the alignments — and the assembly built from them —
//! are byte-identical.

use crate::seed_index::{SeedHit, SeedIndex};
use dbg::{ContigId, ContigSet, ContigsRef, PackedSeq};
use dht::{CachedView, FxHashMap, SoftwareCache};
use kmers::Kmer;
use pgas::Ctx;
use seqio::alphabet::revcomp;
use seqio::{Read, ReadId};

/// Parameters of the aligner.
#[derive(Debug, Clone, Copy)]
pub struct AlignParams {
    /// Seed (k-mer) length used for the index and the lookups.
    pub seed_len: usize,
    /// Distance between consecutive seed positions sampled from each read.
    pub stride: usize,
    /// Maximum number of candidate placements verified per read.
    pub max_candidates: usize,
    /// Minimum number of aligned bases for an alignment to be reported.
    pub min_aligned_len: usize,
    /// Minimum fraction of matching bases within the aligned region.
    pub min_identity: f64,
    /// Capacity of the per-rank software seed cache (entries).
    pub cache_capacity: usize,
    /// Aggregated-lookup batch size: roughly how many seed lookups are
    /// resolved per request–response round trip (and at most how many travel
    /// in one message to an owner). `1` disables aggregation and probes the
    /// index one seed at a time.
    pub lookup_batch: usize,
}

impl Default for AlignParams {
    fn default() -> Self {
        AlignParams {
            seed_len: 21,
            stride: 7,
            max_candidates: 4,
            min_aligned_len: 30,
            min_identity: 0.9,
            cache_capacity: 1 << 16,
            lookup_batch: 4096,
        }
    }
}

/// One read-to-contig alignment.
///
/// `contig_offset` is the contig coordinate at which position 0 of the
/// *oriented* read (the read itself if `forward`, its reverse complement
/// otherwise) would lie; it may be negative or beyond the contig end when the
/// read hangs over a contig boundary — exactly the situation splint detection
/// and gap closing are interested in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alignment {
    pub read_id: ReadId,
    pub contig: ContigId,
    pub forward: bool,
    pub contig_offset: i64,
    /// Number of read bases inside the contig boundaries.
    pub aligned_len: usize,
    /// Number of matching bases within the aligned region.
    pub matches: usize,
}

impl Alignment {
    /// Identity within the aligned region.
    pub fn identity(&self) -> f64 {
        if self.aligned_len == 0 {
            0.0
        } else {
            self.matches as f64 / self.aligned_len as f64
        }
    }

    /// True if the oriented read extends past the left end (coordinate 0) of
    /// the contig.
    pub fn overhangs_left(&self) -> bool {
        self.contig_offset < 0
    }

    /// True if the oriented read extends past the right end of a contig of the
    /// given length.
    pub fn overhangs_right(&self, contig_len: usize, read_len: usize) -> bool {
        self.contig_offset + read_len as i64 > contig_len as i64
    }
}

/// The alignments produced by one rank for the reads it processed.
#[derive(Debug, Clone, Default)]
pub struct AlignmentSet {
    pub alignments: Vec<Alignment>,
}

impl AlignmentSet {
    /// Groups the alignments by read id.
    pub fn by_read(&self) -> FxHashMap<ReadId, Vec<&Alignment>> {
        let mut map: FxHashMap<ReadId, Vec<&Alignment>> = FxHashMap::default();
        for a in &self.alignments {
            map.entry(a.read_id).or_default().push(a);
        }
        map
    }

    /// The best (most matches) alignment of each read.
    pub fn best_per_read(&self) -> FxHashMap<ReadId, Alignment> {
        let mut map: FxHashMap<ReadId, Alignment> = FxHashMap::default();
        for a in &self.alignments {
            map.entry(a.read_id)
                .and_modify(|cur| {
                    if a.matches > cur.matches {
                        *cur = *a;
                    }
                })
                .or_insert(*a);
        }
        map
    }
}

/// Aligns the reads `(read_id, read)` of this rank against a replicated
/// contig set using the shared seed index. Returns this rank's alignments.
/// See [`align_reads_ref`] for the collectivity contract.
pub fn align_reads<R: std::borrow::Borrow<Read>>(
    ctx: &Ctx,
    reads: impl IntoIterator<Item = (ReadId, R)>,
    contigs: &ContigSet,
    index: &SeedIndex,
    params: &AlignParams,
) -> AlignmentSet {
    align_reads_ref(ctx, reads, ContigsRef::Local(contigs), index, params)
}

/// Aligns the reads `(read_id, read)` of this rank against either a
/// replicated contig set or the distributed contig store.
///
/// With the default aggregated lookups (`lookup_batch > 1`) this is a
/// **collective**: every rank must call it in the same phase (an empty read
/// set is fine) because the seed misses of each read block are fetched
/// through a collective request–response exchange — and, with a distributed
/// contig store, so are the contig windows named by the block's surviving
/// candidates. With `lookup_batch <= 1` it degenerates to the fine-grained,
/// communication-per-seed (and per-candidate-contig) baseline.
///
/// The alignments are byte-identical across all four combinations: seed
/// voting never touches sequence bytes, and verification reads exactly the
/// candidate windows whichever transport delivered them.
///
/// Reads arrive as any borrowable form (`Read`, `&Read`, or the values an
/// on-demand read-store stream unpacks), so neither the replicated baseline
/// nor the distributed read store has to clone sequences to align them.
pub fn align_reads_ref<R: std::borrow::Borrow<Read>>(
    ctx: &Ctx,
    reads: impl IntoIterator<Item = (ReadId, R)>,
    contigs: ContigsRef<'_>,
    index: &SeedIndex,
    params: &AlignParams,
) -> AlignmentSet {
    if params.lookup_batch > 1 {
        align_reads_batched(ctx, reads, contigs, index, params)
    } else {
        align_reads_fine_grained(ctx, reads, contigs, index, params)
    }
}

/// The unaggregated baseline: one synchronous index probe per seed and one
/// fine-grained contig fetch per candidate, through the per-rank software
/// caches.
fn align_reads_fine_grained<R: std::borrow::Borrow<Read>>(
    ctx: &Ctx,
    reads: impl IntoIterator<Item = (ReadId, R)>,
    contigs: ContigsRef<'_>,
    index: &SeedIndex,
    params: &AlignParams,
) -> AlignmentSet {
    let mut cache: SoftwareCache<Kmer, Vec<SeedHit>> = SoftwareCache::new(params.cache_capacity);
    let mut reader = contigs.store().map(|s| s.reader(ctx));
    let mut out = AlignmentSet::default();
    for (read_id, read) in reads {
        let read = read.borrow();
        let seeds = collect_seeds(&read.seq, index.seed_len, params.stride);
        let hits: Vec<Option<Vec<SeedHit>>> = seeds
            .iter()
            .map(|s| cache.get(ctx, &index.map, &s.canon))
            .collect();
        let candidates = vote_candidates(&read.seq, index.seed_len, &seeds, &hits);
        match contigs {
            ContigsRef::Local(set) => {
                verify_candidates_local(read_id, read, set, params, candidates, &mut out)
            }
            ContigsRef::Store(_) => {
                let reader = reader.as_mut().expect("reader exists for store sources");
                let mut fetched: FxHashMap<ContigId, Option<PackedSeq>> = FxHashMap::default();
                for cand in candidates.iter().take(params.max_candidates) {
                    fetched
                        .entry(cand.contig)
                        .or_insert_with(|| reader.get(ctx, cand.contig));
                }
                verify_candidates_fetched(read_id, read, &fetched, params, candidates, &mut out);
            }
        }
    }
    out
}

/// The aggregated path: reads are processed in blocks whose seeds are
/// resolved together — cache hits locally, all misses of the block in one
/// request–response round trip — and, against a distributed store, the
/// contig windows named by the block's surviving candidates are fetched in a
/// second aggregated round. Collective; ranks with fewer reads keep
/// participating in the remaining rounds with empty batches.
fn align_reads_batched<R: std::borrow::Borrow<Read>>(
    ctx: &Ctx,
    reads: impl IntoIterator<Item = (ReadId, R)>,
    contigs: ContigsRef<'_>,
    index: &SeedIndex,
    params: &AlignParams,
) -> AlignmentSet {
    let mut reads = reads.into_iter();
    let mut view: CachedView<Kmer, Vec<SeedHit>> =
        CachedView::new(&index.map, params.cache_capacity, params.lookup_batch);
    let mut reader = contigs.store().map(|s| s.reader(ctx));
    let mut out = AlignmentSet::default();
    loop {
        // Pull one block of reads from the stream: enough to fill roughly one
        // batch of seed lookups. Only the current block is held in memory.
        let mut block: Vec<(ReadId, R)> = Vec::new();
        let mut seeds: Vec<Seed> = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::new();
        while seeds.len() < params.lookup_batch {
            let Some((read_id, read)) = reads.next() else {
                break;
            };
            let lo = seeds.len();
            collect_seeds_into(
                &read.borrow().seq,
                index.seed_len,
                params.stride,
                &mut seeds,
            );
            spans.push((lo, seeds.len()));
            block.push((read_id, read));
        }
        // Everyone must agree to stop; a rank that is done keeps serving the
        // collective with empty batches until the slowest rank finishes.
        if !ctx.allreduce_any(!block.is_empty()) {
            break;
        }
        let keys: Vec<Kmer> = seeds.iter().map(|s| s.canon).collect();
        let resolved = view.get_many(ctx, &keys);
        let candidates: Vec<Vec<Candidate>> = block
            .iter()
            .zip(&spans)
            .map(|((_, read), &(lo, hi))| {
                vote_candidates(
                    &read.borrow().seq,
                    index.seed_len,
                    &seeds[lo..hi],
                    &resolved[lo..hi],
                )
            })
            .collect();
        match contigs {
            ContigsRef::Local(set) => {
                for ((read_id, read), cands) in block.iter().zip(candidates) {
                    verify_candidates_local(*read_id, read.borrow(), set, params, cands, &mut out);
                }
            }
            ContigsRef::Store(_) => {
                // One aggregated fetch for every contig named by a surviving
                // candidate anywhere in the block (collective — ranks with an
                // empty block fetch an empty id set).
                let reader = reader.as_mut().expect("reader exists for store sources");
                let mut ids: Vec<ContigId> = Vec::new();
                let mut seen: FxHashMap<ContigId, usize> = FxHashMap::default();
                for cands in &candidates {
                    for cand in cands.iter().take(params.max_candidates) {
                        seen.entry(cand.contig).or_insert_with(|| {
                            ids.push(cand.contig);
                            ids.len() - 1
                        });
                    }
                }
                let values = reader.get_many(ctx, &ids);
                let fetched: FxHashMap<ContigId, Option<PackedSeq>> =
                    ids.into_iter().zip(values).collect();
                for ((read_id, read), cands) in block.iter().zip(candidates) {
                    verify_candidates_fetched(
                        *read_id,
                        read.borrow(),
                        &fetched,
                        params,
                        cands,
                        &mut out,
                    );
                }
            }
        }
    }
    out
}

/// Candidate placement of a read on a contig.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Candidate {
    contig: ContigId,
    forward: bool,
    contig_offset: i64,
}

/// One sampled seed of a read: its canonical k-mer, whether canonicalisation
/// reverse-complemented it, and its offset in the read.
#[derive(Debug, Clone, Copy)]
struct Seed {
    canon: Kmer,
    read_rc: bool,
    offset: usize,
}

/// Samples the seeds of a read at the configured stride (identical for the
/// fine-grained and the aggregated lookup paths).
fn collect_seeds(seq: &[u8], slen: usize, stride: usize) -> Vec<Seed> {
    let mut seeds = Vec::new();
    collect_seeds_into(seq, slen, stride, &mut seeds);
    seeds
}

fn collect_seeds_into(seq: &[u8], slen: usize, stride: usize, seeds: &mut Vec<Seed>) {
    if seq.len() < slen {
        return;
    }
    let mut offset = 0usize;
    while offset + slen <= seq.len() {
        if let Some(seed) = Kmer::from_bytes(&seq[offset..offset + slen]) {
            let (canon, read_rc) = seed.canonical();
            seeds.push(Seed {
                canon,
                read_rc,
                offset,
            });
        }
        offset += stride.max(1);
    }
}

/// Turns one read's resolved seed hits into the sorted candidate list
/// (best-voted first, deterministic tie-break). `hits[i]` is the index answer
/// for `seeds[i]`; `slen` is the seed length the seeds were sampled with (the
/// index's, not the params'). Voting never touches contig sequence bytes, so
/// it is shared verbatim by the replicated and distributed-store paths.
fn vote_candidates(
    seq: &[u8],
    slen: usize,
    seeds: &[Seed],
    hits: &[Option<Vec<SeedHit>>],
) -> Vec<Candidate> {
    let mut votes: FxHashMap<Candidate, usize> = FxHashMap::default();
    for (seed, hit_list) in seeds.iter().zip(hits) {
        let Some(hit_list) = hit_list else { continue };
        for hit in hit_list {
            // forward placement: the read (as given) matches the contig
            // strand iff the seed orientations agree.
            let forward = hit.forward != seed.read_rc;
            let contig_offset = if forward {
                hit.pos as i64 - seed.offset as i64
            } else {
                // The reverse-complemented read aligns forward; in the
                // oriented (rc) read the seed starts at
                // len - slen - offset.
                hit.pos as i64 - (seq.len() - slen - seed.offset) as i64
            };
            let cand = Candidate {
                contig: hit.contig,
                forward,
                contig_offset,
            };
            *votes.entry(cand).or_insert(0) += 1;
        }
    }
    let mut candidates: Vec<(Candidate, usize)> = votes.into_iter().collect();
    candidates.sort_by(|a, b| {
        b.1.cmp(&a.1).then_with(|| {
            (a.0.contig, a.0.contig_offset, a.0.forward).cmp(&(
                b.0.contig,
                b.0.contig_offset,
                b.0.forward,
            ))
        })
    });
    candidates.into_iter().map(|(c, _)| c).collect()
}

/// A contig window handed to verification: the bytes, the contig coordinate
/// the window starts at, and the full contig length.
type ContigWindow<'a> = (std::borrow::Cow<'a, [u8]>, i64, usize);

/// Verifies the top candidates of one read against a replicated contig set
/// (windows borrow the stored sequences; nothing is copied).
fn verify_candidates_local(
    read_id: ReadId,
    read: &Read,
    contigs: &ContigSet,
    params: &AlignParams,
    candidates: Vec<Candidate>,
    out: &mut AlignmentSet,
) {
    verify_candidates(read_id, read, params, candidates, out, |id, _, _| {
        contigs
            .get(id)
            .map(|c| (std::borrow::Cow::Borrowed(c.seq.as_slice()), 0, c.len()))
    });
}

/// Verifies the top candidates of one read against pre-fetched packed
/// contigs, unpacking only the window each placement can touch.
fn verify_candidates_fetched(
    read_id: ReadId,
    read: &Read,
    fetched: &FxHashMap<ContigId, Option<PackedSeq>>,
    params: &AlignParams,
    candidates: Vec<Candidate>,
    out: &mut AlignmentSet,
) {
    verify_candidates(
        read_id,
        read,
        params,
        candidates,
        out,
        |id, offset, rlen| {
            let packed = fetched.get(&id).and_then(|p| p.as_ref())?;
            let start = offset.max(0) as usize;
            let end = (offset + rlen as i64).max(0) as usize;
            let window = packed.window(start, end.saturating_sub(start));
            Some((std::borrow::Cow::Owned(window), start as i64, packed.len()))
        },
    );
}

/// Shared verification loop: report at most one placement per contig per
/// read (the best-voted one), accept if long and identical enough.
/// `window_of(contig, offset, read_len)` yields the contig window covering
/// the placement `[offset, offset + read_len)` (clamped), or `None` for an
/// unknown contig.
fn verify_candidates<'a>(
    read_id: ReadId,
    read: &Read,
    params: &AlignParams,
    candidates: Vec<Candidate>,
    out: &mut AlignmentSet,
    mut window_of: impl FnMut(ContigId, i64, usize) -> Option<ContigWindow<'a>>,
) {
    if candidates.is_empty() {
        return;
    }
    let seq = &read.seq;
    let oriented_fwd = seq.clone();
    let oriented_rev = revcomp(seq);
    let mut reported_contigs: Vec<ContigId> = Vec::new();
    for cand in candidates.into_iter().take(params.max_candidates) {
        if reported_contigs.contains(&cand.contig) {
            continue;
        }
        let Some((window, window_start, contig_len)) =
            window_of(cand.contig, cand.contig_offset, seq.len())
        else {
            continue;
        };
        let oriented: &[u8] = if cand.forward {
            &oriented_fwd
        } else {
            &oriented_rev
        };
        let (aligned_len, matches) = verify_window(
            oriented,
            &window,
            window_start,
            contig_len as i64,
            cand.contig_offset,
        );
        if aligned_len >= params.min_aligned_len
            && matches as f64 >= params.min_identity * aligned_len as f64
        {
            reported_contigs.push(cand.contig);
            out.alignments.push(Alignment {
                read_id,
                contig: cand.contig,
                forward: cand.forward,
                contig_offset: cand.contig_offset,
                aligned_len,
                matches,
            });
        }
    }
}

/// Counts aligned/matching bases of `oriented_read` placed at `offset` on a
/// contig of length `contig_len`, reading contig bases from `window` (which
/// starts at contig coordinate `window_start` and must cover the overlap).
/// Ungapped. An `N` never counts as a match — not even against another `N`:
/// ambiguous bases carry no evidence, and letting `N` runs in low-quality
/// read tails "match" contig `N`s would manufacture identity.
fn verify_window(
    oriented_read: &[u8],
    window: &[u8],
    window_start: i64,
    contig_len: i64,
    offset: i64,
) -> (usize, usize) {
    let read_len = oriented_read.len() as i64;
    let start = offset.max(0);
    let end = (offset + read_len).min(contig_len);
    if end <= start {
        return (0, 0);
    }
    // Both sides of the overlap are contiguous slices, so the per-base loop
    // reduces to the vectorised equal-and-not-N byte count. (A byte equal to
    // an excluded `N` implies both are `N`, so excluding on one side only is
    // exact.)
    let contig = &window[(start - window_start) as usize..(end - window_start) as usize];
    let read = &oriented_read[(start - offset) as usize..(end - offset) as usize];
    let matches = mhm_simd::match_count_except(contig, read, b'N');
    ((end - start) as usize, matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed_index::{build_seed_index, build_seed_index_ref};
    use pgas::Team;

    const GENOME: &str = "ACGGTCAGGTTCAAGGACTTACGGACCATGGCATTACGGATACCAGGATCCAGATCACCAGTTTGACCGATTACAGGACCGATACCGATTAGGACCAGT";

    fn contigs_of(seqs: &[&str]) -> ContigSet {
        ContigSet::from_sequences(
            21,
            seqs.iter().map(|s| (s.as_bytes().to_vec(), 10.0)).collect(),
        )
    }

    fn params() -> AlignParams {
        AlignParams {
            seed_len: 15,
            stride: 4,
            min_aligned_len: 20,
            ..Default::default()
        }
    }

    #[test]
    fn perfect_read_aligns_at_correct_position() {
        let contigs = contigs_of(&[GENOME]);
        let team = Team::single_node(2);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            ctx.barrier();
            let read = Read::with_uniform_quality("r0", &GENOME.as_bytes()[30..80], 35);
            let set = align_reads(ctx, vec![(0u64, read)], &contigs, &index, &params());
            assert_eq!(set.alignments.len(), 1);
            let a = &set.alignments[0];
            assert_eq!(a.contig, 0);
            assert!(a.forward);
            assert_eq!(a.contig_offset, 30);
            assert_eq!(a.aligned_len, 50);
            assert_eq!(a.matches, 50);
            assert!((a.identity() - 1.0).abs() < 1e-12);
        });
    }

    #[test]
    fn reverse_complement_read_aligns_reverse() {
        let contigs = contigs_of(&[GENOME]);
        let team = Team::single_node(1);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            let rc = revcomp(&GENOME.as_bytes()[20..70]);
            let read = Read::with_uniform_quality("r0", &rc, 35);
            let set = align_reads(ctx, vec![(0u64, read)], &contigs, &index, &params());
            assert_eq!(set.alignments.len(), 1);
            let a = &set.alignments[0];
            assert!(!a.forward);
            assert_eq!(a.contig_offset, 20);
            assert_eq!(a.aligned_len, 50);
            assert_eq!(a.matches, 50);
        });
    }

    #[test]
    fn read_with_errors_still_aligns_with_lower_identity() {
        let contigs = contigs_of(&[GENOME]);
        let team = Team::single_node(1);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            let mut bases = GENOME.as_bytes()[10..90].to_vec();
            bases[40] = if bases[40] == b'A' { b'C' } else { b'A' };
            bases[60] = if bases[60] == b'G' { b'T' } else { b'G' };
            let read = Read::with_uniform_quality("r0", &bases, 35);
            let set = align_reads(ctx, vec![(0u64, read)], &contigs, &index, &params());
            assert_eq!(set.alignments.len(), 1);
            let a = &set.alignments[0];
            assert_eq!(a.aligned_len, 80);
            assert_eq!(a.matches, 78);
            assert_eq!(a.contig_offset, 10);
        });
    }

    #[test]
    fn read_spanning_two_contigs_reports_both() {
        // Split the genome into two contigs; a read straddling the junction
        // must produce partial alignments to both (the splint situation).
        let left = &GENOME[..50];
        let right = &GENOME[50..];
        let contigs = contigs_of(&[left, right]);
        let team = Team::single_node(1);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            let read = Read::with_uniform_quality("r0", &GENOME.as_bytes()[26..76], 35);
            let set = align_reads(ctx, vec![(0u64, read)], &contigs, &index, &params());
            assert_eq!(set.alignments.len(), 2, "got {:?}", set.alignments);
            let contigs_hit: Vec<ContigId> = set.alignments.iter().map(|a| a.contig).collect();
            assert!(contigs_hit.contains(&0));
            assert!(contigs_hit.contains(&1));
            for a in &set.alignments {
                assert!(a.aligned_len >= 20);
                assert_eq!(a.matches, a.aligned_len, "no errors were injected");
            }
        });
    }

    #[test]
    fn unrelated_read_does_not_align() {
        let contigs = contigs_of(&[GENOME]);
        let team = Team::single_node(1);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            let read =
                Read::with_uniform_quality("r0", b"TTTTTTTTTTGGGGGGGGGGCCCCCCCCCCAAAAAAAAAA", 35);
            let set = align_reads(ctx, vec![(0u64, read)], &contigs, &index, &params());
            assert!(set.alignments.is_empty());
        });
    }

    #[test]
    fn cache_reuse_reduces_misses_for_similar_reads() {
        let contigs = contigs_of(&[GENOME]);
        let team = Team::single_node(1);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            ctx.stats().reset();
            // Many reads from the same region: their seeds overlap heavily.
            let reads: Vec<(ReadId, Read)> = (0..20)
                .map(|i| {
                    (
                        i as ReadId,
                        Read::with_uniform_quality(format!("r{i}"), &GENOME.as_bytes()[20..70], 35),
                    )
                })
                .collect();
            let set = align_reads(ctx, reads, &contigs, &index, &params());
            assert_eq!(set.alignments.len(), 20);
            let stats = ctx.stats().snapshot();
            assert!(
                stats.cache_hits > stats.cache_misses,
                "expected cache reuse: {stats:?}"
            );
        });
    }

    #[test]
    fn batched_lookups_match_fine_grained_and_cut_traffic() {
        let contigs = contigs_of(&[GENOME]);
        let team = Team::single_node(2);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            ctx.barrier();
            let reads: Vec<(ReadId, Read)> = (0..30)
                .map(|i| {
                    let lo = (i * 2) % 40;
                    (
                        i as ReadId,
                        Read::with_uniform_quality(
                            format!("r{i}"),
                            &GENOME.as_bytes()[lo..lo + 50],
                            35,
                        ),
                    )
                })
                .collect();
            ctx.barrier();
            ctx.stats().reset();
            let fine = align_reads(
                ctx,
                reads.clone(),
                &contigs,
                &index,
                &AlignParams {
                    lookup_batch: 1,
                    ..params()
                },
            );
            let fine_stats = ctx.stats().snapshot();
            ctx.barrier();
            ctx.stats().reset();
            let batched = align_reads(
                ctx,
                reads,
                &contigs,
                &index,
                &AlignParams {
                    lookup_batch: 4096,
                    ..params()
                },
            );
            let batched_stats = ctx.stats().snapshot();
            assert_eq!(
                fine.alignments, batched.alignments,
                "aggregation must not change the alignments"
            );
            // The fine path pays one global access per seed; the batched path
            // pays a handful of aggregated messages.
            assert!(
                batched_stats.msgs_sent + batched_stats.fine_grained_ops()
                    < fine_stats.fine_grained_ops(),
                "batched traffic not lower: fine={fine_stats:?} batched={batched_stats:?}"
            );
            assert!(batched_stats.rpc_round_trips >= 1);
        });
    }

    #[test]
    fn n_bases_never_count_as_matches_even_against_n() {
        // A contig whose middle is an N run (e.g. an earlier gap fill), and a
        // low-quality read whose tail is also Ns over the same region: the
        // self-matching N run must not manufacture identity.
        let mut contig_seq = GENOME.as_bytes().to_vec();
        for b in &mut contig_seq[60..75] {
            *b = b'N';
        }
        let contigs = ContigSet::from_sequences(21, vec![(contig_seq.clone(), 10.0)]);
        let stored = &contigs.contigs[0].seq;
        // Read covering 40..90 of the stored orientation, with the same N run.
        let read_bases = stored[40..90].to_vec();
        let n_in_read = read_bases.iter().filter(|&&b| b == b'N').count();
        assert!(n_in_read >= 10, "test setup: read must contain the N run");
        let team = Team::single_node(1);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            let read = Read::with_uniform_quality("r0", &read_bases, 35);
            // Drop the identity floor so the placement is reported and the
            // match count itself can be inspected.
            let p = AlignParams {
                min_identity: 0.5,
                ..params()
            };
            let set = align_reads(ctx, vec![(0u64, read)], &contigs, &index, &p);
            assert_eq!(set.alignments.len(), 1, "{:?}", set.alignments);
            let a = &set.alignments[0];
            assert_eq!(a.aligned_len, 50);
            assert_eq!(
                a.matches,
                50 - n_in_read,
                "N positions must not count as matches"
            );
        });
    }

    #[test]
    fn distributed_store_alignments_match_replicated_in_both_lookup_modes() {
        let contigs = contigs_of(&[&GENOME[..50], &GENOME[40..]]);
        for ranks in [1usize, 3] {
            let team = Team::single_node(ranks);
            let contigs2 = contigs.clone();
            team.run(|ctx| {
                let store = dbg::ContigStore::build(
                    ctx,
                    &contigs2,
                    &dbg::ContigStoreParams {
                        cache_bytes: 128, // force evictions and refetches
                        ..Default::default()
                    },
                );
                let index = build_seed_index_ref(ctx, ContigsRef::Store(&store), 15);
                let index_local = build_seed_index(ctx, &contigs2, 15);
                ctx.barrier();
                let my_reads: Vec<(ReadId, Read)> = (0..24)
                    .filter(|i| i % ctx.ranks() == ctx.rank())
                    .map(|i| {
                        let lo = (i * 3) % 45;
                        (
                            i as ReadId,
                            Read::with_uniform_quality(
                                format!("r{i}"),
                                &GENOME.as_bytes()[lo..lo + 50],
                                35,
                            ),
                        )
                    })
                    .collect();
                for lookup_batch in [1usize, 4096] {
                    let p = AlignParams {
                        lookup_batch,
                        ..params()
                    };
                    let local = align_reads_ref(
                        ctx,
                        my_reads.clone(),
                        ContigsRef::Local(&contigs2),
                        &index_local,
                        &p,
                    );
                    let dist = align_reads_ref(
                        ctx,
                        my_reads.clone(),
                        ContigsRef::Store(&store),
                        &index,
                        &p,
                    );
                    assert_eq!(
                        local.alignments, dist.alignments,
                        "store alignments diverged (ranks={ranks}, batch={lookup_batch})"
                    );
                }
                ctx.barrier();
            });
        }
    }

    #[test]
    fn best_per_read_and_by_read_helpers() {
        let a0 = Alignment {
            read_id: 1,
            contig: 0,
            forward: true,
            contig_offset: 0,
            aligned_len: 50,
            matches: 48,
        };
        let a1 = Alignment {
            read_id: 1,
            contig: 2,
            forward: false,
            contig_offset: 5,
            aligned_len: 30,
            matches: 30,
        };
        let set = AlignmentSet {
            alignments: vec![a0, a1],
        };
        assert_eq!(set.by_read()[&1].len(), 2);
        assert_eq!(set.best_per_read()[&1], a0);
        assert!(!a1.overhangs_left());
        assert!(Alignment {
            contig_offset: -3,
            ..a0
        }
        .overhangs_left());
        assert!(a0.overhangs_right(40, 50));
        assert!(!a0.overhangs_right(100, 50));
    }
}
