//! Seed-and-extend alignment of reads onto contigs.

use crate::seed_index::SeedIndex;
use dbg::{ContigId, ContigSet};
use dht::{FxHashMap, SoftwareCache};
use kmers::Kmer;
use pgas::Ctx;
use seqio::alphabet::revcomp;
use seqio::{Read, ReadId};

/// Parameters of the aligner.
#[derive(Debug, Clone, Copy)]
pub struct AlignParams {
    /// Seed (k-mer) length used for the index and the lookups.
    pub seed_len: usize,
    /// Distance between consecutive seed positions sampled from each read.
    pub stride: usize,
    /// Maximum number of candidate placements verified per read.
    pub max_candidates: usize,
    /// Minimum number of aligned bases for an alignment to be reported.
    pub min_aligned_len: usize,
    /// Minimum fraction of matching bases within the aligned region.
    pub min_identity: f64,
    /// Capacity of the per-rank software seed cache (entries).
    pub cache_capacity: usize,
}

impl Default for AlignParams {
    fn default() -> Self {
        AlignParams {
            seed_len: 21,
            stride: 7,
            max_candidates: 4,
            min_aligned_len: 30,
            min_identity: 0.9,
            cache_capacity: 1 << 16,
        }
    }
}

/// One read-to-contig alignment.
///
/// `contig_offset` is the contig coordinate at which position 0 of the
/// *oriented* read (the read itself if `forward`, its reverse complement
/// otherwise) would lie; it may be negative or beyond the contig end when the
/// read hangs over a contig boundary — exactly the situation splint detection
/// and gap closing are interested in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alignment {
    pub read_id: ReadId,
    pub contig: ContigId,
    pub forward: bool,
    pub contig_offset: i64,
    /// Number of read bases inside the contig boundaries.
    pub aligned_len: usize,
    /// Number of matching bases within the aligned region.
    pub matches: usize,
}

impl Alignment {
    /// Identity within the aligned region.
    pub fn identity(&self) -> f64 {
        if self.aligned_len == 0 {
            0.0
        } else {
            self.matches as f64 / self.aligned_len as f64
        }
    }

    /// True if the oriented read extends past the left end (coordinate 0) of
    /// the contig.
    pub fn overhangs_left(&self) -> bool {
        self.contig_offset < 0
    }

    /// True if the oriented read extends past the right end of a contig of the
    /// given length.
    pub fn overhangs_right(&self, contig_len: usize, read_len: usize) -> bool {
        self.contig_offset + read_len as i64 > contig_len as i64
    }
}

/// The alignments produced by one rank for the reads it processed.
#[derive(Debug, Clone, Default)]
pub struct AlignmentSet {
    pub alignments: Vec<Alignment>,
}

impl AlignmentSet {
    /// Groups the alignments by read id.
    pub fn by_read(&self) -> FxHashMap<ReadId, Vec<&Alignment>> {
        let mut map: FxHashMap<ReadId, Vec<&Alignment>> = FxHashMap::default();
        for a in &self.alignments {
            map.entry(a.read_id).or_default().push(a);
        }
        map
    }

    /// The best (most matches) alignment of each read.
    pub fn best_per_read(&self) -> FxHashMap<ReadId, Alignment> {
        let mut map: FxHashMap<ReadId, Alignment> = FxHashMap::default();
        for a in &self.alignments {
            map.entry(a.read_id)
                .and_modify(|cur| {
                    if a.matches > cur.matches {
                        *cur = *a;
                    }
                })
                .or_insert(*a);
        }
        map
    }
}

/// Aligns the reads `(read_id, read)` of this rank against the contigs using
/// the shared seed index. Not collective by itself (pure lookups), but all
/// ranks typically call it in the same phase. Returns this rank's alignments.
pub fn align_reads(
    ctx: &Ctx,
    reads: impl IntoIterator<Item = (ReadId, Read)>,
    contigs: &ContigSet,
    index: &SeedIndex,
    params: &AlignParams,
) -> AlignmentSet {
    let mut cache: SoftwareCache<Kmer, Vec<crate::seed_index::SeedHit>> =
        SoftwareCache::new(params.cache_capacity);
    let mut out = AlignmentSet::default();
    for (read_id, read) in reads {
        align_one(
            ctx, read_id, &read, contigs, index, params, &mut cache, &mut out,
        );
    }
    out
}

/// Candidate placement of a read on a contig.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Candidate {
    contig: ContigId,
    forward: bool,
    contig_offset: i64,
}

#[allow(clippy::too_many_arguments)]
fn align_one(
    ctx: &Ctx,
    read_id: ReadId,
    read: &Read,
    contigs: &ContigSet,
    index: &SeedIndex,
    params: &AlignParams,
    cache: &mut SoftwareCache<Kmer, Vec<crate::seed_index::SeedHit>>,
    out: &mut AlignmentSet,
) {
    let seq = &read.seq;
    let slen = index.seed_len;
    if seq.len() < slen {
        return;
    }
    // ---- Seed lookup and candidate voting -----------------------------------
    let mut votes: FxHashMap<Candidate, usize> = FxHashMap::default();
    let mut offset = 0usize;
    while offset + slen <= seq.len() {
        if let Some(seed) = Kmer::from_bytes(&seq[offset..offset + slen]) {
            let (canon, read_rc) = seed.canonical();
            if let Some(hits) = cache.get(ctx, &index.map, &canon) {
                for hit in hits {
                    // forward placement: the read (as given) matches the contig
                    // strand iff the seed orientations agree.
                    let forward = hit.forward != read_rc;
                    let contig_offset = if forward {
                        hit.pos as i64 - offset as i64
                    } else {
                        // The reverse-complemented read aligns forward; in the
                        // oriented (rc) read the seed starts at
                        // len - slen - offset.
                        hit.pos as i64 - (seq.len() - slen - offset) as i64
                    };
                    let cand = Candidate {
                        contig: hit.contig,
                        forward,
                        contig_offset,
                    };
                    *votes.entry(cand).or_insert(0) += 1;
                }
            }
        }
        offset += params.stride.max(1);
    }
    if votes.is_empty() {
        return;
    }
    // ---- Verification of the top candidates ----------------------------------
    let mut candidates: Vec<(Candidate, usize)> = votes.into_iter().collect();
    candidates.sort_by(|a, b| {
        b.1.cmp(&a.1).then_with(|| {
            (a.0.contig, a.0.contig_offset, a.0.forward).cmp(&(
                b.0.contig,
                b.0.contig_offset,
                b.0.forward,
            ))
        })
    });
    let oriented_fwd = seq.clone();
    let oriented_rev = revcomp(seq);
    let mut reported_contigs: Vec<ContigId> = Vec::new();
    for (cand, _votes) in candidates.into_iter().take(params.max_candidates) {
        // Report at most one placement per contig per read: the best-voted one.
        if reported_contigs.contains(&cand.contig) {
            continue;
        }
        let contig = match contigs.get(cand.contig) {
            Some(c) => c,
            None => continue,
        };
        let oriented: &[u8] = if cand.forward {
            &oriented_fwd
        } else {
            &oriented_rev
        };
        let (aligned_len, matches) = verify(oriented, &contig.seq, cand.contig_offset);
        if aligned_len >= params.min_aligned_len
            && matches as f64 >= params.min_identity * aligned_len as f64
        {
            reported_contigs.push(cand.contig);
            out.alignments.push(Alignment {
                read_id,
                contig: cand.contig,
                forward: cand.forward,
                contig_offset: cand.contig_offset,
                aligned_len,
                matches,
            });
        }
    }
}

/// Counts aligned/matching bases of `oriented_read` placed at `offset` on the
/// contig (ungapped).
fn verify(oriented_read: &[u8], contig: &[u8], offset: i64) -> (usize, usize) {
    let read_len = oriented_read.len() as i64;
    let contig_len = contig.len() as i64;
    let start = offset.max(0);
    let end = (offset + read_len).min(contig_len);
    if end <= start {
        return (0, 0);
    }
    let mut matches = 0usize;
    for pos in start..end {
        let rpos = (pos - offset) as usize;
        if contig[pos as usize] == oriented_read[rpos] {
            matches += 1;
        }
    }
    ((end - start) as usize, matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed_index::build_seed_index;
    use pgas::Team;

    const GENOME: &str = "ACGGTCAGGTTCAAGGACTTACGGACCATGGCATTACGGATACCAGGATCCAGATCACCAGTTTGACCGATTACAGGACCGATACCGATTAGGACCAGT";

    fn contigs_of(seqs: &[&str]) -> ContigSet {
        ContigSet::from_sequences(
            21,
            seqs.iter().map(|s| (s.as_bytes().to_vec(), 10.0)).collect(),
        )
    }

    fn params() -> AlignParams {
        AlignParams {
            seed_len: 15,
            stride: 4,
            min_aligned_len: 20,
            ..Default::default()
        }
    }

    #[test]
    fn perfect_read_aligns_at_correct_position() {
        let contigs = contigs_of(&[GENOME]);
        let team = Team::single_node(2);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            ctx.barrier();
            let read = Read::with_uniform_quality("r0", &GENOME.as_bytes()[30..80], 35);
            let set = align_reads(ctx, vec![(0u64, read)], &contigs, &index, &params());
            assert_eq!(set.alignments.len(), 1);
            let a = &set.alignments[0];
            assert_eq!(a.contig, 0);
            assert!(a.forward);
            assert_eq!(a.contig_offset, 30);
            assert_eq!(a.aligned_len, 50);
            assert_eq!(a.matches, 50);
            assert!((a.identity() - 1.0).abs() < 1e-12);
        });
    }

    #[test]
    fn reverse_complement_read_aligns_reverse() {
        let contigs = contigs_of(&[GENOME]);
        let team = Team::single_node(1);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            let rc = revcomp(&GENOME.as_bytes()[20..70]);
            let read = Read::with_uniform_quality("r0", &rc, 35);
            let set = align_reads(ctx, vec![(0u64, read)], &contigs, &index, &params());
            assert_eq!(set.alignments.len(), 1);
            let a = &set.alignments[0];
            assert!(!a.forward);
            assert_eq!(a.contig_offset, 20);
            assert_eq!(a.aligned_len, 50);
            assert_eq!(a.matches, 50);
        });
    }

    #[test]
    fn read_with_errors_still_aligns_with_lower_identity() {
        let contigs = contigs_of(&[GENOME]);
        let team = Team::single_node(1);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            let mut bases = GENOME.as_bytes()[10..90].to_vec();
            bases[40] = if bases[40] == b'A' { b'C' } else { b'A' };
            bases[60] = if bases[60] == b'G' { b'T' } else { b'G' };
            let read = Read::with_uniform_quality("r0", &bases, 35);
            let set = align_reads(ctx, vec![(0u64, read)], &contigs, &index, &params());
            assert_eq!(set.alignments.len(), 1);
            let a = &set.alignments[0];
            assert_eq!(a.aligned_len, 80);
            assert_eq!(a.matches, 78);
            assert_eq!(a.contig_offset, 10);
        });
    }

    #[test]
    fn read_spanning_two_contigs_reports_both() {
        // Split the genome into two contigs; a read straddling the junction
        // must produce partial alignments to both (the splint situation).
        let left = &GENOME[..50];
        let right = &GENOME[50..];
        let contigs = contigs_of(&[left, right]);
        let team = Team::single_node(1);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            let read = Read::with_uniform_quality("r0", &GENOME.as_bytes()[26..76], 35);
            let set = align_reads(ctx, vec![(0u64, read)], &contigs, &index, &params());
            assert_eq!(set.alignments.len(), 2, "got {:?}", set.alignments);
            let contigs_hit: Vec<ContigId> = set.alignments.iter().map(|a| a.contig).collect();
            assert!(contigs_hit.contains(&0));
            assert!(contigs_hit.contains(&1));
            for a in &set.alignments {
                assert!(a.aligned_len >= 20);
                assert_eq!(a.matches, a.aligned_len, "no errors were injected");
            }
        });
    }

    #[test]
    fn unrelated_read_does_not_align() {
        let contigs = contigs_of(&[GENOME]);
        let team = Team::single_node(1);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            let read =
                Read::with_uniform_quality("r0", b"TTTTTTTTTTGGGGGGGGGGCCCCCCCCCCAAAAAAAAAA", 35);
            let set = align_reads(ctx, vec![(0u64, read)], &contigs, &index, &params());
            assert!(set.alignments.is_empty());
        });
    }

    #[test]
    fn cache_reuse_reduces_misses_for_similar_reads() {
        let contigs = contigs_of(&[GENOME]);
        let team = Team::single_node(1);
        team.run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            ctx.stats().reset();
            // Many reads from the same region: their seeds overlap heavily.
            let reads: Vec<(ReadId, Read)> = (0..20)
                .map(|i| {
                    (
                        i as ReadId,
                        Read::with_uniform_quality(format!("r{i}"), &GENOME.as_bytes()[20..70], 35),
                    )
                })
                .collect();
            let set = align_reads(ctx, reads, &contigs, &index, &params());
            assert_eq!(set.alignments.len(), 20);
            let stats = ctx.stats().snapshot();
            assert!(
                stats.cache_hits > stats.cache_misses,
                "expected cache reuse: {stats:?}"
            );
        });
    }

    #[test]
    fn best_per_read_and_by_read_helpers() {
        let a0 = Alignment {
            read_id: 1,
            contig: 0,
            forward: true,
            contig_offset: 0,
            aligned_len: 50,
            matches: 48,
        };
        let a1 = Alignment {
            read_id: 1,
            contig: 2,
            forward: false,
            contig_offset: 5,
            aligned_len: 30,
            matches: 30,
        };
        let set = AlignmentSet {
            alignments: vec![a0, a1],
        };
        assert_eq!(set.by_read()[&1].len(), 2);
        assert_eq!(set.best_per_read()[&1], a0);
        assert!(!a1.overhangs_left());
        assert!(Alignment {
            contig_offset: -3,
            ..a0
        }
        .overhangs_left());
        assert!(a0.overhangs_right(40, 50));
        assert!(!a0.overhangs_right(100, 50));
    }
}
