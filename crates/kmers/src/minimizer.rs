//! Canonical m-mer minimizers and supermer extraction (§II-B communication
//! optimisation).
//!
//! Shipping every canonical k-mer of every read to its owner rank costs
//! ~32 bytes per k-mer occurrence. Consecutive k-mers of a read overlap in
//! k−1 bases, so almost all of those bytes are redundant. A *minimizer*
//! scheme removes the redundancy: the minimizer of a k-mer is its
//! lexicographically smallest canonical m-mer (m ≤ k), and a **supermer** is
//! a maximal run of consecutive k-mers of a read that share the same
//! minimizer. A supermer of s k-mers spans s+k−1 bases and is shipped as
//! packed 2-bit sequence plus a one-bit-per-base quality sidecar and the two
//! boundary extension bases — ~(s+k−1)/4 bytes instead of ~32·s. Because a
//! k-mer and its reverse complement contain the same set of canonical m-mers,
//! the minimizer is strand-invariant, so routing supermers by minimizer sends
//! *every* occurrence of a canonical k-mer to the same destination: the owner
//! can count locally without any further communication.
//!
//! The pieces, in pipeline order:
//!
//! * [`SupermerIter`] — streaming iterator over the supermers of one read
//!   (window minimizers are computed with a monotonic deque, O(1) amortised
//!   per base);
//! * [`encode_supermer`] — appends one supermer's wire record to a byte
//!   buffer (the per-owner aggregation buffers of the exchange);
//! * [`SupermerBlobIter`] / [`expand_supermer`] — the receive side: frames
//!   records out of an aggregated blob and expands each back into exactly the
//!   [`CanonicalKmerExt`] observations the per-k-mer extraction
//!   ([`crate::extract::kmers_with_exts_iter`]) would have produced;
//! * [`kmer_minimizer`] / [`minimizer_shard`] — the canonical minimizer of a
//!   single (canonical) k-mer and its deterministic shard assignment, used by
//!   the minimizer-based `dht` partitioner so that table ownership agrees
//!   with supermer routing.
//!
//! Minimizer length is capped at [`MAX_MINIMIZER_LEN`] so an m-mer fits one
//! `u64` (2 bits per base, base 0 in the high bits so that integer order
//! equals lexicographic order).

use crate::ext::ExtPair;
use crate::extract::CanonicalKmerExt;
use crate::kernels;
use crate::kmer::Kmer;
use mhm_simd::{encode_codes, find_non_acgt};
use seqio::alphabet::encode_base;
use std::collections::VecDeque;

/// Largest supported minimizer length: 31 bases pack into 62 bits of a `u64`.
pub const MAX_MINIMIZER_LEN: usize = 31;

/// Largest supermer length in bases: the wire record stores the length in a
/// `u16`. [`SupermerIter`] splits longer same-minimizer runs (possible in
/// pathological homopolymer stretches of very long reads) into consecutive
/// supermers, which expand to identical observations.
pub const MAX_SUPERMER_BASES: usize = u16::MAX as usize;

/// Mixes a packed minimizer value into a well-spread 64-bit hash
/// (splitmix64 finaliser). Exposed so that routing (sender side) and the
/// partitioner (owner side) agree byte-for-byte.
#[inline]
pub fn mix_minimizer(value: u64) -> u64 {
    let mut z = value.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard (owner rank) of a minimizer value among `ranks` shards.
#[inline]
pub fn minimizer_shard(value: u64, ranks: usize) -> usize {
    debug_assert!(ranks > 0);
    (mix_minimizer(value) % ranks as u64) as usize
}

/// Packed-m-mer helper: rolls a forward value (base 0 in the high bits, so
/// integer comparison is lexicographic comparison) and the reverse-complement
/// value in lockstep.
#[derive(Clone, Copy)]
struct MmerRoller {
    m: usize,
    mask: u64,
    fwd: u64,
    rc: u64,
    /// Valid bases currently rolled in (saturates at `m`).
    filled: usize,
}

impl MmerRoller {
    fn new(m: usize) -> Self {
        assert!(
            (1..=MAX_MINIMIZER_LEN).contains(&m),
            "minimizer length must be in 1..={MAX_MINIMIZER_LEN}, got {m}"
        );
        MmerRoller {
            m,
            mask: if 2 * m == 64 {
                u64::MAX
            } else {
                (1u64 << (2 * m)) - 1
            },
            fwd: 0,
            rc: 0,
            filled: 0,
        }
    }

    /// Rolls one 2-bit base code in; returns the canonical m-mer value once
    /// `m` bases have been consumed.
    #[inline]
    fn push(&mut self, code: u8) -> Option<u64> {
        self.fwd = ((self.fwd << 2) | code as u64) & self.mask;
        self.rc = (self.rc >> 2) | (((3 - code) as u64) << (2 * (self.m - 1)));
        self.filled = (self.filled + 1).min(self.m);
        (self.filled == self.m).then(|| self.fwd.min(self.rc))
    }
}

/// The canonical minimizer value of a single k-mer: the minimum canonical
/// m-mer value over its k−m+1 windows. Strand-invariant, so it can be
/// computed on the canonical key and still agree with the read-orientation
/// routing of [`SupermerIter`].
///
/// # Panics
/// Panics if `m` is 0, larger than [`MAX_MINIMIZER_LEN`], or larger than the
/// k-mer's length.
pub fn kmer_minimizer(kmer: &Kmer, m: usize) -> u64 {
    let k = kmer.k();
    assert!(m <= k, "minimizer length {m} exceeds k {k}");
    let mut roller = MmerRoller::new(m);
    let mut best = u64::MAX;
    // Feed the roller straight from the packed words — a local 2-bit shift
    // per base instead of the div/mod addressing of `code_at`.
    let mut remaining = k;
    for &w in kmer.words() {
        let mut v = w;
        let n = remaining.min(32);
        for _ in 0..n {
            if let Some(val) = roller.push((v & 0b11) as u8) {
                best = best.min(val);
            }
            v >>= 2;
        }
        remaining -= n;
        if remaining == 0 {
            break;
        }
    }
    best
}

/// One supermer of a read: a maximal run of consecutive k-mer windows (all
/// inside one ambiguity-free stretch) sharing the same minimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supermer {
    /// Offset of the first base of the supermer within the read.
    pub start: usize,
    /// Length in bases: `kmers + k - 1`.
    pub len: usize,
    /// Number of k-mer windows covered.
    pub kmers: usize,
    /// The shared canonical minimizer value (routing key).
    pub minimizer: u64,
}

/// Streaming supermer iterator over one read. Yields the same k-mer windows
/// as [`crate::extract::kmer_positions`] (windows containing non-ACGT bases
/// are skipped), grouped into maximal same-minimizer runs. Window minimizers
/// are maintained with a monotonic deque, so the whole read is processed in
/// O(len) time and O(k) transient space.
pub struct SupermerIter<'a> {
    seq: &'a [u8],
    k: usize,
    m: usize,
    /// Next read position to scan for the current ambiguity-free stretch.
    cursor: usize,
    /// Start of the current ambiguity-free stretch (the origin of `codes`).
    stretch_start: usize,
    /// Exclusive end of the current ambiguity-free stretch (cursor..stretch_end
    /// is all-ACGT once a stretch is entered).
    stretch_end: usize,
    /// Bulk-encoded 2-bit codes of the current stretch, one byte per base
    /// (`codes[i]` is read position `stretch_start + i`), filled once per
    /// stretch by the vectorised encoder.
    codes: Vec<u8>,
    /// Next k-mer window position to emit within the stretch.
    window: usize,
    /// Monotonic deque of `(m-window position, canonical value)`, values
    /// non-decreasing front to back.
    deque: VecDeque<(usize, u64)>,
    roller: MmerRoller,
    /// Lookahead: the next window's `(position, minimizer)` when the previous
    /// [`Iterator::next`] call already computed it to detect its run's end.
    pending: Option<(usize, u64)>,
}

impl<'a> SupermerIter<'a> {
    /// Creates the iterator. `m` must be in `1..=min(k, MAX_MINIMIZER_LEN)`.
    pub fn new(seq: &'a [u8], k: usize, m: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        assert!(m >= 1 && m <= k, "minimizer length must be in 1..=k");
        SupermerIter {
            seq,
            k,
            m,
            cursor: 0,
            stretch_start: 0,
            stretch_end: 0,
            codes: Vec::new(),
            window: 0,
            deque: VecDeque::new(),
            roller: MmerRoller::new(m),
            pending: None,
        }
    }

    /// Advances to the next ambiguity-free stretch of at least k bases.
    /// Returns false when the read is exhausted. The stretch boundary is
    /// located with the vectorised non-ACGT probe and its bases are
    /// bulk-translated to 2-bit codes in one pass, so the per-base work of
    /// the scan loop reduces to a table-free byte load.
    fn enter_stretch(&mut self) -> bool {
        let n = self.seq.len();
        loop {
            // Skip invalid bases (invalid runs are rare and short).
            while self.cursor < n && encode_base(self.seq[self.cursor]).is_none() {
                self.cursor += 1;
            }
            if self.cursor + self.k > n {
                return false;
            }
            let start = self.cursor;
            let end = match find_non_acgt(&self.seq[start..]) {
                Some(i) => start + i,
                None => n,
            };
            if end - start >= self.k {
                self.stretch_start = start;
                self.stretch_end = end;
                self.codes.clear();
                self.codes.resize(end - start, 0);
                encode_codes(&self.seq[start..end], &mut self.codes);
                self.window = start;
                self.deque.clear();
                self.roller = MmerRoller::new(self.m);
                // Prime the roller up to (but excluding) the first window's
                // final base; `window_minimizer` pushes exactly that one.
                for pos in start..start + self.k - 1 {
                    self.push_mmer(pos);
                }
                return true;
            }
            self.cursor = end;
        }
    }

    /// Feeds base at `pos` into the roller; when an m-window completes, pushes
    /// its canonical value onto the monotonic deque.
    fn push_mmer(&mut self, pos: usize) {
        let code = self.codes[pos - self.stretch_start];
        if let Some(value) = self.roller.push(code) {
            let mpos = pos + 1 - self.m;
            while matches!(self.deque.back(), Some(&(_, v)) if v >= value) {
                self.deque.pop_back();
            }
            self.deque.push_back((mpos, value));
        }
    }

    /// The minimizer of the k-mer window starting at `w`: minimum canonical
    /// m-mer over m-window positions `w ..= w+k-m`.
    fn window_minimizer(&mut self, w: usize) -> u64 {
        // Complete the window's last m-mer (ending at w+k-1).
        self.push_mmer(w + self.k - 1);
        while matches!(self.deque.front(), Some(&(p, _)) if p < w) {
            self.deque.pop_front();
        }
        self.deque.front().expect("window has at least one m-mer").1
    }
}

impl Iterator for SupermerIter<'_> {
    type Item = Supermer;

    fn next(&mut self) -> Option<Supermer> {
        // First window of this supermer: either the lookahead left over from
        // the previous call, or a freshly computed one (entering the next
        // ambiguity-free stretch if the current one is exhausted).
        let (start, minimizer) = match self.pending.take() {
            Some(pm) => pm,
            None => {
                if self.window + self.k > self.stretch_end {
                    self.cursor = self.stretch_end.max(self.cursor);
                    if !self.enter_stretch() {
                        return None;
                    }
                }
                let w = self.window;
                (w, self.window_minimizer(w))
            }
        };
        // Cap the run so the supermer's base length always fits the u16 wire
        // header; an oversize same-minimizer run (a pathological homopolymer
        // stretch) is split into back-to-back supermers, which expand to the
        // same observations and route to the same owner.
        let max_kmers = MAX_SUPERMER_BASES.saturating_sub(self.k - 1).max(1);
        let mut kmers = 1usize;
        while kmers < max_kmers && start + kmers + self.k <= self.stretch_end {
            let next_w = start + kmers;
            let next_min = self.window_minimizer(next_w);
            if next_min != minimizer {
                self.pending = Some((next_w, next_min));
                break;
            }
            kmers += 1;
        }
        self.window = start + kmers;
        Some(Supermer {
            start,
            len: kmers + self.k - 1,
            kmers,
            minimizer,
        })
    }
}

/// Convenience: all supermers of a read, collected.
pub fn supermers(seq: &[u8], k: usize, m: usize) -> Vec<Supermer> {
    SupermerIter::new(seq, k, m).collect()
}

// --- Wire format -----------------------------------------------------------
//
// One record, appended to a per-owner byte buffer:
//
//   [len lo] [len hi]                u16 length L in bases
//   [flags]                          bit0 has-left, bit1 left-hq,
//                                    bit2 has-right, bit3 right-hq
//   [bounds]                         bits 0-1 left base code, bits 2-3 right
//   [ceil(L/4) packed 2-bit bases]   base i in bits 2*(i%4) of byte i/4
//   [ceil(L/8) hq bits]              base i high-quality in bit i%8 of byte i/8
//
// The boundary bases are the read bases immediately before/after the supermer
// (absent at read ends and next to ambiguous bases), so the receive side can
// reconstruct the first window's left extension and the last window's right
// extension; interior extensions are implicit in the packed sequence.

/// Number of wire bytes one supermer of `len` bases occupies.
#[inline]
pub fn supermer_wire_bytes(len: usize) -> usize {
    4 + len.div_ceil(4) + len.div_ceil(8)
}

/// Appends the wire record of `sm` (a supermer of `seq`) to `out`, returning
/// the number of bytes written. `qual` must be empty (all bases high quality)
/// or as long as `seq`; `hq_threshold` is applied on the sender so the
/// receive side never needs the Phred scores themselves.
pub fn encode_supermer(
    out: &mut Vec<u8>,
    seq: &[u8],
    qual: &[u8],
    hq_threshold: u8,
    sm: &Supermer,
) -> usize {
    assert!(
        qual.is_empty() || qual.len() == seq.len(),
        "quality must be empty or match sequence length"
    );
    assert!(
        sm.len <= u16::MAX as usize,
        "supermer too long for the wire"
    );
    let before = out.len();
    let hq_at = |i: usize| qual.is_empty() || qual[i] >= hq_threshold;
    let boundary = |i: Option<usize>| -> Option<(u8, bool)> {
        let i = i?;
        encode_base(*seq.get(i)?).map(|c| (c, hq_at(i)))
    };
    let left = boundary(sm.start.checked_sub(1));
    let right = boundary(Some(sm.start + sm.len));

    out.extend_from_slice(&(sm.len as u16).to_le_bytes());
    let mut flags = 0u8;
    let mut bounds = 0u8;
    if let Some((c, hq)) = left {
        flags |= 1 | (u8::from(hq) << 1);
        bounds |= c;
    }
    if let Some((c, hq)) = right {
        flags |= (1 << 2) | (u8::from(hq) << 3);
        bounds |= c << 2;
    }
    out.push(flags);
    out.push(bounds);

    let base = out.len();
    out.resize(base + sm.len.div_ceil(4) + sm.len.div_ceil(8), 0);
    let (packed, hq_bits) = out[base..].split_at_mut(sm.len.div_ceil(4));
    kernels::pack_ascii(&seq[sm.start..sm.start + sm.len], packed, |_, b| {
        panic!("supermer bases are unambiguous, got {:?}", b as char)
    });
    if qual.is_empty() {
        // All bases high quality: whole bytes of ones, tail bits masked.
        hq_bits.fill(0xFF);
        if !sm.len.is_multiple_of(8) {
            *hq_bits.last_mut().expect("len > 0") = (1u8 << (sm.len % 8)) - 1;
        }
    } else {
        for (i, hb) in hq_bits.iter_mut().enumerate() {
            let mut bits = 0u8;
            for j in 0..8.min(sm.len - i * 8) {
                bits |= u8::from(qual[sm.start + i * 8 + j] >= hq_threshold) << j;
            }
            *hb = bits;
        }
    }
    out.len() - before
}

/// A decoded supermer record, borrowing the wire blob.
#[derive(Debug, Clone, Copy)]
pub struct SupermerRecord<'a> {
    /// Length in bases.
    pub len: usize,
    /// Left boundary base (2-bit code, high-quality flag), if present.
    pub left: Option<(u8, bool)>,
    /// Right boundary base, if present.
    pub right: Option<(u8, bool)>,
    packed: &'a [u8],
    hq: &'a [u8],
}

impl SupermerRecord<'_> {
    /// The 2-bit code of base `i`.
    #[inline]
    pub fn code_at(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        (self.packed[i / 4] >> (2 * (i % 4))) & 0b11
    }

    /// The high-quality flag of base `i`.
    #[inline]
    pub fn hq_at(&self, i: usize) -> bool {
        self.hq[i / 8] & (1 << (i % 8)) != 0
    }
}

/// Frames [`SupermerRecord`]s out of one aggregated wire blob.
pub struct SupermerBlobIter<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> SupermerBlobIter<'a> {
    /// Iterates the records of `buf` (a concatenation of encoded supermers).
    pub fn new(buf: &'a [u8]) -> Self {
        SupermerBlobIter { buf, off: 0 }
    }
}

impl<'a> Iterator for SupermerBlobIter<'a> {
    type Item = SupermerRecord<'a>;

    fn next(&mut self) -> Option<SupermerRecord<'a>> {
        if self.off >= self.buf.len() {
            return None;
        }
        let rest = &self.buf[self.off..];
        assert!(rest.len() >= 4, "truncated supermer record header");
        let len = u16::from_le_bytes([rest[0], rest[1]]) as usize;
        let flags = rest[2];
        let bounds = rest[3];
        let packed_len = len.div_ceil(4);
        let hq_len = len.div_ceil(8);
        assert!(
            rest.len() >= 4 + packed_len + hq_len,
            "truncated supermer record body"
        );
        let record = SupermerRecord {
            len,
            left: (flags & 1 != 0).then_some((bounds & 0b11, flags & 0b10 != 0)),
            right: (flags & 0b100 != 0).then_some(((bounds >> 2) & 0b11, flags & 0b1000 != 0)),
            packed: &rest[4..4 + packed_len],
            hq: &rest[4 + packed_len..4 + packed_len + hq_len],
        };
        self.off += supermer_wire_bytes(len);
        Some(record)
    }
}

/// Expands one supermer record into the canonical k-mer observations it
/// encodes, calling `emit` once per window — exactly the observations
/// [`crate::extract::kmers_with_exts_iter`] produces for the covered windows
/// of the original read.
pub fn expand_supermer(
    record: &SupermerRecord<'_>,
    k: usize,
    mut emit: impl FnMut(CanonicalKmerExt),
) {
    assert!(record.len >= k, "supermer shorter than k");
    // The wire's packed layout is the k-mer word layout, so the first window
    // is a straight copy + mask instead of k `set_code` calls.
    let mut km = Kmer::from_packed(record.packed, k);
    let windows = record.len - k + 1;
    for w in 0..windows {
        if w > 0 {
            km = km.extended_right(record.code_at(w + k - 1));
        }
        let left = if w > 0 {
            Some((record.code_at(w - 1), record.hq_at(w - 1)))
        } else {
            record.left
        };
        let right = if w + k < record.len {
            Some((record.code_at(w + k), record.hq_at(w + k)))
        } else {
            record.right
        };
        let exts = ExtPair { left, right };
        let (canon, was_rc) = km.canonical();
        let exts = if was_rc { exts.revcomp() } else { exts };
        emit(CanonicalKmerExt { kmer: canon, exts });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{kmer_positions, kmers_with_exts};

    #[test]
    fn supermers_tile_the_kmer_windows_exactly() {
        let seq = b"ACGGTTACGGATCCGANTTACAGGCATTACAGGT";
        for (k, m) in [(5usize, 3usize), (7, 5), (11, 7), (9, 9)] {
            let sms = supermers(seq, k, m);
            let mut covered = Vec::new();
            for sm in &sms {
                assert_eq!(sm.len, sm.kmers + k - 1);
                for w in 0..sm.kmers {
                    covered.push(sm.start + w);
                }
            }
            let expect: Vec<usize> = kmer_positions(seq, k).iter().map(|&(p, _)| p).collect();
            assert_eq!(covered, expect, "k={k} m={m}");
        }
    }

    #[test]
    fn runs_share_their_minimizer_and_breaks_are_real() {
        let seq = b"ACGGTTACGGATCCGATTACAGGCATTACAGGTCCGATCAG";
        let (k, m) = (9usize, 5usize);
        let sms = supermers(seq, k, m);
        // Each window's minimizer recomputed from scratch must match its
        // supermer's minimizer, and adjacent supermers must differ.
        for sm in &sms {
            for w in 0..sm.kmers {
                let km = Kmer::from_bytes(&seq[sm.start + w..sm.start + w + k]).unwrap();
                assert_eq!(kmer_minimizer(&km, m), sm.minimizer);
            }
        }
        for pair in sms.windows(2) {
            if pair[0].start + pair[0].kmers == pair[1].start {
                assert_ne!(pair[0].minimizer, pair[1].minimizer);
            }
        }
    }

    #[test]
    fn minimizer_is_strand_invariant() {
        let seq = b"ACGGTTACGGATCCGATTACAGG";
        for (k, m) in [(11usize, 5usize), (15, 7)] {
            for (pos, km) in kmer_positions(seq, k) {
                let rc = km.revcomp();
                assert_eq!(
                    kmer_minimizer(&km, m),
                    kmer_minimizer(&rc, m),
                    "pos={pos} k={k} m={m}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_reproduces_per_kmer_observations() {
        let seq = b"ACGGTTACGGATNCCGATTACAGGCATTACAGGTCCGATCAG";
        let qual: Vec<u8> = (0..seq.len()).map(|i| 10 + ((i * 7) % 35) as u8).collect();
        for (k, m) in [(7usize, 3usize), (9, 5), (13, 13)] {
            let mut blob = Vec::new();
            for sm in SupermerIter::new(seq, k, m) {
                encode_supermer(&mut blob, seq, &qual, 20, &sm);
            }
            let mut decoded = Vec::new();
            for rec in SupermerBlobIter::new(&blob) {
                expand_supermer(&rec, k, |obs| decoded.push(obs));
            }
            let expect = kmers_with_exts(seq, &qual, k, 20);
            assert_eq!(decoded, expect, "k={k} m={m}");
        }
    }

    #[test]
    fn roundtrip_with_empty_quality() {
        let seq = b"ACGGTTACGGATCCGATTACAGG";
        let (k, m) = (9usize, 5usize);
        let mut blob = Vec::new();
        for sm in SupermerIter::new(seq, k, m) {
            encode_supermer(&mut blob, seq, &[], 20, &sm);
        }
        let mut decoded = Vec::new();
        for rec in SupermerBlobIter::new(&blob) {
            expand_supermer(&rec, k, |obs| decoded.push(obs));
        }
        assert_eq!(decoded, kmers_with_exts(seq, &[], k, 20));
    }

    #[test]
    fn wire_bytes_match_encoding() {
        let seq = b"ACGGTTACGGATCCGATTACAGG";
        let (k, m) = (11usize, 7usize);
        let mut blob = Vec::new();
        for sm in SupermerIter::new(seq, k, m) {
            let wrote = encode_supermer(&mut blob, seq, &[], 20, &sm);
            assert_eq!(wrote, supermer_wire_bytes(sm.len));
        }
        assert_eq!(
            SupermerBlobIter::new(&blob).count(),
            supermers(seq, k, m).len()
        );
    }

    #[test]
    fn supermers_compress_long_reads() {
        // On a homopolymer-free pseudo-random read the average supermer covers
        // several k-mers, so the wire bytes undercut 32 bytes/k-mer by a lot.
        let seq: Vec<u8> = (0..600)
            .map(|i| [b'A', b'C', b'G', b'T'][((i * 2654435761usize) >> 7) % 4])
            .collect();
        let (k, m) = (21usize, 15usize);
        let sms = supermers(&seq, k, m);
        let kmer_count: usize = sms.iter().map(|s| s.kmers).sum();
        assert_eq!(kmer_count, seq.len() - k + 1);
        let wire: usize = sms.iter().map(|s| supermer_wire_bytes(s.len)).sum();
        assert!(
            wire * 4 < kmer_count * 32,
            "supermer encoding should be at least 4x smaller: {wire} bytes for {kmer_count} kmers"
        );
    }

    #[test]
    fn oversize_same_minimizer_runs_split_and_still_roundtrip() {
        // A >u16::MAX homopolymer: every window shares the poly-A minimizer,
        // so without splitting the single run would overflow the wire
        // header's u16 length.
        let seq = vec![b'A'; MAX_SUPERMER_BASES + 5_000];
        let (k, m) = (21usize, 15usize);
        let sms = supermers(&seq, k, m);
        assert!(sms.len() >= 2, "oversize run must be split");
        assert!(sms.iter().all(|s| s.len <= MAX_SUPERMER_BASES));
        assert_eq!(
            sms.iter().map(|s| s.kmers).sum::<usize>(),
            seq.len() - k + 1
        );
        // Consecutive pieces tile the read without gaps.
        for pair in sms.windows(2) {
            assert_eq!(pair[0].start + pair[0].kmers, pair[1].start);
        }
        // And the codec roundtrip still reproduces the per-k-mer stream.
        let mut blob = Vec::new();
        for sm in &sms {
            encode_supermer(&mut blob, &seq, &[], 20, sm);
        }
        let mut decoded = 0usize;
        for rec in SupermerBlobIter::new(&blob) {
            expand_supermer(&rec, k, |obs| {
                assert_eq!(obs.kmer.to_string(), "A".repeat(k));
                decoded += 1;
            });
        }
        assert_eq!(decoded, seq.len() - k + 1);
    }

    #[test]
    fn shard_assignment_is_stable_and_spread() {
        let values: Vec<u64> = (0..1000).map(|i| i * 7919).collect();
        let ranks = 5;
        let mut counts = vec![0usize; ranks];
        for &v in &values {
            let s = minimizer_shard(v, ranks);
            assert_eq!(s, minimizer_shard(v, ranks));
            counts[s] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "skewed shards: {counts:?}");
    }

    #[test]
    #[should_panic]
    fn m_larger_than_k_rejected() {
        let _ = supermers(b"ACGTACGT", 5, 6);
    }
}
