//! Packed k-mer types and extraction for the MetaHipMer reproduction.
//!
//! A *k-mer* is a length-`k` substring of a read or contig. The de Bruijn
//! graph used throughout the pipeline has k-mers as vertices, so this crate is
//! the innermost data-structure layer of the whole assembler:
//!
//! * [`kmer::Kmer`] — a 2-bit-packed k-mer supporting k up to
//!   [`kmer::MAX_K`] (127), with reverse complement, canonicalisation and O(1)
//!   amortised rolling extension;
//! * [`ext`] — extension codes and counters. Each k-mer observed in the reads
//!   keeps counts of which base precedes and follows it; the counts are later
//!   turned into the `[ACGT]`, `F`ork or e`X`tensionless codes that drive the
//!   graph traversal (§II-C of the paper);
//! * [`extract`] — iterators that slide a window over reads/contigs and emit
//!   canonical k-mers together with their observed extensions and quality
//!   categories.

pub mod ext;
pub mod extract;
pub mod kmer;

pub use ext::{Ext, ExtCounts, ExtPair, KmerCounts};
pub use extract::{canonical_kmers, kmer_positions, kmers_with_exts, CanonicalKmerExt};
pub use kmer::{Kmer, MAX_K};
