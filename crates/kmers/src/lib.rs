//! Packed k-mer types and extraction for the MetaHipMer reproduction.
//!
//! A *k-mer* is a length-`k` substring of a read or contig. The de Bruijn
//! graph used throughout the pipeline has k-mers as vertices, so this crate is
//! the innermost data-structure layer of the whole assembler:
//!
//! * [`kmer::Kmer`] — a 2-bit-packed k-mer supporting k up to
//!   [`kmer::MAX_K`] (127), with reverse complement, canonicalisation and O(1)
//!   amortised rolling extension;
//! * [`ext`] — extension codes and counters. Each k-mer observed in the reads
//!   keeps counts of which base precedes and follows it; the counts are later
//!   turned into the `[ACGT]`, `F`ork or e`X`tensionless codes that drive the
//!   graph traversal (§II-C of the paper);
//! * [`extract`] — iterators that slide a window over reads/contigs and emit
//!   canonical k-mers together with their observed extensions and quality
//!   categories;
//! * [`minimizer`] — canonical m-mer minimizers, the streaming supermer
//!   iterator and the packed supermer wire codec that k-mer analysis uses to
//!   ship whole runs of overlapping k-mers in ~(s+k−1)/4 bytes instead of
//!   ~32 bytes per k-mer;
//! * [`kernels`] — the word-parallel/SIMD compute kernels behind the hot
//!   loops of all of the above (reverse complement, canonical comparison and
//!   the bulk ASCII↔2-bit codecs), runtime-dispatched via [`mhm_simd`] with
//!   per-base scalar twins as property-test oracles.

pub mod ext;
pub mod extract;
pub mod kernels;
pub mod kmer;
pub mod minimizer;
pub mod packed_seq;

pub use ext::{Ext, ExtCounts, ExtPair, KmerCounts};
pub use extract::{
    canonical_kmers, kmer_positions, kmers_with_exts, kmers_with_exts_iter, CanonicalKmerExt,
    KmersWithExtsIter,
};
pub use kmer::{Kmer, MAX_K};
pub use minimizer::{
    encode_supermer, expand_supermer, kmer_minimizer, minimizer_shard, supermer_wire_bytes,
    supermers, Supermer, SupermerBlobIter, SupermerIter, SupermerRecord, MAX_MINIMIZER_LEN,
};
pub use packed_seq::PackedSeq;
