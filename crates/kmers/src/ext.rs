//! K-mer extensions and extension counters.
//!
//! K-mer analysis (§II-B of the paper) keeps, for every k-mer, a count of how
//! often each base is observed immediately before (left) and after (right) the
//! k-mer in the reads, split by whether the observing base call had high
//! quality. The de Bruijn graph traversal then reduces these counts to an
//! *extension code*: a concrete base when there is a single confident
//! extension, `F`ork when multiple extensions are supported, or e`X`tensionless
//! when none is.

use seqio::alphabet::decode_base;

/// The reduced extension of a k-mer on one side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ext {
    /// A single confident extension with the given 2-bit base code.
    Base(u8),
    /// Multiple contradictory extensions (a fork vertex in the graph).
    Fork,
    /// No observed extension (a dead end).
    None,
}

impl Ext {
    /// The single-letter code used by HipMer/MetaHipMer logs: `ACGT`, `F`, `X`.
    pub fn to_char(self) -> char {
        match self {
            Ext::Base(c) => decode_base(c) as char,
            Ext::Fork => 'F',
            Ext::None => 'X',
        }
    }

    /// True if this extension lets the traversal continue.
    pub fn is_extendable(self) -> bool {
        matches!(self, Ext::Base(_))
    }
}

/// Raw observation of one k-mer instance in a read: the bases before/after it
/// (if any) and whether each had high base-call quality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtPair {
    /// 2-bit code of the base preceding the k-mer, if the k-mer is not at the
    /// start of the read; the bool is the high-quality flag.
    pub left: Option<(u8, bool)>,
    /// Same for the base following the k-mer.
    pub right: Option<(u8, bool)>,
}

impl ExtPair {
    /// Swaps sides and complements bases: the extension pair seen from the
    /// reverse-complement orientation of the k-mer.
    pub fn revcomp(self) -> ExtPair {
        let flip = |o: Option<(u8, bool)>| o.map(|(c, hq)| (3 - c, hq));
        ExtPair {
            left: flip(self.right),
            right: flip(self.left),
        }
    }
}

/// Per-side extension counters (high-quality observations only are counted in
/// `hq`; every observation is counted in `all`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtCounts {
    pub hq: [u32; 4],
    pub all: [u32; 4],
}

impl ExtCounts {
    /// Records one observation.
    pub fn add(&mut self, code: u8, high_quality: bool) {
        self.all[code as usize] = self.all[code as usize].saturating_add(1);
        if high_quality {
            self.hq[code as usize] = self.hq[code as usize].saturating_add(1);
        }
    }

    /// Merges another counter into this one (commutative, used by the
    /// update-only distributed hash-table phase).
    pub fn merge(&mut self, other: &ExtCounts) {
        for i in 0..4 {
            self.hq[i] = self.hq[i].saturating_add(other.hq[i]);
            self.all[i] = self.all[i].saturating_add(other.all[i]);
        }
    }

    /// Total high-quality observations.
    pub fn total_hq(&self) -> u32 {
        self.hq.iter().sum()
    }

    /// Total observations.
    pub fn total(&self) -> u32 {
        self.all.iter().sum()
    }

    /// Reduces the counts to an extension code.
    ///
    /// The most common high-quality extension is chosen; it is reported as a
    /// concrete base only if the number of *contradicting* high-quality
    /// observations is at most `max_contradictions` (the `thq` threshold of
    /// §II-C — global in HipMer, depth-dependent in MetaHipMer). If there are
    /// no high-quality observations at all the extension is `None`.
    pub fn reduce(&self, max_contradictions: u32) -> Ext {
        let total = self.total_hq();
        if total == 0 {
            return Ext::None;
        }
        let (best, best_count) = self
            .hq
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, &c)| (i as u8, c))
            .expect("four elements");
        let contradicting = total - best_count;
        if best_count == 0 {
            Ext::None
        } else if contradicting <= max_contradictions {
            Ext::Base(best)
        } else {
            Ext::Fork
        }
    }
}

/// The full per-k-mer record accumulated by k-mer analysis: an occurrence
/// count plus left and right extension counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KmerCounts {
    /// Number of (canonical) occurrences of the k-mer across the reads.
    pub count: u32,
    pub left: ExtCounts,
    pub right: ExtCounts,
}

impl KmerCounts {
    /// Records one canonical-orientation observation with its extensions.
    pub fn observe(&mut self, exts: ExtPair) {
        self.count = self.count.saturating_add(1);
        if let Some((c, hq)) = exts.left {
            self.left.add(c, hq);
        }
        if let Some((c, hq)) = exts.right {
            self.right.add(c, hq);
        }
    }

    /// Merges another record (commutative).
    pub fn merge(&mut self, other: &KmerCounts) {
        self.count = self.count.saturating_add(other.count);
        self.left.merge(&other.left);
        self.right.merge(&other.right);
    }

    /// The depth (occurrence count) of the k-mer.
    pub fn depth(&self) -> u32 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_chars() {
        assert_eq!(Ext::Base(0).to_char(), 'A');
        assert_eq!(Ext::Base(3).to_char(), 'T');
        assert_eq!(Ext::Fork.to_char(), 'F');
        assert_eq!(Ext::None.to_char(), 'X');
        assert!(Ext::Base(2).is_extendable());
        assert!(!Ext::Fork.is_extendable());
        assert!(!Ext::None.is_extendable());
    }

    #[test]
    fn counts_reduce_unique_extension() {
        let mut c = ExtCounts::default();
        for _ in 0..10 {
            c.add(2, true);
        }
        assert_eq!(c.reduce(0), Ext::Base(2));
        assert_eq!(c.total_hq(), 10);
    }

    #[test]
    fn counts_reduce_fork_when_contradictions_exceed_threshold() {
        let mut c = ExtCounts::default();
        for _ in 0..10 {
            c.add(2, true);
        }
        for _ in 0..3 {
            c.add(1, true);
        }
        assert_eq!(c.reduce(2), Ext::Fork);
        assert_eq!(c.reduce(3), Ext::Base(2));
        assert_eq!(c.reduce(100), Ext::Base(2));
    }

    #[test]
    fn counts_reduce_none_without_hq_observations() {
        let mut c = ExtCounts::default();
        c.add(0, false);
        c.add(1, false);
        assert_eq!(c.reduce(10), Ext::None);
        assert_eq!(c.total(), 2);
        assert_eq!(c.total_hq(), 0);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = ExtCounts::default();
        a.add(0, true);
        a.add(1, false);
        let mut b = ExtCounts::default();
        b.add(0, true);
        b.add(3, true);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.hq[0], 2);
        assert_eq!(ab.all[1], 1);
    }

    #[test]
    fn extpair_revcomp_swaps_and_complements() {
        let p = ExtPair {
            left: Some((0, true)),   // A on the left
            right: Some((1, false)), // C on the right
        };
        let r = p.revcomp();
        assert_eq!(r.left, Some((2, false))); // complement of C = G, moved to left
        assert_eq!(r.right, Some((3, true))); // complement of A = T, moved to right
        assert_eq!(r.revcomp(), p);
    }

    #[test]
    fn kmer_counts_observe_and_merge() {
        let mut k1 = KmerCounts::default();
        k1.observe(ExtPair {
            left: Some((0, true)),
            right: None,
        });
        let mut k2 = KmerCounts::default();
        k2.observe(ExtPair {
            left: Some((0, true)),
            right: Some((2, true)),
        });
        k1.merge(&k2);
        assert_eq!(k1.count, 2);
        assert_eq!(k1.left.hq[0], 2);
        assert_eq!(k1.right.hq[2], 1);
        assert_eq!(k1.depth(), 2);
    }
}
