//! 2-bit packed k-mers with runtime-chosen k (k ≤ 127).
//!
//! Bases are packed little-endian: base `i` of the k-mer occupies bits
//! `2*i .. 2*i+2` of the 256-bit integer formed by `words[0]` (least
//! significant) through `words[3]`. All bits beyond `2*k` are kept at zero so
//! that equality and hashing can operate directly on the words.

use crate::kernels;
use seqio::alphabet::decode_base;
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// Maximum supported k. Four 64-bit words hold 128 two-bit codes; we cap at
/// 127 so that iterative assembly k-ranges such as 21..=99 always fit with
/// headroom for the (k+s)-mer extraction step.
pub const MAX_K: usize = 127;

/// A DNA k-mer packed two bits per base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Kmer {
    words: [u64; 4],
    k: u16,
}

impl Kmer {
    /// Creates the all-`A` k-mer of length `k`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > MAX_K`.
    pub fn zero(k: usize) -> Self {
        assert!(k > 0 && k <= MAX_K, "k must be in 1..={MAX_K}, got {k}");
        Kmer {
            words: [0; 4],
            k: k as u16,
        }
    }

    /// Builds a k-mer from ASCII bases. Returns `None` if the slice is empty,
    /// longer than [`MAX_K`], or contains a non-ACGT base.
    pub fn from_bytes(seq: &[u8]) -> Option<Self> {
        if seq.is_empty() || seq.len() > MAX_K {
            return None;
        }
        let words = kernels::encode_words(seq)?;
        Some(Kmer {
            words,
            k: seq.len() as u16,
        })
    }

    /// Builds a k-mer from the first `k` bases of a little-endian 2-bit
    /// packed stream (base `i` in bits `2*(i%4)` of byte `i/4`). This is the
    /// exact in-memory layout of `words`, shared with `dbg::PackedSeq` data
    /// and the supermer wire records, so the conversion is a copy plus mask.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > MAX_K`, or `data` holds fewer than
    /// `k.div_ceil(4)` bytes.
    pub fn from_packed(data: &[u8], k: usize) -> Self {
        assert!(k > 0 && k <= MAX_K, "k must be in 1..={MAX_K}, got {k}");
        let nbytes = k.div_ceil(4);
        assert!(
            data.len() >= nbytes,
            "packed stream holds {} bytes, k={k} needs {nbytes}",
            data.len()
        );
        let mut bytes = [0u8; 32];
        bytes[..nbytes].copy_from_slice(&data[..nbytes]);
        let mut words = [0u64; 4];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8-byte chunk"));
        }
        let mut km = Kmer { words, k: k as u16 };
        km.mask_to_k();
        km
    }

    /// The k of this k-mer.
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Returns the 2-bit code of base `i` (0-based from the left/5' end).
    #[inline]
    pub fn code_at(&self, i: usize) -> u8 {
        debug_assert!(i < self.k());
        let bit = 2 * i;
        ((self.words[bit / 64] >> (bit % 64)) & 0b11) as u8
    }

    /// Sets the 2-bit code of base `i`.
    #[inline]
    pub fn set_code(&mut self, i: usize, code: u8) {
        debug_assert!(i < self.k());
        debug_assert!(code < 4);
        let bit = 2 * i;
        let w = bit / 64;
        let off = bit % 64;
        self.words[w] = (self.words[w] & !(0b11 << off)) | ((code as u64) << off);
    }

    /// ASCII base at position `i`.
    #[inline]
    pub fn base_at(&self, i: usize) -> u8 {
        decode_base(self.code_at(i))
    }

    /// First (leftmost / 5') base code.
    #[inline]
    pub fn first_code(&self) -> u8 {
        self.code_at(0)
    }

    /// Last (rightmost / 3') base code.
    #[inline]
    pub fn last_code(&self) -> u8 {
        self.code_at(self.k() - 1)
    }

    /// Shifts the whole 256-bit value right by two bits (dropping base 0).
    fn shr2(&mut self) {
        for i in 0..4 {
            let carry = if i + 1 < 4 {
                self.words[i + 1] & 0b11
            } else {
                0
            };
            self.words[i] = (self.words[i] >> 2) | (carry << 62);
        }
    }

    /// Shifts the whole 256-bit value left by two bits (making room at base 0).
    fn shl2(&mut self) {
        for i in (0..4).rev() {
            let carry = if i > 0 { self.words[i - 1] >> 62 } else { 0 };
            self.words[i] = (self.words[i] << 2) | carry;
        }
    }

    /// Clears any bits at positions ≥ 2k, restoring the packing invariant.
    fn mask_to_k(&mut self) {
        let bits = 2 * self.k();
        for w in 0..4 {
            let lo = w * 64;
            if bits <= lo {
                self.words[w] = 0;
            } else if bits < lo + 64 {
                let keep = bits - lo;
                self.words[w] &= (1u64 << keep) - 1;
            }
        }
    }

    /// Returns the k-mer obtained by dropping the first base and appending
    /// `code` at the right — the "move one base along the read" operation used
    /// by rolling extraction and graph walks.
    #[inline]
    pub fn extended_right(&self, code: u8) -> Kmer {
        let mut out = *self;
        out.shr2();
        out.set_code(self.k() - 1, code);
        out.mask_to_k();
        out
    }

    /// Returns the k-mer obtained by dropping the last base and prepending
    /// `code` at the left.
    #[inline]
    pub fn extended_left(&self, code: u8) -> Kmer {
        let mut out = *self;
        out.shl2();
        out.mask_to_k();
        out.set_code(0, code);
        out
    }

    /// Reverse complement of this k-mer.
    pub fn revcomp(&self) -> Kmer {
        Kmer {
            words: kernels::revcomp_words(&self.words, self.k()),
            k: self.k,
        }
    }

    /// Lexicographic comparison by base sequence (A < C < G < T).
    fn lex_cmp(&self, other: &Kmer) -> Ordering {
        debug_assert_eq!(self.k, other.k);
        kernels::lex_cmp_words(&self.words, &other.words, self.k())
    }

    /// Compares the first base against the first base of the (unbuilt)
    /// reverse complement, which is the complement of the last base. For
    /// random k-mers this single comparison decides canonicity ~75% of the
    /// time, skipping the reverse-complement construction entirely.
    #[inline]
    fn first_base_vs_rc(&self) -> Ordering {
        self.first_code().cmp(&(3 - self.last_code()))
    }

    /// Returns the canonical form (the lexicographically smaller of the k-mer
    /// and its reverse complement) and whether the reverse complement was
    /// chosen.
    pub fn canonical(&self) -> (Kmer, bool) {
        match self.first_base_vs_rc() {
            Ordering::Less => (*self, false),
            Ordering::Greater => (self.revcomp(), true),
            Ordering::Equal => {
                let rc = self.revcomp();
                if rc.lex_cmp(self) == Ordering::Less {
                    (rc, true)
                } else {
                    (*self, false)
                }
            }
        }
    }

    /// True if this k-mer is its own canonical representative. Uses the same
    /// first-base early exit as [`Kmer::canonical`] without materialising the
    /// winner.
    pub fn is_canonical(&self) -> bool {
        match self.first_base_vs_rc() {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => self.revcomp().lex_cmp(self) != Ordering::Less,
        }
    }

    /// True if the k-mer is a palindrome (equal to its reverse complement);
    /// only possible for even k.
    pub fn is_palindrome(&self) -> bool {
        *self == self.revcomp()
    }

    /// Writes the ASCII representation into a new vector via the bulk decode
    /// kernel (the words' little-endian bytes *are* the packed stream).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.k());
        kernels::unpack_ascii(&self.packed_le_bytes(), 0, self.k(), &mut out);
        out
    }

    /// The words as a little-endian packed 2-bit stream (base `i` in bits
    /// `2*(i%4)` of byte `i/4`) — the same layout `from_packed` consumes.
    #[inline]
    pub(crate) fn packed_le_bytes(&self) -> [u8; 32] {
        let mut bytes = [0u8; 32];
        for (i, w) in self.words.iter().enumerate() {
            bytes[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        bytes
    }

    /// The packed words (bits beyond `2k` zero), for kernel-level callers.
    #[inline]
    pub(crate) fn words(&self) -> &[u64; 4] {
        &self.words
    }

    /// The (k-1)-base suffix as a new (k-1)-mer; used to key contig-end
    /// joins. A whole-value base shift — no per-base loop.
    pub fn suffix(&self) -> Kmer {
        assert!(self.k() > 1);
        Kmer {
            words: kernels::shift_right_bases(&self.words, 1),
            k: self.k - 1,
        }
    }

    /// The (k-1)-base prefix as a new (k-1)-mer: same words, one base fewer,
    /// re-masked — O(1) in the base count.
    pub fn prefix(&self) -> Kmer {
        assert!(self.k() > 1);
        let mut out = Kmer {
            words: self.words,
            k: self.k - 1,
        };
        out.mask_to_k();
        out
    }

    /// A stable 64-bit mixing hash of the packed representation, used by the
    /// distributed hash tables to choose an owner rank independently of the
    /// `std` hasher.
    pub fn owner_hash(&self) -> u64 {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ (self.k as u64);
        for &w in &self.words {
            h ^= w;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
            h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
            h ^= h >> 29;
        }
        h
    }
}

impl PartialOrd for Kmer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Kmer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.k.cmp(&other.k).then_with(|| self.lex_cmp(other))
    }
}

impl fmt::Display for Kmer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.k() {
            write!(f, "{}", self.base_at(i) as char)?;
        }
        Ok(())
    }
}

impl FromStr for Kmer {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Kmer::from_bytes(s.as_bytes()).ok_or_else(|| format!("invalid k-mer string: {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio::alphabet::encode_base;

    #[test]
    fn from_bytes_and_display_roundtrip() {
        for s in [
            "A",
            "ACGT",
            "GATTACA",
            "TTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTT",
        ] {
            let km: Kmer = s.parse().unwrap();
            assert_eq!(km.to_string(), s);
            assert_eq!(km.k(), s.len());
        }
    }

    #[test]
    fn from_bytes_rejects_invalid() {
        assert!(Kmer::from_bytes(b"").is_none());
        assert!(Kmer::from_bytes(b"ACGN").is_none());
        assert!(Kmer::from_bytes(&[b'A'; MAX_K + 1]).is_none());
        assert!(Kmer::from_bytes(&[b'A'; MAX_K]).is_some());
    }

    #[test]
    fn extended_right_slides_window() {
        let km: Kmer = "ACGTA".parse().unwrap();
        let next = km.extended_right(encode_base(b'G').unwrap());
        assert_eq!(next.to_string(), "CGTAG");
    }

    #[test]
    fn extended_left_slides_window() {
        let km: Kmer = "ACGTA".parse().unwrap();
        let prev = km.extended_left(encode_base(b'T').unwrap());
        assert_eq!(prev.to_string(), "TACGT");
    }

    #[test]
    fn extension_works_across_word_boundaries() {
        // 80 bases spans words 0..2 (boundary at base 32 and 64).
        let s: String = std::iter::repeat_n("ACGT", 20).collect();
        let km: Kmer = s.parse().unwrap();
        let next = km.extended_right(encode_base(b'T').unwrap());
        let expect: String = s[1..].to_string() + "T";
        assert_eq!(next.to_string(), expect);
        let prev = km.extended_left(encode_base(b'G').unwrap());
        let expect_l: String = "G".to_string() + &s[..s.len() - 1];
        assert_eq!(prev.to_string(), expect_l);
    }

    #[test]
    fn revcomp_matches_string_revcomp() {
        let s = "ACGTTGCAACGGTACCGGTTAACC";
        let km: Kmer = s.parse().unwrap();
        let rc = km.revcomp();
        let expect = String::from_utf8(seqio::alphabet::revcomp(s.as_bytes())).unwrap();
        assert_eq!(rc.to_string(), expect);
        assert_eq!(rc.revcomp(), km);
    }

    #[test]
    fn canonical_is_min_of_pair() {
        let km: Kmer = "TTTT".parse().unwrap();
        let (canon, was_rc) = km.canonical();
        assert_eq!(canon.to_string(), "AAAA");
        assert!(was_rc);
        let km2: Kmer = "AAAA".parse().unwrap();
        let (canon2, was_rc2) = km2.canonical();
        assert_eq!(canon2, canon);
        assert!(!was_rc2);
        assert!(km2.is_canonical());
        assert!(!km.is_canonical());
    }

    #[test]
    fn palindromes_detected() {
        let km: Kmer = "ACGT".parse().unwrap();
        assert!(km.is_palindrome());
        let km2: Kmer = "AAGT".parse().unwrap();
        assert!(!km2.is_palindrome());
    }

    #[test]
    fn prefix_suffix() {
        let km: Kmer = "ACGTT".parse().unwrap();
        assert_eq!(km.prefix().to_string(), "ACGT");
        assert_eq!(km.suffix().to_string(), "CGTT");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a: Kmer = "AACT".parse().unwrap();
        let b: Kmer = "AAGA".parse().unwrap();
        assert!(a < b);
        let c: Kmer = "AACT".parse().unwrap();
        assert_eq!(a.cmp(&c), std::cmp::Ordering::Equal);
    }

    #[test]
    fn owner_hash_differs_for_different_kmers() {
        let a: Kmer = "ACGTACGTACGTACGTACGTA".parse().unwrap();
        let b: Kmer = "ACGTACGTACGTACGTACGTC".parse().unwrap();
        assert_ne!(a.owner_hash(), b.owner_hash());
        assert_eq!(a.owner_hash(), a.owner_hash());
    }

    #[test]
    fn from_packed_matches_from_bytes() {
        let s: Vec<u8> = (0..100).map(|i| b"ACGT"[(i * 5 + 2) % 4]).collect();
        for k in [1usize, 3, 4, 31, 32, 33, 64, 65, 96, 100] {
            let km = Kmer::from_bytes(&s[..k]).unwrap();
            let packed = km.packed_le_bytes();
            assert_eq!(Kmer::from_packed(&packed, k), km, "k={k}");
            // Garbage beyond the k-th base must be masked away.
            let mut noisy = packed;
            for b in noisy.iter_mut().skip(k.div_ceil(4)) {
                *b = 0xFF;
            }
            if k % 4 != 0 {
                noisy[k / 4] |= 0xFF << (2 * (k % 4));
            }
            assert_eq!(Kmer::from_packed(&noisy, k), km, "masked k={k}");
        }
    }

    #[test]
    fn long_kmer_roundtrip_at_max_k() {
        let s: String = (0..MAX_K)
            .map(|i| ['A', 'C', 'G', 'T'][(i * 7 + 3) % 4])
            .collect();
        let km: Kmer = s.parse().unwrap();
        assert_eq!(km.to_string(), s);
        assert_eq!(km.revcomp().revcomp(), km);
    }
}
