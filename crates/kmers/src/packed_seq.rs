//! A 2-bit-packed DNA sequence with an exception list for rare non-ACGT
//! bytes, built on the bulk [`crate::kernels`] codecs.
//!
//! This is the shared packed representation of both distributed sequence
//! stores: the contig store (`dbg::ContigStore`) packs assembled contigs with
//! it, and the read store (`readstore::ReadStore`) packs read sequences. It
//! lives here — below both — because packing and unpacking go through the
//! word-parallel/SIMD-dispatch kernels of this crate.

/// A 2-bit-packed DNA sequence with an exception list for rare non-ACGT
/// bytes, so packing is lossless for any input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSeq {
    /// 2-bit codes, four bases per byte, least-significant pair first.
    data: Vec<u8>,
    len: u32,
    /// `(position, raw byte)` of bases that are not A/C/G/T (sorted).
    exceptions: Vec<(u32, u8)>,
}

impl PackedSeq {
    /// Packs a raw sequence via the bulk 2-bit encode kernel; the exception
    /// callback keeps the list sorted because invalid bytes are reported in
    /// position order.
    pub fn from_bytes(seq: &[u8]) -> Self {
        assert!(seq.len() <= u32::MAX as usize, "sequence too long to pack");
        let mut data = vec![0u8; seq.len().div_ceil(4)];
        let mut exceptions = Vec::new();
        crate::kernels::pack_ascii(seq, &mut data, |i, b| exceptions.push((i as u32, b)));
        PackedSeq {
            data,
            len: seq.len() as u32,
            exceptions,
        }
    }

    /// Unpacked length in bases.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the sequence holds no bases.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resident size of the packed representation in bytes (the unit of the
    /// stores' memory accounting and of the reader cache bounds).
    pub fn packed_bytes(&self) -> usize {
        self.data.len() + self.exceptions.len() * std::mem::size_of::<(u32, u8)>() + 4
    }

    /// Unpacks the window `[start, start + len)`, clamped to the sequence
    /// bounds: a start at or past the end yields an empty vector, and a
    /// window reaching past the end is truncated. Equals
    /// `&seq[start.min(n)..(start + len).min(n)]` on the raw sequence.
    pub fn window(&self, start: usize, len: usize) -> Vec<u8> {
        let n = self.len();
        let start = start.min(n);
        let end = start.saturating_add(len).min(n);
        let mut out = Vec::with_capacity(end - start);
        crate::kernels::unpack_ascii(&self.data, start, end, &mut out);
        for &(pos, b) in &self.exceptions {
            let pos = pos as usize;
            if pos >= start && pos < end {
                out[pos - start] = b;
            }
        }
        out
    }

    /// Unpacks the whole sequence.
    pub fn unpack(&self) -> Vec<u8> {
        self.window(0, self.len())
    }

    /// The raw representation — `(length in bases, 2-bit code bytes,
    /// sorted exception list)` — for serializers (e.g. checkpoint shard
    /// files). Round-trips through [`PackedSeq::from_parts`].
    pub fn to_parts(&self) -> (usize, &[u8], &[(u32, u8)]) {
        (self.len as usize, &self.data, &self.exceptions)
    }

    /// Rebuilds a sequence from the raw representation produced by
    /// [`PackedSeq::to_parts`]. Validates the invariants a deserializer
    /// could violate (code-byte count, exception positions in bounds and
    /// sorted) so a corrupt input fails loudly here rather than as garbage
    /// bases downstream.
    pub fn from_parts(len: usize, data: Vec<u8>, exceptions: Vec<(u32, u8)>) -> Self {
        assert!(len <= u32::MAX as usize, "sequence too long to pack");
        assert_eq!(data.len(), len.div_ceil(4), "packed byte count mismatch");
        assert!(
            exceptions.windows(2).all(|w| w[0].0 < w[1].0)
                && exceptions.last().is_none_or(|&(p, _)| (p as usize) < len),
            "exception list must be sorted and in bounds"
        );
        PackedSeq {
            data,
            len: len as u32,
            exceptions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random sequence with occasional N bytes.
    fn seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(31) {
                    b'N'
                } else {
                    b"ACGT"[(state % 4) as usize]
                }
            })
            .collect()
    }

    #[test]
    fn packed_seq_roundtrips_and_windows_clamp() {
        for len in [0usize, 1, 3, 4, 5, 63, 64, 257] {
            let s = seq(len, len as u64 + 1);
            let p = PackedSeq::from_bytes(&s);
            assert_eq!(p.len(), len);
            assert_eq!(p.unpack(), s);
            assert!(p.packed_bytes() <= len / 4 + 1 + 16 + 8 * len / 16);
            // Random windows, including out-of-range starts and lengths.
            let mut state = 7u64 + len as u64;
            for _ in 0..50 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let start = (state >> 33) as usize % (len + 10);
                let wlen = (state >> 13) as usize % (len + 10);
                let expect = &s[start.min(len)..(start + wlen).min(len).max(start.min(len))];
                assert_eq!(p.window(start, wlen), expect, "len={len} {start}+{wlen}");
            }
        }
    }

    #[test]
    fn parts_round_trip_is_lossless() {
        for len in [0usize, 1, 4, 63, 257] {
            let s = seq(len, len as u64 + 11);
            let p = PackedSeq::from_bytes(&s);
            let (n, data, exceptions) = p.to_parts();
            let q = PackedSeq::from_parts(n, data.to_vec(), exceptions.to_vec());
            assert_eq!(q, p);
            assert_eq!(q.unpack(), s);
        }
    }

    #[test]
    #[should_panic(expected = "packed byte count mismatch")]
    fn from_parts_rejects_wrong_byte_count() {
        PackedSeq::from_parts(10, vec![0u8; 2], Vec::new());
    }

    #[test]
    #[should_panic(expected = "sorted and in bounds")]
    fn from_parts_rejects_out_of_bounds_exception() {
        PackedSeq::from_parts(4, vec![0u8; 1], vec![(9, b'N')]);
    }
}
