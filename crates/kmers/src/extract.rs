//! Sliding-window k-mer extraction from reads and contigs.
//!
//! Extraction skips any window containing an ambiguous base and emits
//! *canonical* k-mers (the lexicographic minimum of the k-mer and its reverse
//! complement) so that both strands of the template map to the same hash-table
//! key, exactly as the UPC implementation does.

use crate::ext::ExtPair;
use crate::kmer::Kmer;
use seqio::alphabet::encode_base;

/// Yields `(position, k-mer)` for every valid window of `seq`, in read
/// orientation (not canonicalised). Windows containing non-ACGT bases are
/// skipped.
pub fn kmer_positions(seq: &[u8], k: usize) -> Vec<(usize, Kmer)> {
    let mut out = Vec::new();
    if seq.len() < k || k == 0 {
        return out;
    }
    let mut i = 0usize;
    while i + k <= seq.len() {
        // Find the next window free of ambiguous bases.
        if let Some(bad) = first_invalid(&seq[i..i + k]) {
            i += bad + 1;
            continue;
        }
        let mut km = Kmer::from_bytes(&seq[i..i + k]).expect("validated window");
        out.push((i, km));
        // Roll forward while the incoming base stays valid.
        let mut j = i + k;
        while j < seq.len() {
            match encode_base(seq[j]) {
                Some(code) => {
                    km = km.extended_right(code);
                    out.push((j + 1 - k, km));
                    j += 1;
                }
                None => break,
            }
        }
        i = j + 1;
    }
    out
}

fn first_invalid(window: &[u8]) -> Option<usize> {
    window.iter().position(|&b| encode_base(b).is_none())
}

/// Yields the canonical k-mers of a sequence (positions dropped, duplicates
/// kept). Convenience for graph construction from contigs.
pub fn canonical_kmers(seq: &[u8], k: usize) -> Vec<Kmer> {
    kmer_positions(seq, k)
        .into_iter()
        .map(|(_, km)| km.canonical().0)
        .collect()
}

/// A canonical k-mer observation together with its (canonicalised) extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanonicalKmerExt {
    pub kmer: Kmer,
    pub exts: ExtPair,
}

/// Extracts canonical k-mers with left/right extension observations from a
/// read. Thin collecting wrapper over [`kmers_with_exts_iter`], kept for
/// call sites (mostly tests) that want a `Vec`.
///
/// `qual` may be empty (all bases are then treated as high quality); otherwise
/// it must be as long as `seq`, and an extension base is flagged high quality
/// when its Phred score is at least `hq_threshold`.
pub fn kmers_with_exts(
    seq: &[u8],
    qual: &[u8],
    k: usize,
    hq_threshold: u8,
) -> Vec<CanonicalKmerExt> {
    kmers_with_exts_iter(seq, qual, k, hq_threshold).collect()
}

/// Allocation-free streaming form of [`kmers_with_exts`]: yields the same
/// observations in the same order, rolling the window forward base by base
/// without materialising a per-read `Vec`. This is the extraction hot path
/// used by k-mer analysis and contig k-mer injection.
pub fn kmers_with_exts_iter<'a>(
    seq: &'a [u8],
    qual: &'a [u8],
    k: usize,
    hq_threshold: u8,
) -> KmersWithExtsIter<'a> {
    assert!(
        qual.is_empty() || qual.len() == seq.len(),
        "quality must be empty or match sequence length"
    );
    KmersWithExtsIter {
        seq,
        qual,
        k,
        hq_threshold,
        pos: 0,
        km: None,
    }
}

/// Iterator behind [`kmers_with_exts_iter`].
pub struct KmersWithExtsIter<'a> {
    seq: &'a [u8],
    qual: &'a [u8],
    k: usize,
    hq_threshold: u8,
    /// Start of the next window to emit.
    pos: usize,
    /// The rolling k-mer for the window at `pos` (`None` when the iterator
    /// must first locate the next ambiguity-free window).
    km: Option<Kmer>,
}

impl KmersWithExtsIter<'_> {
    #[inline]
    fn hq_at(&self, i: usize) -> bool {
        self.qual.is_empty() || self.qual[i] >= self.hq_threshold
    }
}

impl Iterator for KmersWithExtsIter<'_> {
    type Item = CanonicalKmerExt;

    fn next(&mut self) -> Option<CanonicalKmerExt> {
        let (k, n) = (self.k, self.seq.len());
        if k == 0 || n < k {
            return None;
        }
        // Locate the next valid window if the previous one ended a run.
        if self.km.is_none() {
            loop {
                if self.pos + k > n {
                    return None;
                }
                match first_invalid(&self.seq[self.pos..self.pos + k]) {
                    Some(bad) => self.pos += bad + 1,
                    None => {
                        self.km = Some(
                            Kmer::from_bytes(&self.seq[self.pos..self.pos + k])
                                .expect("validated window"),
                        );
                        break;
                    }
                }
            }
        }
        let pos = self.pos;
        let km = self.km.expect("window primed above");
        // Advance the rolling state for the following call.
        let j = pos + k;
        match self.seq.get(j).copied().and_then(encode_base) {
            Some(code) => {
                self.km = Some(km.extended_right(code));
                self.pos = pos + 1;
            }
            None => {
                // Either the read ended or base `j` is ambiguous; the next
                // candidate window starts beyond it.
                self.km = None;
                self.pos = j + 1;
            }
        }
        // Emit the observation for (pos, km).
        let left = if pos > 0 {
            encode_base(self.seq[pos - 1]).map(|c| (c, self.hq_at(pos - 1)))
        } else {
            None
        };
        let right = if pos + k < n {
            encode_base(self.seq[pos + k]).map(|c| (c, self.hq_at(pos + k)))
        } else {
            None
        };
        let exts = ExtPair { left, right };
        let (canon, was_rc) = km.canonical();
        let exts = if was_rc { exts.revcomp() } else { exts };
        Some(CanonicalKmerExt { kmer: canon, exts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_simple() {
        let kms = kmer_positions(b"ACGTAC", 4);
        let strings: Vec<String> = kms.iter().map(|(_, k)| k.to_string()).collect();
        assert_eq!(strings, vec!["ACGT", "CGTA", "GTAC"]);
        assert_eq!(kms[0].0, 0);
        assert_eq!(kms[2].0, 2);
    }

    #[test]
    fn positions_skip_ambiguous_windows() {
        let kms = kmer_positions(b"ACGTNACGTT", 4);
        let strings: Vec<String> = kms.iter().map(|(_, k)| k.to_string()).collect();
        assert_eq!(strings, vec!["ACGT", "ACGT", "CGTT"]);
        assert_eq!(kms[1].0, 5);
    }

    #[test]
    fn positions_short_sequence_empty() {
        assert!(kmer_positions(b"ACG", 4).is_empty());
        assert!(kmer_positions(b"", 4).is_empty());
    }

    #[test]
    fn rolling_matches_fresh_construction() {
        let seq = b"ACGGTTACGGATCCGATTACAGGCATTACA";
        for k in [3usize, 5, 11, 21] {
            let rolled = kmer_positions(seq, k);
            for (pos, km) in rolled {
                let fresh = Kmer::from_bytes(&seq[pos..pos + k]).unwrap();
                assert_eq!(km, fresh, "k={k} pos={pos}");
            }
        }
    }

    #[test]
    fn canonical_kmers_strand_invariant() {
        let seq = b"ACGGTTACGGATCCGATTACAGG";
        let rc = seqio::alphabet::revcomp(seq);
        for k in [5usize, 7, 11] {
            let mut fwd = canonical_kmers(seq, k);
            let mut rev = canonical_kmers(&rc, k);
            fwd.sort();
            rev.sort();
            assert_eq!(fwd, rev, "k={k}");
        }
    }

    #[test]
    fn exts_reflect_neighbouring_bases() {
        // Sequence: A [CGT] T  with k = 3.
        let obs = kmers_with_exts(b"ACGTT", &[], 3, 20);
        // First kmer ACG: canonical is ACG (rc = CGT, ACG < CGT), left none, right T.
        assert_eq!(obs[0].kmer.to_string(), "ACG");
        assert_eq!(obs[0].exts.left, None);
        assert_eq!(obs[0].exts.right, Some((3, true)));
        // Second kmer CGT: canonical is ACG (rc of CGT) -> exts swap/complement.
        assert_eq!(obs[1].kmer.to_string(), "ACG");
        // original: left = A(0), right = T(3); revcomp: left = comp(T)=A? no:
        // revcomp swaps: new left = comp(right)=A(0), new right = comp(left)=T(3).
        assert_eq!(obs[1].exts.left, Some((0, true)));
        assert_eq!(obs[1].exts.right, Some((3, true)));
    }

    #[test]
    fn exts_respect_quality_threshold() {
        let seq = b"ACGTT";
        let qual = [10u8, 30, 30, 30, 10];
        let obs = kmers_with_exts(seq, &qual, 3, 20);
        // first kmer ACG at pos 0: right ext is base T at pos 3 (q=30) -> hq
        assert_eq!(obs[0].exts.right, Some((3, true)));
        // kmer at pos 2 (GTT, canonical AAC): original left = C at pos1 (q=30 hq),
        // right = none (end); after rc: left = none... check at least quality flags propagate:
        let any_low = obs.iter().any(|o| {
            o.exts.left.map(|(_, hq)| !hq).unwrap_or(false)
                || o.exts.right.map(|(_, hq)| !hq).unwrap_or(false)
        });
        assert!(
            any_low,
            "position-0/4 bases have low quality and should appear"
        );
    }

    #[test]
    fn empty_quality_means_all_high_quality() {
        let obs = kmers_with_exts(b"ACGTACGT", &[], 4, 20);
        for o in obs {
            if let Some((_, hq)) = o.exts.left {
                assert!(hq);
            }
            if let Some((_, hq)) = o.exts.right {
                assert!(hq);
            }
        }
    }
}
