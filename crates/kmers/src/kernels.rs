//! Word-parallel compute kernels over the 2-bit packed representations.
//!
//! The communication layers (PRs 2–6) removed the wire bottlenecks, leaving
//! wall clock dominated by scalar per-base loops: reverse complement and
//! canonical comparison walked one 2-bit code at a time, and every codec
//! (k-mer ↔ ASCII, `PackedSeq`, the supermer wire format) shuffled single
//! bases. This module replaces those loops with packed arithmetic:
//!
//! * [`revcomp_words`] — XOR-complement plus a 2-bit reversal built from
//!   mask/shift swaps and a byte swap, O(words) instead of O(k);
//! * [`lex_cmp_words`] — locates the first differing base with one XOR and a
//!   trailing-zeros count per 64-bit word;
//! * [`encode_words`] / [`pack_ascii`] / [`unpack_ascii`] — bulk ASCII↔2-bit
//!   translation, 8 bases per `u64` step (validation vectorised further by
//!   [`mhm_simd`]) and 4 bases per table lookup on decode;
//! * [`shift_right_bases`] — whole-value base shifts for suffix/prefix
//!   derivation.
//!
//! Every kernel dispatches through [`mhm_simd::force_scalar`] and keeps its
//! per-base scalar twin (`*_scalar`) in tree as the property-test oracle;
//! `MHM_FORCE_SCALAR=1` pins the whole pipeline to the twins for ablation.
//!
//! Layout contract (shared with [`crate::kmer::Kmer`], `dbg::PackedSeq` and
//! the supermer wire records): base `i` of a sequence occupies bits
//! `2i..2i+2` of the little-endian 2-bit stream, i.e. bits `2(i%32)` of word
//! `i/32`, or bits `2(i%4)` of byte `i/4`.

use mhm_simd::{encode8, find_non_acgt, force_scalar, valid_acgt_mask8};
use seqio::alphabet::{decode_base, encode_base};
use std::cmp::Ordering;

/// ASCII expansion of one packed byte (4 bases), indexable by byte value.
static DECODE_LUT: [[u8; 4]; 256] = {
    let mut lut = [[0u8; 4]; 256];
    let bases = [b'A', b'C', b'G', b'T'];
    let mut v = 0usize;
    while v < 256 {
        let mut j = 0usize;
        while j < 4 {
            lut[v][j] = bases[(v >> (2 * j)) & 3];
            j += 1;
        }
        v += 1;
    }
    lut
};

/// Reverses the 32 2-bit groups of a word: pair swap, nibble swap, byte swap.
#[inline]
fn rev2_u64(x: u64) -> u64 {
    let x = ((x & 0x3333_3333_3333_3333) << 2) | ((x >> 2) & 0x3333_3333_3333_3333);
    let x = ((x & 0x0F0F_0F0F_0F0F_0F0F) << 4) | ((x >> 4) & 0x0F0F_0F0F_0F0F_0F0F);
    x.swap_bytes()
}

/// Shifts the 256-bit little-endian value right by `bits` (zero fill).
#[inline]
fn shr_bits(w: &[u64; 4], bits: usize) -> [u64; 4] {
    debug_assert!(bits < 256);
    let ws = bits / 64;
    let bs = bits % 64;
    let mut out = [0u64; 4];
    for (i, o) in out.iter_mut().enumerate() {
        let src = i + ws;
        let mut v = if src < 4 { w[src] } else { 0 };
        if bs > 0 {
            v >>= bs;
            if src + 1 < 4 {
                v |= w[src + 1] << (64 - bs);
            }
        }
        *o = v;
    }
    out
}

/// Folds 8 per-byte 2-bit codes (one code in the low bits of each byte of
/// `code`) into a contiguous 16-bit little-endian 2-bit stream.
#[inline]
fn fold8_codes(code: u64) -> u16 {
    let t = (code | (code >> 6)) & 0x000F_000F_000F_000F;
    let t = (t | (t >> 12)) & 0x0000_00FF_0000_00FF;
    (t | (t >> 24)) as u16
}

// --- reverse complement ----------------------------------------------------

/// Scalar oracle for [`revcomp_words`]: one base at a time, exactly the
/// pre-kernel implementation.
pub fn revcomp_words_scalar(words: &[u64; 4], k: usize) -> [u64; 4] {
    let mut out = [0u64; 4];
    for i in 0..k {
        let code = (words[i / 32] >> (2 * (i % 32))) & 0b11;
        let bit = 2 * (k - 1 - i);
        out[bit / 64] |= (3 - code) << (bit % 64);
    }
    out
}

/// Word-parallel reverse complement of a `k`-base 2-bit stream (bits beyond
/// `2k` must be zero, as [`crate::kmer::Kmer`] guarantees): complement every
/// word, reverse all 128 2-bit groups — which parks the real bases in the top
/// `2k` bits — then shift them back down to bit 0. The complemented padding
/// lands in the low bits and is shifted out exactly, so the result keeps the
/// bits-beyond-`2k`-are-zero invariant.
pub fn revcomp_words_word(words: &[u64; 4], k: usize) -> [u64; 4] {
    debug_assert!((1..=128).contains(&k));
    let rev = [
        rev2_u64(!words[3]),
        rev2_u64(!words[2]),
        rev2_u64(!words[1]),
        rev2_u64(!words[0]),
    ];
    shr_bits(&rev, 2 * (128 - k))
}

/// Reverse complement kernel with runtime dispatch.
#[inline]
pub fn revcomp_words(words: &[u64; 4], k: usize) -> [u64; 4] {
    if force_scalar() {
        revcomp_words_scalar(words, k)
    } else {
        revcomp_words_word(words, k)
    }
}

// --- lexicographic comparison ----------------------------------------------

/// Scalar oracle for [`lex_cmp_words`]: compares one base code at a time.
pub fn lex_cmp_words_scalar(a: &[u64; 4], b: &[u64; 4], k: usize) -> Ordering {
    for i in 0..k {
        let ca = (a[i / 32] >> (2 * (i % 32))) & 0b11;
        let cb = (b[i / 32] >> (2 * (i % 32))) & 0b11;
        match ca.cmp(&cb) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// Word-level lexicographic comparison of two equal-length 2-bit streams:
/// base 0 lives in the least-significant bits, so the first differing base of
/// the first differing word is found with one XOR and a trailing-zeros count
/// (rounded down to the 2-bit group boundary).
pub fn lex_cmp_words_word(a: &[u64; 4], b: &[u64; 4]) -> Ordering {
    for (&x, &y) in a.iter().zip(b) {
        if x != y {
            let sh = (x ^ y).trailing_zeros() & !1;
            return ((x >> sh) & 3).cmp(&((y >> sh) & 3));
        }
    }
    Ordering::Equal
}

/// Lexicographic base comparison kernel with runtime dispatch. Both streams
/// must hold `k` bases with zeroed padding.
#[inline]
pub fn lex_cmp_words(a: &[u64; 4], b: &[u64; 4], k: usize) -> Ordering {
    if force_scalar() {
        lex_cmp_words_scalar(a, b, k)
    } else {
        lex_cmp_words_word(a, b)
    }
}

// --- ASCII -> k-mer words --------------------------------------------------

/// Scalar oracle for [`encode_words`]: per-base [`encode_base`] and bit
/// placement, exactly the pre-kernel `Kmer::from_bytes` loop.
pub fn encode_words_scalar(seq: &[u8]) -> Option<[u64; 4]> {
    debug_assert!(seq.len() <= 128);
    let mut words = [0u64; 4];
    for (i, &b) in seq.iter().enumerate() {
        let code = encode_base(b)?;
        let bit = 2 * i;
        words[bit / 64] |= (code as u64) << (bit % 64);
    }
    Some(words)
}

/// Bulk ASCII → 2-bit words: one vectorised validation sweep, then 8 bases
/// per `u64` step. Returns `None` on any non-ACGT byte.
pub fn encode_words_word(seq: &[u8]) -> Option<[u64; 4]> {
    debug_assert!(seq.len() <= 128);
    if find_non_acgt(seq).is_some() {
        return None;
    }
    let mut words = [0u64; 4];
    let mut chunks = seq.chunks_exact(8);
    for (ci, chunk) in chunks.by_ref().enumerate() {
        let w = u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
        let bit = ci * 16;
        words[bit / 64] |= (fold8_codes(encode8(w)) as u64) << (bit % 64);
    }
    let rem = chunks.remainder();
    let base = 2 * (seq.len() - rem.len());
    for (j, &b) in rem.iter().enumerate() {
        let code = encode_base(b).expect("validated above");
        let bit = base + 2 * j;
        words[bit / 64] |= (code as u64) << (bit % 64);
    }
    Some(words)
}

/// ASCII → k-mer-words kernel with runtime dispatch (`seq.len() <= 128`).
#[inline]
pub fn encode_words(seq: &[u8]) -> Option<[u64; 4]> {
    if force_scalar() {
        encode_words_scalar(seq)
    } else {
        encode_words_word(seq)
    }
}

// --- ASCII -> packed byte stream -------------------------------------------

/// Scalar oracle for [`pack_ascii`]: the pre-kernel `PackedSeq::from_bytes`
/// loop. `data` must be zeroed and hold at least `seq.len().div_ceil(4)`
/// bytes; non-ACGT bytes keep code 0 and are reported to `on_invalid` in
/// position order.
pub fn pack_ascii_scalar(seq: &[u8], data: &mut [u8], mut on_invalid: impl FnMut(usize, u8)) {
    debug_assert!(data.len() >= seq.len().div_ceil(4));
    for (i, &b) in seq.iter().enumerate() {
        let code = match encode_base(b) {
            Some(c) => c,
            None => {
                on_invalid(i, b);
                0
            }
        };
        data[i / 4] |= code << ((i % 4) * 2);
    }
}

/// Word-parallel ASCII → packed 2-bit stream (4 bases/byte): a vectorised
/// validation probe picks between a check-free fast loop and a masked slow
/// path that reports the exceptions.
pub fn pack_ascii_word(seq: &[u8], data: &mut [u8], mut on_invalid: impl FnMut(usize, u8)) {
    debug_assert!(data.len() >= seq.len().div_ceil(4));
    let all_valid = find_non_acgt(seq).is_none();
    let mut chunks = seq.chunks_exact(8);
    for (ci, chunk) in chunks.by_ref().enumerate() {
        let w = u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
        let mut codes = encode8(w);
        if !all_valid {
            let valid = valid_acgt_mask8(w);
            if valid != 0xFF {
                for (j, &b) in chunk.iter().enumerate() {
                    if valid & (1 << j) == 0 {
                        on_invalid(ci * 8 + j, b);
                        codes &= !(0xFFu64 << (8 * j));
                    }
                }
            }
        }
        let bits = fold8_codes(codes);
        data[ci * 2] = bits as u8;
        data[ci * 2 + 1] = (bits >> 8) as u8;
    }
    let rem = chunks.remainder();
    let base = seq.len() - rem.len();
    for (j, &b) in rem.iter().enumerate() {
        let i = base + j;
        let code = match encode_base(b) {
            Some(c) => c,
            None => {
                on_invalid(i, b);
                0
            }
        };
        data[i / 4] |= code << ((i % 4) * 2);
    }
}

/// ASCII → packed-stream kernel with runtime dispatch. `data` must be zeroed
/// and sized for `seq`; invalid bytes are reported in position order.
#[inline]
pub fn pack_ascii(seq: &[u8], data: &mut [u8], on_invalid: impl FnMut(usize, u8)) {
    if force_scalar() {
        pack_ascii_scalar(seq, data, on_invalid)
    } else {
        pack_ascii_word(seq, data, on_invalid)
    }
}

// --- packed byte stream -> ASCII -------------------------------------------

/// Scalar oracle for [`unpack_ascii`]: per-base shift/mask/[`decode_base`],
/// the pre-kernel `PackedSeq::window` loop.
pub fn unpack_ascii_scalar(data: &[u8], start: usize, end: usize, out: &mut Vec<u8>) {
    debug_assert!(start <= end && data.len() * 4 >= end);
    for i in start..end {
        out.push(decode_base((data[i / 4] >> ((i % 4) * 2)) & 3));
    }
}

/// Bulk packed-stream → ASCII decode: 4 bases per 256-entry table lookup,
/// with per-base handling only at the unaligned edges of the window.
pub fn unpack_ascii_word(data: &[u8], start: usize, end: usize, out: &mut Vec<u8>) {
    debug_assert!(start <= end && data.len() * 4 >= end);
    out.reserve(end - start);
    let mut i = start;
    while i < end && !i.is_multiple_of(4) {
        out.push(DECODE_LUT[data[i / 4] as usize][i % 4]);
        i += 1;
    }
    while i + 4 <= end {
        out.extend_from_slice(&DECODE_LUT[data[i / 4] as usize]);
        i += 4;
    }
    while i < end {
        out.push(DECODE_LUT[data[i / 4] as usize][i % 4]);
        i += 1;
    }
}

/// Packed-stream decode kernel with runtime dispatch: appends bases
/// `start..end` of the little-endian 2-bit stream `data` to `out` as ASCII.
#[inline]
pub fn unpack_ascii(data: &[u8], start: usize, end: usize, out: &mut Vec<u8>) {
    if force_scalar() {
        unpack_ascii_scalar(data, start, end, out)
    } else {
        unpack_ascii_word(data, start, end, out)
    }
}

// --- base shifts -----------------------------------------------------------

/// Drops the first `n` bases of a 2-bit stream (a whole-value right shift by
/// `2n` bits), used by suffix derivation and window sliding. Pure word
/// arithmetic in both dispatch modes — there is no cheaper scalar form.
#[inline]
pub fn shift_right_bases(words: &[u64; 4], n: usize) -> [u64; 4] {
    shr_bits(words, 2 * n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_words(seq: &[u8]) -> [u64; 4] {
        encode_words_scalar(seq).expect("valid test sequence")
    }

    fn pseudo_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                b"ACGT"[(state % 4) as usize]
            })
            .collect()
    }

    #[test]
    fn revcomp_word_matches_scalar_across_k() {
        for k in 1..=128 {
            let s = pseudo_seq(k, k as u64 * 31);
            let w = seq_words(&s);
            assert_eq!(
                revcomp_words_word(&w, k),
                revcomp_words_scalar(&w, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn lex_cmp_word_matches_scalar() {
        for k in [1usize, 2, 31, 32, 33, 64, 65, 127, 128] {
            for seed in 0..20u64 {
                let a = pseudo_seq(k, seed * 7 + 1);
                let mut b = a.clone();
                if seed % 3 != 0 {
                    let p = (seed as usize * 13) % k;
                    b[p] = b"ACGT"[(seed as usize + 1) % 4];
                }
                let (wa, wb) = (seq_words(&a), seq_words(&b));
                assert_eq!(
                    lex_cmp_words_word(&wa, &wb),
                    lex_cmp_words_scalar(&wa, &wb, k),
                    "k={k} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn encode_words_variants_agree_and_reject() {
        for k in 1..=128 {
            let s = pseudo_seq(k, k as u64 + 5);
            assert_eq!(encode_words_word(&s), encode_words_scalar(&s), "k={k}");
            let mut bad = s.clone();
            bad[k / 2] = b'N';
            assert_eq!(encode_words_word(&bad), None);
            assert_eq!(encode_words_scalar(&bad), None);
        }
    }

    #[test]
    fn pack_unpack_roundtrip_with_exceptions() {
        for len in [0usize, 1, 5, 8, 9, 31, 64, 100] {
            let mut s = pseudo_seq(len, len as u64 * 3 + 1);
            for i in (3..len).step_by(11) {
                s[i] = b'N';
            }
            let mut data_w = vec![0u8; len.div_ceil(4)];
            let mut data_s = vec![0u8; len.div_ceil(4)];
            let mut exc_w = Vec::new();
            let mut exc_s = Vec::new();
            pack_ascii_word(&s, &mut data_w, |i, b| exc_w.push((i, b)));
            pack_ascii_scalar(&s, &mut data_s, |i, b| exc_s.push((i, b)));
            assert_eq!(data_w, data_s, "len={len}");
            assert_eq!(exc_w, exc_s, "len={len}");
            for (start, end) in [(0, len), (1.min(len), len), (len / 3, 2 * len / 3)] {
                let mut out_w = Vec::new();
                let mut out_s = Vec::new();
                unpack_ascii_word(&data_w, start, end, &mut out_w);
                unpack_ascii_scalar(&data_s, start, end, &mut out_s);
                assert_eq!(out_w, out_s, "len={len} window={start}..{end}");
            }
        }
    }

    #[test]
    fn shift_right_bases_drops_leading_bases() {
        let s = pseudo_seq(100, 9);
        let w = seq_words(&s);
        for n in [0usize, 1, 3, 32, 63, 64, 99] {
            let shifted = shift_right_bases(&w, n);
            assert_eq!(shifted, seq_words(&s[n..]), "n={n}");
        }
    }
}
