//! Randomized scalar-vs-kernel equivalence properties.
//!
//! Every compute kernel keeps its per-base scalar twin in tree; these tests
//! drive both sides with the same random inputs and require bit-for-bit
//! agreement — across the word-boundary k values (32/64/96) where the packed
//! arithmetic is easiest to get wrong, with non-ACGT exceptions sprinkled in,
//! and in *both* dispatch modes (CI re-runs the suite under
//! `MHM_FORCE_SCALAR=1`, which turns the dispatched side into the scalar twin
//! and makes the comparisons trivially reflexive — the point of that run is
//! that the higher-level codec roundtrips still hold).

use kmers::kernels;
use kmers::{
    encode_supermer, expand_supermer, kmers_with_exts, supermers, Kmer, SupermerBlobIter, MAX_K,
};
use rand::{Rng, SeedableRng};

type StdRng = rand::rngs::StdRng;

fn random_bases(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| b"ACGT"[rng.gen_range(0..4usize)])
        .collect()
}

/// Bases with lower-case, `N` runs and junk bytes mixed in.
fn noisy_bases(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut seq = random_bases(rng, len);
    for b in seq.iter_mut() {
        match rng.gen_range(0..20usize) {
            0 => *b = b'N',
            1 => *b = b.to_ascii_lowercase(),
            2 => *b = b'x',
            _ => {}
        }
    }
    // An explicit N run exercises runs of exceptions, not just point noise.
    if len >= 8 {
        let at = rng.gen_range(0..len - 4);
        seq[at..at + 4].fill(b'N');
    }
    seq
}

/// k values that cross every word boundary of the `[u64; 4]` representation.
const BOUNDARY_KS: &[usize] = &[1, 2, 31, 32, 33, 63, 64, 65, 95, 96, 97, 126, 127];

#[test]
fn revcomp_and_canonical_match_scalar_oracle_across_k() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for &k in BOUNDARY_KS {
        for _ in 0..50 {
            let seq = random_bases(&mut rng, k);
            let km = Kmer::from_bytes(&seq).expect("valid bases");
            // Oracle: string-level reverse complement re-encoded.
            let rc_str = seqio::alphabet::revcomp(&seq);
            let rc = km.revcomp();
            assert_eq!(rc.to_bytes(), rc_str, "revcomp k={k}");
            assert_eq!(rc.revcomp(), km, "involution k={k}");
            // Canonical: the early-exit path must pick min(km, rc) exactly,
            // flagging the reverse complement only when it strictly wins.
            let (canon, was_rc) = km.canonical();
            assert_eq!(canon, km.min(rc), "canonical k={k}");
            assert_eq!(was_rc, rc < km, "flag k={k}");
            assert_eq!(km.is_canonical(), !was_rc, "is_canonical k={k}");
            assert!(canon.is_canonical(), "canonical fixpoint k={k}");
        }
    }
}

#[test]
fn kmer_byte_roundtrip_and_affixes_across_k() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for &k in BOUNDARY_KS {
        for _ in 0..20 {
            let seq = random_bases(&mut rng, k);
            let km = Kmer::from_bytes(&seq).expect("valid bases");
            assert_eq!(km.to_bytes(), seq, "to_bytes k={k}");
            if k > 1 {
                assert_eq!(km.suffix().to_bytes(), seq[1..], "suffix k={k}");
                assert_eq!(km.prefix().to_bytes(), seq[..k - 1], "prefix k={k}");
            }
        }
    }
    assert!(Kmer::from_bytes(&[b'A'; MAX_K + 1]).is_none());
}

#[test]
fn supermer_codec_is_bit_for_bit_stable_on_noisy_reads() {
    let mut rng = StdRng::seed_from_u64(0xD15EA5E);
    for _ in 0..20 {
        let len = rng.gen_range(30..400usize);
        let seq = noisy_bases(&mut rng, len);
        let qual: Vec<u8> = (0..len).map(|_| rng.gen_range(5..45u8)).collect();
        for (k, m) in [(21usize, 15usize), (13, 7)] {
            // The wire blob and its expansion must agree with the per-k-mer
            // extraction oracle regardless of dispatch mode.
            let mut blob = Vec::new();
            for sm in supermers(&seq, k, m) {
                encode_supermer(&mut blob, &seq, &qual, 20, &sm);
            }
            let mut decoded = Vec::new();
            for rec in SupermerBlobIter::new(&blob) {
                expand_supermer(&rec, k, |obs| decoded.push(obs));
            }
            assert_eq!(decoded, kmers_with_exts(&seq, &qual, k, 20), "k={k}");

            // And the blob itself must be identical under forced-scalar
            // dispatch: the wire format is part of the rank-to-rank protocol.
            let was_forced = mhm_simd::force_scalar();
            mhm_simd::set_force_scalar(true);
            let mut blob_scalar = Vec::new();
            for sm in supermers(&seq, k, m) {
                encode_supermer(&mut blob_scalar, &seq, &qual, 20, &sm);
            }
            mhm_simd::set_force_scalar(was_forced);
            assert_eq!(blob, blob_scalar, "wire bytes must not depend on dispatch");
        }
    }
}

#[test]
fn kernel_twins_agree_on_random_inputs() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..200 {
        let k = rng.gen_range(1..=MAX_K);
        let seq = random_bases(&mut rng, k);
        let noisy = noisy_bases(&mut rng, k);

        // encode_words: agreement including the rejection cases.
        assert_eq!(
            kernels::encode_words_word(&seq),
            kernels::encode_words_scalar(&seq)
        );
        assert_eq!(
            kernels::encode_words_word(&noisy),
            kernels::encode_words_scalar(&noisy)
        );

        let words = kernels::encode_words_scalar(&seq).expect("valid bases");
        assert_eq!(
            kernels::revcomp_words_word(&words, k),
            kernels::revcomp_words_scalar(&words, k),
            "k={k}"
        );

        let other = kernels::encode_words_scalar(&random_bases(&mut rng, k)).expect("valid");
        assert_eq!(
            kernels::lex_cmp_words_word(&words, &other),
            kernels::lex_cmp_words_scalar(&words, &other, k),
            "k={k}"
        );

        // pack/unpack twins over the noisy sequence.
        let mut data_w = vec![0u8; k.div_ceil(4)];
        let mut data_s = vec![0u8; k.div_ceil(4)];
        let mut exc_w = Vec::new();
        let mut exc_s = Vec::new();
        kernels::pack_ascii_word(&noisy, &mut data_w, |i, b| exc_w.push((i, b)));
        kernels::pack_ascii_scalar(&noisy, &mut data_s, |i, b| exc_s.push((i, b)));
        assert_eq!(data_w, data_s, "k={k}");
        assert_eq!(exc_w, exc_s, "k={k}");
        let (lo, hi) = {
            let a = rng.gen_range(0..=k);
            let b = rng.gen_range(0..=k);
            (a.min(b), a.max(b))
        };
        let mut out_w = Vec::new();
        let mut out_s = Vec::new();
        kernels::unpack_ascii_word(&data_w, lo, hi, &mut out_w);
        kernels::unpack_ascii_scalar(&data_s, lo, hi, &mut out_s);
        assert_eq!(out_w, out_s, "k={k} window={lo}..{hi}");
    }
}

#[test]
fn match_count_kernel_respects_n_rule_on_random_windows() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for _ in 0..100 {
        let len = rng.gen_range(0..300usize);
        let a = noisy_bases(&mut rng, len);
        // Correlated copy with point edits, so matches dominate.
        let mut b = a.clone();
        for x in b.iter_mut() {
            if rng.gen_bool(0.15) {
                *x = b"ACGTN"[rng.gen_range(0..5usize)];
            }
        }
        let expect = mhm_simd::match_count_except_scalar(&a, &b, b'N');
        assert_eq!(mhm_simd::match_count_except(&a, &b, b'N'), expect);
    }
}
