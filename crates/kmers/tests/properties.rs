//! Property-style tests of the packed k-mer layer: randomised inputs checked
//! against algebraic invariants the de Bruijn graph construction depends on.

use kmers::Kmer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqio::alphabet::revcomp;

fn random_seq(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
}

/// Odd k values spanning one-word and multi-word packings (MAX_K = 127).
const K_VALUES: [usize; 6] = [5, 21, 31, 33, 63, 127];

#[test]
fn pack_unpack_roundtrip_is_identity() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for &k in &K_VALUES {
        for _ in 0..200 {
            let seq = random_seq(&mut rng, k);
            let km = Kmer::from_bytes(&seq).expect("valid ACGT sequence packs");
            assert_eq!(km.k(), k);
            assert_eq!(km.to_bytes(), seq, "k={k} roundtrip mismatch");
            // Per-position accessors agree with the unpacked bytes.
            for (i, &b) in seq.iter().enumerate() {
                assert_eq!(km.base_at(i), b);
            }
        }
    }
}

#[test]
fn non_acgt_bases_do_not_pack() {
    assert!(Kmer::from_bytes(b"ACGNT").is_none());
    assert!(Kmer::from_bytes(b"ACG-T").is_none());
    assert!(Kmer::from_bytes(b"").is_none());
}

#[test]
fn canonical_form_is_invariant_under_reverse_complement() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for &k in &K_VALUES {
        for _ in 0..200 {
            let seq = random_seq(&mut rng, k);
            let fwd = Kmer::from_bytes(&seq).unwrap();
            let rc = Kmer::from_bytes(&revcomp(&seq)).unwrap();
            assert_eq!(rc, fwd.revcomp(), "revcomp packing disagrees at k={k}");
            let (canon_f, flipped_f) = fwd.canonical();
            let (canon_r, flipped_r) = rc.canonical();
            // The defining property: a k-mer and its reverse complement share
            // one canonical representative.
            assert_eq!(canon_f, canon_r, "canonical not rc-invariant at k={k}");
            assert!(canon_f.is_canonical());
            // Exactly one of the two orientations is flipped, except for
            // palindromes where both views already coincide.
            if fwd.is_palindrome() {
                assert_eq!(fwd, rc);
            } else {
                assert_ne!(flipped_f, flipped_r);
            }
        }
    }
}

#[test]
fn revcomp_is_an_involution() {
    let mut rng = StdRng::seed_from_u64(0xFACADE);
    for &k in &K_VALUES {
        for _ in 0..100 {
            let seq = random_seq(&mut rng, k);
            let km = Kmer::from_bytes(&seq).unwrap();
            assert_eq!(km.revcomp().revcomp(), km, "revcomp∘revcomp ≠ id at k={k}");
        }
    }
}

#[test]
fn rolling_extension_matches_from_bytes() {
    // Sliding a window by extending right must produce the same packed k-mer
    // as packing the window from scratch (the extractor relies on this).
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    for &k in &[21usize, 33, 63] {
        let seq = random_seq(&mut rng, k + 100);
        let mut rolling = Kmer::from_bytes(&seq[..k]).unwrap();
        for start in 1..=seq.len() - k {
            let incoming = seq[start + k - 1];
            let code = seqio::alphabet::encode_base(incoming).unwrap();
            rolling = rolling.extended_right(code);
            let direct = Kmer::from_bytes(&seq[start..start + k]).unwrap();
            assert_eq!(rolling, direct, "rolling drifted at window {start}, k={k}");
        }
    }
}

#[test]
fn owner_hash_is_orientation_independent_on_canonical_form() {
    // The distributed tables key on canonical k-mers; the owner hash of the
    // canonical form must therefore be identical no matter which orientation
    // the k-mer was observed in.
    let mut rng = StdRng::seed_from_u64(0xABBA);
    for _ in 0..500 {
        let seq = random_seq(&mut rng, 31);
        let a = Kmer::from_bytes(&seq).unwrap().canonical().0;
        let b = Kmer::from_bytes(&revcomp(&seq)).unwrap().canonical().0;
        assert_eq!(a.owner_hash(), b.owner_hash());
    }
}
