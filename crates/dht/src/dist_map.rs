//! The core distributed hash table.
//!
//! Keys are assigned to an *owner rank* by hashing (deterministically, so all
//! ranks agree), and each owner's shard is further split into sub-shards so
//! that concurrent fine-grained accesses from different ranks rarely contend
//! on the same lock — the moral equivalent of UPC's per-bucket locks /
//! remote atomics. All accesses go through a [`pgas::Ctx`] so that on-node
//! vs off-node traffic is accounted.

use crate::fxhash::{fx_hash_one, FxHashMap};
use parking_lot::Mutex;
use pgas::{Aggregator, Ctx};
use std::hash::Hash;
use std::sync::Arc;

/// Number of sub-shards per owner rank; a power of two so the sub-shard index
/// can be taken from independent hash bits.
const SUB_SHARDS: usize = 16;

struct Shard<K, V> {
    subs: Vec<Mutex<FxHashMap<K, V>>>,
}

impl<K, V> Shard<K, V> {
    fn new() -> Self {
        Shard {
            subs: (0..SUB_SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }
}

/// A hash map partitioned across the ranks of a team.
pub struct DistMap<K, V> {
    shards: Vec<Shard<K, V>>,
}

impl<K, V> DistMap<K, V>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Creates a map distributed over `ranks` owner shards. Typically invoked
    /// collectively via `ctx.share(|| DistMap::new(ctx.ranks()))`.
    pub fn new(ranks: usize) -> Self {
        assert!(ranks > 0);
        DistMap {
            shards: (0..ranks).map(|_| Shard::new()).collect(),
        }
    }

    /// Collective convenience constructor: builds one shared map for the team.
    pub fn shared(ctx: &Ctx) -> Arc<Self> {
        ctx.share(|| DistMap::new(ctx.ranks()))
    }

    /// The owner rank of a key (deterministic across ranks).
    #[inline]
    pub fn owner_of(&self, key: &K) -> usize {
        (fx_hash_one(key) % self.shards.len() as u64) as usize
    }

    #[inline]
    fn slot(&self, key: &K) -> (usize, usize) {
        let h = fx_hash_one(key);
        let owner = (h % self.shards.len() as u64) as usize;
        // Use the upper bits for the sub-shard so it is independent of the
        // owner selection.
        let sub = ((h >> 48) as usize) % SUB_SHARDS;
        (owner, sub)
    }

    /// Inserts a value, returning the previous value if any. Fine-grained
    /// global write (use case 2).
    pub fn insert(&self, ctx: &Ctx, key: K, value: V) -> Option<V> {
        let (owner, sub) = self.slot(&key);
        ctx.record_access(owner);
        self.shards[owner].subs[sub].lock().insert(key, value)
    }

    /// True if the key is present. Fine-grained global read.
    pub fn contains(&self, ctx: &Ctx, key: &K) -> bool {
        let (owner, sub) = self.slot(key);
        ctx.record_access(owner);
        self.shards[owner].subs[sub].lock().contains_key(key)
    }

    /// Clones the value for a key, if present. Fine-grained global read.
    pub fn get_cloned(&self, ctx: &Ctx, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let (owner, sub) = self.slot(key);
        ctx.record_access(owner);
        self.shards[owner].subs[sub].lock().get(key).cloned()
    }

    /// Runs a closure with a mutable view of the entry (or `None` if absent)
    /// while holding the entry's lock: the equivalent of UPC's
    /// compare-and-swap / remote-atomic sequences on hash-table entries. The
    /// closure's return value is passed through. Counts as one global atomic.
    pub fn update<R>(&self, ctx: &Ctx, key: &K, f: impl FnOnce(Option<&mut V>) -> R) -> R {
        let (owner, sub) = self.slot(key);
        ctx.record_access(owner);
        ctx.record_atomic();
        let mut guard = self.shards[owner].subs[sub].lock();
        f(guard.get_mut(key))
    }

    /// Inserts `default()` if the key is absent, then applies `merge` to the
    /// stored value. Commutative upsert used by the update-only phases.
    pub fn upsert(
        &self,
        ctx: &Ctx,
        key: K,
        default: impl FnOnce() -> V,
        merge: impl FnOnce(&mut V),
    ) {
        let (owner, sub) = self.slot(&key);
        ctx.record_access(owner);
        let mut guard = self.shards[owner].subs[sub].lock();
        let entry = guard.entry(key).or_insert_with(default);
        merge(entry);
    }

    /// Removes a key, returning its value. Uses the same locking discipline as
    /// [`DistMap::update`].
    pub fn remove(&self, ctx: &Ctx, key: &K) -> Option<V> {
        let (owner, sub) = self.slot(key);
        ctx.record_access(owner);
        ctx.record_atomic();
        self.shards[owner].subs[sub].lock().remove(key)
    }

    /// Total number of entries across all shards. Not a collective; intended
    /// for use after a barrier.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.subs.iter())
            .map(|m| m.lock().len())
            .sum()
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every entry owned by the calling rank (use case 4). Only sound
    /// when other ranks are not mutating this rank's shard (the usual pattern:
    /// barrier, then owner-local processing).
    pub fn for_each_local(&self, ctx: &Ctx, mut f: impl FnMut(&K, &V)) {
        for sub in &self.shards[ctx.rank()].subs {
            for (k, v) in sub.lock().iter() {
                f(k, v);
            }
        }
    }

    /// Mutable owner-local visit.
    pub fn for_each_local_mut(&self, ctx: &Ctx, mut f: impl FnMut(&K, &mut V)) {
        for sub in &self.shards[ctx.rank()].subs {
            for (k, v) in sub.lock().iter_mut() {
                f(k, v);
            }
        }
    }

    /// Removes and returns every entry owned by the calling rank.
    pub fn drain_local(&self, ctx: &Ctx) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for sub in &self.shards[ctx.rank()].subs {
            out.extend(sub.lock().drain());
        }
        out
    }

    /// Keeps only the local entries satisfying the predicate; returns how many
    /// were removed.
    pub fn retain_local(&self, ctx: &Ctx, mut f: impl FnMut(&K, &mut V) -> bool) -> usize {
        let mut removed = 0usize;
        for sub in &self.shards[ctx.rank()].subs {
            let mut guard = sub.lock();
            let before = guard.len();
            guard.retain(|k, v| f(k, v));
            removed += before - guard.len();
        }
        removed
    }

    /// Clones every entry owned by the calling rank into a vector.
    pub fn local_entries(&self, ctx: &Ctx) -> Vec<(K, V)>
    where
        V: Clone,
    {
        let mut out = Vec::new();
        for sub in &self.shards[ctx.rank()].subs {
            out.extend(sub.lock().iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Number of entries owned by the calling rank.
    pub fn local_len(&self, ctx: &Ctx) -> usize {
        self.shards[ctx.rank()]
            .subs
            .iter()
            .map(|m| m.lock().len())
            .sum()
    }

    /// Applies a batch of `(key, value)` items that are already known to be
    /// owned by the calling rank, merging duplicates with `merge`. This is the
    /// receive side of the update-only phase.
    pub fn apply_local_batch(
        &self,
        ctx: &Ctx,
        items: Vec<(K, V)>,
        default: impl Fn(V) -> V,
        merge: impl Fn(&mut V, V),
    ) {
        let shard = &self.shards[ctx.rank()];
        for (key, value) in items {
            let h = fx_hash_one(&key);
            let sub = ((h >> 48) as usize) % SUB_SHARDS;
            let mut guard = shard.subs[sub].lock();
            match guard.get_mut(&key) {
                Some(existing) => merge(existing, value),
                None => {
                    guard.insert(key, default(value));
                }
            }
        }
    }
}

/// The full update-only phase (use case 1 + 4): every rank streams `(K, V)`
/// items into per-owner aggregation buffers; after the exchange each owner
/// merges the received items into its local shard with `merge` (which must be
/// commutative and associative for the result to be insertion-order
/// independent, as the paper requires).
///
/// Collective: every rank must call it, even with an empty iterator.
pub fn bulk_merge<K, V>(
    ctx: &Ctx,
    map: &DistMap<K, V>,
    items: impl IntoIterator<Item = (K, V)>,
    batch: usize,
    merge: impl Fn(&mut V, V) + Copy,
) where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    let mut agg: Aggregator<(K, V)> = Aggregator::new(ctx, batch);
    for (k, v) in items {
        let owner = map.owner_of(&k);
        agg.push(owner, (k, v));
    }
    let received = agg.finish();
    map.apply_local_batch(ctx, received, |v| v, merge);
    ctx.barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::Team;

    #[test]
    fn insert_get_remove_roundtrip() {
        let team = Team::single_node(4);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, String>> = DistMap::shared(ctx);
            // Each rank inserts its own keys.
            for i in 0..100u64 {
                if i as usize % ctx.ranks() == ctx.rank() {
                    map.insert(ctx, i, format!("v{i}"));
                }
            }
            ctx.barrier();
            // Every rank can read every key.
            for i in 0..100u64 {
                assert_eq!(map.get_cloned(ctx, &i), Some(format!("v{i}")));
                assert!(map.contains(ctx, &i));
            }
            assert!(!map.contains(ctx, &1000));
            ctx.barrier();
            if ctx.rank() == 0 {
                assert_eq!(map.len(), 100);
                assert_eq!(map.remove(ctx, &7), Some("v7".into()));
                assert_eq!(map.remove(ctx, &7), None);
            }
            ctx.barrier();
            assert!(!map.contains(ctx, &7));
        });
    }

    #[test]
    fn upsert_accumulates() {
        let team = Team::single_node(4);
        team.run(|ctx| {
            let map: Arc<DistMap<u32, u32>> = DistMap::shared(ctx);
            // All ranks increment all keys.
            for key in 0..50u32 {
                map.upsert(ctx, key, || 0, |v| *v += 1);
            }
            ctx.barrier();
            for key in 0..50u32 {
                assert_eq!(map.get_cloned(ctx, &key), Some(ctx.ranks() as u32));
            }
        });
    }

    #[test]
    fn update_sees_and_mutates_entry() {
        let team = Team::single_node(2);
        team.run(|ctx| {
            let map: Arc<DistMap<u32, u32>> = DistMap::shared(ctx);
            if ctx.rank() == 0 {
                map.insert(ctx, 5, 10);
            }
            ctx.barrier();
            let doubled = map.update(ctx, &5, |v| {
                if ctx.rank() == 1 {
                    if let Some(v) = v {
                        *v *= 2;
                        return true;
                    }
                }
                false
            });
            ctx.barrier();
            if ctx.rank() == 1 {
                assert!(doubled);
                assert_eq!(map.get_cloned(ctx, &5), Some(20));
            }
            let absent = map.update(ctx, &999, |v| v.is_none());
            assert!(absent);
        });
    }

    #[test]
    fn owner_assignment_agrees_across_ranks_and_spreads() {
        let team = Team::single_node(5);
        let owners = team.run(|ctx| {
            let map: Arc<DistMap<u64, ()>> = DistMap::shared(ctx);
            (0..1000u64).map(|k| map.owner_of(&k)).collect::<Vec<_>>()
        });
        for o in &owners[1..] {
            assert_eq!(o, &owners[0]);
        }
        let mut counts = vec![0usize; 5];
        for &o in &owners[0] {
            counts[o] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "skewed owners: {counts:?}");
    }

    #[test]
    fn bulk_merge_counts_words() {
        let team = Team::single_node(4);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            // Every rank contributes the same keys; counts should sum.
            let items = (0..200u64).map(|k| (k % 20, 1u64));
            bulk_merge(ctx, &map, items, 16, |a, b| *a += b);
            if ctx.rank() == 0 {
                assert_eq!(map.len(), 20);
            }
            ctx.barrier();
            for k in 0..20u64 {
                // 200/20 = 10 per rank, times 4 ranks.
                assert_eq!(map.get_cloned(ctx, &k), Some(40));
            }
        });
    }

    #[test]
    fn local_iteration_covers_exactly_owned_keys() {
        let team = Team::single_node(3);
        let counts = team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            bulk_merge(ctx, &map, (0..300u64).map(|k| (k, 1)), 32, |a, b| *a += b);
            let mut local = 0usize;
            map.for_each_local(ctx, |_, _| local += 1);
            assert_eq!(local, map.local_len(ctx));
            local
        });
        assert_eq!(counts.iter().sum::<usize>(), 300);
    }

    #[test]
    fn retain_and_drain_local() {
        let team = Team::single_node(3);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            bulk_merge(ctx, &map, (0..90u64).map(|k| (k, k)), 8, |a, b| *a += b);
            let removed = map.retain_local(ctx, |_, v| *v % 2 == 0);
            ctx.barrier();
            let total_removed = ctx.allreduce_sum_u64(removed as u64);
            assert_eq!(total_removed, 45);
            if ctx.rank() == 0 {
                assert_eq!(map.len(), 45);
            }
            ctx.barrier();
            let drained = map.drain_local(ctx);
            let total_drained = ctx.allreduce_sum_u64(drained.len() as u64);
            assert_eq!(total_drained, 45);
            ctx.barrier();
            if ctx.rank() == 0 {
                assert!(map.is_empty());
            }
        });
    }
}
