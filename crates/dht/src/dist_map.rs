//! The core distributed hash table.
//!
//! Keys are assigned to an *owner rank* by a pluggable [`Partitioner`]
//! (deterministically, so all ranks agree; hashing by default), and each
//! owner's shard is further split into sub-shards so that concurrent
//! fine-grained accesses from different ranks rarely contend on the same
//! lock — the moral equivalent of UPC's per-bucket locks / remote atomics.
//! All accesses go through a [`pgas::Ctx`] so that on-node vs off-node
//! traffic is accounted.

use crate::fxhash::{fx_hash_one, FxHashMap};
use crate::partition::{HashPartitioner, Partitioner};
use parking_lot::Mutex;
use pgas::{Aggregator, Ctx, RpcAggregator};
use std::hash::Hash;
use std::sync::Arc;

/// Number of sub-shards per owner rank; a power of two so the sub-shard index
/// can be taken from independent hash bits.
const SUB_SHARDS: usize = 16;

/// Sub-shard (lock stripe) of a key within its owner's shard: taken from the
/// upper hash bits so striping is independent of the owner selection and of
/// the partitioner. The single source of truth for every access path.
#[inline]
fn sub_of_hash(h: u64) -> usize {
    ((h >> 48) as usize) % SUB_SHARDS
}

/// [`sub_of_hash`] for callers that have not already hashed the key.
#[inline]
fn sub_of<K: Hash>(key: &K) -> usize {
    sub_of_hash(fx_hash_one(key))
}

struct Shard<K, V> {
    subs: Vec<Mutex<FxHashMap<K, V>>>,
}

impl<K, V> Shard<K, V> {
    fn new() -> Self {
        Shard {
            subs: (0..SUB_SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }
}

/// A hash map partitioned across the ranks of a team.
pub struct DistMap<K, V> {
    shards: Vec<Shard<K, V>>,
    partitioner: Arc<dyn Partitioner<K>>,
}

impl<K, V> DistMap<K, V>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Creates a map distributed over `ranks` owner shards with the default
    /// [`HashPartitioner`]. Typically invoked collectively via
    /// `ctx.share(|| DistMap::new(ctx.ranks()))`.
    pub fn new(ranks: usize) -> Self {
        DistMap::with_partitioner(ranks, Arc::new(HashPartitioner))
    }

    /// Creates a map whose owner assignment is delegated to `partitioner`
    /// (which must be deterministic and identical on every rank; see
    /// [`Partitioner`]).
    pub fn with_partitioner(ranks: usize, partitioner: Arc<dyn Partitioner<K>>) -> Self {
        assert!(ranks > 0);
        DistMap {
            shards: (0..ranks).map(|_| Shard::new()).collect(),
            partitioner,
        }
    }

    /// Collective convenience constructor: builds one shared map for the team.
    pub fn shared(ctx: &Ctx) -> Arc<Self> {
        ctx.share(|| DistMap::new(ctx.ranks()))
    }

    /// The partitioner this map routes keys with; a derived map (e.g. the de
    /// Bruijn graph built from the counts table) passes it on so that both
    /// tables agree on ownership and owner-local rebuilds stay local.
    pub fn partitioner(&self) -> Arc<dyn Partitioner<K>> {
        Arc::clone(&self.partitioner)
    }

    /// The owner rank of a key (deterministic across ranks).
    #[inline]
    pub fn owner_of(&self, key: &K) -> usize {
        let owner = self.partitioner.owner_of(key, self.shards.len());
        debug_assert!(owner < self.shards.len());
        owner
    }

    #[inline]
    fn slot(&self, key: &K) -> (usize, usize) {
        // One hash serves both decisions: the partitioner gets it as a hint
        // (the default hash partitioner derives the owner straight from it)
        // and the sub-shard comes from the upper bits so lock striping is
        // independent of the owner selection (and of the partitioner).
        let h = fx_hash_one(key);
        let owner = self.partitioner.owner_of_hashed(key, h, self.shards.len());
        debug_assert!(owner < self.shards.len());
        (owner, sub_of_hash(h))
    }

    /// Inserts a value, returning the previous value if any. Fine-grained
    /// global write (use case 2).
    pub fn insert(&self, ctx: &Ctx, key: K, value: V) -> Option<V> {
        let (owner, sub) = self.slot(&key);
        ctx.record_access(owner);
        self.shards[owner].subs[sub].lock().insert(key, value)
    }

    /// True if the key is present. Fine-grained global read.
    pub fn contains(&self, ctx: &Ctx, key: &K) -> bool {
        let (owner, sub) = self.slot(key);
        ctx.record_access(owner);
        self.shards[owner].subs[sub].lock().contains_key(key)
    }

    /// Clones the value for a key, if present. Fine-grained global read.
    pub fn get_cloned(&self, ctx: &Ctx, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let (owner, sub) = self.slot(key);
        ctx.record_access(owner);
        self.shards[owner].subs[sub].lock().get(key).cloned()
    }

    /// Shard probe without any traffic accounting: the owner-side half of the
    /// batched lookups (the serving rank reads its own shard).
    fn probe(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let (owner, sub) = self.slot(key);
        self.shards[owner].subs[sub].lock().get(key).cloned()
    }

    /// Collective batched read (use case 3 of §II-A): every key's lookup is
    /// buffered per owner rank, shipped in aggregated messages of at most
    /// `batch` requests, answered from the owner's shard, and the values
    /// travel back in a second aggregated all-to-all. Returns the results in
    /// key order (duplicates and absent keys are fine). Every rank must call
    /// this in the same phase, even with an empty `keys` slice — it replaces a
    /// loop of [`DistMap::get_cloned`] calls with one round trip.
    pub fn get_many(&self, ctx: &Ctx, keys: &[K], batch: usize) -> Vec<Option<V>>
    where
        V: Clone,
    {
        let mut rpc: RpcAggregator<K, Option<V>> = RpcAggregator::new(ctx, batch);
        for key in keys {
            rpc.push(self.owner_of(key), key.clone());
        }
        rpc.finish(|key| self.probe(&key))
    }

    /// Collective batched membership test; the `contains` analogue of
    /// [`DistMap::get_many`].
    pub fn contains_many(&self, ctx: &Ctx, keys: &[K], batch: usize) -> Vec<bool> {
        let mut rpc: RpcAggregator<K, bool> = RpcAggregator::new(ctx, batch);
        for key in keys {
            rpc.push(self.owner_of(key), key.clone());
        }
        rpc.finish(|key| {
            let (owner, sub) = self.slot(&key);
            self.shards[owner].subs[sub].lock().contains_key(&key)
        })
    }

    /// Collective batched entry update: ships the keys to their owners in
    /// aggregated messages, runs `f` under the owning sub-shard's lock (the
    /// batched analogue of [`DistMap::update`]; one global atomic is recorded
    /// per applied update, on the serving rank), and returns the closures'
    /// results in key order. Every rank must call this in the same phase.
    pub fn update_many<R>(
        &self,
        ctx: &Ctx,
        keys: &[K],
        batch: usize,
        mut f: impl FnMut(&K, Option<&mut V>) -> R,
    ) -> Vec<R>
    where
        R: Send + Sync + 'static,
    {
        let mut rpc: RpcAggregator<K, R> = RpcAggregator::new(ctx, batch);
        for key in keys {
            rpc.push(self.owner_of(key), key.clone());
        }
        rpc.finish(|key| {
            ctx.record_atomic();
            let (owner, sub) = self.slot(&key);
            let mut guard = self.shards[owner].subs[sub].lock();
            f(&key, guard.get_mut(&key))
        })
    }

    /// One-sided aggregated batched read: like [`DistMap::get_many`] but
    /// **not** collective — the calling rank groups the keys by owner,
    /// records one aggregated request and one aggregated response per
    /// contacted owner, and reads the shards directly (the simulation's
    /// analogue of UPC's one-sided `upc_memget` over a remote bucket block,
    /// which needs no CPU involvement from the owner). Use it inside
    /// dynamically scheduled loops (work stealing) where ranks cannot reach a
    /// collective in lockstep; prefer [`DistMap::get_many`] everywhere else.
    #[track_caller]
    pub fn get_many_onesided(&self, ctx: &Ctx, keys: &[K]) -> Vec<Option<V>>
    where
        V: Clone,
    {
        let mut per_owner = vec![0usize; self.shards.len()];
        for key in keys {
            per_owner[self.owner_of(key)] += 1;
        }
        // Conformance: refuse to probe a shard whose owner is inside a
        // `local_view` phase — the probe would both break the view's snapshot
        // semantics and block on the sub-shard locks the view holds. Checked
        // before any probe so the violation is reported, not deadlocked on.
        for (owner, &count) in per_owner.iter().enumerate() {
            if count > 0 {
                ctx.check_one_sided_target(owner, self.phase_token());
            }
        }
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            out.push(self.probe(key));
        }
        for (owner, &count) in per_owner.iter().enumerate() {
            if count > 0 {
                // Request leg: this rank sends the key batch to the owner.
                ctx.record_message(owner, count * std::mem::size_of::<K>());
                // Response leg: the values travel owner -> requester, so the
                // message is attributed to the serving rank.
                ctx.record_rpc_response_from(owner, count * std::mem::size_of::<Option<V>>());
            }
        }
        if !keys.is_empty() {
            ctx.record_rpc_round_trip();
        }
        out
    }

    /// Local-phase token for this map (see [`Ctx::begin_local_phase`]): the
    /// shared allocation's address, identical on every rank because the map
    /// is `Arc`-shared across the team.
    fn phase_token(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Runs a closure with a mutable view of the entry (or `None` if absent)
    /// while holding the entry's lock: the equivalent of UPC's
    /// compare-and-swap / remote-atomic sequences on hash-table entries. The
    /// closure's return value is passed through. Counts as one global atomic.
    pub fn update<R>(&self, ctx: &Ctx, key: &K, f: impl FnOnce(Option<&mut V>) -> R) -> R {
        let (owner, sub) = self.slot(key);
        ctx.record_access(owner);
        ctx.record_atomic();
        let mut guard = self.shards[owner].subs[sub].lock();
        f(guard.get_mut(key))
    }

    /// Inserts `default()` if the key is absent, then applies `merge` to the
    /// stored value. Commutative upsert used by the update-only phases.
    pub fn upsert(
        &self,
        ctx: &Ctx,
        key: K,
        default: impl FnOnce() -> V,
        merge: impl FnOnce(&mut V),
    ) {
        let (owner, sub) = self.slot(&key);
        ctx.record_access(owner);
        let mut guard = self.shards[owner].subs[sub].lock();
        let entry = guard.entry(key).or_insert_with(default);
        merge(entry);
    }

    /// Removes a key, returning its value. Uses the same locking discipline as
    /// [`DistMap::update`].
    pub fn remove(&self, ctx: &Ctx, key: &K) -> Option<V> {
        let (owner, sub) = self.slot(key);
        ctx.record_access(owner);
        ctx.record_atomic();
        self.shards[owner].subs[sub].lock().remove(key)
    }

    /// Total number of entries across all shards. Not a collective; intended
    /// for use after a barrier.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.subs.iter())
            .map(|m| m.lock().len())
            .sum()
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every entry owned by the calling rank (use case 4). Only sound
    /// when other ranks are not mutating this rank's shard (the usual pattern:
    /// barrier, then owner-local processing).
    pub fn for_each_local(&self, ctx: &Ctx, mut f: impl FnMut(&K, &V)) {
        for sub in &self.shards[ctx.rank()].subs {
            for (k, v) in sub.lock().iter() {
                f(k, v);
            }
        }
    }

    /// A direct, random-access view of the calling rank's own shard: locks
    /// every sub-shard once and holds the guards for the view's lifetime, so
    /// repeated [`LocalShardView::get`] probes pay neither `Ctx` accounting
    /// nor per-access mutex churn. This is the keyed complement of
    /// [`DistMap::for_each_local`] (use case 4), built for owner-local graph
    /// algorithms such as the segment-compaction traversal that chase keys
    /// around their own shard millions of times.
    ///
    /// Only sound under the usual owner-local pattern: barrier, then every
    /// rank touches exclusively its own shard. While the view is alive, any
    /// other access to this rank's shard (from this rank or another)
    /// deadlocks — drop the view before going back through `Ctx` paths. With
    /// conformance checking enabled the view registers a *local phase*, so
    /// one-sided probes against this shard fail with a diagnostic naming both
    /// call sites instead of blocking on the held locks.
    #[track_caller]
    pub fn local_view(&self, ctx: &Ctx) -> LocalShardView<'_, K, V> {
        let phase = ctx.begin_local_phase(self.phase_token());
        LocalShardView {
            subs: self.shards[ctx.rank()]
                .subs
                .iter()
                .map(|m| m.lock())
                .collect(),
            _phase: phase,
        }
    }

    /// Mutable owner-local visit.
    pub fn for_each_local_mut(&self, ctx: &Ctx, mut f: impl FnMut(&K, &mut V)) {
        for sub in &self.shards[ctx.rank()].subs {
            for (k, v) in sub.lock().iter_mut() {
                f(k, v);
            }
        }
    }

    /// Removes and returns every entry owned by the calling rank.
    pub fn drain_local(&self, ctx: &Ctx) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for sub in &self.shards[ctx.rank()].subs {
            out.extend(sub.lock().drain());
        }
        out
    }

    /// Keeps only the local entries satisfying the predicate; returns how many
    /// were removed.
    pub fn retain_local(&self, ctx: &Ctx, mut f: impl FnMut(&K, &mut V) -> bool) -> usize {
        let mut removed = 0usize;
        for sub in &self.shards[ctx.rank()].subs {
            let mut guard = sub.lock();
            let before = guard.len();
            guard.retain(|k, v| f(k, v));
            removed += before - guard.len();
        }
        removed
    }

    /// Clones every entry owned by the calling rank into a vector.
    pub fn local_entries(&self, ctx: &Ctx) -> Vec<(K, V)>
    where
        V: Clone,
    {
        let mut out = Vec::new();
        for sub in &self.shards[ctx.rank()].subs {
            out.extend(sub.lock().iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Number of entries owned by the calling rank.
    pub fn local_len(&self, ctx: &Ctx) -> usize {
        self.shards[ctx.rank()]
            .subs
            .iter()
            .map(|m| m.lock().len())
            .sum()
    }

    /// Merges one `(key, value)` known to be owned by the calling rank into
    /// its local shard — the streaming receive side of a routed exchange
    /// (e.g. owner-side supermer expansion). No traffic is recorded: the
    /// shipment that delivered the key was already accounted by its exchange.
    pub fn merge_local(&self, ctx: &Ctx, key: K, value: V, merge: impl FnOnce(&mut V, V)) {
        debug_assert_eq!(
            self.owner_of(&key),
            ctx.rank(),
            "merge_local on a key this rank does not own"
        );
        let sub = sub_of(&key);
        let mut guard = self.shards[ctx.rank()].subs[sub].lock();
        match guard.get_mut(&key) {
            Some(existing) => merge(existing, value),
            None => {
                guard.insert(key, value);
            }
        }
    }

    /// Applies a batch of `(key, value)` items that are already known to be
    /// owned by the calling rank, merging duplicates with `merge`. This is the
    /// receive side of the update-only phase.
    pub fn apply_local_batch(
        &self,
        ctx: &Ctx,
        items: Vec<(K, V)>,
        default: impl Fn(V) -> V,
        merge: impl Fn(&mut V, V),
    ) {
        let shard = &self.shards[ctx.rank()];
        for (key, value) in items {
            let sub = sub_of(&key);
            let mut guard = shard.subs[sub].lock();
            match guard.get_mut(&key) {
                Some(existing) => merge(existing, value),
                None => {
                    guard.insert(key, default(value));
                }
            }
        }
    }
}

/// The view returned by [`DistMap::local_view`]: the calling rank's sub-shard
/// maps, locked once for the lifetime of the view. Dropping the view releases
/// the locks and ends the conformance local phase.
pub struct LocalShardView<'a, K, V> {
    subs: Vec<parking_lot::MutexGuard<'a, FxHashMap<K, V>>>,
    _phase: pgas::LocalPhaseGuard,
}

impl<K, V> LocalShardView<'_, K, V>
where
    K: Hash + Eq,
{
    /// Looks up a key in the viewed shard. The key must be owned by the
    /// viewing rank (a foreign key is simply absent from this shard, so the
    /// caller is expected to have checked `owner_of` first).
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.subs[sub_of(key)].get(key)
    }

    /// True if the viewed shard holds the key.
    #[inline]
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Iterates over every entry of the viewed shard (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.subs.iter().flat_map(|m| m.iter())
    }

    /// Number of entries in the viewed shard.
    pub fn len(&self) -> usize {
        self.subs.iter().map(|m| m.len()).sum()
    }

    /// True if the viewed shard is empty.
    pub fn is_empty(&self) -> bool {
        self.subs.iter().all(|m| m.is_empty())
    }
}

/// The full update-only phase (use case 1 + 4): every rank streams `(K, V)`
/// items into per-owner aggregation buffers; after the exchange each owner
/// merges the received items into its local shard with `merge` (which must be
/// commutative and associative for the result to be insertion-order
/// independent, as the paper requires).
///
/// Collective: every rank must call it, even with an empty iterator.
pub fn bulk_merge<K, V>(
    ctx: &Ctx,
    map: &DistMap<K, V>,
    items: impl IntoIterator<Item = (K, V)>,
    batch: usize,
    merge: impl Fn(&mut V, V) + Copy,
) where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    let mut agg: Aggregator<(K, V)> = Aggregator::new(ctx, batch);
    for (k, v) in items {
        let owner = map.owner_of(&k);
        agg.push(owner, (k, v));
    }
    let received = agg.finish();
    map.apply_local_batch(ctx, received, |v| v, merge);
    ctx.barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::Team;

    #[test]
    fn insert_get_remove_roundtrip() {
        let team = Team::single_node(4);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, String>> = DistMap::shared(ctx);
            // Each rank inserts its own keys.
            for i in 0..100u64 {
                if i as usize % ctx.ranks() == ctx.rank() {
                    map.insert(ctx, i, format!("v{i}"));
                }
            }
            ctx.barrier();
            // Every rank can read every key.
            for i in 0..100u64 {
                assert_eq!(map.get_cloned(ctx, &i), Some(format!("v{i}")));
                assert!(map.contains(ctx, &i));
            }
            assert!(!map.contains(ctx, &1000));
            ctx.barrier();
            if ctx.rank() == 0 {
                assert_eq!(map.len(), 100);
                assert_eq!(map.remove(ctx, &7), Some("v7".into()));
                assert_eq!(map.remove(ctx, &7), None);
            }
            ctx.barrier();
            assert!(!map.contains(ctx, &7));
        });
    }

    #[test]
    fn upsert_accumulates() {
        let team = Team::single_node(4);
        team.run(|ctx| {
            let map: Arc<DistMap<u32, u32>> = DistMap::shared(ctx);
            // All ranks increment all keys.
            for key in 0..50u32 {
                map.upsert(ctx, key, || 0, |v| *v += 1);
            }
            ctx.barrier();
            for key in 0..50u32 {
                assert_eq!(map.get_cloned(ctx, &key), Some(ctx.ranks() as u32));
            }
        });
    }

    #[test]
    fn update_sees_and_mutates_entry() {
        let team = Team::single_node(2);
        team.run(|ctx| {
            let map: Arc<DistMap<u32, u32>> = DistMap::shared(ctx);
            if ctx.rank() == 0 {
                map.insert(ctx, 5, 10);
            }
            ctx.barrier();
            let doubled = map.update(ctx, &5, |v| {
                if ctx.rank() == 1 {
                    if let Some(v) = v {
                        *v *= 2;
                        return true;
                    }
                }
                false
            });
            ctx.barrier();
            if ctx.rank() == 1 {
                assert!(doubled);
                assert_eq!(map.get_cloned(ctx, &5), Some(20));
            }
            let absent = map.update(ctx, &999, |v| v.is_none());
            assert!(absent);
        });
    }

    #[test]
    fn owner_assignment_agrees_across_ranks_and_spreads() {
        let team = Team::single_node(5);
        let owners = team.run(|ctx| {
            let map: Arc<DistMap<u64, ()>> = DistMap::shared(ctx);
            (0..1000u64).map(|k| map.owner_of(&k)).collect::<Vec<_>>()
        });
        for o in &owners[1..] {
            assert_eq!(o, &owners[0]);
        }
        let mut counts = vec![0usize; 5];
        for &o in &owners[0] {
            counts[o] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "skewed owners: {counts:?}");
    }

    #[test]
    fn bulk_merge_counts_words() {
        let team = Team::single_node(4);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            // Every rank contributes the same keys; counts should sum.
            let items = (0..200u64).map(|k| (k % 20, 1u64));
            bulk_merge(ctx, &map, items, 16, |a, b| *a += b);
            if ctx.rank() == 0 {
                assert_eq!(map.len(), 20);
            }
            ctx.barrier();
            for k in 0..20u64 {
                // 200/20 = 10 per rank, times 4 ranks.
                assert_eq!(map.get_cloned(ctx, &k), Some(40));
            }
        });
    }

    #[test]
    fn get_many_matches_per_key_reads_including_absent_and_duplicates() {
        let team = Team::single_node(4);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            bulk_merge(ctx, &map, (0..100u64).map(|k| (k, k * 3)), 16, |a, b| {
                *a += b
            });
            // Present, absent and duplicate keys, different per rank.
            let keys: Vec<u64> = (0..60u64)
                .map(|i| (i * 7 + ctx.rank() as u64 * 13) % 150)
                .collect();
            let got = map.get_many(ctx, &keys, 8);
            let expect: Vec<Option<u64>> = keys.iter().map(|k| map.get_cloned(ctx, k)).collect();
            assert_eq!(got, expect);
            let has = map.contains_many(ctx, &keys, 8);
            assert_eq!(
                has,
                keys.iter().map(|k| *k < 100).collect::<Vec<_>>(),
                "contains_many disagrees"
            );
        });
    }

    #[test]
    fn update_many_applies_once_per_request_on_the_owner() {
        let team = Team::single_node(3);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            bulk_merge(ctx, &map, (0..30u64).map(|k| (k, 0)), 8, |a, b| *a += b);
            // Every rank increments every key once, batched.
            let keys: Vec<u64> = (0..30u64).collect();
            let seen = map.update_many(ctx, &keys, 4, |_, v| match v {
                Some(v) => {
                    *v += 1;
                    true
                }
                None => false,
            });
            assert!(seen.iter().all(|&b| b));
            let absent = map.update_many(ctx, &[999u64], 4, |_, v| v.is_none());
            assert_eq!(absent, vec![true]);
            ctx.barrier();
            for k in 0..30u64 {
                assert_eq!(map.get_cloned(ctx, &k), Some(ctx.ranks() as u64));
            }
        });
    }

    #[test]
    fn get_many_onesided_matches_per_key_reads_and_aggregates_messages() {
        let team = Team::single_node(4);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            bulk_merge(ctx, &map, (0..64u64).map(|k| (k, k + 1)), 16, |a, b| {
                *a += b
            });
            ctx.barrier();
            ctx.stats().reset();
            let keys: Vec<u64> = (0..64u64).chain([500, 501]).collect();
            let got = map.get_many_onesided(ctx, &keys);
            let expect: Vec<Option<u64>> = keys
                .iter()
                .map(|k| if *k < 64 { Some(4 * (*k + 1)) } else { None })
                .collect();
            assert_eq!(got, expect);
            let snap = ctx.stats().snapshot();
            // At most a request + a response per contacted owner.
            assert!(snap.msgs_sent <= 2 * ctx.ranks() as u64);
            assert_eq!(snap.rpc_round_trips, 1);
            assert!(snap.rpc_resp_bytes > 0);
        });
    }

    /// Owner = key % ranks: a deliberately non-hash partitioner.
    struct ModuloPartitioner;
    impl crate::partition::Partitioner<u64> for ModuloPartitioner {
        fn owner_of(&self, key: &u64, ranks: usize) -> usize {
            (*key % ranks as u64) as usize
        }
    }

    #[test]
    fn custom_partitioner_drives_ownership_through_every_access_path() {
        let team = Team::single_node(3);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> =
                ctx.share(|| DistMap::with_partitioner(ctx.ranks(), Arc::new(ModuloPartitioner)));
            for k in 0..90u64 {
                assert_eq!(map.owner_of(&k), (k % 3) as usize);
            }
            bulk_merge(ctx, &map, (0..90u64).map(|k| (k, k + 1)), 8, |a, b| *a += b);
            // bulk_merge routed by the partitioner, so local iteration must
            // see exactly the keys congruent to this rank.
            let mut local = Vec::new();
            map.for_each_local(ctx, |k, _| local.push(*k));
            assert_eq!(local.len(), 30);
            assert!(local.iter().all(|k| *k % 3 == ctx.rank() as u64));
            // Fine-grained and batched reads agree.
            let keys: Vec<u64> = (0..100u64).collect();
            let got = map.get_many(ctx, &keys, 16);
            for (k, v) in keys.iter().zip(got) {
                assert_eq!(v, map.get_cloned(ctx, k));
                // Every one of the 3 ranks contributed (k, k+1) once.
                assert_eq!(v, (*k < 90).then_some(3 * (*k + 1)));
            }
            // The partitioner is inherited by derived maps.
            let derived: Arc<DistMap<u64, u64>> =
                ctx.share(|| DistMap::with_partitioner(ctx.ranks(), map.partitioner()));
            for k in 0..90u64 {
                assert_eq!(derived.owner_of(&k), map.owner_of(&k));
            }
        });
    }

    #[test]
    fn local_iteration_covers_exactly_owned_keys() {
        let team = Team::single_node(3);
        let counts = team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            bulk_merge(ctx, &map, (0..300u64).map(|k| (k, 1)), 32, |a, b| *a += b);
            let mut local = 0usize;
            map.for_each_local(ctx, |_, _| local += 1);
            assert_eq!(local, map.local_len(ctx));
            local
        });
        assert_eq!(counts.iter().sum::<usize>(), 300);
    }

    #[test]
    fn retain_and_drain_local() {
        let team = Team::single_node(3);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            bulk_merge(ctx, &map, (0..90u64).map(|k| (k, k)), 8, |a, b| *a += b);
            let removed = map.retain_local(ctx, |_, v| *v % 2 == 0);
            ctx.barrier();
            let total_removed = ctx.allreduce_sum_u64(removed as u64);
            assert_eq!(total_removed, 45);
            if ctx.rank() == 0 {
                assert_eq!(map.len(), 45);
            }
            ctx.barrier();
            let drained = map.drain_local(ctx);
            let total_drained = ctx.allreduce_sum_u64(drained.len() as u64);
            assert_eq!(total_drained, 45);
            ctx.barrier();
            if ctx.rank() == 0 {
                assert!(map.is_empty());
            }
        });
    }

    #[test]
    #[should_panic(expected = "local_view phase holds it")]
    fn one_sided_get_during_local_view_is_caught() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let team = Team::single_node(2);
        team.set_conformance_checking(true);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            bulk_merge(ctx, &map, (0..64u64).map(|k| (k, k)), 8, |a, b| *a += b);
            let held = ctx.share(|| AtomicBool::new(false));
            if ctx.rank() == 0 {
                let view = map.local_view(ctx);
                held.store(true, Ordering::SeqCst);
                // Wait for rank 1's probe to fire; its panic poisons the
                // barrier, so this collateral abort is swallowed by try_run.
                ctx.barrier();
                drop(view);
            } else {
                while !held.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                // Seeded violation: one-sided batched get while rank 0's
                // local_view phase holds its shard.
                let keys: Vec<u64> = (0..64).collect();
                let _ = map.get_many_onesided(ctx, &keys);
            }
        });
    }

    #[test]
    fn one_sided_get_is_legal_again_after_the_view_drops() {
        let team = Team::single_node(2);
        team.set_conformance_checking(true);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            bulk_merge(ctx, &map, (0..64u64).map(|k| (k, k)), 8, |a, b| *a += b);
            {
                let view = map.local_view(ctx);
                let _ = view.len();
            }
            ctx.barrier();
            let keys: Vec<u64> = (0..64).collect();
            let got = map.get_many_onesided(ctx, &keys);
            assert!(got.iter().all(|v| v.is_some()));
        });
    }
}
