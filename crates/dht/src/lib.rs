//! Distributed hash tables and related distributed data structures.
//!
//! §II-A of the paper identifies four distributed hash-table *use cases* that
//! cover the pipeline's computational patterns. This crate provides the data
//! structures and the matching access disciplines:
//!
//! | Paper use case | API here |
//! |---|---|
//! | 1. Global update-only (commutative inserts, batched) | [`DistMap`] + [`bulk_merge`] (aggregated per-owner batches applied locally) |
//! | 2. Global reads & writes (atomics instead of locks) | [`DistMap::update`] / [`DistMap::update_many`]-style entry mutation under fine-grained sharded locks, with atomic-op accounting |
//! | 3. Global read-only with reuse | [`CachedView`] ([`SoftwareCache`] + batched miss fill) and the bulk read APIs [`DistMap::get_many`] / [`DistMap::contains_many`] over the `pgas` request–response layer |
//! | 4. Local reads & writes after deterministic routing | [`bulk_merge`] / [`DistMap::for_each_local`] / [`DistMap::drain_local`] |
//!
//! The read side mirrors the write side's aggregation: just as `bulk_merge`
//! buffers inserts per owner and ships them in large messages, `get_many`
//! buffers *lookup requests* per owner, the owners answer from their shards,
//! and the responses return in a second aggregated all-to-all
//! ([`pgas::RpcAggregator`]) — the UPC "aggregated gets" of the paper. For
//! dynamically scheduled loops that cannot reach a collective in lockstep
//! (work stealing), [`DistMap::get_many_onesided`] provides the one-sided
//! aggregated variant.
//!
//! Key→owner assignment is pluggable: every [`DistMap`] routes through a
//! [`Partitioner`] ([`HashPartitioner`] by default), so phases that know
//! their access pattern — supermer-routed k-mer analysis partitions its
//! counts table by minimizer — can choose owners while every consumer keeps
//! working unchanged through [`DistMap::owner_of`].
//!
//! plus the auxiliary distributed structures the pipeline needs: a partitioned
//! Bloom filter ([`DistBloom`]), a distributed counting histogram
//! ([`DistHistogram`]) and a streaming heavy-hitter sketch
//! ([`SpaceSaving`]) used by k-mer analysis to survive the extremely skewed
//! k-mer frequency distributions of metagenomes.

pub mod bloom;
pub mod cache;
pub mod dist_map;
pub mod fxhash;
pub mod heavy;
pub mod histogram;
pub mod partition;

pub use bloom::DistBloom;
pub use cache::{CachedView, SoftwareCache};
pub use dist_map::{bulk_merge, DistMap, LocalShardView};
pub use fxhash::{fx_hash_one, FxHashMap, FxHashSet, FxHasher};
pub use heavy::SpaceSaving;
pub use histogram::DistHistogram;
pub use partition::{HashPartitioner, Partitioner, TablePartitioner};
