//! Pluggable key→owner-rank assignment for the distributed hash tables.
//!
//! Every [`crate::DistMap`] routes a key to its owner rank through a
//! [`Partitioner`]. The default, [`HashPartitioner`], spreads keys uniformly
//! by hashing — the right choice when accesses are independent. Some phases,
//! however, know more about their access pattern than a hash does: k-mer
//! analysis routes *supermers* (runs of overlapping k-mers sharing a
//! minimizer) and needs every k-mer of a supermer to be owned by the same
//! rank, so its counts table is built with a minimizer-based partitioner
//! (see `dbg::MinimizerPartitioner`). Because every access path of `DistMap`
//! goes through [`crate::DistMap::owner_of`], consumers of a table — graph
//! construction, injection, batched lookups, cached views — keep working
//! unchanged whatever the partitioner.
//!
//! Implementations must be **deterministic and identical on every rank**:
//! ranks compute owners independently and the table is only consistent if
//! they all agree. Sub-shard selection (lock striping within one owner) stays
//! hash-based regardless of the partitioner.

use crate::fxhash::fx_hash_one;
use std::hash::Hash;

/// Deterministic key→owner assignment shared by all ranks of a team.
pub trait Partitioner<K>: Send + Sync {
    /// The owner rank of `key` among `ranks` ranks (must be `< ranks`).
    fn owner_of(&self, key: &K, ranks: usize) -> usize;

    /// [`Partitioner::owner_of`] with the key's [`fx_hash_one`] value already
    /// computed by the caller. `DistMap` hashes every key once anyway to pick
    /// the sub-shard, so hash-derived partitioners override this to reuse the
    /// hash instead of recomputing it on the fine-grained hot path; the
    /// default ignores the hint. Must return the same owner as `owner_of`.
    #[inline]
    fn owner_of_hashed(&self, key: &K, _hash: u64, ranks: usize) -> usize {
        self.owner_of(key, ranks)
    }
}

/// The default partitioner: owner = `fx_hash(key) % ranks`.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl<K: Hash> Partitioner<K> for HashPartitioner {
    #[inline]
    fn owner_of(&self, key: &K, ranks: usize) -> usize {
        (fx_hash_one(key) % ranks as u64) as usize
    }

    #[inline]
    fn owner_of_hashed(&self, _key: &K, hash: u64, ranks: usize) -> usize {
        (hash % ranks as u64) as usize
    }
}

/// An explicit owner table for dense `u64` key spaces (contig ids): key `i`
/// is owned by `owners[i]`. Keys beyond the table fall back to hashing, so a
/// map keyed this way still behaves for stray ids. The table is computed once
/// (identically on every rank, e.g. size-balanced longest-first assignment of
/// contigs) and shared; it costs O(#keys) small ints, not O(payload).
#[derive(Debug, Clone)]
pub struct TablePartitioner {
    owners: std::sync::Arc<Vec<u32>>,
}

impl TablePartitioner {
    /// Wraps an owner table. Every entry must be a valid rank of the team the
    /// table is used with; `owner_of` clamps by modulo as a defence.
    pub fn new(owners: Vec<u32>) -> Self {
        TablePartitioner {
            owners: std::sync::Arc::new(owners),
        }
    }

    /// The owner table.
    pub fn owners(&self) -> &[u32] {
        &self.owners
    }
}

impl Partitioner<u64> for TablePartitioner {
    #[inline]
    fn owner_of(&self, key: &u64, ranks: usize) -> usize {
        match self.owners.get(*key as usize) {
            Some(&o) => o as usize % ranks.max(1),
            None => (fx_hash_one(key) % ranks as u64) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_stable_and_spreads() {
        let p = HashPartitioner;
        let ranks = 7;
        let mut counts = vec![0usize; ranks];
        for key in 0..7_000u64 {
            let owner = p.owner_of(&key, ranks);
            assert_eq!(owner, p.owner_of(&key, ranks));
            assert!(owner < ranks);
            counts[owner] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "skewed: {counts:?}");
    }

    #[test]
    fn hashed_fast_path_agrees_with_owner_of() {
        let p = HashPartitioner;
        for key in 0..2_000u64 {
            let h = fx_hash_one(&key);
            for ranks in [1usize, 2, 3, 7, 16] {
                assert_eq!(p.owner_of(&key, ranks), p.owner_of_hashed(&key, h, ranks));
            }
        }
    }

    #[test]
    fn table_partitioner_follows_the_table_and_falls_back_to_hash() {
        let p = TablePartitioner::new(vec![2, 0, 1, 1]);
        assert_eq!(p.owner_of(&0u64, 3), 2);
        assert_eq!(p.owner_of(&1u64, 3), 0);
        assert_eq!(p.owner_of(&2u64, 3), 1);
        assert_eq!(p.owner_of(&3u64, 3), 1);
        // Out-of-table keys route by hash, deterministically and in range.
        for key in 4..100u64 {
            let o = p.owner_of(&key, 3);
            assert!(o < 3);
            assert_eq!(o, HashPartitioner.owner_of(&key, 3));
        }
        // A table entry beyond the rank count is clamped, not out of range.
        let clamped = TablePartitioner::new(vec![9]);
        assert!(clamped.owner_of(&0u64, 4) < 4);
        assert_eq!(clamped.owners(), &[9]);
    }
}
