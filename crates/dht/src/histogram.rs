//! Distributed counting histograms.
//!
//! The first stage of k-mer analysis is "count every k-mer across all reads".
//! The UPC implementation routes each k-mer to its owner with aggregated
//! all-to-all messages and counts in owner-local hash tables (use cases 1 and
//! 4). [`DistHistogram`] packages that pattern for any hashable key; the
//! k-mer-specific variant with extension tracking lives in the `dbg` crate and
//! uses [`crate::DistMap`] directly.

use crate::dist_map::{bulk_merge, DistMap};
use pgas::Ctx;
use std::hash::Hash;
use std::sync::Arc;

/// A distributed `key -> count` histogram.
pub struct DistHistogram<K> {
    map: DistMap<K, u64>,
}

impl<K> DistHistogram<K>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
{
    /// Creates a histogram with one shard per rank.
    pub fn new(ranks: usize) -> Self {
        DistHistogram {
            map: DistMap::new(ranks),
        }
    }

    /// Collective constructor sharing one histogram across the team.
    pub fn shared(ctx: &Ctx) -> Arc<Self> {
        ctx.share(|| DistHistogram::new(ctx.ranks()))
    }

    /// Collective: every rank streams its keys; counts are merged on the owners.
    pub fn count_all(&self, ctx: &Ctx, keys: impl IntoIterator<Item = K>, batch: usize) {
        bulk_merge(
            ctx,
            &self.map,
            keys.into_iter().map(|k| (k, 1u64)),
            batch,
            |a, b| *a += b,
        );
    }

    /// The count of one key (fine-grained global read).
    pub fn count_of(&self, ctx: &Ctx, key: &K) -> u64 {
        self.map.get_cloned(ctx, key).unwrap_or(0)
    }

    /// Owner-local iteration over `(key, count)`.
    pub fn for_each_local(&self, ctx: &Ctx, f: impl FnMut(&K, &u64)) {
        self.map.for_each_local(ctx, f)
    }

    /// Number of distinct keys (global, call after a barrier).
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Collective: histogram of counts (i.e. how many keys occur exactly `c`
    /// times, for c in 1..=max_bucket, with an overflow bucket at the end).
    /// Returns the same vector on every rank.
    pub fn count_spectrum(&self, ctx: &Ctx, max_bucket: usize) -> Vec<u64> {
        let mut local = vec![0u64; max_bucket + 1];
        self.map.for_each_local(ctx, |_, &c| {
            // Buckets 0..max_bucket-1 hold counts 1..=max_bucket; the final
            // bucket is the overflow bucket for anything larger.
            let bucket = if (c as usize) > max_bucket {
                max_bucket
            } else {
                c as usize - 1
            };
            local[bucket] += 1;
        });
        // Reduce each bucket across ranks.
        local.iter().map(|&v| ctx.allreduce_sum_u64(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::Team;

    #[test]
    fn counts_accumulate_across_ranks() {
        let team = Team::single_node(4);
        team.run(|ctx| {
            let hist: Arc<DistHistogram<u32>> = DistHistogram::shared(ctx);
            // Each rank counts keys 0..10, each 3 times.
            let keys = (0..30u32).map(|i| i % 10);
            hist.count_all(ctx, keys, 8);
            for k in 0..10u32 {
                assert_eq!(hist.count_of(ctx, &k), 3 * ctx.ranks() as u64);
            }
            assert_eq!(hist.count_of(ctx, &99), 0);
            ctx.barrier();
            if ctx.rank() == 0 {
                assert_eq!(hist.distinct(), 10);
            }
        });
    }

    #[test]
    fn spectrum_buckets_counts() {
        let team = Team::single_node(2);
        let spectra = team.run(|ctx| {
            let hist: Arc<DistHistogram<u32>> = DistHistogram::shared(ctx);
            // Key 1 appears once per rank (total 2), key 2 twice per rank (total 4),
            // key 3 five times per rank (total 10 -> overflow bucket at max 4).
            let mut keys = vec![1u32];
            keys.extend([2, 2]);
            keys.extend([3; 5]);
            hist.count_all(ctx, keys, 4);
            hist.count_spectrum(ctx, 4)
        });
        for s in &spectra {
            assert_eq!(s[1], 1, "one key with count 2");
            assert_eq!(s[3], 1, "one key with count 4");
            assert_eq!(s[4 - 1 + 1], 1, "overflow bucket holds the heavy key");
        }
    }
}
