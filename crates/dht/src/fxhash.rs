//! The Fx hash function (as used by rustc) and convenience aliases.
//!
//! The distributed hash tables hash every k-mer at least twice (once to pick
//! the owner rank, once inside the owner's local table), so the default
//! SipHash of `std` would be a measurable cost. FxHash is the standard fast
//! replacement recommended by the Rust performance guide; implementing it
//! here (it is ~20 lines) avoids pulling in an extra dependency.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash hasher: a very fast multiply-xor-rotate hash. Not HashDoS
/// resistant, which is fine for internal genomic keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // lint: allow(unwrap): chunks_exact(8) yields exactly 8-byte slices
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Hashes a single value with FxHash; used to derive owner ranks and Bloom
/// filter probe positions deterministically across ranks.
pub fn fx_hash_one<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(fx_hash_one(&12345u64), fx_hash_one(&12345u64));
        assert_eq!(fx_hash_one(&"hello"), fx_hash_one(&"hello"));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(fx_hash_one(&1u64), fx_hash_one(&2u64));
        assert_ne!(fx_hash_one(&"a"), fx_hash_one(&"b"));
    }

    #[test]
    fn map_and_set_usable() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        assert_eq!(m.get("x"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }

    #[test]
    fn distributes_small_integers() {
        // Owner selection uses hash % ranks; consecutive integers must not all
        // collapse onto one owner.
        let ranks = 8u64;
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            seen.insert(fx_hash_one(&i) % ranks);
        }
        assert!(seen.len() >= 4, "hash should spread keys over owners");
    }
}
