//! Distributed Bloom filter.
//!
//! K-mer analysis on metagenomes would explode in memory if every erroneous
//! singleton k-mer were given a full hash-table entry. HipMer/MetaHipMer avoid
//! this with a distributed Bloom filter: a k-mer is only inserted into the
//! counting table once the filter reports it has (probably) been seen before,
//! so the vast majority of error k-mers (which appear exactly once) never take
//! up table space. The filter is partitioned by the same owner hashing as the
//! tables, so the "have I seen this before" check happens on the owner rank.

use crate::fxhash::fx_hash_one;
use pgas::Ctx;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

/// A partitioned Bloom filter with atomically updated bit words.
pub struct DistBloom {
    /// One bit array per owner shard.
    shards: Vec<Vec<AtomicU64>>,
    bits_per_shard: usize,
    hashes: usize,
}

impl DistBloom {
    /// Creates a filter partitioned over `ranks` shards, sized for
    /// `expected_items_per_shard` items at roughly the given false-positive
    /// rate.
    pub fn new(ranks: usize, expected_items_per_shard: usize, fp_rate: f64) -> Self {
        assert!(ranks > 0);
        let n = expected_items_per_shard.max(16) as f64;
        let fp = fp_rate.clamp(1e-6, 0.5);
        // Standard Bloom sizing: m = -n ln p / (ln 2)^2 ; k = m/n ln 2.
        let m =
            (-(n * fp.ln()) / (std::f64::consts::LN_2 * std::f64::consts::LN_2)).ceil() as usize;
        let bits_per_shard = m.next_power_of_two().max(64);
        let hashes = ((bits_per_shard as f64 / n) * std::f64::consts::LN_2)
            .round()
            .max(1.0) as usize;
        let words = bits_per_shard / 64;
        DistBloom {
            shards: (0..ranks)
                .map(|_| (0..words).map(|_| AtomicU64::new(0)).collect())
                .collect(),
            bits_per_shard,
            hashes: hashes.min(8),
        }
    }

    /// The owner shard of a key (same convention as [`crate::DistMap`]).
    pub fn owner_of<K: Hash>(&self, key: &K) -> usize {
        (fx_hash_one(key) % self.shards.len() as u64) as usize
    }

    fn probes<K: Hash>(&self, key: &K) -> impl Iterator<Item = usize> + '_ {
        // Double hashing: position_i = h1 + i*h2 (Kirsch–Mitzenmacher).
        let h = fx_hash_one(key);
        let h1 = h & 0xFFFF_FFFF;
        let h2 = (h >> 32) | 1; // odd so it is coprime with the power-of-two size
        let mask = (self.bits_per_shard - 1) as u64;
        (0..self.hashes)
            .map(move |i| ((h1.wrapping_add(h2.wrapping_mul(i as u64))) & mask) as usize)
    }

    /// Inserts a key and returns whether it was (probably) present before —
    /// the "second occurrence" signal used to admit k-mers into the counting
    /// table. Atomic with respect to concurrent inserts.
    pub fn insert_and_check<K: Hash>(&self, ctx: &Ctx, key: &K) -> bool {
        let owner = self.owner_of(key);
        ctx.record_access(owner);
        self.insert_and_check_shard(owner, key)
    }

    /// [`DistBloom::insert_and_check`] against an explicitly chosen shard,
    /// without traffic accounting. This is the owner-side half of routed
    /// phases: when the caller has already shipped the key to its owner rank
    /// (e.g. supermer-routed k-mer analysis, where ownership follows the
    /// minimizer rather than the filter's own hash), the owner checks its
    /// local shard directly.
    pub fn insert_and_check_shard<K: Hash>(&self, shard_idx: usize, key: &K) -> bool {
        let shard = &self.shards[shard_idx];
        let mut all_set = true;
        for bit in self.probes(key) {
            let word = bit / 64;
            let mask = 1u64 << (bit % 64);
            let prev = shard[word].fetch_or(mask, Ordering::Relaxed);
            if prev & mask == 0 {
                all_set = false;
            }
        }
        all_set
    }

    /// Membership test without inserting.
    pub fn maybe_contains<K: Hash>(&self, ctx: &Ctx, key: &K) -> bool {
        let owner = self.owner_of(key);
        ctx.record_access(owner);
        let shard = &self.shards[owner];
        self.probes(key).all(|bit| {
            let word = bit / 64;
            let mask = 1u64 << (bit % 64);
            shard[word].load(Ordering::Relaxed) & mask != 0
        })
    }

    /// Total bits per shard (for introspection/tests).
    pub fn bits_per_shard(&self) -> usize {
        self.bits_per_shard
    }

    /// Number of probe positions per key.
    pub fn num_hashes(&self) -> usize {
        self.hashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::Team;
    use std::sync::Arc;

    #[test]
    fn inserted_keys_are_found() {
        let team = Team::single_node(2);
        team.run(|ctx| {
            let bloom = ctx.share(|| DistBloom::new(ctx.ranks(), 10_000, 0.01));
            if ctx.rank() == 0 {
                for i in 0..1000u64 {
                    bloom.insert_and_check(ctx, &i);
                }
            }
            ctx.barrier();
            for i in 0..1000u64 {
                assert!(bloom.maybe_contains(ctx, &i), "false negative for {i}");
            }
        });
    }

    #[test]
    fn second_insert_reports_seen() {
        let team = Team::single_node(1);
        team.run(|ctx| {
            let bloom = DistBloom::new(1, 1000, 0.01);
            assert!(!bloom.insert_and_check(ctx, &42u64));
            assert!(bloom.insert_and_check(ctx, &42u64));
        });
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let team = Team::single_node(1);
        team.run(|ctx| {
            let bloom = DistBloom::new(1, 10_000, 0.01);
            for i in 0..10_000u64 {
                bloom.insert_and_check(ctx, &i);
            }
            let fps = (100_000u64..200_000u64)
                .filter(|i| bloom.maybe_contains(ctx, i))
                .count();
            let rate = fps as f64 / 100_000.0;
            assert!(rate < 0.05, "false positive rate too high: {rate}");
        });
    }

    #[test]
    fn concurrent_inserts_never_lose_bits() {
        let team = Team::single_node(4);
        let bloom_handle = {
            let team2 = Arc::clone(&team);
            team2.run(|ctx| {
                let bloom = ctx.share(|| DistBloom::new(ctx.ranks(), 50_000, 0.01));
                // All ranks insert an interleaved key range concurrently.
                for i in (ctx.rank() as u64..40_000).step_by(ctx.ranks()) {
                    bloom.insert_and_check(ctx, &i);
                }
                ctx.barrier();
                // Everything must now be visible to every rank.

                (0..40_000u64)
                    .filter(|i| !bloom.maybe_contains(ctx, i))
                    .count()
            })
        };
        assert!(bloom_handle.iter().all(|&m| m == 0));
    }

    #[test]
    fn sizing_monotonic_in_fp_rate() {
        let tight = DistBloom::new(1, 10_000, 0.001);
        let loose = DistBloom::new(1, 10_000, 0.1);
        assert!(tight.bits_per_shard() >= loose.bits_per_shard());
        assert!(tight.num_hashes() >= 1 && tight.num_hashes() <= 8);
    }
}
