//! Streaming heavy-hitter detection (Space-Saving sketch).
//!
//! §II-B: metagenomes contain k-mers that occur millions of times (from highly
//! abundant organisms). Routing all of their occurrences to a single owner
//! rank would create severe load imbalance, so HipMer/MetaHipMer first
//! identify such "heavy hitters" with a streaming summary and treat them
//! specially (their counts are accumulated locally and combined once).
//! [`SpaceSaving`] is the classic counter-based summary used for this purpose:
//! it never misses a key whose true frequency exceeds `N / capacity`.

use crate::fxhash::FxHashMap;
use std::hash::Hash;

/// A Space-Saving (Metwally et al.) top-k frequency sketch.
#[derive(Debug, Clone)]
pub struct SpaceSaving<K> {
    capacity: usize,
    /// key -> (count, overestimation error)
    counters: FxHashMap<K, (u64, u64)>,
    total: u64,
}

impl<K: Hash + Eq + Clone> SpaceSaving<K> {
    /// Creates a sketch tracking at most `capacity` keys.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SpaceSaving {
            capacity,
            counters: FxHashMap::default(),
            total: 0,
        }
    }

    /// Number of items offered so far (sum of weights).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of tracked keys (≤ capacity).
    pub fn tracked(&self) -> usize {
        self.counters.len()
    }

    /// Offers one occurrence of `key` with the given weight.
    pub fn offer(&mut self, key: K, weight: u64) {
        self.total += weight;
        if let Some(entry) = self.counters.get_mut(&key) {
            entry.0 += weight;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key, (weight, 0));
            return;
        }
        // Evict the minimum counter and take over its count as error bound.
        let (min_key, min_count) = self
            .counters
            .iter()
            .min_by_key(|(_, &(c, _))| c)
            .map(|(k, &(c, _))| (k.clone(), c))
            // lint: allow(unwrap): this branch only runs when len == capacity > 0
            .expect("sketch is non-empty at capacity");
        self.counters.remove(&min_key);
        self.counters.insert(key, (min_count + weight, min_count));
    }

    /// Merges another sketch into this one (used to combine per-rank sketches).
    pub fn merge(&mut self, other: &SpaceSaving<K>) {
        for (k, &(count, err)) in &other.counters {
            match self.counters.get_mut(k) {
                Some(entry) => {
                    entry.0 += count;
                    entry.1 += err;
                }
                None => {
                    self.counters.insert(k.clone(), (count, err));
                }
            }
        }
        self.total += other.total;
        // Re-trim to capacity by dropping the smallest counters.
        if self.counters.len() > self.capacity {
            let mut entries: Vec<(K, (u64, u64))> = self.counters.drain().collect();
            entries.sort_by_key(|e| std::cmp::Reverse(e.1 .0));
            entries.truncate(self.capacity);
            self.counters = entries.into_iter().collect();
        }
    }

    /// Returns every tracked key whose *guaranteed* count (count − error)
    /// meets `threshold`, sorted by estimated count descending.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)> {
        let mut out: Vec<(K, u64)> = self
            .counters
            .iter()
            .filter(|(_, &(c, e))| c.saturating_sub(e) >= threshold)
            .map(|(k, &(c, _))| (k.clone(), c))
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.1));
        out
    }

    /// The estimated count of a key (0 if untracked).
    pub fn estimate(&self, key: &K) -> u64 {
        self.counters.get(key).map(|&(c, _)| c).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(100);
        for i in 0..50u32 {
            for _ in 0..=i {
                ss.offer(i, 1);
            }
        }
        for i in 0..50u32 {
            assert_eq!(ss.estimate(&i), (i + 1) as u64);
        }
        assert_eq!(ss.tracked(), 50);
    }

    #[test]
    fn finds_true_heavy_hitter_in_noise() {
        let mut ss = SpaceSaving::new(16);
        // One key occurs 10_000 times among 20_000 distinct noise keys.
        for i in 0..10_000u64 {
            ss.offer(u64::MAX, 1);
            ss.offer(i, 1);
            ss.offer(10_000 + i, 1);
        }
        let hh = ss.heavy_hitters(5_000);
        assert!(
            hh.iter().any(|(k, _)| *k == u64::MAX),
            "missed the heavy hitter"
        );
        assert!(ss.estimate(&u64::MAX) >= 10_000);
        assert_eq!(ss.tracked(), 16);
    }

    #[test]
    fn merge_combines_sketches() {
        let mut a = SpaceSaving::new(8);
        let mut b = SpaceSaving::new(8);
        for _ in 0..500 {
            a.offer("hot", 1);
            b.offer("hot", 1);
            b.offer("warm", 1);
        }
        a.merge(&b);
        assert_eq!(a.total(), 1500);
        assert!(a.estimate(&"hot") >= 1000);
        assert!(a.estimate(&"warm") >= 500);
        let hh = a.heavy_hitters(900);
        assert_eq!(hh[0].0, "hot");
    }

    #[test]
    fn weights_respected() {
        let mut ss = SpaceSaving::new(4);
        ss.offer(1u8, 10);
        ss.offer(2u8, 3);
        assert_eq!(ss.estimate(&1), 10);
        assert_eq!(ss.total(), 13);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = SpaceSaving::<u32>::new(0);
    }
}
