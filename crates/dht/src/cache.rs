//! Software caching for the global read-only hash-table phase (use case 3).
//!
//! During read-to-contig alignment the seed index is read-only, and reads
//! mapped to the same contig region look up mostly the same seeds. merAligner
//! therefore caches remote hash-table entries on the requesting rank; the
//! cache never needs invalidation because the phase is read-only. The paper's
//! read-localisation optimisation exists precisely to raise this cache's hit
//! rate, so the hit/miss counters recorded here feed Figure 3.

use crate::dist_map::DistMap;
use crate::fxhash::FxHashMap;
use pgas::Ctx;
use std::hash::Hash;
use std::sync::atomic::Ordering;

/// A per-rank, bounded, read-through cache over a [`DistMap`].
///
/// Negative results (key absent) are cached too — repeated lookups of absent
/// seeds are common when reads carry sequencing errors.
pub struct SoftwareCache<K, V> {
    entries: FxHashMap<K, Option<V>>,
    capacity: usize,
}

impl<K, V> SoftwareCache<K, V>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Creates a cache bounded to `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        SoftwareCache {
            entries: FxHashMap::default(),
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key`, serving from the cache when possible and falling back
    /// to the distributed map on a miss. Hit/miss counts are recorded in the
    /// rank's statistics; only misses touch the distributed map (and therefore
    /// only misses generate remote traffic).
    pub fn get(&mut self, ctx: &Ctx, map: &DistMap<K, V>, key: &K) -> Option<V> {
        if self.capacity > 0 {
            if let Some(cached) = self.entries.get(key) {
                ctx.stats().cache_hits.fetch_add(1, Ordering::Relaxed);
                return cached.clone();
            }
        }
        ctx.stats().cache_misses.fetch_add(1, Ordering::Relaxed);
        let fetched = map.get_cloned(ctx, key);
        if self.capacity > 0 {
            if self.entries.len() >= self.capacity {
                // Simple wholesale eviction: the access pattern is streaming
                // (reads processed one after another), so an LRU would add
                // bookkeeping for little benefit. HipMer's cache does the same.
                self.entries.clear();
            }
            self.entries.insert(key.clone(), fetched.clone());
        }
        fetched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::Team;
    use std::sync::Arc;

    #[test]
    fn repeated_lookups_hit_cache() {
        let team = Team::single_node(2);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            if ctx.rank() == 0 {
                for i in 0..10u64 {
                    map.insert(ctx, i, i * i);
                }
            }
            ctx.barrier();
            team_reset_guard(ctx);
            let mut cache = SoftwareCache::new(1024);
            for _round in 0..5 {
                for i in 0..10u64 {
                    assert_eq!(cache.get(ctx, &map, &i), Some(i * i));
                }
            }
            let stats = ctx.stats().snapshot();
            assert_eq!(stats.cache_misses, 10);
            assert_eq!(stats.cache_hits, 40);
        });
    }

    // Helper: clear only this rank's counters so assertions are per-rank.
    fn team_reset_guard(ctx: &pgas::Ctx) {
        ctx.stats().reset();
        ctx.barrier();
    }

    #[test]
    fn negative_results_cached() {
        let team = Team::single_node(1);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            let mut cache = SoftwareCache::new(16);
            assert_eq!(cache.get(ctx, &map, &42), None);
            assert_eq!(cache.get(ctx, &map, &42), None);
            let stats = ctx.stats().snapshot();
            assert_eq!(stats.cache_misses, 1);
            assert_eq!(stats.cache_hits, 1);
        });
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let team = Team::single_node(1);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            map.insert(ctx, 1, 2);
            ctx.stats().reset();
            let mut cache = SoftwareCache::new(0);
            for _ in 0..3 {
                assert_eq!(cache.get(ctx, &map, &1), Some(2));
            }
            assert_eq!(ctx.stats().snapshot().cache_hits, 0);
            assert_eq!(ctx.stats().snapshot().cache_misses, 3);
            assert!(cache.is_empty());
        });
    }

    #[test]
    fn eviction_keeps_cache_bounded() {
        let team = Team::single_node(1);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            for i in 0..100u64 {
                map.insert(ctx, i, i);
            }
            let mut cache = SoftwareCache::new(10);
            for i in 0..100u64 {
                cache.get(ctx, &map, &i);
                assert!(cache.len() <= 10);
            }
        });
    }
}
