//! Software caching for the global read-only hash-table phase (use case 3).
//!
//! During read-to-contig alignment the seed index is read-only, and reads
//! mapped to the same contig region look up mostly the same seeds. merAligner
//! therefore caches remote hash-table entries on the requesting rank; the
//! cache never needs invalidation because the phase is read-only. The paper's
//! read-localisation optimisation exists precisely to raise this cache's hit
//! rate, so the hit/miss/eviction counters recorded here feed Figure 3.
//!
//! Two layers live here:
//!
//! * [`SoftwareCache`] — the bounded per-rank store itself. The capacity is a
//!   hard bound enforced by FIFO eviction (the access pattern is streaming —
//!   reads processed one after another — so insertion order approximates
//!   recency without per-access bookkeeping); evictions are counted in
//!   `CommStats::cache_evictions`.
//! * [`CachedView`] — a cache coupled to its backing [`DistMap`]: lookups are
//!   served from the cache when possible and **all misses of a batch are
//!   fetched in one aggregated request–response round trip** through
//!   [`DistMap::get_many`], the merAligner pattern of buffering seed requests
//!   per owner and receiving batched responses.

use crate::dist_map::DistMap;
use crate::fxhash::FxHashMap;
use pgas::Ctx;
use std::collections::VecDeque;
use std::hash::Hash;

/// The weight function of a weighted [`SoftwareCache`].
type Weigher<V> = Box<dyn Fn(&V) -> usize + Send + Sync>;

/// A per-rank, bounded, read-through cache over a [`DistMap`].
///
/// Negative results (key absent) are cached too — repeated lookups of absent
/// seeds are common when reads carry sequencing errors.
///
/// The bound is expressed in *weight units*: by default every entry weighs 1,
/// so `capacity` is an entry count; [`SoftwareCache::new_weighted`] supplies a
/// per-value weigher (e.g. packed bytes for the distributed contig store) and
/// `capacity` then bounds the total resident weight instead.
pub struct SoftwareCache<K, V> {
    entries: FxHashMap<K, Option<V>>,
    /// Insertion order, oldest first; drives FIFO eviction.
    order: VecDeque<K>,
    /// Maximum total weight (entries for the default weigher).
    capacity: usize,
    /// Weight of a cached value; `None` weighs every entry as 1.
    weigher: Option<Weigher<V>>,
    /// Current total weight of the cached entries.
    weight: usize,
}

impl<K, V> SoftwareCache<K, V>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Creates a cache bounded to `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        SoftwareCache {
            entries: FxHashMap::default(),
            order: VecDeque::new(),
            capacity,
            weigher: None,
            weight: 0,
        }
    }

    /// Creates a cache whose bound is the total *weight* of the cached values
    /// as measured by `weigher` (cached absences weigh 1). Values heavier than
    /// the whole capacity are never cached — they would evict everything else
    /// and still break the bound.
    pub fn new_weighted(
        capacity: usize,
        weigher: impl Fn(&V) -> usize + Send + Sync + 'static,
    ) -> Self {
        SoftwareCache {
            weigher: Some(Box::new(weigher)),
            ..SoftwareCache::new(capacity)
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current total weight of the cached entries (equals [`Self::len`] for
    /// the default entry-count weigher). The resident-bytes figure of a
    /// byte-weighted cache.
    pub fn resident_weight(&self) -> usize {
        self.weight
    }

    fn weight_of(&self, value: &Option<V>) -> usize {
        match (value, &self.weigher) {
            (Some(v), Some(w)) => w(v).max(1),
            _ => 1,
        }
    }

    /// Empties the cache: every entry (values and cached absences) is
    /// dropped and the resident weight returns to zero, while the capacity,
    /// the weigher and the rank's eviction/hit/miss counters are untouched —
    /// a clear is a deliberate reset (e.g. after checkpoint-restore
    /// verification reads), not an eviction, so it must not inflate the
    /// eviction statistics the ablation harnesses compare.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.weight = 0;
    }

    /// Non-recording probe: `Some(&cached)` if the key is cached (the inner
    /// `Option` distinguishes a cached value from a cached absence), `None`
    /// if the cache holds nothing for it.
    pub fn peek(&self, key: &K) -> Option<&Option<V>> {
        if self.capacity == 0 {
            return None;
        }
        self.entries.get(key)
    }

    /// Inserts a fetched result, evicting the oldest entries while the total
    /// weight exceeds the capacity (evictions are recorded in the rank's
    /// statistics). Re-inserting a cached key refreshes the value in place —
    /// the key keeps its original queue position and no duplicate order entry
    /// is enqueued (a duplicate would inflate `cache_evictions` and evict live
    /// keys early).
    pub fn insert(&mut self, ctx: &Ctx, key: K, value: Option<V>) {
        mhm_sched::yield_point("dht::cache::insert");
        if self.capacity == 0 {
            return;
        }
        let w = self.weight_of(&value);
        if w > self.capacity {
            // Oversized value: drop any cached copy and do not cache it. The
            // key's order entry must go too — left behind, a later re-insert
            // of the same key would enqueue a duplicate, and the stale front
            // copy would then evict the live entry prematurely.
            if let Some(old) = self.entries.remove(&key) {
                self.weight -= self.weight_of(&old);
                self.order.retain(|k| k != &key);
            }
            return;
        }
        if let Some(slot) = self.entries.get_mut(&key) {
            // Refresh in place; the key keeps its original queue position.
            let old_w = match (slot.as_ref(), &self.weigher) {
                (Some(v), Some(weigh)) => weigh(v).max(1),
                _ => 1,
            };
            self.weight = self.weight - old_w + w;
            *slot = value;
        } else {
            self.order.push_back(key.clone());
            self.entries.insert(key, value);
            self.weight += w;
        }
        while self.weight > self.capacity {
            match self.order.pop_front() {
                Some(oldest) => {
                    if let Some(old) = self.entries.remove(&oldest) {
                        self.weight -= self.weight_of(&old);
                        ctx.record_cache_eviction();
                    }
                }
                None => break,
            }
        }
    }

    /// Looks up `key`, serving from the cache when possible and falling back
    /// to the distributed map on a miss. Hit/miss counts are recorded in the
    /// rank's statistics; only misses touch the distributed map (and therefore
    /// only misses generate remote traffic). This is the fine-grained path;
    /// batched phases go through [`CachedView::get_many`].
    pub fn get(&mut self, ctx: &Ctx, map: &DistMap<K, V>, key: &K) -> Option<V> {
        mhm_sched::yield_point("dht::cache::get");
        if let Some(cached) = self.peek(key) {
            ctx.record_cache_hits(1);
            return cached.clone();
        }
        ctx.record_cache_misses(1);
        let fetched = map.get_cloned(ctx, key);
        self.insert(ctx, key.clone(), fetched.clone());
        fetched
    }
}

/// A read-only view of a [`DistMap`] through a [`SoftwareCache`] that fills
/// **all** cache misses of a batch in a single aggregated request–response
/// round trip.
pub struct CachedView<'m, K, V> {
    map: &'m DistMap<K, V>,
    cache: SoftwareCache<K, V>,
    /// Per-owner request batch size handed to the RPC layer.
    batch: usize,
}

impl<'m, K, V> CachedView<'m, K, V>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Creates a view with a cache of `capacity` entries, batching requests
    /// into aggregated messages of at most `batch` lookups per owner.
    pub fn new(map: &'m DistMap<K, V>, capacity: usize, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        CachedView {
            map,
            cache: SoftwareCache::new(capacity),
            batch,
        }
    }

    /// The underlying cache (for introspection).
    pub fn cache(&self) -> &SoftwareCache<K, V> {
        &self.cache
    }

    /// Fine-grained single lookup through the cache (not collective).
    pub fn get(&mut self, ctx: &Ctx, key: &K) -> Option<V> {
        self.cache.get(ctx, self.map, key)
    }

    /// Collective batched lookup: serves cache hits locally, fetches every
    /// distinct miss of the batch in **one** aggregated round trip through
    /// [`DistMap::get_many`], and returns the results in key order. Duplicate
    /// keys within the batch cost one fetch (and count as hits beyond the
    /// first occurrence, matching what the sequential fine-grained path would
    /// record). Every rank must call this in the same phase; an empty `keys`
    /// slice still participates in the collective.
    pub fn get_many(&mut self, ctx: &Ctx, keys: &[K]) -> Vec<Option<V>> {
        // Pass 1: classify each key as cached or to-be-fetched.
        let mut misses: Vec<K> = Vec::new();
        let mut miss_index: FxHashMap<K, usize> = FxHashMap::default();
        // Ok(value) = served from cache; Err(i) = misses[i].
        let mut resolved: Vec<Result<Option<V>, usize>> = Vec::with_capacity(keys.len());
        let mut hits = 0u64;
        for key in keys {
            if let Some(cached) = self.cache.peek(key) {
                hits += 1;
                resolved.push(Ok(cached.clone()));
            } else if let Some(&i) = miss_index.get(key) {
                hits += 1; // duplicate of an in-flight fetch: no extra traffic
                resolved.push(Err(i));
            } else {
                let i = misses.len();
                miss_index.insert(key.clone(), i);
                misses.push(key.clone());
                resolved.push(Err(i));
            }
        }
        ctx.record_cache_hits(hits);
        ctx.record_cache_misses(misses.len() as u64);
        // One aggregated round trip for every miss (collective!).
        let fetched = self.map.get_many(ctx, &misses, self.batch);
        for (key, value) in misses.iter().zip(&fetched) {
            self.cache.insert(ctx, key.clone(), value.clone());
        }
        resolved
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(i) => fetched[i].clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::Team;
    use std::sync::Arc;

    #[test]
    fn repeated_lookups_hit_cache() {
        let team = Team::single_node(2);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            if ctx.rank() == 0 {
                for i in 0..10u64 {
                    map.insert(ctx, i, i * i);
                }
            }
            ctx.barrier();
            team_reset_guard(ctx);
            let mut cache = SoftwareCache::new(1024);
            for _round in 0..5 {
                for i in 0..10u64 {
                    assert_eq!(cache.get(ctx, &map, &i), Some(i * i));
                }
            }
            let stats = ctx.stats().snapshot();
            assert_eq!(stats.cache_misses, 10);
            assert_eq!(stats.cache_hits, 40);
        });
    }

    // Helper: clear only this rank's counters so assertions are per-rank.
    fn team_reset_guard(ctx: &pgas::Ctx) {
        ctx.stats().reset();
        ctx.barrier();
    }

    #[test]
    fn negative_results_cached() {
        let team = Team::single_node(1);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            let mut cache = SoftwareCache::new(16);
            assert_eq!(cache.get(ctx, &map, &42), None);
            assert_eq!(cache.get(ctx, &map, &42), None);
            let stats = ctx.stats().snapshot();
            assert_eq!(stats.cache_misses, 1);
            assert_eq!(stats.cache_hits, 1);
        });
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let team = Team::single_node(1);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            map.insert(ctx, 1, 2);
            ctx.stats().reset();
            let mut cache = SoftwareCache::new(0);
            for _ in 0..3 {
                assert_eq!(cache.get(ctx, &map, &1), Some(2));
            }
            assert_eq!(ctx.stats().snapshot().cache_hits, 0);
            assert_eq!(ctx.stats().snapshot().cache_misses, 3);
            assert!(cache.is_empty());
        });
    }

    #[test]
    fn eviction_enforces_the_bound_fifo_and_is_counted() {
        let team = Team::single_node(1);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            for i in 0..100u64 {
                map.insert(ctx, i, i);
            }
            ctx.stats().reset();
            let mut cache = SoftwareCache::new(10);
            for i in 0..100u64 {
                cache.get(ctx, &map, &i);
                assert!(cache.len() <= 10, "capacity bound violated at {i}");
            }
            assert_eq!(cache.len(), 10);
            // FIFO: the ten most recent keys survive, the oldest are gone.
            for i in 90..100u64 {
                assert!(cache.peek(&i).is_some(), "recent key {i} evicted");
            }
            for i in 0..10u64 {
                assert!(cache.peek(&i).is_none(), "old key {i} not evicted");
            }
            let stats = ctx.stats().snapshot();
            assert_eq!(stats.cache_evictions, 90);
            assert_eq!(stats.cache_misses, 100);
        });
    }

    #[test]
    fn reinserting_a_cached_key_does_not_grow_the_queue() {
        let team = Team::single_node(1);
        team.run(|ctx| {
            let mut cache: SoftwareCache<u64, u64> = SoftwareCache::new(4);
            for round in 0..5u64 {
                for k in 0..4u64 {
                    cache.insert(ctx, k, Some(round));
                }
            }
            assert_eq!(cache.len(), 4);
            assert_eq!(ctx.stats().snapshot().cache_evictions, 0);
            assert_eq!(cache.peek(&3), Some(&Some(4)));
        });
    }

    #[test]
    fn reinserting_one_key_capacity_plus_one_times_never_evicts() {
        // Regression guard for the FIFO order queue: re-inserting an
        // already-present key must not enqueue a duplicate order entry, so
        // hammering a single key `capacity + 1` times causes zero evictions
        // and the cache holds exactly one entry.
        let team = Team::single_node(1);
        team.run(|ctx| {
            let capacity = 8usize;
            let mut cache: SoftwareCache<u64, u64> = SoftwareCache::new(capacity);
            for round in 0..=capacity as u64 {
                cache.insert(ctx, 42, Some(round));
            }
            assert_eq!(cache.len(), 1);
            assert_eq!(cache.resident_weight(), 1);
            assert_eq!(ctx.stats().snapshot().cache_evictions, 0);
            assert_eq!(cache.peek(&42), Some(&Some(capacity as u64)));
        });
    }

    #[test]
    fn clear_empties_the_cache_but_leaves_eviction_counters_alone() {
        let team = Team::single_node(1);
        team.run(|ctx| {
            let mut cache: SoftwareCache<u64, usize> =
                SoftwareCache::new_weighted(100, |v: &usize| *v);
            for k in 0..10u64 {
                cache.insert(ctx, k, Some(30)); // only three fit; seven evict
            }
            let evictions_before = ctx.stats().snapshot().cache_evictions;
            assert_eq!(evictions_before, 7);
            cache.clear();
            assert_eq!(cache.len(), 0);
            assert!(cache.is_empty());
            assert_eq!(cache.resident_weight(), 0);
            assert!(cache.peek(&9).is_none(), "cleared entries must be gone");
            // The regression this guards: a clear is not an eviction, so the
            // counter must survive unchanged...
            assert_eq!(ctx.stats().snapshot().cache_evictions, evictions_before);
            // ...and the cache must behave exactly like a fresh one after:
            // full capacity available, FIFO order rebuilt from scratch.
            for k in 100..110u64 {
                cache.insert(ctx, k, Some(30));
            }
            assert_eq!(cache.len(), 3);
            assert!(cache.peek(&109).is_some());
            assert!(cache.peek(&100).is_none());
            assert_eq!(ctx.stats().snapshot().cache_evictions, evictions_before + 7);
        });
    }

    #[test]
    fn weighted_cache_bounds_total_weight_not_entries() {
        let team = Team::single_node(1);
        team.run(|ctx| {
            // Weight = value itself; capacity 100 weight units.
            let mut cache: SoftwareCache<u64, usize> =
                SoftwareCache::new_weighted(100, |v: &usize| *v);
            for k in 0..10u64 {
                cache.insert(ctx, k, Some(30));
            }
            // Only three 30-unit values fit under 100.
            assert!(
                cache.resident_weight() <= 100,
                "{}",
                cache.resident_weight()
            );
            assert_eq!(cache.len(), 3);
            // FIFO: the newest three survive.
            assert!(cache.peek(&9).is_some());
            assert!(cache.peek(&0).is_none());
            assert_eq!(ctx.stats().snapshot().cache_evictions, 7);
            // Cached absences weigh one unit.
            cache.insert(ctx, 100, None);
            assert_eq!(cache.resident_weight(), 91);
            // A refresh to a heavier value adjusts the weight in place.
            cache.insert(ctx, 9, Some(35));
            assert!(cache.resident_weight() <= 100);
            assert_eq!(cache.peek(&9), Some(&Some(35)));
        });
    }

    #[test]
    fn weighted_cache_skips_oversized_values() {
        let team = Team::single_node(1);
        team.run(|ctx| {
            let mut cache: SoftwareCache<u64, usize> =
                SoftwareCache::new_weighted(50, |v: &usize| *v);
            cache.insert(ctx, 1, Some(10));
            cache.insert(ctx, 2, Some(500)); // heavier than the whole cache
            assert!(cache.peek(&2).is_none(), "oversized value must not cache");
            assert_eq!(cache.peek(&1), Some(&Some(10)));
            assert_eq!(cache.resident_weight(), 10);
            // Refreshing a cached key with an oversized value drops it.
            cache.insert(ctx, 1, Some(500));
            assert!(cache.peek(&1).is_none());
            assert_eq!(cache.resident_weight(), 0);
            assert_eq!(cache.len(), 0);
            // The drop also removed the key's order entry: re-inserting and
            // then filling the cache must evict in true FIFO order with no
            // phantom evictions from a stale duplicate.
            ctx.stats().reset();
            cache.insert(ctx, 1, Some(20));
            cache.insert(ctx, 2, Some(20));
            cache.insert(ctx, 3, Some(20)); // evicts 1 (60 > 50)
            assert!(cache.peek(&1).is_none());
            assert_eq!(ctx.stats().snapshot().cache_evictions, 1);
            assert_eq!(cache.peek(&2), Some(&Some(20)));
            assert_eq!(cache.peek(&3), Some(&Some(20)));
        });
    }

    #[test]
    fn cached_view_batch_fills_all_misses_in_one_round_trip() {
        let team = Team::single_node(4);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            if ctx.rank() == 0 {
                for i in 0..50u64 {
                    map.insert(ctx, i, i + 1);
                }
            }
            ctx.barrier();
            team_reset_guard(ctx);
            let mut view = CachedView::new(&map, 1024, 16);
            // Batch with duplicates and absent keys.
            let keys: Vec<u64> = (0..40u64).map(|i| i % 25).chain([200, 201]).collect();
            let got = view.get_many(ctx, &keys);
            for (k, v) in keys.iter().zip(&got) {
                assert_eq!(*v, if *k < 50 { Some(*k + 1) } else { None });
            }
            let stats = ctx.stats().snapshot();
            assert_eq!(stats.rpc_round_trips, 1, "expected one aggregated fill");
            assert_eq!(stats.cache_misses, 27, "25 distinct present + 2 absent");
            assert_eq!(stats.cache_hits, 15, "duplicates served without traffic");
            // A second batch over the same keys is traffic-free except the
            // (empty) collective round.
            let again = view.get_many(ctx, &keys);
            assert_eq!(again, got);
            let stats2 = ctx.stats().snapshot();
            assert_eq!(stats2.cache_misses, 27);
            assert_eq!(stats2.cache_hits, 15 + keys.len() as u64);
        });
    }

    #[test]
    fn cached_view_fine_grained_fallback_matches_map() {
        let team = Team::single_node(2);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            if ctx.rank() == 0 {
                map.insert(ctx, 7, 70);
            }
            ctx.barrier();
            let mut view = CachedView::new(&map, 8, 4);
            assert_eq!(view.get(ctx, &7), Some(70));
            assert_eq!(view.get(ctx, &8), None);
            assert_eq!(view.cache().len(), 2);
        });
    }
}
