//! Integration tests of the `DistMap` contract the pipeline relies on:
//! deterministic ownership, exactly-once insertion under full-team
//! concurrency, and on-node vs off-node traffic accounting.

use dht::{bulk_merge, DistMap};
use pgas::{Team, Topology};
use std::sync::Arc;

#[test]
fn owner_rank_is_deterministic_across_ranks_and_team_sizes() {
    // Every rank of one team must compute the same owner for every key…
    let team = Team::single_node(4);
    let owners_per_rank = team.run(|ctx| {
        let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
        (0..2_000u64).map(|k| map.owner_of(&k)).collect::<Vec<_>>()
    });
    for other in &owners_per_rank[1..] {
        assert_eq!(other, &owners_per_rank[0], "ranks disagree on ownership");
    }
    // …and a separately constructed map with the same rank count must agree
    // (ownership is a pure function of key and rank count, nothing else).
    let map_a: DistMap<u64, u64> = DistMap::new(4);
    let map_b: DistMap<u64, u64> = DistMap::new(4);
    for k in 0..2_000u64 {
        assert_eq!(map_a.owner_of(&k), map_b.owner_of(&k));
        assert_eq!(map_a.owner_of(&k), owners_per_rank[0][k as usize]);
    }
}

#[test]
fn concurrent_inserts_from_all_ranks_land_exactly_once() {
    let ranks = 8;
    let keys_per_rank = 500u64;
    let team = Team::single_node(ranks);
    team.run(|ctx| {
        let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
        // Disjoint key ranges: every key is inserted by exactly one rank, all
        // ranks hammer the map at the same time.
        let base = ctx.rank() as u64 * keys_per_rank;
        for k in base..base + keys_per_rank {
            let previous = map.insert(ctx, k, k * 3);
            assert!(previous.is_none(), "key {k} was already present");
        }
        ctx.barrier();
        // Exactly-once: total entry count matches, and every key holds the
        // value its single writer stored.
        assert_eq!(map.len(), ranks * keys_per_rank as usize);
        for k in 0..(ranks as u64 * keys_per_rank) {
            assert_eq!(map.get_cloned(ctx, &k), Some(k * 3));
        }
        // Owner-local views partition the key space without overlap.
        let local = map.local_len(ctx);
        let total = ctx.allreduce_sum_u64(local as u64);
        assert_eq!(total, ranks as u64 * keys_per_rank);
    });
}

#[test]
fn duplicate_inserts_under_contention_merge_exactly_once_per_observation() {
    let ranks = 6;
    let team = Team::single_node(ranks);
    team.run(|ctx| {
        let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
        // Every rank upserts the *same* keys concurrently; the counts must
        // add up to exactly one contribution per (rank, key) pair.
        for k in 0..300u64 {
            map.upsert(ctx, k, || 0, |v| *v += 1);
        }
        ctx.barrier();
        assert_eq!(map.len(), 300);
        for k in 0..300u64 {
            assert_eq!(map.get_cloned(ctx, &k), Some(ranks as u64));
        }
    });
}

#[test]
fn bulk_merge_applies_every_observation_exactly_once() {
    let ranks = 4;
    let team = Team::single_node(ranks);
    team.run(|ctx| {
        let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
        // Each rank contributes 1 for each of 1000 keys through the
        // aggregated update-only phase (small batch size forces many
        // flushes, exercising the aggregator's partial-batch paths).
        bulk_merge(ctx, &map, (0..1000u64).map(|k| (k, 1u64)), 17, |a, b| {
            *a += b
        });
        for k in 0..1000u64 {
            assert_eq!(map.get_cloned(ctx, &k), Some(ranks as u64));
        }
    });
}

#[test]
fn on_node_and_off_node_traffic_is_accounted_in_comm_stats() {
    // 4 ranks grouped 2 per simulated node: rank pairs (0,1) and (2,3).
    let ranks = 4;
    let team = Team::new(Topology::new(ranks, 2));
    let keys: Vec<u64> = (0..400u64).collect();
    // Expected split, computed from the same deterministic ownership and
    // topology the map uses.
    let topo = team.topology();
    let probe: DistMap<u64, u64> = DistMap::new(ranks);
    let mut expected_local = vec![0u64; ranks];
    let mut expected_remote = vec![0u64; ranks];
    for rank in 0..ranks {
        for k in &keys {
            if topo.same_node(rank, probe.owner_of(k)) {
                expected_local[rank] += 1;
            } else {
                expected_remote[rank] += 1;
            }
        }
    }
    team.reset_stats();
    team.run(|ctx| {
        let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
        for k in &keys {
            map.insert(ctx, *k, 1);
        }
        ctx.barrier();
    });
    for rank in 0..ranks {
        let snap = team.stats(rank).snapshot();
        assert_eq!(
            snap.local_ops, expected_local[rank],
            "rank {rank} on-node ops"
        );
        assert_eq!(
            snap.remote_ops, expected_remote[rank],
            "rank {rank} off-node ops"
        );
    }
    // Sanity: with two nodes both classes of traffic must actually occur.
    let total = team.stats_total();
    assert!(total.local_ops > 0, "no on-node traffic recorded");
    assert!(total.remote_ops > 0, "no off-node traffic recorded");
    // A single-node team records no off-node traffic at all.
    let single = Team::single_node(ranks);
    single.run(|ctx| {
        let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
        for k in 0..100u64 {
            map.insert(ctx, k, 1);
        }
    });
    assert_eq!(single.stats_total().remote_ops, 0);
    assert!(single.stats_total().local_ops > 0);

    // The aggregated phases additionally split *bytes* and *messages* by the
    // node boundary, in both exchange modes.
    let run_bulk = |hier: bool| {
        let team = Team::new(Topology::new(ranks, 2));
        team.set_hierarchical_exchange(hier);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            bulk_merge(ctx, &map, (0..1000u64).map(|k| (k, 1u64)), 17, |a, b| {
                *a += b
            });
            for k in 0..1000u64 {
                assert_eq!(map.get_cloned(ctx, &k), Some(ranks as u64));
            }
        });
        team.stats_total()
    };
    let flat = run_bulk(false);
    let hier = run_bulk(true);
    for s in [&flat, &hier] {
        assert!(s.on_node_bytes > 0 && s.off_node_bytes > 0);
        assert_eq!(s.on_node_bytes + s.off_node_bytes, s.bytes_sent);
        assert_eq!(s.on_node_msgs + s.off_node_msgs, s.msgs_sent);
    }
    // Node-leader routing moves the same payload across the interconnect in
    // fewer, larger messages; it never changes the off-node byte volume.
    assert_eq!(flat.off_node_bytes, hier.off_node_bytes);
    assert!(
        hier.off_node_msgs < flat.off_node_msgs,
        "expected fewer off-node messages: hier={} flat={}",
        hier.off_node_msgs,
        flat.off_node_msgs
    );
}

#[test]
fn dist_map_results_are_invariant_on_non_uniform_topologies() {
    // Topologies where the last node is partial (ranks % ranks_per_node != 0)
    // must produce the same map contents as the single-node baseline, in both
    // exchange modes.
    let ranks = 5;
    let reference = {
        let team = Team::single_node(ranks);
        team.run(|ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            bulk_merge(ctx, &map, (0..600u64).map(|k| (k, 1u64)), 13, |a, b| {
                *a += b
            });
            (0..600u64)
                .map(|k| map.get_cloned(ctx, &k))
                .collect::<Vec<_>>()
        })
    };
    for ranks_per_node in [2, 3] {
        for hier in [false, true] {
            let team = Team::new(Topology::new(ranks, ranks_per_node));
            team.set_hierarchical_exchange(hier);
            let got = team.run(|ctx| {
                let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
                bulk_merge(ctx, &map, (0..600u64).map(|k| (k, 1u64)), 13, |a, b| {
                    *a += b
                });
                (0..600u64)
                    .map(|k| map.get_cloned(ctx, &k))
                    .collect::<Vec<_>>()
            });
            assert_eq!(
                got, reference,
                "topology ({ranks}, {ranks_per_node}) hier={hier} changed the map contents"
            );
            let s = team.stats_total();
            assert_eq!(s.on_node_bytes + s.off_node_bytes, s.bytes_sent);
            assert_eq!(s.on_node_msgs + s.off_node_msgs, s.msgs_sent);
        }
    }
}
