//! Property test of the aggregated request–response read path: over
//! randomised key sets, team widths (1–8 ranks) and batch sizes, a single
//! collective [`DistMap::get_many`] must return exactly what a loop of
//! fine-grained [`DistMap::get_cloned`] calls returns — including absent keys
//! and duplicate requests — and [`DistMap::contains_many`] /
//! [`DistMap::get_many_onesided`] must agree with it.

use dht::{bulk_merge, DistMap};
use pgas::Team;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

#[test]
fn batched_reads_match_fine_grained_reads_on_randomised_workloads() {
    let mut rng = StdRng::seed_from_u64(20260728);
    for trial in 0..10 {
        let ranks = rng.gen_range(1..=8usize);
        let universe = rng.gen_range(1..=400u64);
        let present = rng.gen_range(0..=universe);
        let queries_per_rank = rng.gen_range(0..300usize);
        let batch = *[1usize, 2, 7, 33, 4096]
            .get(rng.gen_range(0..5usize))
            .unwrap();
        // Per-rank query lists drawn beyond the populated range so absent keys
        // are queried, with plenty of duplicates (universe is small).
        let query_lists: Vec<Vec<u64>> = (0..ranks)
            .map(|_| {
                (0..queries_per_rank)
                    .map(|_| rng.gen_range(0..universe.saturating_mul(2).max(1)))
                    .collect()
            })
            .collect();
        let team = Team::single_node(ranks);
        let query_lists = &query_lists;
        team.run(move |ctx| {
            let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
            bulk_merge(
                ctx,
                &map,
                (0..present).map(|k| (k, k.wrapping_mul(31) + 1)),
                64,
                |a, b| *a += b,
            );
            let queries = &query_lists[ctx.rank()];
            let expect: Vec<Option<u64>> = queries.iter().map(|k| map.get_cloned(ctx, k)).collect();

            let got = map.get_many(ctx, queries, batch);
            assert_eq!(
                got, expect,
                "get_many mismatch: trial={trial} ranks={ranks} batch={batch}"
            );

            let has = map.contains_many(ctx, queries, batch);
            let expect_has: Vec<bool> = expect.iter().map(|v| v.is_some()).collect();
            assert_eq!(
                has, expect_has,
                "contains_many mismatch: trial={trial} ranks={ranks} batch={batch}"
            );

            let onesided = map.get_many_onesided(ctx, queries);
            assert_eq!(
                onesided, expect,
                "get_many_onesided mismatch: trial={trial} ranks={ranks}"
            );
        });
    }
}

#[test]
fn update_many_matches_a_loop_of_fine_grained_updates() {
    let mut rng = StdRng::seed_from_u64(7_654_321);
    for _trial in 0..6 {
        let ranks = rng.gen_range(1..=8usize);
        let keys: Vec<u64> = (0..rng.gen_range(1..=200u64)).collect();
        let batch = rng.gen_range(1..=64usize);
        let team = Team::single_node(ranks);
        let keys = &keys;
        team.run(move |ctx| {
            let batched: Arc<DistMap<u64, u64>> = ctx.share(|| DistMap::new(ctx.ranks()));
            let fine: Arc<DistMap<u64, u64>> = ctx.share(|| DistMap::new(ctx.ranks()));
            bulk_merge(ctx, &batched, keys.iter().map(|&k| (k, 0)), 32, |a, b| {
                *a += b
            });
            bulk_merge(ctx, &fine, keys.iter().map(|&k| (k, 0)), 32, |a, b| *a += b);
            // Every rank increments every key once through both paths.
            let _ = batched.update_many(ctx, keys, batch, |_, v| {
                if let Some(v) = v {
                    *v += 1;
                }
            });
            for k in keys {
                fine.update(ctx, k, |v| {
                    if let Some(v) = v {
                        *v += 1;
                    }
                });
            }
            ctx.barrier();
            for k in keys {
                assert_eq!(batched.get_cloned(ctx, k), fine.get_cloned(ctx, k));
                assert_eq!(batched.get_cloned(ctx, k), Some(ctx.ranks() as u64));
            }
        });
    }
}
