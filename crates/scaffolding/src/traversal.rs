//! Contig-graph traversal with connected-component partitioning (§III-C).

use crate::links::{ContigEndRef, End, LinkData, LinkSet};
use crate::types::{Scaffold, ScaffoldEntry};
use dbg::{ContigId, ContigSet, ContigsRef};
use pgas::Ctx;
use rrna_hmm::RrnaDetector;
use std::collections::HashSet;

/// Parameters of the contig-graph traversal.
#[derive(Debug, Clone, Copy)]
pub struct ScaffoldTraversalParams {
    /// Links with fewer supporting observations are ignored entirely (this is
    /// also what shrinks the connected components and exposes parallelism, as
    /// the paper notes).
    pub min_link_support: u32,
    /// Contigs at least this long are "long"/confident seeds.
    pub long_contig_len: usize,
    /// A repeat contig may be suspended only if it is at most this long
    /// (the paper bounds it by the library insert size).
    pub max_suspend_len: usize,
    /// Contigs recognised as ribosomal by the HMM must be at least this long
    /// for the aggressive rRNA traversal rule to apply.
    pub rrna_min_len: usize,
    /// Maximum relative depth difference for the rRNA rule to follow a
    /// competing link.
    pub rrna_depth_tolerance: f64,
}

impl Default for ScaffoldTraversalParams {
    fn default() -> Self {
        ScaffoldTraversalParams {
            min_link_support: 2,
            long_contig_len: 300,
            max_suspend_len: 400,
            rrna_min_len: 150,
            rrna_depth_tolerance: 0.5,
        }
    }
}

/// Computes connected components of the contig graph by parallel label
/// propagation (a simplified Shiloach–Vishkin: every rank relaxes its block of
/// edges against the current labels until no label changes anywhere).
/// Returns one component label per contig, identical on every rank.
pub fn connected_components(
    ctx: &Ctx,
    num_contigs: usize,
    edges: &[(ContigId, ContigId)],
) -> Vec<ContigId> {
    let mut labels: Vec<ContigId> = (0..num_contigs as ContigId).collect();
    loop {
        let my_edges = ctx.block_range(edges.len());
        let mut updates: Vec<(ContigId, ContigId)> = Vec::new();
        for &(a, b) in &edges[my_edges] {
            let (la, lb) = (labels[a as usize], labels[b as usize]);
            if la < lb {
                updates.push((b, la));
            } else if lb < la {
                updates.push((a, lb));
            }
        }
        let changed_local = !updates.is_empty();
        let mut outgoing: Vec<Vec<(ContigId, ContigId)>> = vec![Vec::new(); ctx.ranks()];
        outgoing[0] = updates;
        let gathered = ctx.exchange(outgoing);
        let new_labels = if ctx.rank() == 0 {
            let mut l = labels.clone();
            for (node, label) in gathered {
                if label < l[node as usize] {
                    l[node as usize] = label;
                }
            }
            // Pointer-jumping step: compress label chains.
            for i in 0..l.len() {
                let mut root = l[i];
                while l[root as usize] != root {
                    root = l[root as usize];
                }
                l[i] = root;
            }
            l
        } else {
            Vec::new()
        };
        labels = ctx.broadcast(|| new_labels);
        if !ctx.allreduce_any(changed_local) {
            break;
        }
    }
    labels
}

/// One directed step choice out of a contig end.
fn pick_next(
    from: ContigEndRef,
    contigs: ContigsRef<'_>,
    links: &LinkSet,
    visited: &HashSet<ContigId>,
    rrna_hits: &HashSet<ContigId>,
    params: &ScaffoldTraversalParams,
) -> Option<(ContigEndRef, LinkData, Option<ContigId>)> {
    let mut candidates: Vec<(ContigEndRef, LinkData)> = links
        .links_from(from)
        .into_iter()
        .filter(|(other, d)| {
            d.support() >= params.min_link_support && !visited.contains(&other.contig)
        })
        .collect();
    candidates.sort_by_key(|(other, d)| (std::cmp::Reverse(d.support()), other.contig, other.end));
    match candidates.len() {
        0 => None,
        1 => {
            let (other, d) = candidates[0];
            Some((other, d, None))
        }
        _ => {
            // Competing links. First try repeat suspension: a short candidate R
            // whose far end links to another candidate Y means the span jumped
            // over the repeat R — suspend R and follow the direct link to Y.
            for i in 0..candidates.len() {
                let (r, _rd) = candidates[i];
                let r_len = contigs.len_of(r.contig).unwrap_or(usize::MAX);
                if r_len > params.max_suspend_len {
                    continue;
                }
                let r_far = ContigEndRef {
                    contig: r.contig,
                    end: r.end.opposite(),
                };
                for (j, &(y, yd)) in candidates.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    if links.link_between(r_far, y).is_some() {
                        return Some((y, yd, Some(r.contig)));
                    }
                }
            }
            // rRNA rule: if the current contig is an HMM hit, extend anyway,
            // preferring a candidate that is also an HMM hit with similar depth.
            if rrna_hits.contains(&from.contig) {
                let my_depth = contigs.depth_of(from.contig).unwrap_or(0.0);
                let mut best: Option<(ContigEndRef, LinkData, f64)> = None;
                for (other, d) in &candidates {
                    let od = contigs.depth_of(other.contig).unwrap_or(0.0);
                    let rel = if my_depth > 0.0 {
                        (od - my_depth).abs() / my_depth
                    } else {
                        f64::INFINITY
                    };
                    let is_hit = rrna_hits.contains(&other.contig);
                    let score = rel - if is_hit { 1.0 } else { 0.0 };
                    if rel <= params.rrna_depth_tolerance
                        && best.map(|(_, _, s)| score < s).unwrap_or(true)
                    {
                        best = Some((*other, *d, score));
                    }
                }
                if let Some((other, d, _)) = best {
                    return Some((other, d, None));
                }
            }
            // Otherwise the end is not extendable.
            None
        }
    }
}

/// Walks outward from one end of the seed, returning the chain of entries (not
/// including the seed itself).
#[allow(clippy::too_many_arguments)]
fn walk(
    seed: ContigId,
    seed_exit: End,
    contigs: ContigsRef<'_>,
    links: &LinkSet,
    visited: &mut HashSet<ContigId>,
    rrna_hits: &HashSet<ContigId>,
    params: &ScaffoldTraversalParams,
) -> Vec<(ContigId, bool, i64, Option<ContigId>)> {
    let mut out = Vec::new();
    let mut current = ContigEndRef {
        contig: seed,
        end: seed_exit,
    };
    while let Some((entered, data, suspended)) =
        pick_next(current, contigs, links, visited, rrna_hits, params)
    {
        if let Some(s) = suspended {
            visited.insert(s);
        }
        visited.insert(entered.contig);
        // Entering through the Head means the contig reads forward in the
        // scaffold direction; through the Tail means it is reversed.
        let forward = entered.end == End::Head;
        out.push((entered.contig, forward, data.gap_estimate(), suspended));
        current = ContigEndRef {
            contig: entered.contig,
            end: entered.end.opposite(),
        };
    }
    out
}

/// Collectively traverses the contig graph of a replicated contig set.
pub fn traverse_contig_graph(
    ctx: &Ctx,
    contigs: &ContigSet,
    links: &LinkSet,
    rrna: Option<&RrnaDetector>,
    params: &ScaffoldTraversalParams,
) -> Vec<Scaffold> {
    traverse_contig_graph_ref(ctx, ContigsRef::Local(contigs), links, rrna, params)
}

/// Collectively traverses the contig graph and returns gapped scaffolds
/// (entries only; sequences are materialised by gap closing). The result is
/// identical on every rank.
///
/// The walk itself only consults contig lengths and depths (replicated
/// metadata in both contig sources); the one sequence-reading step, rRNA
/// classification, runs owner-locally over the distributed store's shards
/// and allgathers the hit ids, so no contig bytes cross ranks here either.
pub fn traverse_contig_graph_ref(
    ctx: &Ctx,
    contigs: ContigsRef<'_>,
    links: &LinkSet,
    rrna: Option<&RrnaDetector>,
    params: &ScaffoldTraversalParams,
) -> Vec<Scaffold> {
    // rRNA classification of contigs.
    let rrna_hits: HashSet<ContigId> = match (rrna, contigs) {
        (Some(detector), ContigsRef::Local(set)) => set
            .contigs
            .iter()
            .filter(|c| c.len() >= params.rrna_min_len && detector.is_hit(&c.seq))
            .map(|c| c.id)
            .collect(),
        (Some(detector), ContigsRef::Store(store)) => {
            // Owner-local scan of this rank's shard, then allgather the ids.
            let mut local_hits: Vec<ContigId> = Vec::new();
            store.map().for_each_local(ctx, |id, packed| {
                if packed.len() >= params.rrna_min_len && detector.is_hit(&packed.unpack()) {
                    local_hits.push(*id);
                }
            });
            let outgoing: Vec<Vec<ContigId>> =
                (0..ctx.ranks()).map(|_| local_hits.clone()).collect();
            ctx.exchange(outgoing).into_iter().collect()
        }
        (None, _) => HashSet::new(),
    };

    // Connected components over sufficiently supported links.
    let edges: Vec<(ContigId, ContigId)> = links
        .links
        .iter()
        .filter(|(_, d)| d.support() >= params.min_link_support)
        .map(|(k, _)| (k.a.contig, k.b.contig))
        .collect();
    let labels = connected_components(ctx, contigs.num_contigs(), &edges);

    // Each rank traverses the components assigned to it (component mod ranks).
    let my_rank = ctx.rank() as u64;
    let ranks = ctx.ranks() as u64;
    let mut my_components: Vec<ContigId> = labels
        .iter()
        .copied()
        .collect::<HashSet<_>>()
        .into_iter()
        .filter(|c| c % ranks == my_rank)
        .collect();
    my_components.sort_unstable();

    let mut local_scaffolds: Vec<Vec<ScaffoldEntry>> = Vec::new();
    for comp in my_components {
        // Contigs of this component, longest first (the traversal-seed order).
        let mut members: Vec<(ContigId, usize)> = (0..contigs.num_contigs() as ContigId)
            .filter(|id| labels[*id as usize] == comp)
            .map(|id| (id, contigs.len_of(id).unwrap_or(0)))
            .collect();
        members.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut visited: HashSet<ContigId> = HashSet::new();
        for &(seed, _len) in &members {
            if visited.contains(&seed) {
                continue;
            }
            visited.insert(seed);
            // Extend right from the seed's Tail and left from its Head.
            let right = walk(
                seed,
                End::Tail,
                contigs,
                links,
                &mut visited,
                &rrna_hits,
                params,
            );
            let left = walk(
                seed,
                End::Head,
                contigs,
                links,
                &mut visited,
                &rrna_hits,
                params,
            );
            // Assemble the entry chain: reversed left part, seed, right part.
            let mut entries: Vec<ScaffoldEntry> = Vec::new();
            for (contig, forward, gap, suspended) in left.iter().rev() {
                // Walking leftward discovered contigs in reverse order and
                // reverse orientation.
                entries.push(ScaffoldEntry {
                    contig: *contig,
                    forward: !*forward,
                    gap_after: Some(*gap),
                    suspended_after: *suspended,
                });
            }
            entries.push(ScaffoldEntry {
                contig: seed,
                forward: true,
                gap_after: None,
                suspended_after: None,
            });
            for (i, (contig, forward, gap, suspended)) in right.iter().enumerate() {
                // The gap belongs to the junction before this contig.
                let prev = entries.len() - 1;
                entries[prev].gap_after = Some(*gap);
                entries[prev].suspended_after = *suspended;
                entries.push(ScaffoldEntry {
                    contig: *contig,
                    forward: *forward,
                    gap_after: None,
                    suspended_after: None,
                });
                let _ = i;
            }
            local_scaffolds.push(entries);
        }
    }

    // Gather on rank 0, order deterministically, broadcast.
    let mut outgoing: Vec<Vec<Vec<ScaffoldEntry>>> = vec![Vec::new(); ctx.ranks()];
    outgoing[0] = local_scaffolds;
    let gathered = ctx.exchange(outgoing);
    let result = if ctx.rank() == 0 {
        let mut all = gathered;
        all.sort_by_key(|entries| entries.first().map(|e| e.contig).unwrap_or(u64::MAX));
        all.into_iter()
            .enumerate()
            .map(|(i, entries)| Scaffold {
                id: i as u64,
                entries,
                seq: Vec::new(),
            })
            .collect::<Vec<_>>()
    } else {
        Vec::new()
    };
    ctx.broadcast(|| result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::LinkKey;
    use pgas::Team;

    fn end(contig: ContigId, end: End) -> ContigEndRef {
        ContigEndRef { contig, end }
    }

    fn chain_links(n: usize, support: u32) -> LinkSet {
        // Contig i's Tail links to contig i+1's Head, gap 5.
        let links = (0..n - 1)
            .map(|i| {
                (
                    LinkKey::new(end(i as u64, End::Tail), end(i as u64 + 1, End::Head)),
                    LinkData {
                        splints: support,
                        spans: 0,
                        gap_sum: (5 * support) as i64,
                    },
                )
            })
            .collect();
        LinkSet {
            links,
            insert_size: 300,
        }
    }

    fn contig_set(lens: &[usize]) -> ContigSet {
        // Build contigs with the requested lengths (descending so ids map 1:1).
        let mut lens_sorted = lens.to_vec();
        lens_sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(lens_sorted, lens, "test helper expects descending lengths");
        ContigSet::from_sequences(
            21,
            lens.iter()
                .enumerate()
                .map(|(i, &l)| {
                    // Distinct filler bases so sequences differ.
                    let base = b"ACGT"[i % 4];
                    (vec![base; l], 10.0)
                })
                .collect(),
        )
    }

    #[test]
    fn connected_components_identify_chains() {
        let team = Team::single_node(3);
        let labels = team.run(|ctx| connected_components(ctx, 6, &[(0, 1), (1, 2), (4, 5)]));
        for l in &labels[1..] {
            assert_eq!(l, &labels[0]);
        }
        let l = &labels[0];
        assert_eq!(l[0], l[1]);
        assert_eq!(l[1], l[2]);
        assert_eq!(l[4], l[5]);
        assert_ne!(l[0], l[3]);
        assert_ne!(l[0], l[4]);
    }

    #[test]
    fn simple_chain_becomes_one_scaffold() {
        let contigs = contig_set(&[500, 400, 300]);
        let links = chain_links(3, 3);
        let team = Team::single_node(2);
        let scaffolds = team.run(|ctx| {
            traverse_contig_graph(
                ctx,
                &contigs,
                &links,
                None,
                &ScaffoldTraversalParams::default(),
            )
        });
        for s in &scaffolds[1..] {
            assert_eq!(s, &scaffolds[0]);
        }
        let s = &scaffolds[0];
        assert_eq!(s.len(), 1, "expected one scaffold, got {:?}", s);
        assert_eq!(s[0].entries.len(), 3);
        let order: Vec<ContigId> = s[0].entries.iter().map(|e| e.contig).collect();
        assert!(order == vec![0, 1, 2] || order == vec![2, 1, 0]);
        // Interior gaps recorded.
        assert!(s[0].entries[0].gap_after.is_some());
        assert!(s[0].entries[2].gap_after.is_none());
    }

    #[test]
    fn unsupported_links_do_not_join_contigs() {
        let contigs = contig_set(&[500, 400, 300]);
        let links = chain_links(3, 1); // below the min support of 2
        let team = Team::single_node(1);
        let scaffolds = team.run(|ctx| {
            traverse_contig_graph(
                ctx,
                &contigs,
                &links,
                None,
                &ScaffoldTraversalParams::default(),
            )
        });
        assert_eq!(scaffolds[0].len(), 3, "every contig stays single");
    }

    #[test]
    fn repeat_contig_is_suspended_and_jumped() {
        // Contigs 1 and 2 are long; contig 3 is a short repeat connected to
        // both; a direct span link 1–2 jumps over it. Competing links exist at
        // contig 1's tail (to both 2 and 3).
        let contigs = contig_set(&[600, 500, 100]);
        let mk = |x: ContigEndRef, y: ContigEndRef, spans: u32, gap: i64| {
            (
                LinkKey::new(x, y),
                LinkData {
                    splints: 0,
                    spans,
                    gap_sum: gap * spans as i64,
                },
            )
        };
        let links = LinkSet {
            links: vec![
                mk(end(0, End::Tail), end(2, End::Head), 3, 2),
                mk(end(2, End::Tail), end(1, End::Head), 3, 2),
                mk(end(0, End::Tail), end(1, End::Head), 4, 104),
            ],
            insert_size: 300,
        };
        let team = Team::single_node(2);
        let scaffolds = team.run(|ctx| {
            traverse_contig_graph(
                ctx,
                &contigs,
                &links,
                None,
                &ScaffoldTraversalParams::default(),
            )
        });
        let s = &scaffolds[0];
        assert_eq!(s.len(), 1, "expected a single scaffold: {s:?}");
        let entries = &s[0].entries;
        assert_eq!(entries.len(), 2, "repeat should be suspended: {entries:?}");
        let junction = &entries[0];
        assert_eq!(junction.suspended_after, Some(2));
    }

    #[test]
    fn separate_components_processed_in_parallel_stay_separate() {
        let contigs = contig_set(&[500, 400, 300, 200]);
        // Two independent chains: 0-1 and 2-3.
        let links = LinkSet {
            links: vec![
                (
                    LinkKey::new(end(0, End::Tail), end(1, End::Head)),
                    LinkData {
                        splints: 3,
                        spans: 0,
                        gap_sum: 0,
                    },
                ),
                (
                    LinkKey::new(end(2, End::Tail), end(3, End::Head)),
                    LinkData {
                        splints: 3,
                        spans: 0,
                        gap_sum: 0,
                    },
                ),
            ],
            insert_size: 300,
        };
        for ranks in [1, 2, 4] {
            let team = Team::single_node(ranks);
            let scaffolds = team.run(|ctx| {
                traverse_contig_graph(
                    ctx,
                    &contigs,
                    &links,
                    None,
                    &ScaffoldTraversalParams::default(),
                )
            });
            assert_eq!(scaffolds[0].len(), 2, "ranks={ranks}");
            for sc in &scaffolds[0] {
                assert_eq!(sc.entries.len(), 2);
            }
        }
    }
}
