//! Gap closing with load balancing (§III-D).
//!
//! After traversal, adjacent contigs of a scaffold are separated by gaps whose
//! sizes are only estimates. Several closure methods of very different cost
//! are tried in order; because the successful method is unpredictable, gap
//! work is dealt out round-robin across ranks (we deal whole scaffolds
//! round-robin, which at the scale of this reproduction breaks up the
//! per-scaffold cost correlation the paper describes — the original deals
//! individual gaps).
//!
//! Closure methods, in order:
//! 1. **suspended-repeat re-insertion** — if the traversal suspended a short
//!    repeat contig over this junction, its sequence is what belongs in the
//!    gap;
//! 2. **overlap merging** — if the gap estimate is non-positive, the flanks
//!    are checked for a direct sequence overlap and merged;
//! 3. **N padding** — otherwise the gap is filled with `N`s sized by the span
//!    gap estimate (at least one), exactly how scaffolders mark unclosed gaps.

use crate::links::LinkSet;
use crate::types::{Scaffold, ScaffoldSet};
use dbg::{ContigId, ContigSet, ContigsRef};
use dht::FxHashMap;
use pgas::Ctx;
use seqio::alphabet::revcomp;

/// Parameters of gap closing.
#[derive(Debug, Clone, Copy)]
pub struct GapClosingParams {
    /// Minimum exact overlap (bases) accepted when merging flanks of a
    /// non-positive gap.
    pub min_overlap: usize,
    /// Largest overlap searched for.
    pub max_overlap: usize,
    /// Unclosed gaps are padded with at least this many `N`s.
    pub min_n_fill: usize,
    /// Unclosed gaps are padded with at most this many `N`s.
    pub max_n_fill: usize,
    /// Anchor k-mer length of the inexact (mismatch-tolerant) overlap merge.
    pub merge_k: usize,
    /// Minimum base identity of an inexact overlap for the merge to apply.
    pub min_merge_identity: f64,
}

impl Default for GapClosingParams {
    fn default() -> Self {
        GapClosingParams {
            min_overlap: 15,
            max_overlap: 700,
            min_n_fill: 1,
            max_n_fill: 500,
            merge_k: 16,
            min_merge_identity: 0.85,
        }
    }
}

/// Outcome counters of the gap-closing stage (summed over all ranks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GapClosingReport {
    pub gaps_total: usize,
    pub closed_by_suspended: usize,
    pub closed_by_overlap: usize,
    pub filled_with_n: usize,
}

/// Returns the length of the longest suffix of `a` equal to a prefix of `b`,
/// searched between `min` and `max` bases.
fn best_overlap(a: &[u8], b: &[u8], min: usize, max: usize) -> Option<usize> {
    let max = max.min(a.len()).min(b.len());
    (min..=max).rev().find(|&o| a[a.len() - o..] == b[..o])
}

/// Mismatch-tolerant overlap join: anchors the prefix of `piece` onto the tail
/// of `seq` with exact k-mer hits, verifies each candidate diagonal base by
/// base, and returns `(seq_keep, piece_start)` — join as
/// `seq[..seq_keep] + piece[piece_start..]`.
///
/// Adjacent contigs routinely overlap *inexactly*: local assembly extends
/// contigs into their neighbours' territory, and strain-collapsed or
/// error-containing copies differ by substitutions, so the exact
/// [`best_overlap`] check fails and the duplicate material would otherwise be
/// concatenated twice into the scaffold. The per-diagonal score also trims a
/// low-quality extension tail of `seq` when the true junction lies before its
/// end (walk extensions can wander at forks).
fn fuzzy_overlap_join(
    seq: &[u8],
    piece: &[u8],
    params: &GapClosingParams,
) -> Option<(usize, usize)> {
    let k = params.merge_k;
    // The anchor k-mer must fit inside the searched window.
    let window = params.max_overlap.max(k);
    if seq.len() < k || piece.len() < k {
        return None;
    }
    // Index the k-mers of piece's prefix window by content (first occurrence).
    let piece_window = &piece[..window.min(piece.len())];
    let mut piece_kmers: std::collections::HashMap<&[u8], usize> = std::collections::HashMap::new();
    for p in 0..=piece_window.len().saturating_sub(k) {
        piece_kmers.entry(&piece_window[p..p + k]).or_insert(p);
    }
    // Scan seq's tail window and vote on alignment diagonals: a hit of seq
    // position q against piece position p implies piece[0] sits at seq
    // coordinate q - p.
    let tail_start = seq.len().saturating_sub(window);
    let mut diagonals: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
    for q in tail_start..=seq.len().saturating_sub(k) {
        if let Some(&p) = piece_kmers.get(&seq[q..q + k]) {
            if q >= p {
                *diagonals.entry(q - p).or_insert(0) += 1;
            }
        }
    }
    let mut ranked: Vec<(usize, u32)> = diagonals.into_iter().collect();
    ranked.sort_unstable_by_key(|&(d, votes)| (std::cmp::Reverse(votes), d));

    let mut best: Option<(usize, usize, usize)> = None; // (matches, seq_keep, piece_start)
    for &(s, _) in ranked.iter().take(4) {
        // piece[j] pairs with seq[s + j]; walk the diagonal accumulating a
        // local-alignment-style prefix score and remember its maximum, which
        // marks the junction (everything past it on `seq` is divergent tail).
        let overlap = (seq.len() - s).min(piece.len());
        if overlap < params.min_overlap {
            continue;
        }
        let mut score = 0i64;
        let mut matches = 0usize;
        let (mut best_score, mut best_j, mut best_matches) = (0i64, 0usize, 0usize);
        for j in 0..overlap {
            if piece[j] == seq[s + j] {
                score += 1;
                matches += 1;
            } else {
                score -= 3;
            }
            if score > best_score {
                best_score = score;
                best_j = j + 1;
                best_matches = matches;
            }
        }
        if best_j < params.min_overlap {
            continue;
        }
        if (best_matches as f64) < params.min_merge_identity * best_j as f64 {
            continue;
        }
        if best.map(|(m, _, _)| best_matches > m).unwrap_or(true) {
            best = Some((best_matches, s + best_j, best_j));
        }
    }
    best.map(|(_, seq_keep, piece_start)| (seq_keep, piece_start))
}

/// Materialises one scaffold's sequence, closing its gaps. `seq_of` yields a
/// contig's stored sequence (from the local replica or from a prefetched
/// batch of the distributed store).
fn close_scaffold(
    scaffold: &mut Scaffold,
    seq_of: &mut dyn FnMut(ContigId) -> Vec<u8>,
    params: &GapClosingParams,
    report: &mut GapClosingReport,
) {
    let mut seq: Vec<u8> = Vec::new();
    for (i, entry) in scaffold.entries.iter().enumerate() {
        let piece = {
            let stored = seq_of(entry.contig);
            if entry.forward {
                stored
            } else {
                revcomp(&stored)
            }
        };
        if i == 0 {
            seq = piece;
            continue;
        }
        // We are closing the gap between the previous entry and this one.
        let prev = &scaffold.entries[i - 1];
        report.gaps_total += 1;
        if let Some(suspended) = prev.suspended_after {
            // Method 1: the suspended repeat belongs in this gap. Its stored
            // orientation is unknown, so pick the orientation that overlaps
            // best with the flank (falling back to stored orientation).
            let repeat = seq_of(suspended);
            let fwd_overlap = best_overlap(&seq, &repeat, params.min_overlap, params.max_overlap);
            let rc = revcomp(&repeat);
            let rc_overlap = best_overlap(&seq, &rc, params.min_overlap, params.max_overlap);
            let repeat_oriented = if rc_overlap.unwrap_or(0) > fwd_overlap.unwrap_or(0) {
                rc
            } else {
                repeat
            };
            let trim = fwd_overlap.max(rc_overlap).unwrap_or(0);
            seq.extend_from_slice(&repeat_oriented[trim..]);
            // Then join the repeat to the incoming piece, overlap if possible.
            match best_overlap(&seq, &piece, params.min_overlap, params.max_overlap) {
                Some(o) => seq.extend_from_slice(&piece[o..]),
                None => {
                    seq.extend(std::iter::repeat_n(b'N', params.min_n_fill));
                    seq.extend_from_slice(&piece);
                }
            }
            report.closed_by_suspended += 1;
            continue;
        }
        // Method 2: overlap merging. Attempted for every gap — the gap
        // estimate is span-noise-limited, while an anchored sequence overlap
        // is direct evidence, so finding one overrides a positive estimate.
        let gap = prev.gap_after.unwrap_or(0);
        if let Some(o) = best_overlap(&seq, &piece, params.min_overlap, params.max_overlap) {
            seq.extend_from_slice(&piece[o..]);
            report.closed_by_overlap += 1;
            continue;
        }
        if let Some((seq_keep, piece_start)) = fuzzy_overlap_join(&seq, &piece, params) {
            seq.truncate(seq_keep);
            seq.extend_from_slice(&piece[piece_start..]);
            report.closed_by_overlap += 1;
            continue;
        }
        // Method 3: N padding sized by the gap estimate.
        let n = (gap.max(params.min_n_fill as i64) as usize).min(params.max_n_fill);
        seq.extend(std::iter::repeat_n(b'N', n));
        seq.extend_from_slice(&piece);
        report.filled_with_n += 1;
    }
    scaffold.seq = seq;
}

/// Collectively closes the gaps of all scaffolds of a replicated contig set.
pub fn close_gaps(
    ctx: &Ctx,
    contigs: &ContigSet,
    gapped: Vec<Scaffold>,
    links: &LinkSet,
    params: &GapClosingParams,
) -> (ScaffoldSet, GapClosingReport) {
    close_gaps_ref(ctx, ContigsRef::Local(contigs), gapped, links, params)
}

/// Collectively closes the gaps of all scaffolds and materialises their
/// sequences. Scaffolds are dealt round-robin over ranks; the finished set is
/// identical on every rank.
///
/// Against the distributed contig store, each rank fetches the contigs of
/// one scaffold at a time with a *one-sided* aggregated batch
/// ([`dbg::ContigReader::get_many_onesided`]) — ranks close different
/// scaffold counts, so the two-sided collective fetch cannot be kept in
/// lockstep here.
pub fn close_gaps_ref(
    ctx: &Ctx,
    contigs: ContigsRef<'_>,
    gapped: Vec<Scaffold>,
    _links: &LinkSet,
    params: &GapClosingParams,
) -> (ScaffoldSet, GapClosingReport) {
    let mut local_report = GapClosingReport::default();
    let mut my_done: Vec<Scaffold> = Vec::new();
    let mut reader = contigs.store().map(|s| s.reader(ctx));
    for (i, mut scaffold) in gapped.into_iter().enumerate() {
        if i % ctx.ranks() != ctx.rank() {
            continue;
        }
        match contigs {
            ContigsRef::Local(set) => {
                let mut seq_of =
                    |id: ContigId| -> Vec<u8> { set.get(id).expect("contig exists").seq.clone() };
                close_scaffold(&mut scaffold, &mut seq_of, params, &mut local_report);
            }
            ContigsRef::Store(_) => {
                let reader = reader.as_mut().expect("reader exists for store sources");
                // All contigs this scaffold touches: entries plus suspended
                // repeats, fetched in one aggregated batch.
                let mut ids: Vec<ContigId> = Vec::new();
                for e in &scaffold.entries {
                    ids.push(e.contig);
                    ids.extend(e.suspended_after);
                }
                ids.sort_unstable();
                ids.dedup();
                let fetched = reader.get_many_onesided(ctx, &ids);
                let seqs: FxHashMap<ContigId, Vec<u8>> = ids
                    .iter()
                    .zip(fetched)
                    .filter_map(|(id, p)| p.map(|p| (*id, p.unpack())))
                    .collect();
                let mut seq_of =
                    |id: ContigId| -> Vec<u8> { seqs.get(&id).expect("contig exists").clone() };
                close_scaffold(&mut scaffold, &mut seq_of, params, &mut local_report);
            }
        }
        my_done.push(scaffold);
    }
    // Gather the finished scaffolds and the report.
    let mut outgoing: Vec<Vec<Scaffold>> = vec![Vec::new(); ctx.ranks()];
    outgoing[0] = my_done;
    let gathered = ctx.exchange(outgoing);
    let set = if ctx.rank() == 0 {
        let mut scaffolds = gathered;
        scaffolds.sort_by_key(|s| s.id);
        ScaffoldSet { scaffolds }
    } else {
        ScaffoldSet::default()
    };
    let set = (*ctx.share(|| set)).clone();
    let report = GapClosingReport {
        gaps_total: ctx.allreduce_sum_u64(local_report.gaps_total as u64) as usize,
        closed_by_suspended: ctx.allreduce_sum_u64(local_report.closed_by_suspended as u64)
            as usize,
        closed_by_overlap: ctx.allreduce_sum_u64(local_report.closed_by_overlap as u64) as usize,
        filled_with_n: ctx.allreduce_sum_u64(local_report.filled_with_n as u64) as usize,
    };
    (set, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ScaffoldEntry;
    use pgas::Team;

    fn contigs_from(seqs: &[&Vec<u8>]) -> ContigSet {
        ContigSet::from_sequences(21, seqs.iter().map(|s| (s.to_vec(), 10.0)).collect())
    }

    fn entry(contig: u64, forward: bool, gap: Option<i64>) -> ScaffoldEntry {
        ScaffoldEntry {
            contig,
            forward,
            gap_after: gap,
            suspended_after: None,
        }
    }

    #[test]
    fn best_overlap_finds_longest_match() {
        assert_eq!(best_overlap(b"AAACCCGGG", b"CCGGGTTTT", 3, 10), Some(5));
        assert_eq!(best_overlap(b"AAACCCGGG", b"TTTTTTT", 3, 10), None);
        assert_eq!(best_overlap(b"ACGT", b"ACGT", 4, 10), Some(4));
        assert_eq!(best_overlap(b"ACGT", b"ACGT", 5, 10), None);
    }

    #[test]
    fn positive_gap_filled_with_n() {
        // Two long contigs with an estimated 7-base gap.
        let a = vec![b'A'; 100];
        let c = vec![b'C'; 80];
        let contigs = contigs_from(&[&a, &c]);
        let gapped = vec![Scaffold {
            id: 0,
            entries: vec![entry(0, true, Some(7)), entry(1, true, None)],
            seq: Vec::new(),
        }];
        let team = Team::single_node(2);
        let out = team.run(|ctx| {
            let links = LinkSet::default();
            close_gaps(
                ctx,
                &contigs,
                gapped.clone(),
                &links,
                &GapClosingParams::default(),
            )
        });
        let (set, report) = &out[0];
        assert_eq!(report.gaps_total, 1);
        assert_eq!(report.filled_with_n, 1);
        let seq = &set.scaffolds[0].seq;
        assert_eq!(seq.len(), 100 + 7 + 80);
        assert_eq!(seq.iter().filter(|&&b| b == b'N').count(), 7);
    }

    #[test]
    fn negative_gap_merged_by_overlap() {
        // contig 0 ends with the 30 bases contig 1 starts with.
        let shared = b"ACGGTCAGGTTCAAGGACTTACGGACCATG".to_vec();
        let mut a = vec![b'A'; 70];
        a.extend_from_slice(&shared);
        let mut b = shared.clone();
        b.extend_from_slice(&[b'C'; 70]);
        let contigs = contigs_from(&[&a, &b]);
        // Contig storage canonicalises orientation; find which stored contig
        // matches `a` and in which orientation so the entries are correct.
        let stored_a = &contigs.contigs[0];
        let a_forward = stored_a.seq == a;
        let stored_b = &contigs.contigs[1];
        let b_forward = stored_b.seq == b;
        let gapped = vec![Scaffold {
            id: 0,
            entries: vec![
                ScaffoldEntry {
                    contig: 0,
                    forward: a_forward,
                    gap_after: Some(-30),
                    suspended_after: None,
                },
                ScaffoldEntry {
                    contig: 1,
                    forward: b_forward,
                    gap_after: None,
                    suspended_after: None,
                },
            ],
            seq: Vec::new(),
        }];
        let team = Team::single_node(1);
        let out = team.run(|ctx| {
            let links = LinkSet::default();
            close_gaps(
                ctx,
                &contigs,
                gapped.clone(),
                &links,
                &GapClosingParams::default(),
            )
        });
        let (set, report) = &out[0];
        assert_eq!(report.closed_by_overlap, 1);
        assert_eq!(set.scaffolds[0].seq.len(), 70 + 30 + 70);
        assert!(!set.scaffolds[0].seq.contains(&b'N'));
    }

    #[test]
    fn suspended_repeat_reinserted() {
        // Scaffold 0 -> 1 with repeat contig 2 suspended in between; all three
        // abut exactly in the original genome.
        let left: Vec<u8> = (0..80).map(|i| b"ACGT"[(i * 7 + 1) % 4]).collect();
        let repeat: Vec<u8> = (0..50).map(|i| b"ACGT"[(i * 5 + 2) % 4]).collect();
        let right: Vec<u8> = (0..80).map(|i| b"ACGT"[(i * 11 + 3) % 4]).collect();
        // Give the flanks the repeat boundaries so overlap joining works:
        let mut a = left.clone();
        a.extend_from_slice(&repeat[..20]); // contig 0 ends inside the repeat
        let mut c = repeat[30..].to_vec(); // contig 1 starts inside the repeat
        c.extend_from_slice(&right);
        let contigs = ContigSet::from_sequences(
            21,
            vec![(a.clone(), 10.0), (c.clone(), 10.0), (repeat.clone(), 30.0)],
        );
        // Identify ids after canonical sorting (lengths: a=100, c=100, repeat=50).
        let id_of = |seq: &Vec<u8>| {
            contigs
                .contigs
                .iter()
                .find(|x| x.seq == *seq || x.seq == revcomp(seq))
                .unwrap()
                .id
        };
        let (ida, idc, idr) = (id_of(&a), id_of(&c), id_of(&repeat));
        let fwd = |id: u64, seq: &Vec<u8>| contigs.get(id).unwrap().seq == *seq;
        let gapped = vec![Scaffold {
            id: 0,
            entries: vec![
                ScaffoldEntry {
                    contig: ida,
                    forward: fwd(ida, &a),
                    gap_after: Some(10),
                    suspended_after: Some(idr),
                },
                ScaffoldEntry {
                    contig: idc,
                    forward: fwd(idc, &c),
                    gap_after: None,
                    suspended_after: None,
                },
            ],
            seq: Vec::new(),
        }];
        let team = Team::single_node(1);
        let out = team.run(|ctx| {
            let links = LinkSet::default();
            close_gaps(
                ctx,
                &contigs,
                gapped.clone(),
                &links,
                &GapClosingParams::default(),
            )
        });
        let (set, report) = &out[0];
        assert_eq!(report.closed_by_suspended, 1);
        let seq = &set.scaffolds[0].seq;
        // The repeat sequence must now be present in full.
        let s = String::from_utf8(seq.clone()).unwrap();
        let r = String::from_utf8(repeat.clone()).unwrap();
        let rrc = String::from_utf8(revcomp(&repeat)).unwrap();
        assert!(s.contains(&r) || s.contains(&rrc), "repeat not re-inserted");
    }

    #[test]
    fn round_robin_distribution_is_rank_count_invariant() {
        let a = vec![b'A'; 60];
        let b = vec![b'C'; 50];
        let contigs = contigs_from(&[&a, &b]);
        let gapped: Vec<Scaffold> = (0..5)
            .map(|i| Scaffold {
                id: i,
                entries: vec![entry(0, true, Some(3)), entry(1, true, None)],
                seq: Vec::new(),
            })
            .collect();
        let mut results = Vec::new();
        for ranks in [1, 2, 3] {
            let team = Team::single_node(ranks);
            let gapped2 = gapped.clone();
            let out = team.run(|ctx| {
                let links = LinkSet::default();
                close_gaps(
                    ctx,
                    &contigs,
                    gapped2.clone(),
                    &links,
                    &GapClosingParams::default(),
                )
            });
            results.push(out[0].clone());
        }
        assert_eq!(results[0].0, results[1].0);
        assert_eq!(results[1].0, results[2].0);
        assert_eq!(results[0].1, results[2].1);
        assert_eq!(results[0].1.gaps_total, 5);
    }
}
