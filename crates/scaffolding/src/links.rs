//! Splint/span detection and contig-link aggregation (§III-B).

use aligner::{Alignment, AlignmentSet};
use dbg::{ContigId, ContigSet, ContigsRef};
use dht::{bulk_merge, DistMap};
use pgas::Ctx;
use readstore::ReadsRef;
use seqio::ReadLibrary;
use std::sync::Arc;

/// Which end of a contig (in its stored orientation) a link attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum End {
    /// The start (coordinate 0) of the stored contig sequence.
    Head,
    /// The end (last coordinate) of the stored contig sequence.
    Tail,
}

impl End {
    /// The opposite end.
    pub fn opposite(self) -> End {
        match self {
            End::Head => End::Tail,
            End::Tail => End::Head,
        }
    }
}

/// A reference to one end of one contig.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContigEndRef {
    pub contig: ContigId,
    pub end: End,
}

/// A link key: an unordered pair of contig ends (normalised so the smaller
/// end comes first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkKey {
    pub a: ContigEndRef,
    pub b: ContigEndRef,
}

impl LinkKey {
    /// Builds a normalised key.
    pub fn new(x: ContigEndRef, y: ContigEndRef) -> Self {
        if x <= y {
            LinkKey { a: x, b: y }
        } else {
            LinkKey { a: y, b: x }
        }
    }

    /// Given one side of the link, returns the other (or `None` if `from` is
    /// not part of the link).
    pub fn other(&self, from: ContigEndRef) -> Option<ContigEndRef> {
        if self.a == from {
            Some(self.b)
        } else if self.b == from {
            Some(self.a)
        } else {
            None
        }
    }
}

/// Aggregated evidence for one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkData {
    /// Number of supporting splints (single reads bridging both contigs).
    pub splints: u32,
    /// Number of supporting spans (read pairs with one mate on each contig).
    pub spans: u32,
    /// Sum of the per-observation gap estimates (may be negative: overlap).
    pub gap_sum: i64,
}

impl LinkData {
    /// Total supporting observations.
    pub fn support(&self) -> u32 {
        self.splints + self.spans
    }

    /// Mean gap estimate.
    pub fn gap_estimate(&self) -> i64 {
        if self.support() == 0 {
            0
        } else {
            self.gap_sum / self.support() as i64
        }
    }

    fn merge(&mut self, other: LinkData) {
        self.splints += other.splints;
        self.spans += other.spans;
        self.gap_sum += other.gap_sum;
    }
}

/// Parameters of link generation.
#[derive(Debug, Clone, Copy)]
pub struct LinkParams {
    /// Minimum splint observations for a SPLINT-only link to be kept.
    pub min_splint_support: u32,
    /// Minimum span observations for a SPAN-only link to be kept.
    pub min_span_support: u32,
    /// A read must have at least this many aligned bases on a contig for the
    /// alignment to participate in link building.
    pub min_aligned_len: usize,
    /// Reads aligning farther than this from a contig end (relative to the
    /// library insert size) cannot support a span off that end.
    pub max_end_distance_factor: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            min_splint_support: 2,
            min_span_support: 2,
            min_aligned_len: 30,
            max_end_distance_factor: 1.2,
        }
    }
}

/// The replicated set of surviving links.
#[derive(Debug, Clone, Default)]
pub struct LinkSet {
    pub links: Vec<(LinkKey, LinkData)>,
    pub insert_size: usize,
}

impl LinkSet {
    /// All links touching the given contig end, with the far end and the data.
    pub fn links_from(&self, from: ContigEndRef) -> Vec<(ContigEndRef, LinkData)> {
        self.links
            .iter()
            .filter_map(|(k, d)| k.other(from).map(|o| (o, *d)))
            .collect()
    }

    /// Looks up the link between two specific ends.
    pub fn link_between(&self, x: ContigEndRef, y: ContigEndRef) -> Option<LinkData> {
        let key = LinkKey::new(x, y);
        self.links.iter().find(|(k, _)| *k == key).map(|(_, d)| *d)
    }
}

/// In read coordinates: the aligned interval, plus which contig end the read
/// runs toward as read coordinates increase and the contig bases remaining
/// beyond the alignment in that direction (and the same for the entering
/// side).
#[derive(Debug, Clone, Copy)]
struct OrientedAlignment {
    contig: ContigId,
    read_start: usize,
    read_end: usize,
    exit_end: End,
    exit_dist: i64,
    enter_end: End,
    enter_dist: i64,
}

fn orient(a: &Alignment, contig_len: usize, read_len: usize) -> OrientedAlignment {
    let clen = contig_len as i64;
    let rlen = read_len as i64;
    let off = a.contig_offset;
    if a.forward {
        // read position p sits at contig coordinate off + p.
        let read_start = (-off).max(0) as usize;
        let read_end = (clen - off).min(rlen).max(0) as usize;
        OrientedAlignment {
            contig: a.contig,
            read_start,
            read_end,
            exit_end: End::Tail,
            exit_dist: (clen - (off + read_end as i64)).max(0),
            enter_end: End::Head,
            enter_dist: (off + read_start as i64).max(0),
        }
    } else {
        // The reverse-complemented read aligns forward: rc position q = len-1-p
        // sits at contig coordinate off + q. As read position p increases the
        // contig coordinate decreases, so the read runs toward the Head.
        let rc_start = (-off).max(0); // first rc coord inside the contig
        let rc_end = (clen - off).min(rlen).max(0); // one past last rc coord inside
        let read_start = (rlen - rc_end).max(0) as usize;
        let read_end = (rlen - rc_start).max(0) as usize;
        OrientedAlignment {
            contig: a.contig,
            read_start,
            read_end,
            exit_end: End::Head,
            exit_dist: (off + rc_start).max(0),
            enter_end: End::Tail,
            enter_dist: (clen - (off + rc_end)).max(0),
        }
    }
}

/// Collectively builds the link set from this rank's alignments against a
/// replicated contig set.
pub fn build_links(
    ctx: &Ctx,
    contigs: &ContigSet,
    alignments: &AlignmentSet,
    library: &ReadLibrary,
    params: &LinkParams,
) -> LinkSet {
    build_links_ref(
        ctx,
        ContigsRef::Local(contigs),
        alignments,
        ReadsRef::Local(library),
        params,
    )
}

/// Collectively builds the link set from this rank's alignments. Link
/// geometry only needs contig and read *lengths*, which both contig sources
/// and both read sources answer from replicated metadata — no sequence bytes
/// are read here, so the distributed read store adds zero communication to
/// this stage.
pub fn build_links_ref(
    ctx: &Ctx,
    contigs: ContigsRef<'_>,
    alignments: &AlignmentSet,
    reads: ReadsRef<'_>,
    params: &LinkParams,
) -> LinkSet {
    let insert = reads.insert_size().max(1);
    let read_len_of = |id: seqio::ReadId| reads.len_of(id);
    let contig_len_of = |id: ContigId| contigs.len_of(id).unwrap_or(0);

    let mut local: Vec<(LinkKey, LinkData)> = Vec::new();
    let by_read = alignments.by_read();

    // ---- Splints -------------------------------------------------------------
    for (read_id, alns) in &by_read {
        if alns.len() < 2 {
            continue;
        }
        let rlen = read_len_of(*read_id);
        let oriented: Vec<OrientedAlignment> = alns
            .iter()
            .filter(|a| a.aligned_len >= params.min_aligned_len)
            .map(|a| orient(a, contig_len_of(a.contig), rlen))
            .collect();
        for i in 0..oriented.len() {
            for j in i + 1..oriented.len() {
                let (mut first, mut second) = (oriented[i], oriented[j]);
                if first.contig == second.contig {
                    continue;
                }
                if first.read_start > second.read_start {
                    std::mem::swap(&mut first, &mut second);
                }
                // A genuine splint crosses the junction, so its two alignments
                // cover mostly disjoint parts of the read. When two contigs
                // carry long near-identical stretches (local-assembly
                // extensions into a neighbour, strain copies), every read
                // inside the shared region aligns to both over the *same*
                // read interval — evidence about one locus, not a junction.
                let overlap = first
                    .read_end
                    .min(second.read_end)
                    .saturating_sub(second.read_start);
                let shorter =
                    (first.read_end - first.read_start).min(second.read_end - second.read_start);
                if 2 * overlap > shorter {
                    continue;
                }
                // The read exits `first` toward its exit end and enters
                // `second` from its enter end.
                let gap = (second.read_start as i64 - first.read_end as i64)
                    - first.exit_dist
                    - second.enter_dist;
                let key = LinkKey::new(
                    ContigEndRef {
                        contig: first.contig,
                        end: first.exit_end,
                    },
                    ContigEndRef {
                        contig: second.contig,
                        end: second.enter_end,
                    },
                );
                local.push((
                    key,
                    LinkData {
                        splints: 1,
                        spans: 0,
                        gap_sum: gap,
                    },
                ));
            }
        }
    }

    // ---- Spans ---------------------------------------------------------------
    if reads.paired() {
        let best = alignments.best_per_read();
        for (&read_id, a1) in &best {
            if read_id % 2 != 0 {
                continue; // process each pair once, from its first mate
            }
            let mate = read_id + 1;
            let a2 = match best.get(&mate) {
                Some(a) => a,
                None => continue,
            };
            if a1.contig == a2.contig {
                continue;
            }
            let o1 = orient(a1, contig_len_of(a1.contig), read_len_of(read_id));
            let o2 = orient(a2, contig_len_of(a2.contig), read_len_of(mate));
            // For a forward–reverse library the template extends from each
            // mate's 5' end toward the contig end the mate points at (its exit
            // end); distance from the 5' aligned base to that end:
            let d1 = o1.exit_dist + (o1.read_end - o1.read_start) as i64 + o1.read_start as i64;
            let d2 = o2.exit_dist + (o2.read_end - o2.read_start) as i64 + o2.read_start as i64;
            let max_d = (params.max_end_distance_factor * insert as f64) as i64;
            if d1 > max_d || d2 > max_d {
                continue;
            }
            let gap = insert as i64 - d1 - d2;
            let key = LinkKey::new(
                ContigEndRef {
                    contig: o1.contig,
                    end: o1.exit_end,
                },
                ContigEndRef {
                    contig: o2.contig,
                    end: o2.exit_end,
                },
            );
            local.push((
                key,
                LinkData {
                    splints: 0,
                    spans: 1,
                    gap_sum: gap,
                },
            ));
        }
    }

    // ---- Aggregate in a distributed hash table (update-only phase) -----------
    let map: Arc<DistMap<LinkKey, LinkData>> = DistMap::shared(ctx);
    bulk_merge(ctx, &map, local, 2048, |a, b| a.merge(b));

    // ---- Filter on the owners, gather, broadcast ------------------------------
    let mut surviving: Vec<(LinkKey, LinkData)> = Vec::new();
    map.for_each_local(ctx, |k, d| {
        if d.splints >= params.min_splint_support || d.spans >= params.min_span_support {
            surviving.push((*k, *d));
        }
    });
    let mut outgoing: Vec<Vec<(LinkKey, LinkData)>> = vec![Vec::new(); ctx.ranks()];
    outgoing[0] = surviving;
    let gathered = ctx.exchange(outgoing);
    let set = if ctx.rank() == 0 {
        let mut links = gathered;
        links.sort_by_key(|(k, _)| *k);
        LinkSet {
            links,
            insert_size: insert,
        }
    } else {
        LinkSet::default()
    };
    (*ctx.share(|| set)).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligner::{align_reads, build_seed_index, AlignParams};
    use pgas::Team;
    use seqio::alphabet::revcomp;
    use seqio::Read;

    /// A deterministic pseudo-random genome (no external RNG needed here).
    fn genome(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                b"ACGT"[(state % 4) as usize]
            })
            .collect()
    }

    /// Tile a genome with paired reads (error free).
    fn paired_library(genome: &[u8], read_len: usize, insert: usize, step: usize) -> ReadLibrary {
        let mut lib = ReadLibrary::new_paired("test", insert, insert / 10);
        let mut i = 0usize;
        let mut pair = 0usize;
        while i + insert <= genome.len() {
            let r1 = &genome[i..i + read_len];
            let r2 = revcomp(&genome[i + insert - read_len..i + insert]);
            lib.push_pair(
                Read::with_uniform_quality(format!("p{pair}/1"), r1, 35),
                Read::with_uniform_quality(format!("p{pair}/2"), &r2, 35),
            );
            i += step;
            pair += 1;
        }
        lib
    }

    /// Cuts a genome into abutting contigs of the given sizes.
    fn contigs_from_pieces(genome: &[u8], cuts: &[usize]) -> ContigSet {
        let mut seqs = Vec::new();
        let mut start = 0usize;
        for &c in cuts {
            seqs.push((genome[start..c].to_vec(), 20.0));
            start = c;
        }
        seqs.push((genome[start..].to_vec(), 20.0));
        ContigSet::from_sequences(21, seqs)
    }

    fn align_all(ctx: &pgas::Ctx, lib: &ReadLibrary, contigs: &ContigSet) -> AlignmentSet {
        let index = build_seed_index(ctx, contigs, 15);
        ctx.barrier();
        let range = ctx.block_range(lib.num_pairs());
        let reads = range.flat_map(|p| {
            [
                (2 * p as u64, lib.read(2 * p as u64).clone()),
                (2 * p as u64 + 1, lib.read(2 * p as u64 + 1).clone()),
            ]
        });
        align_reads(
            ctx,
            reads,
            contigs,
            &index,
            &AlignParams {
                seed_len: 15,
                stride: 4,
                min_aligned_len: 25,
                ..Default::default()
            },
        )
    }

    #[test]
    fn adjacent_contigs_get_linked_with_small_gap() {
        let g = genome(1500, 3);
        let contigs = contigs_from_pieces(&g, &[500, 1000]);
        let lib = paired_library(&g, 80, 400, 7);
        let team = Team::single_node(2);
        let sets = team.run(|ctx| {
            let alignments = align_all(ctx, &lib, &contigs);
            build_links(ctx, &contigs, &alignments, &lib, &LinkParams::default())
        });
        for s in &sets[1..] {
            assert_eq!(s.links, sets[0].links);
        }
        let links = &sets[0];
        assert!(!links.links.is_empty(), "no links were built");
        // Every genuine junction should be supported; and gap estimates should
        // be small (the contigs abut exactly).
        let mut junctions_supported = 0;
        for (_, d) in &links.links {
            assert!(d.support() >= 2);
            assert!(
                d.gap_estimate().abs() < 60,
                "gap estimate too large: {}",
                d.gap_estimate()
            );
            junctions_supported += 1;
        }
        assert!(junctions_supported >= 2, "expected both junctions linked");
    }

    #[test]
    fn span_links_found_even_without_junction_spanning_reads() {
        // Reads stepped so that no read crosses a junction, but pairs do.
        let g = genome(1200, 9);
        let contigs = contigs_from_pieces(&g, &[600]);
        // Insert 400 >> read length 70; step places reads away from the cut.
        let lib = paired_library(&g, 70, 400, 13);
        let team = Team::single_node(2);
        let sets = team.run(|ctx| {
            let alignments = align_all(ctx, &lib, &contigs);
            build_links(ctx, &contigs, &alignments, &lib, &LinkParams::default())
        });
        let links = &sets[0];
        let span_links: u32 = links.links.iter().map(|(_, d)| d.spans).sum();
        assert!(span_links >= 2, "expected span support, got {span_links}");
    }

    #[test]
    fn unrelated_contigs_are_not_linked() {
        let g1 = genome(800, 11);
        let g2 = genome(800, 12);
        let mut seqs = vec![(g1.clone(), 20.0), (g2.clone(), 20.0)];
        seqs.sort_by(|a, b| a.0.cmp(&b.0));
        let contigs = ContigSet::from_sequences(21, seqs);
        // Reads only from genome 1.
        let lib = paired_library(&g1, 80, 300, 11);
        let team = Team::single_node(1);
        let sets = team.run(|ctx| {
            let alignments = align_all(ctx, &lib, &contigs);
            build_links(ctx, &contigs, &alignments, &lib, &LinkParams::default())
        });
        assert!(
            sets[0].links.is_empty(),
            "no cross-contig evidence should exist: {:?}",
            sets[0].links
        );
    }

    #[test]
    fn link_key_normalisation_and_lookup() {
        let x = ContigEndRef {
            contig: 5,
            end: End::Tail,
        };
        let y = ContigEndRef {
            contig: 2,
            end: End::Head,
        };
        let k1 = LinkKey::new(x, y);
        let k2 = LinkKey::new(y, x);
        assert_eq!(k1, k2);
        assert_eq!(k1.other(x), Some(y));
        assert_eq!(k1.other(y), Some(x));
        assert_eq!(
            k1.other(ContigEndRef {
                contig: 9,
                end: End::Head
            }),
            None
        );
        assert_eq!(End::Head.opposite(), End::Tail);
    }

    #[test]
    fn link_data_merging_and_estimates() {
        let mut d = LinkData {
            splints: 1,
            spans: 0,
            gap_sum: -10,
        };
        d.merge(LinkData {
            splints: 1,
            spans: 2,
            gap_sum: 22,
        });
        assert_eq!(d.support(), 4);
        assert_eq!(d.gap_estimate(), 3);
        assert_eq!(LinkData::default().gap_estimate(), 0);
    }
}
