//! MetaHipMer scaffolding (Algorithm 3, §III).
//!
//! Scaffolding stitches contigs into longer sequences using the long-range
//! information carried by read pairs:
//!
//! 1. [`links`] — alignments are scanned for **splints** (single reads
//!    bridging two contig ends) and **spans** (read pairs whose mates align to
//!    different contigs); both are aggregated into links between *contig ends*
//!    in a distributed hash table keyed by the contig-end pair (§III-B);
//! 2. [`traversal`] — the contig graph defined by those links is partitioned
//!    into connected components (a Shiloach–Vishkin-style label-propagation
//!    pass, §III-C), components are dealt to ranks, and each component is
//!    walked by decreasing contig length with the paper's heuristics:
//!    extendable-end checks, suspension of short repeat contigs that spans
//!    jump over, and aggressive extension through contigs recognised as
//!    ribosomal by the profile HMM;
//! 3. [`gap_closing`] — gaps between adjacent contigs of a scaffold are closed
//!    with the cheapest method that succeeds (negative-gap overlap merging,
//!    re-insertion of suspended repeat contigs, read-k-mer bridging) and
//!    otherwise padded with `N`s sized by the span gap estimate; gaps are
//!    dealt round-robin over ranks for load balance (§III-D).

pub mod gap_closing;
pub mod links;
pub mod traversal;
pub mod types;

pub use gap_closing::{close_gaps, close_gaps_ref, GapClosingParams, GapClosingReport};
pub use links::{build_links, build_links_ref, ContigEndRef, End, LinkData, LinkKey, LinkSet};
pub use traversal::{traverse_contig_graph, traverse_contig_graph_ref, ScaffoldTraversalParams};
pub use types::{Scaffold, ScaffoldEntry, ScaffoldSet};

use aligner::AlignmentSet;
use dbg::{ContigSet, ContigsRef};
use pgas::Ctx;
use readstore::ReadsRef;
use rrna_hmm::RrnaDetector;
use seqio::ReadLibrary;

/// End-to-end scaffolding parameters.
#[derive(Debug, Clone, Default)]
pub struct ScaffoldParams {
    pub links: links::LinkParams,
    pub traversal: ScaffoldTraversalParams,
    pub gap_closing: GapClosingParams,
}

/// Runs the full scaffolding stage on a replicated contig set. Collective.
pub fn scaffold(
    ctx: &Ctx,
    contigs: &ContigSet,
    alignments: &AlignmentSet,
    library: &ReadLibrary,
    rrna: Option<&RrnaDetector>,
    params: &ScaffoldParams,
) -> (ScaffoldSet, GapClosingReport) {
    scaffold_ref(
        ctx,
        ContigsRef::Local(contigs),
        alignments,
        ReadsRef::Local(library),
        rrna,
        params,
    )
}

/// Runs the full scaffolding stage against either contig source. Collective.
/// `alignments` are the calling rank's read-to-contig alignments (each rank
/// aligned the reads it owns).
pub fn scaffold_ref(
    ctx: &Ctx,
    contigs: ContigsRef<'_>,
    alignments: &AlignmentSet,
    reads: ReadsRef<'_>,
    rrna: Option<&RrnaDetector>,
    params: &ScaffoldParams,
) -> (ScaffoldSet, GapClosingReport) {
    let link_set = build_links_ref(ctx, contigs, alignments, reads, &params.links);
    let gapped = traverse_contig_graph_ref(ctx, contigs, &link_set, rrna, &params.traversal);
    close_gaps_ref(ctx, contigs, gapped, &link_set, &params.gap_closing)
}
