//! Scaffold types.

use dbg::ContigId;

/// One contig placed in a scaffold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaffoldEntry {
    pub contig: ContigId,
    /// Orientation of the contig within the scaffold (true = as stored).
    pub forward: bool,
    /// Estimated gap (bases) to the next entry; negative values mean the
    /// contigs are believed to overlap. `None` for the last entry.
    pub gap_after: Option<i64>,
    /// A short repeat contig that was suspended from the traversal at this
    /// junction (§III-C); gap closing re-inserts it into the gap.
    pub suspended_after: Option<ContigId>,
}

/// An ordered chain of contigs plus (after gap closing) its sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaffold {
    pub id: u64,
    pub entries: Vec<ScaffoldEntry>,
    /// The materialised sequence (empty until gap closing runs).
    pub seq: Vec<u8>,
}

impl Scaffold {
    /// Number of contigs in the scaffold.
    pub fn num_contigs(&self) -> usize {
        self.entries.len()
    }

    /// Length of the materialised sequence.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if no sequence has been materialised.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// The final output of scaffolding.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScaffoldSet {
    pub scaffolds: Vec<Scaffold>,
}

impl ScaffoldSet {
    /// Number of scaffolds.
    pub fn len(&self) -> usize {
        self.scaffolds.len()
    }

    /// True if there are no scaffolds.
    pub fn is_empty(&self) -> bool {
        self.scaffolds.is_empty()
    }

    /// Total bases across all scaffold sequences.
    pub fn total_bases(&self) -> usize {
        self.scaffolds.iter().map(|s| s.len()).sum()
    }

    /// The scaffold sequences (the assembly handed to evaluation).
    pub fn sequences(&self) -> Vec<Vec<u8>> {
        self.scaffolds.iter().map(|s| s.seq.clone()).collect()
    }

    /// N50 of the scaffold sequences.
    pub fn n50(&self) -> usize {
        let mut lens: Vec<usize> = self.scaffolds.iter().map(|s| s.len()).collect();
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = lens.iter().sum();
        let mut acc = 0;
        for l in lens {
            acc += l;
            if 2 * acc >= total {
                return l;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaffold_set_statistics() {
        let set = ScaffoldSet {
            scaffolds: vec![
                Scaffold {
                    id: 0,
                    entries: vec![
                        ScaffoldEntry {
                            contig: 0,
                            forward: true,
                            gap_after: Some(10),
                            suspended_after: None,
                        },
                        ScaffoldEntry {
                            contig: 1,
                            forward: false,
                            gap_after: None,
                            suspended_after: None,
                        },
                    ],
                    seq: vec![b'A'; 300],
                },
                Scaffold {
                    id: 1,
                    entries: vec![ScaffoldEntry {
                        contig: 2,
                        forward: true,
                        gap_after: None,
                        suspended_after: None,
                    }],
                    seq: vec![b'C'; 100],
                },
            ],
        };
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_bases(), 400);
        assert_eq!(set.n50(), 300);
        assert_eq!(set.scaffolds[0].num_contigs(), 2);
        assert_eq!(set.sequences()[1].len(), 100);
        assert!(!set.is_empty());
        assert!(!set.scaffolds[0].is_empty());
    }
}
