//! `std::arch` facade: runtime-dispatched byte kernels for the compute hot
//! loops (no crates.io access, so this plays the role a `memchr`/`simdutf`
//! style dependency would).
//!
//! The facade owns two things:
//!
//! * **Dispatch.** [`level`] detects the best available instruction set once
//!   (AVX2 → SSE2 → word-parallel SWAR) and caches it. Setting
//!   `MHM_FORCE_SCALAR=1` in the environment — or calling
//!   [`set_force_scalar`] from an ablation harness — pins every kernel to its
//!   scalar twin, which is what CI uses to prove the fast paths are
//!   bit-for-bit equivalent.
//! * **Byte primitives.** The three operations the assembler's inner loops
//!   reduce to: validating/locating non-ACGT bytes ([`find_non_acgt`]),
//!   translating ASCII bases to 2-bit codes ([`encode_codes`]), and counting
//!   matching bytes under the aligner's "`N` never matches" rule
//!   ([`match_count_except`]). Higher-level kernels (packed k-mer arithmetic,
//!   the 2-bit wire codecs) live in `kmers::kernels` and build on these.
//!
//! Every dispatched function has a `_scalar` twin that is part of the public
//! API: the property tests use it as the oracle, and the `ablation_simd`
//! harness times the pair to produce the scalar-vs-kernel ratios in
//! `BENCH_simd.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The instruction set a dispatched kernel will use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Per-byte scalar loops (the oracle twins).
    Scalar,
    /// Word-parallel SWAR on `u64` (8 bytes per step, any target).
    Word,
    /// SSE2 128-bit vectors (16 bytes per step; baseline on `x86_64`).
    Sse2,
    /// AVX2 256-bit vectors (32 bytes per step; runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// Short human-readable name, used by benches and harness output.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Word => "word",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// `MHM_FORCE_SCALAR=1` pins every kernel to its scalar twin; initialised
/// from the environment on first use, overridable by [`set_force_scalar`].
fn force_flag() -> &'static AtomicBool {
    static FORCE: OnceLock<AtomicBool> = OnceLock::new();
    FORCE.get_or_init(|| {
        let on = std::env::var("MHM_FORCE_SCALAR")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        AtomicBool::new(on)
    })
}

/// True when kernels are pinned to their scalar twins (ablation mode).
#[inline]
pub fn force_scalar() -> bool {
    force_flag().load(Ordering::Relaxed)
}

/// Overrides the `MHM_FORCE_SCALAR` environment setting at runtime. Used by
/// the ablation harnesses and the equivalence tests to exercise both dispatch
/// modes inside one process; kernels are pure functions of their inputs, so
/// flipping this mid-run only changes speed, never results.
pub fn set_force_scalar(on: bool) {
    force_flag().store(on, Ordering::Relaxed);
}

/// The best instruction set available on this machine, detected once.
/// [`level`] degrades it to [`SimdLevel::Scalar`] while ablation mode is on.
fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
            // SSE2 is part of the x86_64 baseline, but keep the check so the
            // selection logic reads uniformly.
            if std::arch::is_x86_feature_detected!("sse2") {
                return SimdLevel::Sse2;
            }
        }
        SimdLevel::Word
    })
}

/// The dispatch level kernels run at right now.
#[inline]
pub fn level() -> SimdLevel {
    if force_scalar() {
        SimdLevel::Scalar
    } else {
        detected_level()
    }
}

// --- SWAR helpers ----------------------------------------------------------

const LO7: u64 = 0x7F7F_7F7F_7F7F_7F7F;
const HI1: u64 = 0x8080_8080_8080_8080;

/// High bit of each byte set iff that byte of `v` is non-zero. Exact per
/// byte: `(v & 0x7f) + 0x7f` never carries across byte lanes.
#[inline]
fn nonzero_high(v: u64) -> u64 {
    (((v & LO7) + LO7) | v) & HI1
}

/// High bit of each byte set iff that byte of `v` is zero.
#[inline]
fn zero_high(v: u64) -> u64 {
    !nonzero_high(v) & HI1
}

#[inline]
fn splat(b: u8) -> u64 {
    u64::from_ne_bytes([b; 8])
}

/// High bit of each byte set iff that byte is an upper- or lower-case
/// A/C/G/T.
#[inline]
fn valid_acgt_high(w: u64) -> u64 {
    // Clearing bit 5 maps lower-case onto upper-case for ASCII letters.
    let up = w & splat(0xDF);
    zero_high(up ^ splat(b'A'))
        | zero_high(up ^ splat(b'C'))
        | zero_high(up ^ splat(b'G'))
        | zero_high(up ^ splat(b'T'))
}

/// Bit `i` set iff byte `i` of `w` is an upper- or lower-case A/C/G/T.
/// Lets packers locate exception positions chunk by chunk. The multiply
/// gathers the 8 per-byte high bits into bits 56..64: with the i-th set bit
/// of the constant at `7i`, the byte-`j` flag (bit `8j+7`) lands on bit
/// `56+j` exactly once, and no two partial products collide below bit 64.
#[inline]
pub fn valid_acgt_mask8(w: u64) -> u8 {
    (valid_acgt_high(w).wrapping_mul(0x0002_0408_1020_4081) >> 56) as u8
}

/// Per-byte 2-bit codes of 8 ASCII bases packed in a little-endian `u64`:
/// `x = (b >> 1) & 3` maps A→0 C→1 G→3 T→2 case-insensitively, and
/// `x ^ ((x >> 1) & 1)` swaps G/T into the canonical `A=0 C=1 G=2 T=3`
/// coding. **Unchecked** — same caveat as [`encode_codes`].
#[inline]
pub fn encode8(w: u64) -> u64 {
    let x = (w >> 1) & splat(0x03);
    x ^ ((x >> 1) & splat(0x01))
}

// --- find_non_acgt ---------------------------------------------------------

/// Scalar twin of [`find_non_acgt`]: index of the first byte that is not an
/// unambiguous base (case-insensitive), or `None` if the slice is clean.
pub fn find_non_acgt_scalar(seq: &[u8]) -> Option<usize> {
    seq.iter()
        .position(|&b| !matches!(b, b'A' | b'C' | b'G' | b'T' | b'a' | b'c' | b'g' | b't'))
}

fn find_non_acgt_word(seq: &[u8]) -> Option<usize> {
    let mut chunks = seq.chunks_exact(8);
    for (ci, chunk) in chunks.by_ref().enumerate() {
        let w = u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
        let invalid = !valid_acgt_high(w) & HI1;
        if invalid != 0 {
            return Some(ci * 8 + invalid.trailing_zeros() as usize / 8);
        }
    }
    let tail_at = seq.len() - chunks.remainder().len();
    find_non_acgt_scalar(chunks.remainder()).map(|i| tail_at + i)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure SSE2 is available (x86_64 baseline).
    #[target_feature(enable = "sse2")]
    pub unsafe fn find_non_acgt_sse2(seq: &[u8]) -> Option<usize> {
        let n = seq.len();
        let mut i = 0usize;
        while i + 16 <= n {
            let v = _mm_loadu_si128(seq.as_ptr().add(i) as *const __m128i);
            let up = _mm_and_si128(v, _mm_set1_epi8(0xDFu8 as i8));
            let valid = _mm_or_si128(
                _mm_or_si128(
                    _mm_cmpeq_epi8(up, _mm_set1_epi8(b'A' as i8)),
                    _mm_cmpeq_epi8(up, _mm_set1_epi8(b'C' as i8)),
                ),
                _mm_or_si128(
                    _mm_cmpeq_epi8(up, _mm_set1_epi8(b'G' as i8)),
                    _mm_cmpeq_epi8(up, _mm_set1_epi8(b'T' as i8)),
                ),
            );
            let invalid = !_mm_movemask_epi8(valid) & 0xFFFF;
            if invalid != 0 {
                return Some(i + invalid.trailing_zeros() as usize);
            }
            i += 16;
        }
        super::find_non_acgt_scalar(&seq[i..]).map(|j| i + j)
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn find_non_acgt_avx2(seq: &[u8]) -> Option<usize> {
        let n = seq.len();
        let mut i = 0usize;
        while i + 32 <= n {
            let v = _mm256_loadu_si256(seq.as_ptr().add(i) as *const __m256i);
            let up = _mm256_and_si256(v, _mm256_set1_epi8(0xDFu8 as i8));
            let valid = _mm256_or_si256(
                _mm256_or_si256(
                    _mm256_cmpeq_epi8(up, _mm256_set1_epi8(b'A' as i8)),
                    _mm256_cmpeq_epi8(up, _mm256_set1_epi8(b'C' as i8)),
                ),
                _mm256_or_si256(
                    _mm256_cmpeq_epi8(up, _mm256_set1_epi8(b'G' as i8)),
                    _mm256_cmpeq_epi8(up, _mm256_set1_epi8(b'T' as i8)),
                ),
            );
            let invalid = !_mm256_movemask_epi8(valid) as u32;
            if invalid != 0 {
                return Some(i + invalid.trailing_zeros() as usize);
            }
            i += 32;
        }
        find_non_acgt_sse2(&seq[i..]).map(|j| i + j)
    }

    /// # Safety
    /// Caller must ensure SSE2 is available (x86_64 baseline).
    #[target_feature(enable = "sse2")]
    pub unsafe fn match_count_except_sse2(a: &[u8], b: &[u8], except: u8) -> usize {
        let n = a.len();
        let exc = _mm_set1_epi8(except as i8);
        let mut count = 0usize;
        let mut i = 0usize;
        while i + 16 <= n {
            let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
            let eq = _mm_cmpeq_epi8(va, vb);
            let is_exc = _mm_cmpeq_epi8(va, exc);
            let hit = _mm_andnot_si128(is_exc, eq);
            count += (_mm_movemask_epi8(hit) as u32).count_ones() as usize;
            i += 16;
        }
        count + super::match_count_except_scalar(&a[i..], &b[i..], except)
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn match_count_except_avx2(a: &[u8], b: &[u8], except: u8) -> usize {
        let n = a.len();
        let exc = _mm256_set1_epi8(except as i8);
        let mut count = 0usize;
        let mut i = 0usize;
        while i + 32 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            let eq = _mm256_cmpeq_epi8(va, vb);
            let is_exc = _mm256_cmpeq_epi8(va, exc);
            let hit = _mm256_andnot_si256(is_exc, eq);
            count += (_mm256_movemask_epi8(hit) as u32).count_ones() as usize;
            i += 32;
        }
        count + match_count_except_sse2(&a[i..], &b[i..], except)
    }

    /// # Safety
    /// Caller must ensure SSE2 is available (x86_64 baseline).
    #[target_feature(enable = "sse2")]
    pub unsafe fn encode_codes_sse2(seq: &[u8], out: &mut [u8]) {
        let n = seq.len();
        let mask3 = _mm_set1_epi8(0x03);
        let mask1 = _mm_set1_epi8(0x01);
        let mut i = 0usize;
        while i + 16 <= n {
            let v = _mm_loadu_si128(seq.as_ptr().add(i) as *const __m128i);
            // x = (b >> 1) & 3 maps A→0 C→1 G→3 T→2 (case-insensitively);
            // x ^ (x >> 1) swaps G/T into the A=0 C=1 G=2 T=3 coding.
            let x = _mm_and_si128(_mm_srli_epi64(v, 1), mask3);
            let code = _mm_xor_si128(x, _mm_and_si128(_mm_srli_epi64(x, 1), mask1));
            _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, code);
            i += 16;
        }
        super::encode_codes_scalar(&seq[i..], &mut out[i..]);
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn encode_codes_avx2(seq: &[u8], out: &mut [u8]) {
        let n = seq.len();
        let mask3 = _mm256_set1_epi8(0x03);
        let mask1 = _mm256_set1_epi8(0x01);
        let mut i = 0usize;
        while i + 32 <= n {
            let v = _mm256_loadu_si256(seq.as_ptr().add(i) as *const __m256i);
            let x = _mm256_and_si256(_mm256_srli_epi64(v, 1), mask3);
            let code = _mm256_xor_si256(x, _mm256_and_si256(_mm256_srli_epi64(x, 1), mask1));
            _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, code);
            i += 32;
        }
        encode_codes_sse2(&seq[i..], &mut out[i..]);
    }
}

/// Index of the first byte that is not an unambiguous A/C/G/T base
/// (case-insensitive), or `None` if the whole slice is clean. The stretch
/// scanner of supermer extraction and the bulk 2-bit encoders use this to
/// find their ambiguity boundaries without a per-byte match.
pub fn find_non_acgt(seq: &[u8]) -> Option<usize> {
    match level() {
        SimdLevel::Scalar => find_non_acgt_scalar(seq),
        SimdLevel::Word => find_non_acgt_word(seq),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { x86::find_non_acgt_sse2(seq) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::find_non_acgt_avx2(seq) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => find_non_acgt_word(seq),
    }
}

// --- encode_codes ----------------------------------------------------------

/// Scalar twin of [`encode_codes`].
pub fn encode_codes_scalar(seq: &[u8], out: &mut [u8]) {
    assert_eq!(seq.len(), out.len());
    for (b, o) in seq.iter().zip(out.iter_mut()) {
        let x = (b >> 1) & 3;
        *o = x ^ ((x >> 1) & 1);
    }
}

fn encode_codes_word(seq: &[u8], out: &mut [u8]) {
    assert_eq!(seq.len(), out.len());
    let mut chunks = seq.chunks_exact(8);
    let mut oi = 0usize;
    for chunk in chunks.by_ref() {
        let w = u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
        out[oi..oi + 8].copy_from_slice(&encode8(w).to_le_bytes());
        oi += 8;
    }
    encode_codes_scalar(chunks.remainder(), &mut out[oi..]);
}

/// Translates ASCII bases into their 2-bit codes (`A=0 C=1 G=2 T=3`,
/// case-insensitive), one output byte per input byte. **Unchecked**: bytes
/// outside ACGT produce unspecified codes — validate with [`find_non_acgt`]
/// first (the callers all operate on pre-validated stretches).
pub fn encode_codes(seq: &[u8], out: &mut [u8]) {
    match level() {
        SimdLevel::Scalar => encode_codes_scalar(seq, out),
        SimdLevel::Word => encode_codes_word(seq, out),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { x86::encode_codes_sse2(seq, out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::encode_codes_avx2(seq, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => encode_codes_word(seq, out),
    }
}

// --- match_count_except ----------------------------------------------------

/// Scalar twin of [`match_count_except`].
pub fn match_count_except_scalar(a: &[u8], b: &[u8], except: u8) -> usize {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .filter(|&(&x, &y)| x == y && x != except)
        .count()
}

fn match_count_except_word(a: &[u8], b: &[u8], except: u8) -> usize {
    assert_eq!(a.len(), b.len());
    let exc = splat(except);
    let mut count = 0usize;
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        let wa = u64::from_le_bytes(xa.try_into().expect("exact chunk"));
        let wb = u64::from_le_bytes(xb.try_into().expect("exact chunk"));
        let eq = zero_high(wa ^ wb);
        let not_exc = nonzero_high(wa ^ exc);
        count += (eq & not_exc).count_ones() as usize;
    }
    count + match_count_except_scalar(ca.remainder(), cb.remainder(), except)
}

/// Counts positions where `a[i] == b[i]` and the byte is not `except` — the
/// aligner's ungapped verification rule with `except = b'N'` (an `N` never
/// matches, not even another `N`). Both slices must have the same length.
pub fn match_count_except(a: &[u8], b: &[u8], except: u8) -> usize {
    assert_eq!(a.len(), b.len());
    match level() {
        SimdLevel::Scalar => match_count_except_scalar(a, b, except),
        SimdLevel::Word => match_count_except_word(a, b, except),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { x86::match_count_except_sse2(a, b, except) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::match_count_except_avx2(a, b, except) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => match_count_except_word(a, b, except),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic byte stream mixing bases, Ns and junk.
    fn noisy_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                match state % 23 {
                    0 => b'N',
                    1 => b'x',
                    2..=5 => b"acgt"[(state >> 8) as usize % 4],
                    _ => b"ACGT"[(state >> 8) as usize % 4],
                }
            })
            .collect()
    }

    #[test]
    fn find_non_acgt_agrees_with_scalar_at_every_length() {
        for len in 0..70 {
            for seed in 1..8u64 {
                let s = noisy_seq(len, seed * 977);
                let expect = find_non_acgt_scalar(&s);
                assert_eq!(find_non_acgt_word(&s), expect, "word len={len} seed={seed}");
                assert_eq!(find_non_acgt(&s), expect, "dispatch len={len} seed={seed}");
                #[cfg(target_arch = "x86_64")]
                unsafe {
                    assert_eq!(x86::find_non_acgt_sse2(&s), expect, "sse2 len={len}");
                    if std::arch::is_x86_feature_detected!("avx2") {
                        assert_eq!(x86::find_non_acgt_avx2(&s), expect, "avx2 len={len}");
                    }
                }
            }
        }
        assert_eq!(find_non_acgt(b"ACGTacgt"), None);
        assert_eq!(find_non_acgt(b"ACGTNCGT"), Some(4));
    }

    #[test]
    fn encode_codes_agrees_with_scalar_and_alphabet() {
        for len in 0..70 {
            let s: Vec<u8> = (0..len).map(|i| b"ACGTacgt"[(i * 13 + 5) % 8]).collect();
            let mut expect = vec![0u8; len];
            encode_codes_scalar(&s, &mut expect);
            // The scalar twin must agree with the canonical mapping.
            for (&b, &c) in s.iter().zip(&expect) {
                let canonical = match b.to_ascii_uppercase() {
                    b'A' => 0,
                    b'C' => 1,
                    b'G' => 2,
                    _ => 3,
                };
                assert_eq!(c, canonical, "byte {b}");
            }
            let mut got = vec![0u8; len];
            encode_codes_word(&s, &mut got);
            assert_eq!(got, expect, "word len={len}");
            let mut got2 = vec![0u8; len];
            encode_codes(&s, &mut got2);
            assert_eq!(got2, expect, "dispatch len={len}");
            #[cfg(target_arch = "x86_64")]
            unsafe {
                let mut got3 = vec![0u8; len];
                x86::encode_codes_sse2(&s, &mut got3);
                assert_eq!(got3, expect, "sse2 len={len}");
                if std::arch::is_x86_feature_detected!("avx2") {
                    let mut got4 = vec![0u8; len];
                    x86::encode_codes_avx2(&s, &mut got4);
                    assert_eq!(got4, expect, "avx2 len={len}");
                }
            }
        }
    }

    #[test]
    fn match_count_agrees_with_scalar_including_n_rule() {
        for len in 0..70 {
            for seed in 1..6u64 {
                let a = noisy_seq(len, seed * 31);
                // Correlated second sequence: copy with sprinkled edits.
                let mut b = a.clone();
                let mut state = seed * 77 + 1;
                for x in b.iter_mut() {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if state % 5 == 0 {
                        *x = b"ACGTN"[(state >> 33) as usize % 5];
                    }
                }
                let expect = match_count_except_scalar(&a, &b, b'N');
                assert_eq!(match_count_except_word(&a, &b, b'N'), expect, "word");
                assert_eq!(match_count_except(&a, &b, b'N'), expect, "dispatch");
                #[cfg(target_arch = "x86_64")]
                unsafe {
                    assert_eq!(x86::match_count_except_sse2(&a, &b, b'N'), expect, "sse2");
                    if std::arch::is_x86_feature_detected!("avx2") {
                        assert_eq!(x86::match_count_except_avx2(&a, &b, b'N'), expect, "avx2");
                    }
                }
            }
        }
        // Ns never match, even aligned with each other.
        assert_eq!(match_count_except(b"NNNN", b"NNNN", b'N'), 0);
        assert_eq!(match_count_except(b"ANCA", b"ANCA", b'N'), 3);
    }

    #[test]
    fn valid_acgt_mask8_matches_per_byte_check() {
        for seed in 1..200u64 {
            let s = noisy_seq(8, seed * 131);
            let w = u64::from_le_bytes(s.clone().try_into().expect("8 bytes"));
            let mut expect = 0u8;
            for (j, &b) in s.iter().enumerate() {
                if matches!(b.to_ascii_uppercase(), b'A' | b'C' | b'G' | b'T') {
                    expect |= 1 << j;
                }
            }
            assert_eq!(valid_acgt_mask8(w), expect, "seed={seed} seq={s:?}");
        }
        assert_eq!(valid_acgt_mask8(u64::from_le_bytes(*b"ACGTacgt")), 0xFF);
        assert_eq!(valid_acgt_mask8(u64::from_le_bytes(*b"NNNNNNNN")), 0x00);
    }

    #[test]
    fn force_scalar_pins_the_level() {
        let before = force_scalar();
        set_force_scalar(true);
        assert_eq!(level(), SimdLevel::Scalar);
        set_force_scalar(false);
        assert_ne!(level(), SimdLevel::Scalar);
        set_force_scalar(before);
    }
}
