//! Seeded schedule-perturbation shim for race hunting.
//!
//! The PGAS runtime simulates SPMD ranks with OS threads, so the interleavings
//! the test suite happens to observe are whatever the host scheduler serves
//! up. This shim lets a harness (see `mhm_check`) widen that set: sync-heavy
//! code paths in `pgas` and `dht` call [`yield_point`] at interesting moments
//! (barrier entry/exit, mailbox deposit/drain, cache guard acquisition,
//! barrier poisoning), and when perturbation is enabled each visit may inject
//! a `yield_now` or a short sleep, chosen by a seeded xorshift stream mixed
//! with a hash of the call-site label.
//!
//! Design constraints:
//!
//! - **Near-zero cost when disabled**: one relaxed atomic load per visit.
//!   Production and ordinary test runs never pay more than that.
//! - **Bounded**: every enablement carries a perturbation budget; once spent,
//!   all yield points revert to the fast path so a perturbed run terminates
//!   on the same schedule class as an unperturbed one.
//! - **Seeded, not replayable**: the decision stream is deterministic in
//!   (seed, visit order), but visit order itself depends on the schedule the
//!   perturbations produce. Seeds are exploration knobs, not replay keys.
//!
//! Vendored in-workspace (like the `parking_lot`/`rand` shims) so the
//! workspace stays free of crates.io dependencies.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Tuning for one perturbation session.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Seed for the xorshift decision stream.
    pub seed: u64,
    /// Maximum number of perturbations (yields + sleeps) injected before the
    /// shim reverts to the fast path.
    pub max_perturbations: u64,
    /// Upper bound, in microseconds, for an injected sleep.
    pub max_sleep_us: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 1,
            max_perturbations: 2_000,
            max_sleep_us: 100,
        }
    }
}

struct State {
    rng: u64,
    budget: u64,
    max_sleep_us: u64,
    fired: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<State> = Mutex::new(State {
    rng: 0,
    budget: 0,
    max_sleep_us: 0,
    fired: 0,
});

/// Turns perturbation on with the given config. Affects every thread in the
/// process; callers coordinating multiple scenarios should serialise
/// enable/disable windows themselves.
pub fn enable(cfg: Config) {
    let mut s = STATE.lock().unwrap_or_else(|e| e.into_inner());
    // xorshift needs a non-zero state; fold the seed through splitmix-style
    // mixing so small seeds (0, 1, 2, ...) still diverge quickly.
    let mut z = cfg.seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    s.rng = (z ^ (z >> 31)) | 1;
    s.budget = cfg.max_perturbations;
    s.max_sleep_us = cfg.max_sleep_us.max(1);
    s.fired = 0;
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns perturbation off. Yield points revert to a single relaxed load.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether perturbation is currently enabled.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of perturbations injected since the last [`enable`].
pub fn perturbations() -> u64 {
    STATE.lock().unwrap_or_else(|e| e.into_inner()).fired
}

/// Marks a schedule-interesting point. `site` labels the call site (e.g.
/// `"pgas::barrier::enter"`) and is mixed into the decision stream so
/// different sites de-correlate even when visited in lockstep.
///
/// Cost when disabled: one relaxed atomic load.
#[inline]
pub fn yield_point(site: &str) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    perturb(site);
}

#[cold]
fn perturb(site: &str) {
    enum Action {
        Nothing,
        Yield,
        Sleep(u64),
    }
    let action = {
        let mut s = STATE.lock().unwrap_or_else(|e| e.into_inner());
        if s.budget == 0 {
            return;
        }
        // FNV-1a over the site label, folded into the xorshift64* state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in site.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        s.rng ^= h;
        s.rng ^= s.rng << 13;
        s.rng ^= s.rng >> 7;
        s.rng ^= s.rng << 17;
        let r = s.rng.wrapping_mul(0x2545_f491_4f6c_dd1d);
        match r % 4 {
            0 | 1 => Action::Nothing,
            2 => {
                s.budget -= 1;
                s.fired += 1;
                Action::Yield
            }
            _ => {
                s.budget -= 1;
                s.fired += 1;
                Action::Sleep((r >> 8) % s.max_sleep_us + 1)
            }
        }
    };
    // Perform the perturbation outside the state lock so sleeping threads
    // never serialise other yield points.
    match action {
        Action::Nothing => {}
        Action::Yield => std::thread::yield_now(),
        Action::Sleep(us) => std::thread::sleep(Duration::from_micros(us)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_yield_points_are_free_and_fire_nothing() {
        disable();
        for _ in 0..1_000 {
            yield_point("test::site");
        }
        assert!(!is_enabled());
    }

    #[test]
    fn budget_bounds_the_number_of_perturbations() {
        enable(Config {
            seed: 42,
            max_perturbations: 8,
            max_sleep_us: 5,
        });
        for _ in 0..10_000 {
            yield_point("test::budget");
        }
        let fired = perturbations();
        disable();
        assert!(fired <= 8, "budget overrun: {fired}");
        assert!(fired > 0, "a 10k-visit run should spend some budget");
    }
}
