//! Minimal stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors the
//! API subset its callers use: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and the `Rng` methods `gen`, `gen_range`, `gen_bool`, `fill`. The generator
//! is xoshiro256++ seeded through SplitMix64 — deterministic for a given seed,
//! which is all the simulator and the determinism tests require. The streams
//! are NOT bit-compatible with the real `rand` crate; nothing in this
//! workspace asserts on absolute random values, only on seeded repeatability.

pub mod rngs {
    /// Deterministic xoshiro256++ generator, the workspace's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        #[inline]
        pub(crate) fn next_raw(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_u64_seed(seed)
        }
    }

    /// Alias: the real crate's `SmallRng` is a distinct generator; here both
    /// names resolve to the same xoshiro256++ core.
    pub type SmallRng = StdRng;
}

/// The raw generator interface: everything else is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the real crate's `Standard` distribution).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Scalar types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased integer sampling from [0, span) via Lemire-style rejection on the
/// top bits; span == 0 encodes the full u64 range.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Rejection zone keeps the modulo unbiased.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                // span == 0 means the whole u64 domain (low=MIN, high=MAX).
                let span = (high as i128 - low as i128 + 1) as u64;
                low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as Standard>::from_rng(rng);
                low + unit * (high - low)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let unit = <$t as Standard>::from_rng(rng);
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing generator interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        self.gen::<f64>() < p
    }

    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean drifted: {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "gen_bool rate drifted: {rate}");
    }

    #[test]
    fn small_int_ranges_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 600, "bucket skew: {counts:?}");
        }
    }
}
