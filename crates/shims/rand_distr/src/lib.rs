//! Minimal stand-in for the `rand_distr` crate.
//!
//! Provides the three distributions the read/community simulators draw from:
//! [`Normal`] (Box–Muller), [`LogNormal`] (exp of a normal draw) and
//! [`WeightedIndex`] (inverse-CDF lookup over cumulative weights). Streams are
//! deterministic for a seeded generator but not bit-compatible with the real
//! crate.

use rand::{Rng, RngCore};
use std::borrow::Borrow;
use std::fmt;

/// Types that can be sampled given a generator.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error for invalid `Normal`/`LogNormal` parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution sampled with the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

/// One standard-normal draw via Box–Muller; discards the second branch to keep
/// the distribution object stateless (and therefore `Copy` + thread-safe).
#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue; // ln(0) guard
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

impl Distribution<f64> for Normal {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Error for invalid `WeightedIndex` weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedError;

impl fmt::Display for WeightedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "weights must be non-negative, finite, and sum to a positive total"
        )
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices proportionally to the given weights, by binary search over
/// the cumulative weight vector.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() || total <= 0.0 {
            return Err(WeightedError);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let target: f64 = rng.gen::<f64>() * self.total;
        // First index whose cumulative weight exceeds the target; partition
        // point handles zero-weight entries (their cumulative equals the
        // previous entry's, so they are never selected).
        self.cumulative
            .partition_point(|&c| c <= target)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Normal::new(10.0, 2.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = LogNormal::new(0.0, 1.0).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| dist.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        // Median of LogNormal(0, 1) is e^0 = 1.
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = WeightedIndex::new([1.0, 0.0, 3.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight entry drawn: {counts:?}");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "weight ratio {ratio}");
    }

    #[test]
    fn weighted_index_rejects_degenerate_weights() {
        assert!(WeightedIndex::new::<[f64; 0]>([]).is_err());
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
        assert!(WeightedIndex::new([-1.0, 2.0]).is_err());
    }
}
