//! Minimal stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to a crates.io mirror, so the workspace
//! vendors the tiny API subset it actually uses: `Mutex`/`RwLock` whose lock
//! methods return guards directly (no `LockResult` poisoning layer). Poisoning
//! is handled by unwrapping: a panic while holding a lock is already fatal to
//! the SPMD team that owns it, so propagating the poison adds nothing here.

use std::fmt;
use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive with the `parking_lot` calling convention:
/// `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    #[inline]
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&self.0).finish()
    }
}

/// Reader-writer lock with the `parking_lot` calling convention.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    #[inline]
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&self.0).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_serialises_increments() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
