//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! Offers the same authoring surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, `black_box`) but performs a
//! simple best-of-N timing instead of criterion's statistical analysis. Good
//! enough for the relative comparisons the micro-benches are read for, and it
//! keeps `cargo bench` runnable without crates.io access.

use std::time::{Duration, Instant};

/// Re-implementation of `std::hint::black_box` passthrough.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints; the shim runs one iteration per batch regardless, so
/// these only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over `samples` runs, recording each run's wall clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }
}

/// The harness entry object.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed runs each benchmark performs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints min/median/max of the recorded runs.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        b.results.sort();
        if b.results.is_empty() {
            println!("{id:<40} (no samples recorded)");
        } else {
            let min = b.results[0];
            let med = b.results[b.results.len() / 2];
            let max = b.results[b.results.len() - 1];
            println!(
                "{id:<40} min {:>10.3?}  med {:>10.3?}  max {:>10.3?}  ({} runs)",
                min,
                med,
                max,
                b.results.len()
            );
        }
        self
    }

    /// Criterion's CLI/config hook; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a benchmark group the way criterion does. Both the
/// `name/config/targets` form and the positional form are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits the `main` that runs every declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default().sample_size(4);
        let mut seen = Vec::new();
        let mut next = 0;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |input| seen.push(input),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }
}
