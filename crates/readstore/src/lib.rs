//! The distributed read store (§II-B of the paper, memory side).
//!
//! MetaHipMer never holds the whole input on one node: reads are streamed
//! from FASTQ in bounded blocks, packed, and cached in the PGAS global
//! address space so that each rank's resident footprint is its fair share of
//! the input plus a bounded cache — the property that lets the pipeline
//! ingest datasets larger than any single node's memory. This crate is that
//! layer, mirroring the distributed contig store (`dbg::store`) one level
//! upstream:
//!
//! * [`PackedRead`] — one read, 2-bit-packed sequence ([`kmers::PackedSeq`],
//!   non-ACGT bytes in an exception list) plus run-length-encoded Phred
//!   scores; read names are dropped in favour of positional [`ReadId`]s;
//! * [`PackedReadBlock`] — a fixed-count run of consecutive reads (pair
//!   boundaries respected), the unit of sharding and transfer;
//! * [`ReadStore`] — block id → [`PackedReadBlock`], sharded over the ranks
//!   by a [`dht::DistMap`], plus a replicated O(#reads) length table that
//!   answers every geometry query (read length, mate id, k-mer estimates)
//!   without touching sequence bytes;
//! * [`ReadStore::ingest_fastq`] — streaming ingestion through
//!   [`seqio::FastqBlockIter`]: each rank scans the input in bounded chunks
//!   and packs only the blocks it owns, so the full record set is never
//!   materialised anywhere;
//! * [`ReadReader`] — a per-rank read-through view with a byte-bounded FIFO
//!   [`dht::SoftwareCache`]; collective batch fills via
//!   [`dht::DistMap::get_many`] and one-sided fills via
//!   [`dht::DistMap::get_many_onesided`] for dynamically scheduled loops;
//! * [`ReadStream`] — an in-order `(ReadId, Read)` iterator that unpacks one
//!   block at a time (the alignment ingest path), fetching foreign blocks
//!   one-sided so per-rank progress never has to line up collectively;
//! * [`OwnedReads`] — a [`seqio::ReadSource`] over the calling rank's owned
//!   blocks (the k-mer analysis ingest path);
//! * [`ReadsRef`] — the handle consumers take: either a replicated
//!   [`ReadLibrary`] (the ablation baseline) or a [`ReadStore`].
//!
//! Residency accounting: the store records each rank's peak resident read
//! bytes (owned shard + reader caches, packed) in
//! `CommStats::read_bytes_resident` and every cache-miss fill in
//! `CommStats::read_fetch_bytes`, which is what the `ablation_read_store`
//! harness asserts the `total/ranks + cache bound` memory ceiling on.

use dht::{DistMap, FxHashMap, SoftwareCache};
use kmers::PackedSeq;
use pgas::Ctx;
use seqio::{FastqBlockIter, PairOrientation, Read, ReadId, ReadLibrary};
use std::sync::Arc;

/// Identifier of a packed read block: `read_id / block_reads`.
pub type BlockId = u64;

/// In-memory byte bound of one streaming FASTQ parse chunk during ingestion
/// (records materialised at once per rank, before packing; independent of the
/// store's block size).
const INGEST_CHUNK_BYTES: usize = 1 << 20;

/// Construction parameters of a [`ReadStore`].
#[derive(Debug, Clone, Copy)]
pub struct ReadStoreParams {
    /// Reads per block (rounded down to even for paired libraries so mates
    /// always share a block).
    pub block_reads: usize,
    /// Per-rank reader cache bound in *packed* bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Per-owner request batch handed to the aggregated lookup layer.
    pub batch: usize,
}

impl Default for ReadStoreParams {
    fn default() -> Self {
        ReadStoreParams {
            block_reads: 64,
            cache_bytes: 1 << 20,
            batch: 1024,
        }
    }
}

/// One read in packed form: 2-bit sequence plus run-length-encoded Phred
/// scores. The name is dropped — reads are addressed by positional
/// [`ReadId`] everywhere downstream of ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedRead {
    seq: PackedSeq,
    /// `(score, run)` pairs; runs longer than 255 repeat the pair. Short-read
    /// quality strings are long same-score runs, so this is far below one
    /// byte per base in practice and at most two bytes per base ever.
    qual_runs: Vec<(u8, u8)>,
}

impl PackedRead {
    /// Packs a read (name discarded).
    pub fn from_read(read: &Read) -> Self {
        debug_assert_eq!(read.seq.len(), read.qual.len());
        let mut qual_runs: Vec<(u8, u8)> = Vec::new();
        for &q in &read.qual {
            match qual_runs.last_mut() {
                Some((lq, run)) if *lq == q && *run < u8::MAX => *run += 1,
                _ => qual_runs.push((q, 1)),
            }
        }
        PackedRead {
            seq: PackedSeq::from_bytes(&read.seq),
            qual_runs,
        }
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the read holds no bases.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Packed footprint in bytes (sequence + exception list + quality runs).
    pub fn packed_bytes(&self) -> usize {
        self.seq.packed_bytes() + 2 * self.qual_runs.len()
    }

    /// Unpacks the sequence bytes only.
    pub fn unpack_seq(&self) -> Vec<u8> {
        self.seq.unpack()
    }

    /// The raw representation — packed sequence plus quality runs — for
    /// serializers (e.g. checkpoint shard files). Round-trips through
    /// [`PackedRead::from_parts`].
    pub fn to_parts(&self) -> (&PackedSeq, &[(u8, u8)]) {
        (&self.seq, &self.qual_runs)
    }

    /// Rebuilds a packed read from the raw representation produced by
    /// [`PackedRead::to_parts`]. Validates that the quality runs cover
    /// exactly the sequence length, so a corrupt input fails loudly here
    /// rather than as a malformed [`Read`] downstream.
    pub fn from_parts(seq: PackedSeq, qual_runs: Vec<(u8, u8)>) -> Self {
        let covered: usize = qual_runs.iter().map(|&(_, run)| run as usize).sum();
        assert_eq!(
            covered,
            seq.len(),
            "quality runs must cover the sequence exactly"
        );
        PackedRead { seq, qual_runs }
    }

    /// Unpacks to a full [`Read`] (empty name).
    pub fn unpack(&self) -> Read {
        let seq = self.seq.unpack();
        let mut qual = Vec::with_capacity(seq.len());
        for &(q, run) in &self.qual_runs {
            qual.resize(qual.len() + run as usize, q);
        }
        debug_assert_eq!(qual.len(), seq.len());
        Read {
            name: String::new(),
            seq,
            qual,
        }
    }
}

/// A run of up to `block_reads` consecutive reads starting at `first_id`:
/// the unit of sharding, transfer and caching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedReadBlock {
    /// Read id of `reads[0]`.
    pub first_id: ReadId,
    /// The packed reads, in id order.
    pub reads: Vec<PackedRead>,
}

impl PackedReadBlock {
    /// Packed footprint in bytes.
    pub fn packed_bytes(&self) -> usize {
        8 + self.reads.iter().map(|r| r.packed_bytes()).sum::<usize>()
    }

    /// The packed read with the given id, if it falls in this block.
    pub fn get(&self, id: ReadId) -> Option<&PackedRead> {
        id.checked_sub(self.first_id)
            .and_then(|i| self.reads.get(i as usize))
    }
}

/// The distributed read store: packed read blocks sharded by owner rank plus
/// a replicated per-read length table. Built collectively; shared by the
/// team.
pub struct ReadStore {
    map: Arc<DistMap<BlockId, PackedReadBlock>>,
    /// Replicated per-read lengths — O(#reads) and cheap next to sequence
    /// bytes; answers geometry queries (scaffold link spans, k-mer
    /// estimates) with zero communication.
    lens: Vec<u32>,
    name: String,
    paired: bool,
    insert_size: usize,
    insert_sd: usize,
    orientation: PairOrientation,
    block_reads: usize,
    cache_bytes: usize,
    batch: usize,
}

/// The replicated, O(#reads) half of a [`ReadStore`] — everything except the
/// sharded blocks themselves. Exported by [`ReadStore::header`] for
/// checkpoint manifests and fed back to [`ReadStore::restore`]; `block_reads`
/// travels with it (rather than being re-derived from restore-time params)
/// because the block geometry must match the shard entries being reloaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadStoreHeader {
    /// Library name.
    pub name: String,
    /// Whether reads are pair-interleaved.
    pub paired: bool,
    /// Library mean insert size.
    pub insert_size: usize,
    /// Library insert-size standard deviation.
    pub insert_sd: usize,
    /// Pair orientation.
    pub orientation: PairOrientation,
    /// Reads per block of the store that exported this header.
    pub block_reads: usize,
    /// Replicated per-read length table.
    pub lens: Vec<u32>,
}

/// Pair-safe block size: even for paired libraries so mates colocate.
fn effective_block_reads(params: &ReadStoreParams, paired: bool) -> usize {
    if paired {
        (params.block_reads & !1).max(2)
    } else {
        params.block_reads.max(1)
    }
}

impl ReadStore {
    /// Collectively builds the store from a (transiently replicated)
    /// library: every rank packs and stores exactly the blocks it owns — an
    /// owner-local update phase with no wire traffic — then records its
    /// owned packed bytes in the residency accounting. Callers in
    /// distributed mode drop the replicated library right after this
    /// returns; [`ReadStore::ingest_fastq`] never materialises it at all.
    pub fn build(ctx: &Ctx, library: &ReadLibrary, params: &ReadStoreParams) -> Arc<ReadStore> {
        let block_reads = effective_block_reads(params, library.paired);
        let map: Arc<DistMap<BlockId, PackedReadBlock>> = DistMap::shared(ctx);
        let mut mine: Vec<(BlockId, PackedReadBlock)> = Vec::new();
        let num_blocks = library.reads.len().div_ceil(block_reads);
        for b in 0..num_blocks as BlockId {
            if map.owner_of(&b) != ctx.rank() {
                continue;
            }
            let first = b as usize * block_reads;
            let end = (first + block_reads).min(library.reads.len());
            mine.push((
                b,
                PackedReadBlock {
                    first_id: first as ReadId,
                    reads: library.reads[first..end]
                        .iter()
                        .map(PackedRead::from_read)
                        .collect(),
                },
            ));
        }
        map.apply_local_batch(ctx, mine, |v| v, |a, b| *a = b);
        ctx.barrier();
        let lens: Vec<u32> = library.reads.iter().map(|r| r.len() as u32).collect();
        let name = library.name.clone();
        let (paired, insert_size, insert_sd, orientation) = (
            library.paired,
            library.insert_size,
            library.insert_sd,
            library.orientation,
        );
        let store = ctx.share(|| ReadStore {
            map: Arc::clone(&map),
            lens,
            name,
            paired,
            insert_size,
            insert_sd,
            orientation,
            block_reads,
            cache_bytes: params.cache_bytes,
            batch: params.batch,
        });
        ctx.record_read_resident(store.owned_packed_bytes(ctx));
        ctx.barrier();
        store
    }

    /// Collectively ingests interleaved paired FASTQ text *streamingly*:
    /// every rank scans the input through [`FastqBlockIter`] in bounded
    /// chunks, appends to the replicated length table, and packs only the
    /// blocks it owns — at no point does any rank hold more than one parse
    /// chunk of unpacked records plus its own shard. Errors (malformed
    /// records, odd record count) are deterministic and identical on every
    /// rank, so the collective error path stays aligned.
    pub fn ingest_fastq(
        ctx: &Ctx,
        name: &str,
        text: &str,
        insert_size: usize,
        insert_sd: usize,
        params: &ReadStoreParams,
    ) -> Result<Arc<ReadStore>, String> {
        let paired = true;
        let block_reads = effective_block_reads(params, paired);
        let map: Arc<DistMap<BlockId, PackedReadBlock>> = DistMap::shared(ctx);
        let mut lens: Vec<u32> = Vec::new();
        let mut mine: Vec<(BlockId, PackedReadBlock)> = Vec::new();
        let mut cur: Vec<PackedRead> = Vec::new();
        let mut cur_block: BlockId = 0;
        let flush =
            |mine: &mut Vec<(BlockId, PackedReadBlock)>, cur: &mut Vec<PackedRead>, b: BlockId| {
                if !cur.is_empty() {
                    mine.push((
                        b,
                        PackedReadBlock {
                            first_id: b * block_reads as u64,
                            reads: std::mem::take(cur),
                        },
                    ));
                }
            };
        for chunk in FastqBlockIter::new(text, INGEST_CHUNK_BYTES, paired) {
            let records = chunk?;
            for rec in records {
                let id = lens.len() as ReadId;
                let b = id / block_reads as u64;
                lens.push(rec.seq.len() as u32);
                if b != cur_block {
                    flush(&mut mine, &mut cur, cur_block);
                    cur_block = b;
                }
                if map.owner_of(&b) == ctx.rank() {
                    cur.push(PackedRead::from_read(&rec.into()));
                }
            }
        }
        flush(&mut mine, &mut cur, cur_block);
        if !lens.len().is_multiple_of(2) {
            return Err(format!(
                "interleaved FASTQ must hold an even number of records, got {}",
                lens.len()
            ));
        }
        map.apply_local_batch(ctx, mine, |v| v, |a, b| *a = b);
        ctx.barrier();
        let name = name.to_string();
        let store = ctx.share(|| ReadStore {
            map: Arc::clone(&map),
            lens,
            name,
            paired,
            insert_size,
            insert_sd,
            orientation: PairOrientation::ForwardReverse,
            block_reads,
            cache_bytes: params.cache_bytes,
            batch: params.batch,
        });
        ctx.record_read_resident(store.owned_packed_bytes(ctx));
        ctx.barrier();
        Ok(store)
    }

    /// Collectively rebuilds a store from checkpointed state: the replicated
    /// header plus whatever slice of the packed blocks each rank recovered
    /// from the shard files of the *writing* run. Blocks are re-routed to
    /// their new owners through the hash partitioner (`bulk_merge`), so the
    /// rank count may differ from the writer's — block ownership depends
    /// only on the block id and the rank count, making the restored store
    /// identical to one `build` would have produced on this team. Each rank
    /// then verifies its shard against the length table, and the team checks
    /// that no block went missing in transit.
    pub fn restore(
        ctx: &Ctx,
        header: ReadStoreHeader,
        params: &ReadStoreParams,
        entries: Vec<(BlockId, PackedReadBlock)>,
    ) -> Arc<ReadStore> {
        let map: Arc<DistMap<BlockId, PackedReadBlock>> = DistMap::shared(ctx);
        dht::bulk_merge(ctx, &map, entries, params.batch, |a, b| *a = b);
        let store = ctx.share(|| ReadStore {
            map: Arc::clone(&map),
            lens: header.lens,
            name: header.name,
            paired: header.paired,
            insert_size: header.insert_size,
            insert_sd: header.insert_sd,
            orientation: header.orientation,
            block_reads: header.block_reads,
            cache_bytes: params.cache_bytes,
            batch: params.batch,
        });
        // Verify the restored shard: block geometry and every read length
        // must match the replicated table (a shard file swapped between
        // checkpoints would pass its own CRC but fail here).
        store.map.for_each_local(ctx, |b, block| {
            assert_eq!(
                block.first_id,
                b * store.block_reads as u64,
                "restored block {b} starts at the wrong read id"
            );
            for (i, read) in block.reads.iter().enumerate() {
                let id = block.first_id + i as u64;
                assert_eq!(
                    Some(read.len() as u32),
                    store.lens.get(id as usize).copied(),
                    "restored read {id} does not match checkpoint metadata"
                );
            }
        });
        let total_blocks = ctx.allreduce_sum_u64(store.map.local_len(ctx) as u64);
        assert_eq!(
            total_blocks as usize,
            store.num_blocks(),
            "checkpoint restore lost read blocks"
        );
        ctx.record_read_resident(store.owned_packed_bytes(ctx));
        ctx.barrier();
        store
    }

    /// The replicated half of the store, for checkpointing (see
    /// [`ReadStoreHeader`]).
    pub fn header(&self) -> ReadStoreHeader {
        ReadStoreHeader {
            name: self.name.clone(),
            paired: self.paired,
            insert_size: self.insert_size,
            insert_sd: self.insert_sd,
            orientation: self.orientation,
            block_reads: self.block_reads,
            lens: self.lens.clone(),
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether reads are pair-interleaved.
    pub fn paired(&self) -> bool {
        self.paired
    }

    /// Mean insert size of the library.
    pub fn insert_size(&self) -> usize {
        self.insert_size
    }

    /// Insert-size standard deviation.
    pub fn insert_sd(&self) -> usize {
        self.insert_sd
    }

    /// Pair orientation.
    pub fn orientation(&self) -> PairOrientation {
        self.orientation
    }

    /// Number of reads in the store.
    pub fn num_reads(&self) -> usize {
        self.lens.len()
    }

    /// Number of pairs (0 for unpaired).
    pub fn num_pairs(&self) -> usize {
        if self.paired {
            self.lens.len() / 2
        } else {
            0
        }
    }

    /// Total bases across all reads (from the replicated length table).
    pub fn total_bases(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Length of one read, if it exists. Zero communication.
    pub fn len_of(&self, id: ReadId) -> Option<usize> {
        self.lens.get(id as usize).map(|&l| l as usize)
    }

    /// The mate's read id, or `None` for unpaired stores.
    pub fn mate_of(&self, id: ReadId) -> Option<ReadId> {
        if !self.paired {
            return None;
        }
        Some(id ^ 1)
    }

    /// Reads per block.
    pub fn block_reads(&self) -> usize {
        self.block_reads
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.lens.len().div_ceil(self.block_reads)
    }

    /// The block holding a read id.
    pub fn block_of(&self, id: ReadId) -> BlockId {
        id / self.block_reads as u64
    }

    /// The sharded block table (for owner-local passes).
    pub fn map(&self) -> &Arc<DistMap<BlockId, PackedReadBlock>> {
        &self.map
    }

    /// Block ids owned by the calling rank, ascending.
    pub fn owned_block_ids(&self, ctx: &Ctx) -> Vec<BlockId> {
        (0..self.num_blocks() as BlockId)
            .filter(|b| self.map.owner_of(b) == ctx.rank())
            .collect()
    }

    /// Packed bytes of the calling rank's owned shard.
    pub fn owned_packed_bytes(&self, ctx: &Ctx) -> usize {
        let mut owned = 0usize;
        self.map
            .for_each_local(ctx, |_, v| owned += v.packed_bytes());
        owned
    }

    /// Creates this rank's cached read-through view.
    pub fn reader(&self, ctx: &Ctx) -> ReadReader<'_> {
        ReadReader {
            store: self,
            cache: SoftwareCache::new_weighted(self.cache_bytes, |v: &PackedReadBlock| {
                v.packed_bytes()
            }),
            owned_bytes: self.owned_packed_bytes(ctx),
        }
    }

    /// A [`seqio::ReadSource`] over the calling rank's owned blocks: streams
    /// each owned read exactly once, in id order, unpacking one read at a
    /// time. This is how k-mer analysis consumes the store.
    pub fn owned_reads<'s, 'c, 't>(&'s self, ctx: &'c Ctx<'t>) -> OwnedReads<'s, 'c, 't> {
        OwnedReads { store: self, ctx }
    }

    /// An in-order `(ReadId, Read)` stream over `ids` that fetches foreign
    /// blocks one-sided and keeps at most one unpacked block live. This is
    /// how alignment consumes the store; one-sided fetches mean per-rank
    /// progress never has to line up collectively.
    pub fn stream<'s, 'c, 't>(
        &'s self,
        ctx: &'c Ctx<'t>,
        ids: Vec<ReadId>,
    ) -> ReadStream<'s, 'c, 't> {
        ReadStream {
            ctx,
            reader: self.reader(ctx),
            ids: ids.into_iter(),
            current: None,
        }
    }

    /// Collectively regathers the full replicated [`ReadLibrary`] (rank 0
    /// collects the owned shards, orders by id, broadcast). Read names are
    /// gone — they were dropped at pack time — so the result carries empty
    /// names. Tests and ablation baselines only; the hot paths never call
    /// it.
    pub fn materialize(&self, ctx: &Ctx) -> ReadLibrary {
        let mut outgoing: Vec<Vec<(BlockId, PackedReadBlock)>> = vec![Vec::new(); ctx.ranks()];
        let mut local: Vec<(BlockId, PackedReadBlock)> = Vec::new();
        self.map
            .for_each_local(ctx, |id, v| local.push((*id, v.clone())));
        outgoing[0] = local;
        let gathered = ctx.exchange(outgoing);
        let lib = if ctx.rank() == 0 {
            let mut gathered = gathered;
            gathered.sort_by_key(|(id, _)| *id);
            ReadLibrary {
                name: self.name.clone(),
                reads: gathered
                    .iter()
                    .flat_map(|(_, block)| block.reads.iter().map(|r| r.unpack()))
                    .collect(),
                paired: self.paired,
                insert_size: self.insert_size,
                insert_sd: self.insert_sd,
                orientation: self.orientation,
            }
        } else {
            ReadLibrary::new_unpaired("")
        };
        ctx.broadcast(|| lib)
    }
}

/// A per-rank cached read-through view of a [`ReadStore`]: block lookups are
/// served from a byte-bounded FIFO cache when possible, and the misses of a
/// batch travel to their owners in one aggregated round. Create one per
/// phase with [`ReadStore::reader`]; it is not shared between ranks.
pub struct ReadReader<'s> {
    store: &'s ReadStore,
    cache: SoftwareCache<BlockId, PackedReadBlock>,
    owned_bytes: usize,
}

impl ReadReader<'_> {
    /// The store this reader serves from.
    pub fn store(&self) -> &ReadStore {
        self.store
    }

    /// Resident bytes of this reader's rank right now: owned shard plus the
    /// reader cache, packed.
    pub fn resident_bytes(&self) -> usize {
        self.owned_bytes + self.cache.resident_weight()
    }

    /// Drops every cached foreign block (capacity and eviction accounting
    /// are untouched), returning the reader to the cold state a fresh
    /// [`ReadStore::reader`] starts in.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// **Collective** batched block fetch: cache hits are served locally and
    /// every distinct miss travels in one aggregated request–response round
    /// through [`DistMap::get_many`]. Every rank must call this in the same
    /// phase, even with an empty `ids` slice.
    pub fn get_many(&mut self, ctx: &Ctx, ids: &[BlockId]) -> Vec<Option<PackedReadBlock>> {
        self.get_many_with(ctx, ids, false)
    }

    /// One-sided batched block fetch for dynamically scheduled loops (work
    /// stealing, per-rank streams) that cannot reach a collective in
    /// lockstep. Not collective.
    pub fn get_many_onesided(
        &mut self,
        ctx: &Ctx,
        ids: &[BlockId],
    ) -> Vec<Option<PackedReadBlock>> {
        self.get_many_with(ctx, ids, true)
    }

    fn get_many_with(
        &mut self,
        ctx: &Ctx,
        ids: &[BlockId],
        onesided: bool,
    ) -> Vec<Option<PackedReadBlock>> {
        let mut misses: Vec<BlockId> = Vec::new();
        let mut miss_index: FxHashMap<BlockId, usize> = FxHashMap::default();
        // Ok(value) = served from cache; Err(i) = misses[i].
        let mut resolved: Vec<Result<Option<PackedReadBlock>, usize>> =
            Vec::with_capacity(ids.len());
        let mut hits = 0u64;
        for id in ids {
            if let Some(cached) = self.cache.peek(id) {
                hits += 1;
                resolved.push(Ok(cached.clone()));
            } else if let Some(&i) = miss_index.get(id) {
                hits += 1; // duplicate of an in-flight fetch
                resolved.push(Err(i));
            } else {
                let i = misses.len();
                miss_index.insert(*id, i);
                misses.push(*id);
                resolved.push(Err(i));
            }
        }
        ctx.record_cache_hits(hits);
        ctx.record_cache_misses(misses.len() as u64);
        let fetched = if onesided {
            self.store.map.get_many_onesided(ctx, &misses)
        } else {
            self.store.map.get_many(ctx, &misses, self.store.batch)
        };
        // Only *foreign* blocks go through the cache and the fetch-byte
        // accounting: ids this rank owns are answered from its own shard
        // with no wire traffic, and caching them would both waste the
        // byte-bounded cache on data already resident and double-count
        // those bytes in `resident_bytes`.
        let mut fetched_bytes = 0usize;
        for (id, value) in misses.iter().zip(&fetched) {
            if self.store.map.owner_of(id) == ctx.rank() {
                continue;
            }
            if let Some(p) = value {
                fetched_bytes += p.packed_bytes();
            }
            self.cache.insert(ctx, *id, value.clone());
        }
        ctx.record_read_fetch_bytes(fetched_bytes);
        ctx.record_read_resident(self.resident_bytes());
        resolved
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(i) => fetched[i].clone(),
            })
            .collect()
    }

    /// Fetches (and unpacks) the reads named by `ids`, deduplicating the
    /// underlying block fetches. Collective when `onesided` is false (every
    /// rank must call, even with no ids); one-sided otherwise. Ids absent
    /// from the store are absent from the result.
    pub fn fetch_reads(
        &mut self,
        ctx: &Ctx,
        ids: &[ReadId],
        onesided: bool,
    ) -> FxHashMap<ReadId, Read> {
        let mut blocks: Vec<BlockId> = ids.iter().map(|&id| self.store.block_of(id)).collect();
        blocks.sort_unstable();
        blocks.dedup();
        let fetched = self.get_many_with(ctx, &blocks, onesided);
        let by_block: FxHashMap<BlockId, PackedReadBlock> = blocks
            .into_iter()
            .zip(fetched)
            .filter_map(|(b, v)| v.map(|v| (b, v)))
            .collect();
        let mut out = FxHashMap::default();
        for &id in ids {
            if let Some(read) = by_block
                .get(&self.store.block_of(id))
                .and_then(|blk| blk.get(id))
            {
                out.entry(id).or_insert_with(|| read.unpack());
            }
        }
        out
    }
}

/// An in-order `(ReadId, Read)` iterator over a list of read ids, unpacking
/// one block at a time. Foreign blocks are fetched one-sided through a
/// [`ReadReader`] (so the stream composes with per-rank, non-collective
/// loops) and cached; ascending id lists touch each block once.
pub struct ReadStream<'s, 'c, 't> {
    ctx: &'c Ctx<'t>,
    reader: ReadReader<'s>,
    ids: std::vec::IntoIter<ReadId>,
    current: Option<(BlockId, PackedReadBlock)>,
}

impl Iterator for ReadStream<'_, '_, '_> {
    type Item = (ReadId, Read);

    fn next(&mut self) -> Option<Self::Item> {
        let id = self.ids.next()?;
        let b = self.reader.store.block_of(id);
        if self.current.as_ref().map(|(cb, _)| *cb) != Some(b) {
            let block = self
                .reader
                .get_many_onesided(self.ctx, &[b])
                .pop()
                .flatten()
                .unwrap_or_else(|| panic!("read block {b} missing from store"));
            self.current = Some((b, block));
        }
        let (_, block) = self.current.as_ref().unwrap();
        let read = block
            .get(id)
            .unwrap_or_else(|| panic!("read {id} missing from block {b}"))
            .unpack();
        Some((id, read))
    }
}

/// A [`seqio::ReadSource`] over the calling rank's owned blocks: every pass
/// replays the same reads in ascending id order, unpacking one read at a
/// time. K-mer estimates come from the replicated length table without
/// touching sequence bytes. Owner-local: iteration holds this rank's shard
/// locks, so it must not overlap foreign fetches into this rank's read shard
/// (the k-mer analysis phase never does).
pub struct OwnedReads<'s, 'c, 't> {
    store: &'s ReadStore,
    ctx: &'c Ctx<'t>,
}

impl OwnedReads<'_, '_, '_> {
    /// Read ids of this rank's owned blocks, ascending.
    pub fn ids(&self) -> Vec<ReadId> {
        let mut out = Vec::new();
        for b in self.store.owned_block_ids(self.ctx) {
            let first = b as usize * self.store.block_reads;
            let end = (first + self.store.block_reads).min(self.store.num_reads());
            out.extend((first as ReadId)..(end as ReadId));
        }
        out
    }
}

impl seqio::ReadSource for OwnedReads<'_, '_, '_> {
    fn for_each_read(&mut self, f: &mut dyn FnMut(&Read)) {
        let owned = self.store.owned_block_ids(self.ctx);
        let view = self.store.map.local_view(self.ctx);
        for b in owned {
            if let Some(block) = view.get(&b) {
                for packed in &block.reads {
                    let read = packed.unpack();
                    f(&read);
                }
            }
        }
    }

    fn estimate_kmers(&self, k: usize) -> usize {
        let mut total = 0usize;
        for b in self.store.owned_block_ids(self.ctx) {
            let first = b as usize * self.store.block_reads;
            let end = (first + self.store.block_reads).min(self.store.num_reads());
            total += self.store.lens[first..end]
                .iter()
                .map(|&l| (l as usize).saturating_sub(k - 1))
                .sum::<usize>();
        }
        total
    }
}

/// How a pipeline stage accesses reads: a replicated [`ReadLibrary`] (the
/// baseline, O(total) bytes on every rank) or the sharded [`ReadStore`]
/// (O(total/ranks + cache) bytes per rank). Geometry queries (length, mate
/// id, counts, insert-size model) are answered locally in both variants.
#[derive(Clone, Copy)]
pub enum ReadsRef<'a> {
    /// Every rank holds the full library.
    Local(&'a ReadLibrary),
    /// Read blocks are sharded; sequence reads go through a [`ReadReader`].
    Store(&'a ReadStore),
}

impl<'a> ReadsRef<'a> {
    /// Whether reads are pair-interleaved.
    pub fn paired(&self) -> bool {
        match self {
            ReadsRef::Local(lib) => lib.paired,
            ReadsRef::Store(store) => store.paired(),
        }
    }

    /// Mean insert size of the library.
    pub fn insert_size(&self) -> usize {
        match self {
            ReadsRef::Local(lib) => lib.insert_size,
            ReadsRef::Store(store) => store.insert_size(),
        }
    }

    /// Insert-size standard deviation.
    pub fn insert_sd(&self) -> usize {
        match self {
            ReadsRef::Local(lib) => lib.insert_sd,
            ReadsRef::Store(store) => store.insert_sd(),
        }
    }

    /// Pair orientation.
    pub fn orientation(&self) -> PairOrientation {
        match self {
            ReadsRef::Local(lib) => lib.orientation,
            ReadsRef::Store(store) => store.orientation(),
        }
    }

    /// Number of reads.
    pub fn num_reads(&self) -> usize {
        match self {
            ReadsRef::Local(lib) => lib.num_reads(),
            ReadsRef::Store(store) => store.num_reads(),
        }
    }

    /// Number of pairs (0 for unpaired).
    pub fn num_pairs(&self) -> usize {
        match self {
            ReadsRef::Local(lib) => lib.num_pairs(),
            ReadsRef::Store(store) => store.num_pairs(),
        }
    }

    /// Total bases across all reads.
    pub fn total_bases(&self) -> usize {
        match self {
            ReadsRef::Local(lib) => lib.total_bases(),
            ReadsRef::Store(store) => store.total_bases(),
        }
    }

    /// Length of one read. Panics if the id is out of range (mirrors
    /// [`ReadLibrary::read`]). Zero communication in both variants.
    pub fn len_of(&self, id: ReadId) -> usize {
        match self {
            ReadsRef::Local(lib) => lib.read(id).len(),
            ReadsRef::Store(store) => store
                .len_of(id)
                .unwrap_or_else(|| panic!("read {id} out of range")),
        }
    }

    /// The mate's read id, or `None` for unpaired libraries.
    pub fn mate_of(&self, id: ReadId) -> Option<ReadId> {
        match self {
            ReadsRef::Local(lib) => lib.mate_of(id),
            ReadsRef::Store(store) => store.mate_of(id),
        }
    }

    /// The replicated library, when this is the baseline variant.
    pub fn local(&self) -> Option<&'a ReadLibrary> {
        match self {
            ReadsRef::Local(lib) => Some(lib),
            ReadsRef::Store(_) => None,
        }
    }

    /// The distributed store, when this is the sharded variant.
    pub fn store(&self) -> Option<&'a ReadStore> {
        match self {
            ReadsRef::Local(_) => None,
            ReadsRef::Store(store) => Some(store),
        }
    }
}

impl<'a> From<&'a ReadLibrary> for ReadsRef<'a> {
    fn from(lib: &'a ReadLibrary) -> Self {
        ReadsRef::Local(lib)
    }
}

impl<'a> From<&'a ReadStore> for ReadsRef<'a> {
    fn from(store: &'a ReadStore) -> Self {
        ReadsRef::Store(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::Team;
    use seqio::ReadSource;

    /// Deterministic pseudo-random sequence with occasional N bytes.
    fn seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(31) {
                    b'N'
                } else {
                    b"ACGT"[(state % 4) as usize]
                }
            })
            .collect()
    }

    /// Deterministic pseudo-random quality string with runs and spikes.
    fn qual(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0xD1B54A32D192ED03) | 1;
        (0..len)
            .map(|i| {
                if i % 7 == 0 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                }
                (2 + state % 40) as u8
            })
            .collect()
    }

    fn library(pairs: usize) -> ReadLibrary {
        let mut lib = ReadLibrary::new_paired("t", 200, 20);
        for i in 0..pairs as u64 {
            let l1 = 40 + (i as usize * 13) % 80;
            let l2 = 40 + (i as usize * 29) % 80;
            lib.push_pair(
                Read::new(format!("{i}/1"), &seq(l1, 2 * i), &qual(l1, 2 * i)),
                Read::new(format!("{i}/2"), &seq(l2, 2 * i + 1), &qual(l2, 2 * i + 1)),
            );
        }
        lib
    }

    #[test]
    fn packed_read_roundtrips_across_dispatch_modes() {
        // Word-boundary lengths (32/64/96 bases = 1/2/3 packed words) plus
        // stragglers, with N runs and spiky quality strings, identical under
        // both the SIMD and forced-scalar kernels.
        let lens = [0usize, 1, 31, 32, 33, 63, 64, 65, 96, 150];
        for forced in [false, true] {
            let was = mhm_simd::force_scalar();
            mhm_simd::set_force_scalar(forced);
            for (i, &len) in lens.iter().enumerate() {
                let read = Read::new("name-dropped", &seq(len, i as u64), &qual(len, i as u64));
                let packed = PackedRead::from_read(&read);
                assert_eq!(packed.len(), len);
                let back = packed.unpack();
                assert_eq!(back.seq, read.seq, "len {len} forced {forced}");
                assert_eq!(back.qual, read.qual, "len {len} forced {forced}");
                assert!(back.name.is_empty());
                assert_eq!(packed.unpack_seq(), read.seq);
            }
            mhm_simd::set_force_scalar(was);
        }
    }

    #[test]
    fn qual_rle_handles_long_runs_and_bounds_bytes() {
        let mut q = vec![35u8; 700];
        q.extend([1, 2, 2, 3]);
        let s: Vec<u8> = vec![b'A'; q.len()];
        let read = Read::new("r", &s, &q);
        let packed = PackedRead::from_read(&read);
        assert_eq!(packed.unpack().qual, q);
        // 700 equal scores = 3 runs (255+255+190); worst case is 2B/base.
        assert!(packed.packed_bytes() <= s.len().div_ceil(4) + 4 + 2 * 7);
    }

    #[test]
    fn store_serves_exact_reads_through_every_path() {
        let lib = library(40);
        for ranks in [1usize, 3, 4] {
            let team = Team::single_node(ranks);
            let lib2 = lib.clone();
            team.run(|ctx| {
                let store = ReadStore::build(
                    ctx,
                    &lib2,
                    &ReadStoreParams {
                        block_reads: 6,
                        cache_bytes: 1 << 16,
                        batch: 64,
                    },
                );
                assert_eq!(store.num_reads(), lib2.num_reads());
                assert_eq!(store.num_pairs(), lib2.num_pairs());
                assert_eq!(store.total_bases(), lib2.total_bases());
                // block_reads forced even for paired libraries.
                assert_eq!(store.block_reads(), 6);
                for (id, read) in lib2.iter() {
                    assert_eq!(store.len_of(id), Some(read.len()));
                    assert_eq!(store.mate_of(id), Some(id ^ 1));
                }
                // Collective bulk fetch of every read, including misses.
                let mut reader = store.reader(ctx);
                let ids: Vec<ReadId> = (0..lib2.num_reads() as ReadId).collect();
                let got = reader.fetch_reads(ctx, &ids, false);
                assert_eq!(got.len(), ids.len());
                for (id, read) in lib2.iter() {
                    assert_eq!(got[&id].seq, read.seq);
                    assert_eq!(got[&id].qual, read.qual);
                }
                assert!(reader.fetch_reads(ctx, &[99999], true).is_empty());
                // One-sided stream over this rank's share, in order.
                let share = ctx.block_range(lib2.num_reads());
                let my_ids: Vec<ReadId> = (share.start as ReadId..share.end as ReadId).collect();
                let streamed: Vec<(ReadId, Read)> = store.stream(ctx, my_ids.clone()).collect();
                assert_eq!(streamed.len(), my_ids.len());
                for ((id, read), want) in streamed.iter().zip(&my_ids) {
                    assert_eq!(id, want);
                    assert_eq!(read.seq, lib2.read(*want).seq);
                    assert_eq!(read.qual, lib2.read(*want).qual);
                }
                ctx.barrier();
                // Materialise reproduces the library minus names.
                let back = store.materialize(ctx);
                assert_eq!(back.num_reads(), lib2.num_reads());
                for (id, read) in lib2.iter() {
                    assert_eq!(back.read(id).seq, read.seq);
                    assert_eq!(back.read(id).qual, read.qual);
                }
            });
        }
    }

    #[test]
    fn restore_on_a_different_rank_count_matches_a_fresh_build() {
        let lib = library(30);
        let params = ReadStoreParams {
            block_reads: 6,
            cache_bytes: 1 << 16,
            batch: 64,
        };
        // "Write" at 3 ranks: export the header and each rank's owned shard.
        let writer = Team::single_node(3);
        let lib2 = lib.clone();
        let exported: Vec<(ReadStoreHeader, Vec<(BlockId, PackedReadBlock)>)> = writer.run(|ctx| {
            let store = ReadStore::build(ctx, &lib2, &params);
            (store.header(), store.map().local_entries(ctx))
        });
        let header = exported[0].0.clone();
        let shards: Vec<Vec<(BlockId, PackedReadBlock)>> =
            exported.into_iter().map(|(_, s)| s).collect();
        // Restore at 2x and 1/3 the writer's rank count.
        for new_ranks in [6usize, 1, 3] {
            let team = Team::single_node(new_ranks);
            let header = header.clone();
            let shards = &shards;
            let lib = &lib;
            team.run(|ctx| {
                let mut mine = Vec::new();
                for old in ctx.block_range(shards.len()) {
                    mine.extend(shards[old].iter().cloned());
                }
                let restored = ReadStore::restore(ctx, header.clone(), &params, mine);
                // Same ownership and shard bytes a fresh build computes here.
                let fresh = ReadStore::build(ctx, lib, &params);
                assert_eq!(restored.num_blocks(), fresh.num_blocks());
                assert_eq!(restored.owned_block_ids(ctx), fresh.owned_block_ids(ctx));
                assert_eq!(
                    restored.owned_packed_bytes(ctx),
                    fresh.owned_packed_bytes(ctx)
                );
                // Same reads.
                let back = restored.materialize(ctx);
                assert_eq!(back.num_reads(), lib.num_reads());
                for (id, read) in lib.iter() {
                    assert_eq!(back.read(id).seq, read.seq);
                    assert_eq!(back.read(id).qual, read.qual);
                }
            });
        }
    }

    #[test]
    fn owned_reads_cover_every_read_exactly_once() {
        let lib = library(25);
        for ranks in [1usize, 2, 5] {
            let team = Team::single_node(ranks);
            let lib2 = lib.clone();
            team.run(|ctx| {
                let store = ReadStore::build(
                    ctx,
                    &lib2,
                    &ReadStoreParams {
                        block_reads: 4,
                        ..Default::default()
                    },
                );
                let mut source = store.owned_reads(ctx);
                assert_eq!(
                    source.estimate_kmers(21),
                    source
                        .ids()
                        .iter()
                        .map(|&id| lib2.read(id).len().saturating_sub(20))
                        .sum::<usize>()
                );
                let mut seqs: Vec<Vec<u8>> = Vec::new();
                source.for_each_read(&mut |r| seqs.push(r.seq.clone()));
                // Replay is identical (multi-pass contract).
                let mut again: Vec<Vec<u8>> = Vec::new();
                source.for_each_read(&mut |r| again.push(r.seq.clone()));
                assert_eq!(seqs, again);
                assert_eq!(
                    seqs,
                    source
                        .ids()
                        .iter()
                        .map(|&id| lib2.read(id).seq.clone())
                        .collect::<Vec<_>>()
                );
                // Union over ranks covers the library exactly once.
                let mut outgoing: Vec<Vec<ReadId>> = vec![Vec::new(); ctx.ranks()];
                outgoing[0] = source.ids();
                let mut all = ctx.exchange(outgoing);
                if ctx.rank() == 0 {
                    all.sort_unstable();
                    assert_eq!(all, (0..lib2.num_reads() as ReadId).collect::<Vec<_>>());
                }
            });
        }
    }

    #[test]
    fn ingest_fastq_matches_build_and_streams_in_blocks() {
        let lib = library(30);
        let text = seqio::fastq::library_to_fastq(&lib);
        for ranks in [1usize, 4] {
            let team = Team::single_node(ranks);
            let lib2 = lib.clone();
            let text2 = text.clone();
            team.run(|ctx| {
                let store = ReadStore::ingest_fastq(
                    ctx,
                    "t",
                    &text2,
                    200,
                    20,
                    &ReadStoreParams {
                        block_reads: 8,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(store.num_reads(), lib2.num_reads());
                assert!(store.paired());
                assert_eq!(store.insert_size(), 200);
                let back = store.materialize(ctx);
                for (id, read) in lib2.iter() {
                    assert_eq!(back.read(id).seq, read.seq);
                    assert_eq!(back.read(id).qual, read.qual);
                }
            });
        }
    }

    #[test]
    fn ingest_fastq_rejects_odd_and_malformed_input() {
        let team = Team::single_node(2);
        team.run(|ctx| {
            let odd = "@r1\nACGT\n+\nIIII\n";
            assert!(
                ReadStore::ingest_fastq(ctx, "t", odd, 200, 20, &ReadStoreParams::default())
                    .is_err()
            );
            ctx.barrier();
            let bad = "@r1\nACGT\n+\nII\n@r2\nAC\n+\nII\n";
            assert!(
                ReadStore::ingest_fastq(ctx, "t", bad, 200, 20, &ReadStoreParams::default())
                    .is_err()
            );
        });
    }

    #[test]
    fn resident_accounting_stays_within_shard_plus_cache() {
        let lib = library(60);
        let ranks = 4usize;
        let cache_bytes = 512usize;
        let total_packed: usize = lib
            .reads
            .iter()
            .map(|r| PackedRead::from_read(r).packed_bytes())
            .sum();
        let team = Team::single_node(ranks);
        team.run(|ctx| {
            ctx.stats().reset();
            let store = ReadStore::build(
                ctx,
                &lib,
                &ReadStoreParams {
                    block_reads: 4,
                    cache_bytes,
                    batch: 64,
                },
            );
            let mut reader = store.reader(ctx);
            let ids: Vec<ReadId> = (0..lib.num_reads() as ReadId).collect();
            let _ = reader.fetch_reads(ctx, &ids, false);
            let _ = reader.fetch_reads(ctx, &ids, true);
            ctx.barrier();
            let peak = ctx.stats().snapshot().read_bytes_resident as usize;
            // Hash partitioning over many small blocks is balanced to within
            // a few blocks; one block of slack covers the cache's
            // admit-then-evict overshoot too.
            let max_block = (0..store.num_blocks() as BlockId)
                .map(|b| {
                    let first = b as usize * store.block_reads();
                    let end = (first + store.block_reads()).min(lib.num_reads());
                    8 + lib.reads[first..end]
                        .iter()
                        .map(|r| PackedRead::from_read(r).packed_bytes())
                        .sum::<usize>()
                })
                .max()
                .unwrap();
            let bound = total_packed / ranks + 4 * max_block + cache_bytes;
            assert!(peak > 0, "residency must be recorded");
            assert!(peak <= bound, "peak {peak} > bound {bound}");
            assert!(ctx.stats().snapshot().read_fetch_bytes > 0);
        });
    }
}
