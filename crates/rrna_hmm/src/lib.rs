//! Profile HMM recognition of conserved ribosomal-RNA-like regions.
//!
//! MetaHipMer integrates HMMER to recognise contigs that belong to highly
//! conserved ribosomal regions; such contigs get special treatment during
//! scaffolding (§III-C) because reconstructing rRNA operons accurately matters
//! for downstream phylogenetic analysis. HMMER itself is a large C code base;
//! what the pipeline needs from it is a scoring oracle — "how well does this
//! contig match the conserved profile?" — so this crate implements a genuine
//! (if small) profile HMM: match/insert/delete states over a consensus, fitted
//! from the consensus plus optional example sequences, scored against contigs
//! with a local Viterbi log-odds algorithm on both strands.

pub mod hmm;

pub use hmm::{ProfileHmm, RrnaDetector};
