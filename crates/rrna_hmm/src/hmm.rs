//! A small profile hidden Markov model with local Viterbi scoring.

use seqio::alphabet::{encode_base, revcomp};

/// Background base probability (uniform over ACGT).
const BACKGROUND: f64 = 0.25;

/// A profile HMM over a consensus of length L: match states M_1..M_L with
/// position-specific emission probabilities, plus insert and delete states
/// with shared transition probabilities (a light-weight Plan7 architecture).
#[derive(Debug, Clone)]
pub struct ProfileHmm {
    /// Emission probabilities of each match state, indexed `[position][base]`.
    match_emit: Vec<[f64; 4]>,
    /// log(P) of staying on the match path (M→M).
    log_mm: f64,
    /// log(P) of opening an insertion or deletion (M→I, M→D).
    log_open: f64,
    /// log(P) of extending an insertion or deletion (I→I, D→D).
    log_extend: f64,
    /// log(P) of closing an insertion or deletion back to match.
    log_close: f64,
}

impl ProfileHmm {
    /// Builds a profile from a consensus sequence.
    ///
    /// `mismatch_prob` is the probability of observing a non-consensus base at
    /// a match state (spread evenly over the three alternatives);
    /// `indel_open`/`indel_extend` control the gap model.
    pub fn from_consensus(
        consensus: &[u8],
        mismatch_prob: f64,
        indel_open: f64,
        indel_extend: f64,
    ) -> Self {
        assert!(!consensus.is_empty(), "consensus must be non-empty");
        assert!((0.0..0.75).contains(&mismatch_prob));
        assert!((0.0..0.5).contains(&indel_open) && indel_open > 0.0);
        assert!((0.0..1.0).contains(&indel_extend) && indel_extend > 0.0);
        let match_emit = consensus
            .iter()
            .map(|&b| {
                let mut probs = [mismatch_prob / 3.0; 4];
                match encode_base(b) {
                    Some(code) => probs[code as usize] = 1.0 - mismatch_prob,
                    None => probs = [0.25; 4],
                }
                probs
            })
            .collect();
        ProfileHmm {
            match_emit,
            log_mm: (1.0 - 2.0 * indel_open).ln(),
            log_open: indel_open.ln(),
            log_extend: indel_extend.ln(),
            log_close: (1.0 - indel_extend).ln(),
        }
    }

    /// Builds a profile from a consensus plus example sequences of the same
    /// length: emission probabilities become the per-column base frequencies
    /// (with a pseudocount), which is how a profile is normally trained from a
    /// multiple alignment of family members.
    pub fn from_examples(
        consensus: &[u8],
        examples: &[Vec<u8>],
        indel_open: f64,
        indel_extend: f64,
    ) -> Self {
        let mut hmm = ProfileHmm::from_consensus(consensus, 0.05, indel_open, indel_extend);
        let l = consensus.len();
        let mut counts = vec![[1.0f64; 4]; l]; // +1 pseudocount
        for (i, &b) in consensus.iter().enumerate() {
            if let Some(code) = encode_base(b) {
                counts[i][code as usize] += 2.0; // consensus weighted
            }
        }
        for ex in examples {
            for (i, &b) in ex.iter().enumerate().take(l) {
                if let Some(code) = encode_base(b) {
                    counts[i][code as usize] += 1.0;
                }
            }
        }
        for (i, c) in counts.iter().enumerate() {
            let total: f64 = c.iter().sum();
            for (base, count) in c.iter().enumerate() {
                hmm.match_emit[i][base] = count / total;
            }
        }
        hmm
    }

    /// Profile length (number of match states).
    pub fn len(&self) -> usize {
        self.match_emit.len()
    }

    /// True if the profile has no match states (never constructible via the
    /// public constructors, which reject empty consensi).
    pub fn is_empty(&self) -> bool {
        self.match_emit.is_empty()
    }

    /// Best local-alignment Viterbi log-odds score (in nats) of the profile
    /// against `seq` on the given strand only.
    fn score_forward(&self, seq: &[u8]) -> f64 {
        let l = self.len();
        let n = seq.len();
        if n == 0 {
            return 0.0;
        }
        let neg = f64::NEG_INFINITY;
        // DP over profile positions (rows) and sequence positions (columns),
        // local in the sequence (free start/end) and in the profile ends.
        let mut m_prev = vec![0.0f64; n + 1]; // score of best path ending in M_0 (virtual begin) = 0 anywhere
        let mut i_prev = vec![neg; n + 1];
        let mut d_prev = vec![neg; n + 1];
        let mut best = 0.0f64;
        for row in 1..=l {
            let mut m_cur = vec![neg; n + 1];
            let mut i_cur = vec![neg; n + 1];
            let mut d_cur = vec![neg; n + 1];
            for col in 1..=n {
                let base = match encode_base(seq[col - 1]) {
                    Some(b) => b as usize,
                    None => {
                        continue;
                    }
                };
                let emit = (self.match_emit[row - 1][base] / BACKGROUND).ln();
                let from_m = m_prev[col - 1] + self.log_mm;
                let from_i = i_prev[col - 1] + self.log_close;
                let from_d = d_prev[col - 1] + self.log_close;
                m_cur[col] = emit + from_m.max(from_i).max(from_d).max(0.0);
                // Insert state of row `row`: consumes a sequence base, stays on the row.
                let i_open = m_cur[col - 1].max(m_prev[col - 1]) + self.log_open;
                let i_ext = i_cur[col - 1] + self.log_extend;
                i_cur[col] = i_open.max(i_ext); // insertions emit at background odds = 0
                                                // Delete state: consumes a profile row, not a sequence base.
                let d_open = m_prev[col] + self.log_open;
                let d_ext = d_prev[col] + self.log_extend;
                d_cur[col] = d_open.max(d_ext);
                if m_cur[col] > best {
                    best = m_cur[col];
                }
            }
            m_prev = m_cur;
            i_prev = i_cur;
            d_prev = d_cur;
        }
        best
    }

    /// Best local log-odds score over both strands, in nats.
    pub fn score(&self, seq: &[u8]) -> f64 {
        let fwd = self.score_forward(seq);
        let rc = revcomp(seq);
        let rev = self.score_forward(&rc);
        fwd.max(rev)
    }

    /// Score normalised per profile position (nats per consensus base), which
    /// makes thresholds independent of the profile length.
    pub fn normalized_score(&self, seq: &[u8]) -> f64 {
        self.score(seq) / self.len() as f64
    }
}

/// A thresholded rRNA-region detector used by the scaffolder.
#[derive(Debug, Clone)]
pub struct RrnaDetector {
    pub hmm: ProfileHmm,
    /// Minimum normalised score (nats per profile position) to call a hit.
    pub threshold: f64,
    /// Sequences shorter than this are never called hits (too little signal).
    pub min_len: usize,
}

impl RrnaDetector {
    /// Builds a detector from a consensus with a default threshold that
    /// separates genuine (≤ ~10% divergent) copies from unrelated sequence.
    pub fn from_consensus(consensus: &[u8]) -> Self {
        RrnaDetector {
            hmm: ProfileHmm::from_consensus(consensus, 0.05, 0.02, 0.3),
            threshold: 0.4,
            min_len: consensus.len() / 4,
        }
    }

    /// Normalised score of a sequence.
    pub fn score(&self, seq: &[u8]) -> f64 {
        self.hmm.normalized_score(seq)
    }

    /// True if the sequence contains an rRNA-like region.
    pub fn is_hit(&self, seq: &[u8]) -> bool {
        seq.len() >= self.min_len && self.score(seq) >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(rng: &mut StdRng, len: usize) -> Vec<u8> {
        (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
    }

    fn mutate(rng: &mut StdRng, seq: &[u8], rate: f64) -> Vec<u8> {
        seq.iter()
            .map(|&b| {
                if rng.gen::<f64>() < rate {
                    loop {
                        let c = b"ACGT"[rng.gen_range(0..4)];
                        if c != b {
                            break c;
                        }
                    }
                } else {
                    b
                }
            })
            .collect()
    }

    #[test]
    fn consensus_scores_highest() {
        let mut rng = StdRng::seed_from_u64(1);
        let consensus = random_seq(&mut rng, 200);
        let hmm = ProfileHmm::from_consensus(&consensus, 0.05, 0.02, 0.3);
        assert_eq!(hmm.len(), 200);
        assert!(!hmm.is_empty());
        let self_score = hmm.normalized_score(&consensus);
        let random_score = hmm.normalized_score(&random_seq(&mut rng, 200));
        assert!(self_score > 1.0, "self score {self_score}");
        assert!(self_score > 3.0 * random_score.max(0.05));
    }

    #[test]
    fn diverged_copy_still_detected_random_not() {
        let mut rng = StdRng::seed_from_u64(2);
        let consensus = random_seq(&mut rng, 300);
        let detector = RrnaDetector::from_consensus(&consensus);
        let diverged = mutate(&mut rng, &consensus, 0.05);
        assert!(detector.is_hit(&diverged));
        let unrelated = random_seq(&mut rng, 300);
        assert!(!detector.is_hit(&unrelated));
    }

    #[test]
    fn embedded_copy_detected_inside_larger_contig() {
        let mut rng = StdRng::seed_from_u64(3);
        let consensus = random_seq(&mut rng, 250);
        let detector = RrnaDetector::from_consensus(&consensus);
        let mut contig = random_seq(&mut rng, 400);
        let copy = mutate(&mut rng, &consensus, 0.03);
        contig.extend_from_slice(&copy);
        contig.extend_from_slice(&random_seq(&mut rng, 400));
        assert!(detector.is_hit(&contig), "embedded rRNA copy missed");
    }

    #[test]
    fn reverse_complement_detected() {
        let mut rng = StdRng::seed_from_u64(4);
        let consensus = random_seq(&mut rng, 200);
        let detector = RrnaDetector::from_consensus(&consensus);
        let rc = revcomp(&consensus);
        assert!(detector.is_hit(&rc));
    }

    #[test]
    fn short_sequences_never_hit() {
        let mut rng = StdRng::seed_from_u64(5);
        let consensus = random_seq(&mut rng, 200);
        let detector = RrnaDetector::from_consensus(&consensus);
        assert!(!detector.is_hit(&consensus[..20]));
    }

    #[test]
    fn copy_with_deletion_still_scores_well() {
        let mut rng = StdRng::seed_from_u64(6);
        let consensus = random_seq(&mut rng, 200);
        let detector = RrnaDetector::from_consensus(&consensus);
        // Delete a 10-base block from the middle.
        let mut copy = consensus[..100].to_vec();
        copy.extend_from_slice(&consensus[110..]);
        assert!(detector.is_hit(&copy), "deletion-bearing copy missed");
    }

    #[test]
    fn from_examples_learns_column_frequencies() {
        let mut rng = StdRng::seed_from_u64(7);
        let consensus = random_seq(&mut rng, 150);
        let examples: Vec<Vec<u8>> = (0..5).map(|_| mutate(&mut rng, &consensus, 0.05)).collect();
        let hmm = ProfileHmm::from_examples(&consensus, &examples, 0.02, 0.3);
        let member = mutate(&mut rng, &consensus, 0.05);
        let unrelated = random_seq(&mut rng, 150);
        assert!(hmm.normalized_score(&member) > hmm.normalized_score(&unrelated));
    }

    #[test]
    #[should_panic]
    fn empty_consensus_rejected() {
        let _ = ProfileHmm::from_consensus(b"", 0.05, 0.02, 0.3);
    }
}
