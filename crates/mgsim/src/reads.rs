//! WGSim-substitute paired-end read simulator.
//!
//! For every template: pick a genome proportionally to its abundance-weighted
//! length, pick an insert size from a Gaussian, pick a uniformly random
//! template position and strand, and emit the two end reads with independent
//! per-base substitution errors. Base qualities are high for correct bases and
//! low for error bases (plus a small fraction of low-quality correct bases),
//! which is what drives the high-quality-extension logic of k-mer analysis.

use crate::genome::substitute_base;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, WeightedIndex};
use seqio::alphabet::revcomp;
use seqio::{Read, ReadLibrary, ReferenceSet};

/// Parameters of the read simulation.
#[derive(Debug, Clone)]
pub struct ReadSimParams {
    /// Read length in bases.
    pub read_len: usize,
    /// Mean insert size (outer distance between the pair's 5' ends).
    pub insert_size: usize,
    /// Standard deviation of the insert size.
    pub insert_sd: usize,
    /// Per-base substitution error probability.
    pub error_rate: f64,
    /// Number of read pairs to generate.
    pub num_pairs: usize,
    /// Phred quality assigned to bases believed correct.
    pub qual_good: u8,
    /// Phred quality assigned to error bases (and randomly degraded bases).
    pub qual_bad: u8,
    /// Fraction of correct bases that nevertheless receive a low quality score.
    pub low_qual_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReadSimParams {
    fn default() -> Self {
        ReadSimParams {
            read_len: 100,
            insert_size: 300,
            insert_sd: 30,
            error_rate: 0.005,
            num_pairs: 10_000,
            qual_good: 38,
            qual_bad: 8,
            low_qual_fraction: 0.01,
            seed: 11,
        }
    }
}

impl ReadSimParams {
    /// Chooses `num_pairs` so that the *average* genome in `refs` receives
    /// approximately `target_coverage`-fold coverage (weighted by abundance).
    pub fn with_target_coverage(mut self, refs: &ReferenceSet, target_coverage: f64) -> Self {
        let total_ref_bases = refs.total_bases().max(1);
        let bases_needed = target_coverage * total_ref_bases as f64;
        self.num_pairs = (bases_needed / (2.0 * self.read_len as f64)).ceil() as usize;
        self
    }
}

/// Simulates a paired-end library from a reference community.
///
/// Genomes are sampled with probability proportional to `abundance × length`
/// (a genome twice as long at the same abundance yields twice the reads, which
/// is how shotgun sequencing behaves).
pub fn simulate_reads(refs: &ReferenceSet, params: &ReadSimParams) -> ReadLibrary {
    assert!(
        !refs.is_empty(),
        "cannot simulate reads from an empty community"
    );
    assert!(params.read_len >= 20, "read length unrealistically short");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let weights: Vec<f64> = refs
        .genomes
        .iter()
        .map(|g| (g.abundance.max(0.0)) * g.len() as f64)
        .collect();
    let chooser = WeightedIndex::new(&weights).expect("at least one positive weight");
    let insert_dist = Normal::new(params.insert_size as f64, params.insert_sd.max(1) as f64)
        .expect("valid normal distribution");

    let mut lib = ReadLibrary::new_paired(
        format!("sim_x{}", params.num_pairs),
        params.insert_size,
        params.insert_sd,
    );
    let min_insert = 2 * params.read_len;
    for pair_idx in 0..params.num_pairs {
        // Rejection-sample a genome long enough for one insert.
        let mut attempts = 0;
        let (gi, insert, start) = loop {
            let gi = chooser.sample(&mut rng);
            let glen = refs.genomes[gi].len();
            let insert = insert_dist.sample(&mut rng).round().max(min_insert as f64) as usize;
            if glen > insert {
                let start = rng.gen_range(0..glen - insert);
                break (gi, insert, start);
            }
            attempts += 1;
            assert!(
                attempts < 1000,
                "no genome is long enough for the configured insert size"
            );
        };
        let genome = &refs.genomes[gi];
        let template = &genome.seq[start..start + insert];
        // Forward read from the left end; reverse read from the right end.
        let fwd = &template[..params.read_len];
        let rev = revcomp(&template[insert - params.read_len..]);
        // Randomly swap which mate is /1 (strand of the template is random).
        let flip = rng.gen::<bool>();
        let (seq1, seq2) = if flip {
            (rev.clone(), fwd.to_vec())
        } else {
            (fwd.to_vec(), rev.clone())
        };
        let (r1, r2) = (
            apply_errors(&mut rng, &seq1, params),
            apply_errors(&mut rng, &seq2, params),
        );
        let name1 = format!("p{pair_idx}:{}:{start}/1", genome.name);
        let name2 = format!("p{pair_idx}:{}:{start}/2", genome.name);
        lib.push_pair(
            Read::new(name1, &r1.0, &r1.1),
            Read::new(name2, &r2.0, &r2.1),
        );
    }
    lib
}

/// Applies the error and quality model to a perfect read sequence, returning
/// `(bases, quals)`.
fn apply_errors(rng: &mut StdRng, seq: &[u8], params: &ReadSimParams) -> (Vec<u8>, Vec<u8>) {
    let mut bases = Vec::with_capacity(seq.len());
    let mut quals = Vec::with_capacity(seq.len());
    for &b in seq {
        if rng.gen::<f64>() < params.error_rate {
            bases.push(substitute_base(rng, b));
            quals.push(params.qual_bad);
        } else {
            bases.push(b);
            if rng.gen::<f64>() < params.low_qual_fraction {
                quals.push(params.qual_bad);
            } else {
                quals.push(params.qual_good);
            }
        }
    }
    (bases, quals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio::ReferenceGenome;

    fn tiny_refs() -> ReferenceSet {
        let mut rng = StdRng::seed_from_u64(3);
        let mut set = ReferenceSet::new();
        let mut a = ReferenceGenome::new("a", crate::genome::random_sequence(&mut rng, 5000, 0.5));
        a.abundance = 10.0;
        let mut b = ReferenceGenome::new("b", crate::genome::random_sequence(&mut rng, 5000, 0.5));
        b.abundance = 1.0;
        set.push(a);
        set.push(b);
        set
    }

    #[test]
    fn library_shape_matches_params() {
        let refs = tiny_refs();
        let params = ReadSimParams {
            num_pairs: 500,
            read_len: 80,
            ..Default::default()
        };
        let lib = simulate_reads(&refs, &params);
        assert_eq!(lib.num_pairs(), 500);
        assert!(lib.reads.iter().all(|r| r.len() == 80));
        assert_eq!(lib.insert_size, params.insert_size);
    }

    #[test]
    fn abundance_controls_read_share() {
        let refs = tiny_refs();
        let params = ReadSimParams {
            num_pairs: 2000,
            error_rate: 0.0,
            ..Default::default()
        };
        let lib = simulate_reads(&refs, &params);
        let from_a = lib.reads.iter().filter(|r| r.name.contains(":a:")).count();
        let frac_a = from_a as f64 / lib.num_reads() as f64;
        assert!(
            frac_a > 0.8,
            "abundant genome should dominate, got {frac_a}"
        );
    }

    #[test]
    fn error_free_reads_match_reference_exactly() {
        let refs = tiny_refs();
        let params = ReadSimParams {
            num_pairs: 200,
            error_rate: 0.0,
            low_qual_fraction: 0.0,
            ..Default::default()
        };
        let lib = simulate_reads(&refs, &params);
        // Every read (or its reverse complement) must occur in one of the
        // reference genomes.
        let hay: Vec<String> = refs
            .genomes
            .iter()
            .map(|g| String::from_utf8(g.seq.clone()).unwrap())
            .collect();
        for read in &lib.reads {
            let fwd = String::from_utf8(read.seq.clone()).unwrap();
            let rev = String::from_utf8(revcomp(&read.seq)).unwrap();
            let found = hay.iter().any(|h| h.contains(&fwd) || h.contains(&rev));
            assert!(found, "read {} not found in any reference", read.name);
        }
    }

    #[test]
    fn error_rate_reflected_in_output() {
        let refs = tiny_refs();
        let params = ReadSimParams {
            num_pairs: 1000,
            error_rate: 0.02,
            low_qual_fraction: 0.0,
            ..Default::default()
        };
        let lib = simulate_reads(&refs, &params);
        // Error bases get qual_bad, correct ones qual_good — count them.
        let total: usize = lib.reads.iter().map(|r| r.len()).sum();
        let bad: usize = lib
            .reads
            .iter()
            .map(|r| r.qual.iter().filter(|&&q| q == params.qual_bad).count())
            .sum();
        let rate = bad as f64 / total as f64;
        assert!(
            (rate - 0.02).abs() < 0.01,
            "observed error-marked rate {rate}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let refs = tiny_refs();
        let params = ReadSimParams {
            num_pairs: 100,
            ..Default::default()
        };
        let a = simulate_reads(&refs, &params);
        let b = simulate_reads(&refs, &params);
        assert_eq!(a.reads, b.reads);
    }

    #[test]
    fn with_target_coverage_sizes_library() {
        let refs = tiny_refs();
        let params = ReadSimParams::default().with_target_coverage(&refs, 20.0);
        // 10_000 total reference bases * 20x / (2*100 bases per pair) = 1000 pairs.
        assert_eq!(params.num_pairs, 1000);
    }
}
