//! MGSim: synthetic metagenome community and short-read simulator.
//!
//! The paper's weak-scaling study uses a tool called MGSim that the authors
//! wrote for exactly this purpose: sample multiple genomes, assign each a
//! relative abundance drawn from a log-normal distribution, and generate
//! Illumina-like paired-end reads with the WGSim read simulator. This crate
//! reimplements that tool (and the WGSim read model it wraps) and additionally
//! uses it to stand in for the paper's real datasets (MG64, Twitchell
//! Wetlands), which are terabyte-scale SRA downloads — see DESIGN.md for the
//! substitution rationale.
//!
//! The simulator deliberately plants every genomic feature the MetaHipMer
//! algorithms are designed around:
//!
//! * very uneven species abundance (log-normal), driving the dynamic
//!   extension-threshold logic and the iterative multi-k contig generation;
//! * sequencing errors at a configurable rate, driving Bloom-filter k-mer
//!   admission, hair removal and graph pruning;
//! * intra-genome repeats, driving repeat suspension during scaffolding;
//! * strain variants (SNP-divergent genome copies), driving bubble merging;
//! * a conserved rRNA-like operon shared (with small divergence) by every
//!   genome, driving the HMM-guided ribosomal-region traversal.

pub mod community;
pub mod genome;
pub mod presets;
pub mod reads;

pub use community::{generate_community, CommunityParams};
pub use genome::{random_genome, GenomeFeatures, GenomeParams};
pub use presets::{
    mg64_sim, two_species_skewed, weak_scaling_dataset, wetlands_sim, Mg64Scale, SimDataset,
};
pub use reads::{simulate_reads, ReadSimParams};
