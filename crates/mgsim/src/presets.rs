//! Preset datasets mirroring the paper's experimental inputs (at laptop scale).
//!
//! | Preset | Paper dataset | Purpose |
//! |---|---|---|
//! | [`mg64_sim`] | MG64 (64-genome synthetic community, SRA SRX200676) | Quality comparison (Table I, Figure 6), read-localisation study (Figure 3), Ray Meta comparison |
//! | [`wetlands_sim`] | Twitchell Wetlands (7.5 G reads) subsets | Strong scaling (Figures 4–5), grand-challenge full-vs-subset comparison |
//! | [`weak_scaling_dataset`] | MGSim weak-scaling series (5/10/20/40 taxa) | Table II |
//! | [`two_species_skewed`] | — (design ablation) | Dynamic vs global extension-threshold ablation |
//!
//! Genome lengths and read counts are scaled down by roughly 10³–10⁴× compared
//! to the real datasets so every experiment completes in seconds to minutes on
//! one machine; EXPERIMENTS.md records the exact sizes used for each figure.

use crate::community::{generate_community, CommunityParams};
use crate::reads::{simulate_reads, ReadSimParams};
use seqio::{ReadLibrary, ReferenceSet};

/// A fully materialised simulated dataset.
#[derive(Debug, Clone)]
pub struct SimDataset {
    /// The reference community the reads were drawn from.
    pub refs: ReferenceSet,
    /// The simulated paired-end read library.
    pub library: ReadLibrary,
    /// The rRNA-like conserved consensus planted into every genome (empty if
    /// planting was disabled); used to build the profile HMM.
    pub rrna_consensus: Vec<u8>,
}

impl SimDataset {
    /// Total number of reads.
    pub fn num_reads(&self) -> usize {
        self.library.num_reads()
    }

    /// Total sequenced bases.
    pub fn total_bases(&self) -> usize {
        self.library.total_bases()
    }
}

/// Size presets for the MG64-substitute community.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mg64Scale {
    /// 16 genomes of ~8–15 kbp, ~15× mean coverage. Fast enough for unit and
    /// integration tests (a few seconds end to end).
    Tiny,
    /// 64 genomes of ~8–15 kbp, ~15× coverage. The default for the quality
    /// benchmarks (Table I, Figure 6).
    Small,
    /// 64 genomes of ~20–40 kbp, ~20× coverage. Closer to the paper's
    /// contiguity regime; used when more signal is wanted.
    Standard,
}

/// Builds the MG64-substitute dataset: a 64-genome community with log-normal
/// abundances, strain variants, planted rRNA operons and one nearly-absent
/// genome, sequenced as 2×100 bp pairs with ~0.5% error.
pub fn mg64_sim(scale: Mg64Scale, seed: u64) -> SimDataset {
    let (num_taxa, len_range, coverage) = match scale {
        Mg64Scale::Tiny => (16usize, (8_000usize, 15_000usize), 15.0),
        Mg64Scale::Small => (60, (8_000, 15_000), 15.0),
        Mg64Scale::Standard => (60, (20_000, 40_000), 20.0),
    };
    // Strain variants bring the genome count to 64 for the non-tiny scales
    // (60 taxa + 4 strains), mirroring the mixture of distinct organisms and
    // close relatives in the real MG64 community.
    let strains = if matches!(scale, Mg64Scale::Tiny) {
        2
    } else {
        4
    };
    let cparams = CommunityParams {
        num_taxa,
        genome_len_range: len_range,
        abundance_sigma: 1.3,
        strain_variants: strains,
        strain_snp_rate: 0.01,
        rrna_len: 400,
        rrna_divergence: 0.02,
        repeats_per_genome: 2,
        repeat_len: 250,
        rare_taxon_abundance: Some(2e-3),
        seed,
    };
    let (refs, consensus) = generate_community(&cparams);
    let rparams = ReadSimParams {
        read_len: 100,
        insert_size: 300,
        insert_sd: 30,
        error_rate: 0.005,
        seed: seed.wrapping_add(1),
        ..Default::default()
    }
    .with_target_coverage(&refs, coverage);
    let library = simulate_reads(&refs, &rparams);
    SimDataset {
        refs,
        library,
        rrna_consensus: consensus,
    }
}

/// Builds a Wetlands-substitute dataset. `lanes` scales the number of taxa and
/// the read count the way the paper's 3-lane subset relates to the full
/// 21-lane sample: more lanes sample more of the community more deeply.
pub fn wetlands_sim(lanes: usize, seed: u64) -> SimDataset {
    let lanes = lanes.max(1);
    let num_taxa = 10 + 6 * lanes;
    let cparams = CommunityParams {
        num_taxa,
        genome_len_range: (10_000, 25_000),
        abundance_sigma: 1.8,
        strain_variants: lanes.min(8),
        strain_snp_rate: 0.012,
        rrna_len: 400,
        rrna_divergence: 0.03,
        repeats_per_genome: 3,
        repeat_len: 300,
        rare_taxon_abundance: None,
        seed,
    };
    let (refs, consensus) = generate_community(&cparams);
    // A fixed per-lane sequencing budget: deeper community sampling with more
    // lanes, but per-taxon coverage stays modest (soil metagenomes are never
    // saturated, which is exactly why assembling more lanes recovers more).
    let pairs_per_lane = 6_000usize;
    let rparams = ReadSimParams {
        read_len: 100,
        insert_size: 280,
        insert_sd: 30,
        error_rate: 0.008,
        num_pairs: pairs_per_lane * lanes,
        seed: seed.wrapping_add(lanes as u64),
        ..Default::default()
    };
    let library = simulate_reads(&refs, &rparams);
    SimDataset {
        refs,
        library,
        rrna_consensus: consensus,
    }
}

/// Builds one dataset of the weak-scaling series (Table II): `taxa` genomic
/// taxa and a read count proportional to `taxa`, so that doubling the rank
/// count and the taxa count together keeps the work per rank constant.
pub fn weak_scaling_dataset(taxa: usize, seed: u64) -> SimDataset {
    let cparams = CommunityParams {
        num_taxa: taxa.max(1),
        genome_len_range: (10_000, 20_000),
        abundance_sigma: 1.2,
        strain_variants: 0,
        strain_snp_rate: 0.01,
        rrna_len: 400,
        rrna_divergence: 0.02,
        repeats_per_genome: 2,
        repeat_len: 200,
        rare_taxon_abundance: None,
        seed,
    };
    let (refs, consensus) = generate_community(&cparams);
    let rparams = ReadSimParams {
        read_len: 100,
        insert_size: 300,
        insert_sd: 30,
        error_rate: 0.006,
        seed: seed.wrapping_add(17),
        ..Default::default()
    }
    .with_target_coverage(&refs, 15.0);
    let library = simulate_reads(&refs, &rparams);
    SimDataset {
        refs,
        library,
        rrna_consensus: consensus,
    }
}

/// A two-genome community where one genome is ~100× more abundant than the
/// other: the scenario of §II-C where a single global extension threshold
/// cannot serve both the high- and the low-coverage organism. Used by the
/// threshold ablation bench and by tests of the dynamic-threshold logic.
pub fn two_species_skewed(seed: u64) -> SimDataset {
    let cparams = CommunityParams {
        num_taxa: 2,
        genome_len_range: (15_000, 15_000),
        abundance_sigma: 1e-6, // abundances set below via rare_taxon_abundance
        strain_variants: 0,
        strain_snp_rate: 0.0,
        rrna_len: 0,
        rrna_divergence: 0.0,
        repeats_per_genome: 0,
        repeat_len: 0,
        rare_taxon_abundance: Some(0.01),
        seed,
    };
    let (mut refs, consensus) = generate_community(&cparams);
    refs.genomes[0].abundance = 1.0; // ~100x the rare taxon's 0.01
    let rparams = ReadSimParams {
        read_len: 100,
        insert_size: 300,
        insert_sd: 30,
        error_rate: 0.01,
        seed: seed.wrapping_add(5),
        ..Default::default()
    }
    .with_target_coverage(&refs, 60.0);
    let library = simulate_reads(&refs, &rparams);
    SimDataset {
        refs,
        library,
        rrna_consensus: consensus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mg64_small_has_64_genomes() {
        let ds = mg64_sim(Mg64Scale::Small, 1);
        assert_eq!(ds.refs.len(), 64);
        assert_eq!(ds.rrna_consensus.len(), 400);
        assert!(ds.num_reads() > 10_000);
        // The rare genome must be nearly absent from the reads.
        let rare_name = &ds.refs.genomes[59].name;
        let rare_reads = ds
            .library
            .reads
            .iter()
            .filter(|r| r.name.contains(rare_name.as_str()))
            .count();
        assert!(
            (rare_reads as f64) < 0.01 * ds.num_reads() as f64,
            "rare taxon got {rare_reads} reads"
        );
    }

    #[test]
    fn mg64_tiny_is_small_enough_for_tests() {
        let ds = mg64_sim(Mg64Scale::Tiny, 2);
        assert_eq!(ds.refs.len(), 18);
        assert!(ds.num_reads() < 60_000);
    }

    #[test]
    fn wetlands_scales_with_lanes() {
        let small = wetlands_sim(1, 3);
        let big = wetlands_sim(3, 3);
        assert!(big.refs.len() > small.refs.len());
        assert!(big.num_reads() > 2 * small.num_reads());
    }

    #[test]
    fn weak_scaling_reads_proportional_to_taxa() {
        let a = weak_scaling_dataset(5, 4);
        let b = weak_scaling_dataset(10, 4);
        let ratio = b.num_reads() as f64 / a.num_reads() as f64;
        assert!(ratio > 1.5 && ratio < 2.6, "read ratio {ratio}");
    }

    #[test]
    fn two_species_skew_is_extreme() {
        let ds = two_species_skewed(9);
        let p = ds.refs.normalized_abundances();
        assert!(p[0] / p[1] > 50.0, "abundance ratio too small: {:?}", p);
    }
}
