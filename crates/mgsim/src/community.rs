//! Community synthesis: many genomes with log-normal abundances, shared
//! conserved regions and optional strain variants.

use crate::genome::{
    mutate_sequence, plant_conserved_region, random_genome, random_sequence, GenomeParams,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use seqio::{ReferenceGenome, ReferenceSet};

/// Parameters for synthesising a metagenome community.
#[derive(Debug, Clone)]
pub struct CommunityParams {
    /// Number of distinct taxa (before strain variants).
    pub num_taxa: usize,
    /// Genome lengths are drawn uniformly from this inclusive range.
    pub genome_len_range: (usize, usize),
    /// σ of the log-normal abundance distribution (μ = 0). Larger values give
    /// a more skewed community. The paper's MGSim draws relative abundances
    /// from a log-normal.
    pub abundance_sigma: f64,
    /// Number of taxa that also get a strain variant: a second genome derived
    /// from the first by SNPs at `strain_snp_rate`, with half the abundance.
    pub strain_variants: usize,
    /// Per-base SNP rate between a strain variant and its parent.
    pub strain_snp_rate: f64,
    /// Length of the conserved rRNA-like operon planted into every genome
    /// (0 disables planting).
    pub rrna_len: usize,
    /// Per-base divergence of each genome's rRNA copy from the consensus.
    pub rrna_divergence: f64,
    /// Number of exact intra-genome repeat copies planted per genome.
    pub repeats_per_genome: usize,
    /// Length of each planted repeat.
    pub repeat_len: usize,
    /// If set, the abundance of the last taxon is forced to this tiny relative
    /// value (the MG64 dataset contains one organism so rare that every
    /// assembler recovers only ~4% of it — we reproduce that situation).
    pub rare_taxon_abundance: Option<f64>,
    /// RNG seed (the whole community is deterministic given the seed).
    pub seed: u64,
}

impl Default for CommunityParams {
    fn default() -> Self {
        CommunityParams {
            num_taxa: 8,
            genome_len_range: (15_000, 30_000),
            abundance_sigma: 1.0,
            strain_variants: 0,
            strain_snp_rate: 0.01,
            rrna_len: 400,
            rrna_divergence: 0.02,
            repeats_per_genome: 2,
            repeat_len: 250,
            rare_taxon_abundance: None,
            seed: 7,
        }
    }
}

/// Generates a reference community according to the parameters. Also returns
/// the rRNA consensus sequence (empty when planting is disabled) so that the
/// HMM crate can build its profile from the same consensus the simulator used.
pub fn generate_community(params: &CommunityParams) -> (ReferenceSet, Vec<u8>) {
    assert!(params.num_taxa > 0, "community needs at least one taxon");
    assert!(
        params.genome_len_range.0 > 0 && params.genome_len_range.0 <= params.genome_len_range.1,
        "invalid genome length range"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);
    let lognormal =
        LogNormal::new(0.0, params.abundance_sigma.max(1e-6)).expect("valid log-normal");
    let consensus = if params.rrna_len > 0 {
        random_sequence(&mut rng, params.rrna_len, 0.55)
    } else {
        Vec::new()
    };

    let mut set = ReferenceSet::new();
    for taxon in 0..params.num_taxa {
        let length = rng.gen_range(params.genome_len_range.0..=params.genome_len_range.1);
        let gparams = GenomeParams {
            length,
            num_repeats: params.repeats_per_genome,
            repeat_len: params.repeat_len,
            gc_content: rng.gen_range(0.35..0.65),
        };
        let (mut seq, _features) = random_genome(&mut rng, &gparams);
        let mut rrna_regions = Vec::new();
        if !consensus.is_empty() {
            let region =
                plant_conserved_region(&mut rng, &mut seq, &consensus, params.rrna_divergence);
            rrna_regions.push(region);
        }
        let mut abundance = lognormal.sample(&mut rng);
        if taxon + 1 == params.num_taxa {
            if let Some(rare) = params.rare_taxon_abundance {
                abundance = rare;
            }
        }
        let mut genome = ReferenceGenome::new(format!("taxon_{taxon:03}"), seq);
        genome.abundance = abundance;
        genome.rrna_regions = rrna_regions;
        set.push(genome);
    }

    // Strain variants: SNP-mutated copies of the first `strain_variants` taxa.
    let strains = params.strain_variants.min(params.num_taxa);
    for parent_idx in 0..strains {
        let parent = set.genomes[parent_idx].clone();
        let seq = mutate_sequence(&mut rng, &parent.seq, params.strain_snp_rate);
        let mut variant = ReferenceGenome::new(format!("{}_strainB", parent.name), seq);
        variant.abundance = parent.abundance * 0.5;
        variant.rrna_regions = parent.rrna_regions.clone();
        set.push(variant);
    }

    (set, consensus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_has_requested_shape() {
        let params = CommunityParams {
            num_taxa: 12,
            strain_variants: 3,
            ..Default::default()
        };
        let (set, consensus) = generate_community(&params);
        assert_eq!(set.len(), 15);
        assert_eq!(consensus.len(), params.rrna_len);
        for g in &set.genomes[..12] {
            assert!(g.len() >= params.genome_len_range.0);
            assert!(g.len() <= params.genome_len_range.1 + params.rrna_len);
            assert_eq!(g.rrna_regions.len(), 1);
            assert!(g.abundance > 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let params = CommunityParams::default();
        let (a, ca) = generate_community(&params);
        let (b, cb) = generate_community(&params);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        let different = CommunityParams {
            seed: 8,
            ..CommunityParams::default()
        };
        let (c, _) = generate_community(&different);
        assert_ne!(a, c);
    }

    #[test]
    fn strain_variants_are_similar_but_not_identical() {
        let params = CommunityParams {
            num_taxa: 4,
            strain_variants: 1,
            strain_snp_rate: 0.01,
            ..Default::default()
        };
        let (set, _) = generate_community(&params);
        let parent = &set.genomes[0];
        let strain = set.genomes.last().unwrap();
        assert!(strain.name.contains("strainB"));
        assert_eq!(parent.len(), strain.len());
        let diffs = parent
            .seq
            .iter()
            .zip(&strain.seq)
            .filter(|(a, b)| a != b)
            .count();
        let rate = diffs as f64 / parent.len() as f64;
        assert!(rate > 0.002 && rate < 0.03, "strain divergence {rate}");
        assert!((strain.abundance - parent.abundance * 0.5).abs() < 1e-12);
    }

    #[test]
    fn rare_taxon_abundance_forced() {
        let params = CommunityParams {
            num_taxa: 6,
            rare_taxon_abundance: Some(1e-4),
            ..Default::default()
        };
        let (set, _) = generate_community(&params);
        let rare = &set.genomes[5];
        assert!((rare.abundance - 1e-4).abs() < 1e-15);
        let p = set.normalized_abundances();
        assert!(p[5] < 0.01);
    }

    #[test]
    fn rrna_planting_can_be_disabled() {
        let params = CommunityParams {
            rrna_len: 0,
            ..Default::default()
        };
        let (set, consensus) = generate_community(&params);
        assert!(consensus.is_empty());
        assert!(set.genomes.iter().all(|g| g.rrna_regions.is_empty()));
    }

    #[test]
    fn conserved_region_is_shared_across_genomes() {
        let params = CommunityParams {
            num_taxa: 5,
            rrna_divergence: 0.01,
            ..Default::default()
        };
        let (set, consensus) = generate_community(&params);
        for g in &set.genomes {
            let (s, e) = g.rrna_regions[0];
            let region = &g.seq[s..e];
            let diffs = region
                .iter()
                .zip(&consensus)
                .filter(|(a, b)| a != b)
                .count();
            assert!(
                (diffs as f64) < 0.05 * consensus.len() as f64,
                "rRNA copy too divergent in {}",
                g.name
            );
        }
    }
}
