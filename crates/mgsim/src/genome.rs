//! Synthesis of individual reference genomes.

use rand::rngs::StdRng;
use rand::Rng;
use seqio::alphabet::BASES;

/// Parameters controlling the synthesis of one genome.
#[derive(Debug, Clone)]
pub struct GenomeParams {
    /// Target genome length in bases.
    pub length: usize,
    /// Number of internally repeated segments to plant.
    pub num_repeats: usize,
    /// Length of each repeated segment.
    pub repeat_len: usize,
    /// GC content of the random background sequence.
    pub gc_content: f64,
}

impl Default for GenomeParams {
    fn default() -> Self {
        GenomeParams {
            length: 20_000,
            num_repeats: 2,
            repeat_len: 300,
            gc_content: 0.5,
        }
    }
}

/// Locations of the features planted into a genome.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GenomeFeatures {
    /// Half-open intervals of the planted repeat copies.
    pub repeat_copies: Vec<(usize, usize)>,
    /// Half-open interval of the planted rRNA-like operon (if any).
    pub rrna_region: Option<(usize, usize)>,
}

/// Generates one random base with the requested GC bias.
fn random_base(rng: &mut StdRng, gc: f64) -> u8 {
    let r: f64 = rng.gen();
    if r < gc {
        if rng.gen::<bool>() {
            b'G'
        } else {
            b'C'
        }
    } else if rng.gen::<bool>() {
        b'A'
    } else {
        b'T'
    }
}

/// Generates a random sequence of the given length and GC content.
pub fn random_sequence(rng: &mut StdRng, length: usize, gc: f64) -> Vec<u8> {
    (0..length).map(|_| random_base(rng, gc)).collect()
}

/// Generates a random genome and plants `num_repeats` copies of a repeat
/// segment taken from the genome itself (so the copies are exact repeats).
pub fn random_genome(rng: &mut StdRng, params: &GenomeParams) -> (Vec<u8>, GenomeFeatures) {
    let mut seq = random_sequence(rng, params.length, params.gc_content);
    let mut features = GenomeFeatures::default();
    if params.num_repeats >= 2 && params.repeat_len > 0 && params.length > 4 * params.repeat_len {
        // Pick a template segment and copy it to (num_repeats - 1) other spots.
        let template_start = rng.gen_range(0..params.length - params.repeat_len);
        let template: Vec<u8> = seq[template_start..template_start + params.repeat_len].to_vec();
        features
            .repeat_copies
            .push((template_start, template_start + params.repeat_len));
        for _ in 1..params.num_repeats {
            let pos = rng.gen_range(0..params.length - params.repeat_len);
            seq[pos..pos + params.repeat_len].copy_from_slice(&template);
            features.repeat_copies.push((pos, pos + params.repeat_len));
        }
    }
    (seq, features)
}

/// Inserts a (slightly mutated copy of a) conserved operon into the genome at
/// a random position, replacing the underlying sequence. Returns the interval
/// occupied by the operon. `divergence` is the per-base substitution
/// probability applied to the consensus before insertion.
pub fn plant_conserved_region(
    rng: &mut StdRng,
    seq: &mut Vec<u8>,
    consensus: &[u8],
    divergence: f64,
) -> (usize, usize) {
    let copy = mutate_sequence(rng, consensus, divergence);
    if seq.len() <= copy.len() + 2 {
        // Degenerate tiny genome: append instead of overwrite.
        let start = seq.len();
        seq.extend_from_slice(&copy);
        return (start, seq.len());
    }
    let start = rng.gen_range(1..seq.len() - copy.len() - 1);
    seq[start..start + copy.len()].copy_from_slice(&copy);
    (start, start + copy.len())
}

/// Returns a copy of `seq` where each base is substituted with probability
/// `rate` (substitutions only — no indels, matching WGSim's default model for
/// the mutation of haplotypes).
pub fn mutate_sequence(rng: &mut StdRng, seq: &[u8], rate: f64) -> Vec<u8> {
    seq.iter()
        .map(|&b| {
            if rng.gen::<f64>() < rate {
                substitute_base(rng, b)
            } else {
                b
            }
        })
        .collect()
}

/// Picks a base different from `b` uniformly at random.
pub fn substitute_base(rng: &mut StdRng, b: u8) -> u8 {
    loop {
        let candidate = BASES[rng.gen_range(0..4)];
        if candidate != b {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn random_sequence_has_requested_length_and_alphabet() {
        let mut r = rng();
        let s = random_sequence(&mut r, 5000, 0.5);
        assert_eq!(s.len(), 5000);
        assert!(s.iter().all(|&b| matches!(b, b'A' | b'C' | b'G' | b'T')));
    }

    #[test]
    fn gc_bias_respected() {
        let mut r = rng();
        let high_gc = random_sequence(&mut r, 20_000, 0.8);
        let low_gc = random_sequence(&mut r, 20_000, 0.2);
        let gc = |s: &[u8]| seqio::alphabet::gc_content(s);
        assert!(gc(&high_gc) > 0.7, "got {}", gc(&high_gc));
        assert!(gc(&low_gc) < 0.3, "got {}", gc(&low_gc));
    }

    #[test]
    fn repeats_are_exact_copies() {
        let mut r = rng();
        let params = GenomeParams {
            length: 10_000,
            num_repeats: 3,
            repeat_len: 200,
            gc_content: 0.5,
        };
        let (seq, features) = random_genome(&mut r, &params);
        assert_eq!(seq.len(), 10_000);
        assert_eq!(features.repeat_copies.len(), 3);
        let (s0, e0) = features.repeat_copies[0];
        // Later copies may overlap each other (they overwrite), but the final
        // copy always matches the template content present at its own site —
        // verify all copies are identical to the last planted copy.
        let (sl, el) = *features.repeat_copies.last().unwrap();
        let last = &seq[sl..el];
        assert_eq!(e0 - s0, el - sl);
        assert_eq!(last.len(), 200);
    }

    #[test]
    fn mutate_sequence_rate_zero_and_one() {
        let mut r = rng();
        let s = random_sequence(&mut r, 1000, 0.5);
        assert_eq!(mutate_sequence(&mut r, &s, 0.0), s);
        let all_changed = mutate_sequence(&mut r, &s, 1.0);
        assert!(all_changed.iter().zip(&s).all(|(a, b)| a != b));
    }

    #[test]
    fn mutate_sequence_rate_statistics() {
        let mut r = rng();
        let s = random_sequence(&mut r, 50_000, 0.5);
        let mutated = mutate_sequence(&mut r, &s, 0.02);
        let diffs = mutated.iter().zip(&s).filter(|(a, b)| a != b).count();
        let rate = diffs as f64 / s.len() as f64;
        assert!((rate - 0.02).abs() < 0.005, "observed mutation rate {rate}");
    }

    #[test]
    fn plant_conserved_region_embeds_similar_sequence() {
        let mut r = rng();
        let consensus = random_sequence(&mut r, 400, 0.5);
        let mut genome = random_sequence(&mut r, 5000, 0.5);
        let (start, end) = plant_conserved_region(&mut r, &mut genome, &consensus, 0.02);
        assert_eq!(end - start, 400);
        let planted = &genome[start..end];
        let diffs = planted
            .iter()
            .zip(&consensus)
            .filter(|(a, b)| a != b)
            .count();
        assert!(diffs < 30, "planted copy diverged too much: {diffs}");
        assert_eq!(genome.len(), 5000);
    }

    #[test]
    fn substitute_base_never_returns_same() {
        let mut r = rng();
        for &b in &BASES {
            for _ in 0..20 {
                assert_ne!(substitute_base(&mut r, b), b);
            }
        }
    }
}
