//! Checkpoint/restart properties, end to end: the on-disk format round-trips
//! across rank counts, torn/corrupt state is refused, and a run killed by an
//! injected fault resumes — at a different rank count — to byte-identical
//! final scaffolds.
//!
//! CI also re-runs this file under `MHM_FORCE_SCALAR=1`, so the packed
//! sequence codec exercised by shard encode/decode is covered on both the
//! word-parallel/SIMD and scalar kernel paths.

use mhm_core::checkpoint::{self, Manifest, ShardData};
use mhm_core::{AssemblyConfig, MetaHipMer};
use pgas::{FaultPlan, Team};
use seqio::ReadLibrary;
use std::fs;
use std::path::PathBuf;

/// A unique scratch directory (removed by the test that created it).
fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mhm_ckpt_it_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small two-genome community (the same shape the pipeline tests use).
fn small_dataset(seed: u64) -> (ReadLibrary, Vec<u8>) {
    let (refs, consensus) = mgsim::generate_community(&mgsim::CommunityParams {
        num_taxa: 2,
        genome_len_range: (4_000, 5_000),
        abundance_sigma: 0.4,
        strain_variants: 0,
        rrna_len: 300,
        repeats_per_genome: 1,
        repeat_len: 120,
        seed,
        ..Default::default()
    });
    let reads = mgsim::simulate_reads(
        &refs,
        &mgsim::ReadSimParams {
            read_len: 90,
            insert_size: 280,
            insert_sd: 25,
            error_rate: 0.003,
            seed: seed + 1,
            ..Default::default()
        }
        .with_target_coverage(&refs, 22.0),
    );
    (reads, consensus)
}

/// The configuration every run in this file shares: two k iterations (so
/// there is a boundary to checkpoint at) and no local assembly, the same
/// restriction the rank-invariance pipeline test applies.
fn base_config() -> AssemblyConfig {
    let mut cfg = AssemblyConfig::small_test();
    cfg.local_assembly = false;
    cfg
}

fn sorted_sequences(out: &mhm_core::AssemblyOutput) -> Vec<Vec<u8>> {
    let mut seqs = out.sequences();
    seqs.sort();
    seqs
}

#[test]
fn kill_after_iteration_then_elastic_resume_is_byte_identical() {
    let (library, consensus) = small_dataset(71);
    let cfg = base_config();
    assert_eq!(cfg.k_values().len(), 2, "need a k boundary to cut at");

    // Uninterrupted baseline at 2 ranks.
    let baseline =
        MetaHipMer::new(cfg.clone()).assemble(&Team::single_node(2), &library, Some(&consensus));
    let golden = sorted_sequences(&baseline);
    assert!(!golden.is_empty());

    // Checkpointing must not change the assembly, and the commit must land.
    let dir = tempdir("elastic");
    let mut ckpt_cfg = cfg.clone();
    ckpt_cfg.checkpoint_dir = Some(dir.clone());
    let ckpt_run = MetaHipMer::new(ckpt_cfg.clone()).assemble(
        &Team::single_node(2),
        &library,
        Some(&consensus),
    );
    assert_eq!(sorted_sequences(&ckpt_run), golden);
    assert!(ckpt_run.stage_seconds("checkpoint_write") > 0.0);
    let (manifest, _) =
        checkpoint::find_latest(&dir, cfg.fingerprint()).expect("checkpoint committed");
    assert_eq!(manifest.next_iter, 1);
    assert_eq!(manifest.ranks, 2);
    assert!(manifest.barriers_at_commit > 0);

    // Kill rank 1 shortly after the iteration-0 commit. Barrier counts are
    // deterministic and rank-uniform, so the clean run's commit stamp aims
    // the fault of a fresh run precisely: the checkpoint exists, the final
    // scaffolds never do.
    let fault_dir = tempdir("elastic_fault");
    let mut fault_cfg = cfg.clone();
    fault_cfg.checkpoint_dir = Some(fault_dir.clone());
    let team = Team::single_node(2);
    team.set_fault_plan(Some(FaultPlan {
        rank: 1,
        after_barriers: manifest.barriers_at_commit + 16,
    }));
    let fault = MetaHipMer::new(fault_cfg.clone())
        .try_assemble(&team, &library, Some(&consensus))
        .expect_err("the armed fault must kill the run");
    assert_eq!(fault.rank, 1);
    let (fault_manifest, _) =
        checkpoint::find_latest(&fault_dir, cfg.fingerprint()).expect("commit preceded the kill");
    assert_eq!(fault_manifest.next_iter, 1);

    // Elastic resume: restart at 2x the ranks, at half, and at the writer's
    // own count — every one must complete with byte-identical scaffolds.
    for ranks in [4usize, 1, 2] {
        let mut resume_cfg = fault_cfg.clone();
        resume_cfg.resume = true;
        let resumed = MetaHipMer::new(resume_cfg).assemble(
            &Team::single_node(ranks),
            &library,
            Some(&consensus),
        );
        assert_eq!(
            sorted_sequences(&resumed),
            golden,
            "resume at {ranks} ranks diverged from the uninterrupted run"
        );
        assert!(
            resumed.stage_seconds("checkpoint_restore") > 0.0,
            "resume at {ranks} ranks did not restore"
        );
        assert_eq!(
            resumed.stage_seconds("read_ingestion"),
            0.0,
            "resume must restore reads from shards, not re-ingest"
        );
    }
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&fault_dir).unwrap();
}

#[test]
fn resume_covers_the_replicated_baselines_too() {
    // The checkpoint subsystem must also cover the non-sharded (replicated)
    // holders: contig entries are re-gathered on every rank, reads come from
    // the caller's input instead of shard files.
    let (library, consensus) = small_dataset(73);
    let mut cfg = base_config();
    cfg.use_distributed_contigs = false;
    cfg.use_distributed_reads = false;
    let golden = sorted_sequences(&MetaHipMer::new(cfg.clone()).assemble(
        &Team::single_node(3),
        &library,
        Some(&consensus),
    ));

    let dir = tempdir("replicated");
    cfg.checkpoint_dir = Some(dir.clone());
    let written =
        MetaHipMer::new(cfg.clone()).assemble(&Team::single_node(3), &library, Some(&consensus));
    assert_eq!(sorted_sequences(&written), golden);
    let (manifest, path) =
        checkpoint::find_latest(&dir, cfg.fingerprint()).expect("checkpoint committed");
    assert!(
        manifest.read_header.is_none(),
        "replicated reads need no shard state"
    );
    let shard = checkpoint::load_shards_for_rank(&path, 0, 1, manifest.ranks).unwrap();
    assert!(shard.read_blocks.is_empty());
    assert!(!shard.contigs.is_empty());

    cfg.resume = true;
    let resumed = MetaHipMer::new(cfg).assemble(&Team::single_node(2), &library, Some(&consensus));
    assert_eq!(sorted_sequences(&resumed), golden);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn committed_state_round_trips_across_any_rank_count() {
    // Format property: state committed by an R-rank team is recovered
    // entirely — every entry exactly once — by a team of any other size
    // reading its shard slice, and the commit is atomic (no staging residue).
    let dir = tempdir("roundtrip");
    let writer_ranks = 3;
    let team = Team::single_node(writer_ranks);
    let all_entries: Vec<(u64, Vec<u8>)> = (0..17u64)
        .map(|id| {
            let base = [b'A', b'C', b'G', b'T'][(id % 4) as usize];
            (id, vec![base; 40 + (id as usize % 13)])
        })
        .collect();
    let entries = all_entries.clone();
    let dir_for_team = dir.clone();
    team.run(move |ctx| {
        let mine: Vec<(u64, dbg::PackedSeq)> = entries
            .iter()
            .filter(|(id, _)| id % ctx.ranks() as u64 == ctx.rank() as u64)
            .map(|(id, seq)| (*id, dbg::PackedSeq::from_bytes(seq)))
            .collect();
        let manifest = Manifest {
            fingerprint: 42,
            ranks: ctx.ranks(),
            next_iter: 1,
            num_pairs: 0,
            barriers_at_commit: 0,
            contig_k: 21,
            contig_meta: Vec::new(),
            targets: None,
            read_header: None,
            conformance: Vec::new(),
        };
        checkpoint::commit(
            ctx,
            &dir_for_team,
            manifest,
            &ShardData {
                contigs: mine,
                read_blocks: Vec::new(),
            },
        );
    });
    // Atomicity: the committed directory exists, no staging dir survives.
    let names: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(names, vec!["ckpt_1".to_string()]);

    let (manifest, path) = checkpoint::find_latest(&dir, 42).expect("committed");
    for ranks in [1usize, 2, 3, 5, 8] {
        let mut recovered: Vec<(u64, Vec<u8>)> = (0..ranks)
            .flat_map(|r| {
                checkpoint::load_shards_for_rank(&path, r, ranks, manifest.ranks)
                    .unwrap()
                    .contigs
                    .into_iter()
                    .map(|(id, seq)| (id, seq.unpack()))
            })
            .collect();
        recovered.sort();
        let mut expect = all_entries.clone();
        expect.sort();
        assert_eq!(recovered, expect, "reader team of {ranks} ranks");
    }

    // A flipped byte in any shard is refused, not decoded.
    let shard_path = path.join("shard_1.bin");
    let mut bytes = fs::read(&shard_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&shard_path, &bytes).unwrap();
    assert!(checkpoint::load_shard(&path, 1).is_err());

    // A truncated manifest disqualifies the whole checkpoint at discovery.
    let manifest_path = path.join("manifest.bin");
    let bytes = fs::read(&manifest_path).unwrap();
    fs::write(&manifest_path, &bytes[..bytes.len() - 3]).unwrap();
    assert!(checkpoint::find_latest(&dir, 42).is_none());
    fs::remove_dir_all(&dir).unwrap();
}
