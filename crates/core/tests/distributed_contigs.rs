//! Rank-count invariance of the distributed contig store: with
//! `use_distributed_contigs` on (under either owner-assignment strategy) the
//! assembly must be byte-identical to the replicated baseline at every rank
//! count, while the per-rank resident contig bytes drop to a shard plus a
//! bounded cache.

use mhm_core::{AssemblyConfig, MetaHipMer};
use pgas::Team;
use seqio::ReadLibrary;

fn dataset(seed: u64) -> (ReadLibrary, Vec<u8>) {
    let (refs, consensus) = mgsim::generate_community(&mgsim::CommunityParams {
        num_taxa: 2,
        genome_len_range: (3_500, 4_500),
        abundance_sigma: 0.4,
        strain_variants: 0,
        rrna_len: 300,
        repeats_per_genome: 1,
        repeat_len: 120,
        seed,
        ..Default::default()
    });
    let reads = mgsim::simulate_reads(
        &refs,
        &mgsim::ReadSimParams {
            read_len: 90,
            insert_size: 280,
            insert_sd: 25,
            error_rate: 0.003,
            seed: seed + 1,
            ..Default::default()
        }
        .with_target_coverage(&refs, 20.0),
    );
    (reads, consensus)
}

fn assemble(cfg: AssemblyConfig, ranks: usize, lib: &ReadLibrary, rrna: &[u8]) -> Vec<Vec<u8>> {
    let team = Team::single_node(ranks);
    let out = MetaHipMer::new(cfg).assemble(&team, lib, Some(rrna));
    let mut seqs = out.sequences();
    seqs.sort();
    seqs
}

#[test]
fn distributed_contigs_are_rank_count_invariant_under_both_partitioners() {
    let (lib, rrna) = dataset(20260729);
    let baseline_cfg = AssemblyConfig {
        use_distributed_contigs: false,
        ..AssemblyConfig::small_test()
    };
    let baseline = assemble(baseline_cfg.clone(), 1, &lib, &rrna);
    assert!(!baseline.is_empty(), "baseline produced no scaffolds");
    for ranks in [1usize, 2, 3, 8] {
        // Replicated baseline at this rank count.
        let replicated = assemble(baseline_cfg.clone(), ranks, &lib, &rrna);
        assert_eq!(
            replicated, baseline,
            "replicated baseline not rank-invariant at {ranks} ranks"
        );
        // Distributed store, size-balanced and hash owner assignment.
        for balanced in [true, false] {
            let cfg = AssemblyConfig {
                use_distributed_contigs: true,
                balanced_contig_partition: balanced,
                // Small cache so eviction/refetch paths run in-test.
                contig_cache_bytes: 4 << 10,
                ..AssemblyConfig::small_test()
            };
            let distributed = assemble(cfg, ranks, &lib, &rrna);
            assert_eq!(
                distributed, baseline,
                "distributed contigs changed the assembly \
                 (ranks={ranks}, balanced={balanced})"
            );
        }
    }
}

#[test]
fn distributed_contigs_shrink_per_rank_residency() {
    let (lib, rrna) = dataset(77);
    let ranks = 4usize;
    let run = |use_store: bool| {
        let cfg = AssemblyConfig {
            use_distributed_contigs: use_store,
            contig_cache_bytes: 4 << 10,
            ..AssemblyConfig::small_test()
        };
        let team = Team::single_node(ranks);
        let out = MetaHipMer::new(cfg).assemble(&team, &lib, Some(&rrna));
        let per_rank = team.stats_per_rank();
        (out, per_rank)
    };
    let (out_off, stats_off) = run(false);
    let (out_on, stats_on) = run(true);
    let mut seqs_off = out_off.sequences();
    let mut seqs_on = out_on.sequences();
    seqs_off.sort();
    seqs_on.sort();
    assert_eq!(seqs_on, seqs_off);
    let max_off = stats_off
        .iter()
        .map(|s| s.contig_bytes_resident)
        .max()
        .unwrap();
    let max_on = stats_on
        .iter()
        .map(|s| s.contig_bytes_resident)
        .max()
        .unwrap();
    assert!(max_off > 0 && max_on > 0, "residency must be recorded");
    // Sharding + 2-bit packing: each rank holds well under half of the
    // replicated footprint (the precise total/ranks + cache bound is asserted
    // by the ablation_contig_store harness).
    assert!(
        2 * max_on <= max_off,
        "per-rank residency did not shrink: {max_on} vs replicated {max_off}"
    );
    // The store actually served remote reads.
    assert!(stats_on.iter().any(|s| s.contig_fetch_bytes > 0));
}
