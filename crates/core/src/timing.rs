//! Per-stage wall-clock and communication accounting.

use pgas::{Ctx, StatsSnapshot};
use std::time::Instant;

/// Accumulates per-stage wall-clock seconds and communication statistics for
/// one rank. The pipeline reduces these across ranks at the end (max for
/// time — the slowest rank defines the stage — and sum for communication).
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    stages: Vec<(String, f64, StatsSnapshot)>,
}

impl StageTimings {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, attributing its wall-clock and communication delta to `stage`
    /// (accumulating if the stage was already recorded).
    pub fn time<R>(&mut self, ctx: &Ctx, stage: &str, f: impl FnOnce() -> R) -> R {
        let before_stats = ctx.stats().snapshot();
        let start = Instant::now();
        let out = f();
        let secs = start.elapsed().as_secs_f64();
        let delta = ctx.stats().snapshot().delta_from(&before_stats);
        match self.stages.iter_mut().find(|(name, _, _)| name == stage) {
            Some((_, t, s)) => {
                *t += secs;
                *s = s.add(&delta);
            }
            None => self.stages.push((stage.to_string(), secs, delta)),
        }
        out
    }

    /// Stage names in first-recorded order.
    pub fn stage_names(&self) -> Vec<String> {
        self.stages.iter().map(|(n, _, _)| n.clone()).collect()
    }

    /// Seconds recorded for a stage on this rank.
    pub fn seconds_of(&self, stage: &str) -> f64 {
        self.stages
            .iter()
            .find(|(n, _, _)| n == stage)
            .map(|(_, t, _)| *t)
            .unwrap_or(0.0)
    }

    /// Total seconds across all stages on this rank.
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|(_, t, _)| *t).sum()
    }

    /// Collective: reduces the per-rank timings into `(stage, max seconds,
    /// summed stats)` rows, identical on every rank. Stage sets must match
    /// across ranks (they do: the pipeline is SPMD).
    pub fn reduce(&self, ctx: &Ctx) -> Vec<(String, f64, StatsSnapshot)> {
        let mut out = Vec::with_capacity(self.stages.len());
        for (name, secs, stats) in &self.stages {
            let max_secs = ctx.allreduce_max_f64(*secs);
            let sum = StatsSnapshot {
                msgs_sent: ctx.allreduce_sum_u64(stats.msgs_sent),
                bytes_sent: ctx.allreduce_sum_u64(stats.bytes_sent),
                on_node_bytes: ctx.allreduce_sum_u64(stats.on_node_bytes),
                off_node_bytes: ctx.allreduce_sum_u64(stats.off_node_bytes),
                on_node_msgs: ctx.allreduce_sum_u64(stats.on_node_msgs),
                off_node_msgs: ctx.allreduce_sum_u64(stats.off_node_msgs),
                remote_ops: ctx.allreduce_sum_u64(stats.remote_ops),
                local_ops: ctx.allreduce_sum_u64(stats.local_ops),
                atomic_ops: ctx.allreduce_sum_u64(stats.atomic_ops),
                cache_hits: ctx.allreduce_sum_u64(stats.cache_hits),
                cache_misses: ctx.allreduce_sum_u64(stats.cache_misses),
                steals: ctx.allreduce_sum_u64(stats.steals),
                rpc_round_trips: ctx.allreduce_sum_u64(stats.rpc_round_trips),
                rpc_resp_bytes: ctx.allreduce_sum_u64(stats.rpc_resp_bytes),
                cache_evictions: ctx.allreduce_sum_u64(stats.cache_evictions),
                supermer_bytes: ctx.allreduce_sum_u64(stats.supermer_bytes),
                traversal_rounds: ctx.allreduce_sum_u64(stats.traversal_rounds),
                stitch_bytes: ctx.allreduce_sum_u64(stats.stitch_bytes),
                contig_bytes_resident: ctx.allreduce_sum_u64(stats.contig_bytes_resident),
                contig_fetch_bytes: ctx.allreduce_sum_u64(stats.contig_fetch_bytes),
                read_bytes_resident: ctx.allreduce_sum_u64(stats.read_bytes_resident),
                read_fetch_bytes: ctx.allreduce_sum_u64(stats.read_fetch_bytes),
            };
            out.push((name.clone(), max_secs, sum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::Team;

    #[test]
    fn time_accumulates_per_stage() {
        let team = Team::single_node(2);
        let totals = team.run(|ctx| {
            let mut t = StageTimings::new();
            let x = t.time(ctx, "a", || 21 + 21);
            assert_eq!(x, 42);
            t.time(ctx, "a", || {
                std::thread::sleep(std::time::Duration::from_millis(5))
            });
            t.time(ctx, "b", || ());
            assert!(t.seconds_of("a") > 0.0);
            assert_eq!(t.stage_names(), vec!["a".to_string(), "b".to_string()]);
            assert!(t.total_seconds() >= t.seconds_of("a"));
            t.total_seconds()
        });
        assert!(totals.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn reduce_takes_max_time_and_sums_stats() {
        let team = Team::single_node(2);
        let reduced = team.run(|ctx| {
            let mut t = StageTimings::new();
            t.time(ctx, "phase", || {
                if ctx.rank() == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                // One remote-ish access per rank.
                ctx.record_access((ctx.rank() + 1) % ctx.ranks());
            });
            t.reduce(ctx)
        });
        for r in &reduced {
            assert_eq!(r.len(), 1);
            let (name, secs, stats) = &r[0];
            assert_eq!(name, "phase");
            assert!(*secs >= 0.02, "max across ranks should include the sleep");
            assert_eq!(stats.local_ops + stats.remote_ops, 2);
        }
    }
}
