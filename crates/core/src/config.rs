//! Pipeline configuration.

use aligner::AlignParams;
use dbg::{BubbleParams, KmerAnalysisParams, PruningParams, ThresholdPolicy, TraversalParams};
use scaffolding::ScaffoldParams;

use crate::local_assembly::LocalAssemblyParams;

/// Configuration of a MetaHipMer run.
#[derive(Debug, Clone)]
pub struct AssemblyConfig {
    /// Smallest k of the iterative contig generation.
    pub k_min: usize,
    /// Largest k (inclusive; the iteration stops at the largest value of the
    /// form `k_min + i*k_step` that does not exceed it).
    pub k_max: usize,
    /// Step s between successive k values.
    pub k_step: usize,
    /// Minimum k-mer count ε.
    pub min_kmer_count: u32,
    /// Use the Bloom-filter pre-pass during k-mer analysis.
    pub use_bloom: bool,
    /// Route k-mer analysis by supermers to minimizer-owned shards (one
    /// extraction pass, one packed shipment per owner). `false` selects the
    /// per-k-mer baseline — same counts table (for `min_kmer_count >= 2`),
    /// byte-identical assembly, far more k-mer-analysis wire bytes — used by
    /// the `ablation_supermer` harness.
    pub use_supermers: bool,
    /// Minimizer length m for supermer routing (clamped to each iteration's
    /// k and to `kmers::MAX_MINIMIZER_LEN`).
    pub minimizer_len: usize,
    /// Generate contigs with the segment-compaction + stitching traversal
    /// (owner-local in-memory compaction, then aggregated pointer-jumping
    /// stitch rounds). `false` selects the per-hop walker — one fine-grained
    /// lookup per k-mer per walk, byte-identical contigs — used by the
    /// `ablation_traversal` harness as the baseline.
    pub use_segment_traversal: bool,
    /// Serve contig sequences from the sharded `dbg::ContigStore` (2-bit
    /// packed, owner-rank sharded, read through per-rank byte-bounded caches
    /// with aggregated window fetches) instead of replicating the full
    /// `ContigSet` on every rank. `false` keeps the replicated baseline —
    /// byte-identical scaffolds, O(total assembly size) contig bytes per rank
    /// — used by the `ablation_contig_store` harness.
    pub use_distributed_contigs: bool,
    /// Per-rank bound (packed bytes) of each contig reader's software cache.
    pub contig_cache_bytes: usize,
    /// Assign contigs to owner ranks longest-first onto the least-loaded rank
    /// (bounding every rank's shard by total/ranks + one contig) instead of
    /// hashing contig ids.
    pub balanced_contig_partition: bool,
    /// Serve read sequences from the sharded `readstore::ReadStore` (2-bit
    /// packed with run-length-encoded qualities, block-sharded by owner rank,
    /// streamed through per-rank byte-bounded caches) instead of replicating
    /// the full `ReadLibrary` on every rank. `false` keeps the replicated
    /// baseline — byte-identical scaffolds, O(total input) read bytes per
    /// rank — used by the `ablation_read_store` harness.
    pub use_distributed_reads: bool,
    /// Per-rank bound (packed bytes) of each read reader's software cache.
    pub read_cache_bytes: usize,
    /// Reads per packed block in the distributed read store (rounded down to
    /// even for paired libraries so mates always share a block).
    pub read_block_reads: usize,
    /// Ranks per simulated node (the paper runs 32 per Cori node). The
    /// default, `usize::MAX`, means "all ranks on one node" (the value is
    /// clamped to the rank count when the topology is built), matching the
    /// historical single-node harness behaviour; any other value groups
    /// ranks that many to a node but need not divide evenly (the last node
    /// may be partial). `0` is invalid — [`AssemblyConfig::validate`]
    /// rejects it up front instead of letting the topology layer panic.
    /// See [`AssemblyConfig::topology`].
    pub ranks_per_node: usize,
    /// Route aggregated exchanges through node leaders (gather at the source
    /// node's leader, one combined message per destination node, scatter
    /// on-node): up to `ranks_per_node`× fewer off-node messages per
    /// direction, byte-identical assembly. `false` keeps the flat
    /// rank-to-rank all-to-all — the ablation baseline of the
    /// `ablation_topology` harness. No effect on a single-node topology.
    pub use_hierarchical_exchange: bool,
    /// Extension-threshold policy (dynamic for MetaHipMer, global for HipMer).
    pub threshold: ThresholdPolicy,
    /// Run bubble merging and hair removal.
    pub bubble_merging: bool,
    /// Run iterative graph pruning.
    pub pruning: bool,
    /// Run local assembly (mer-walking contig extension).
    pub local_assembly: bool,
    /// Apply the read-localisation optimisation between iterations.
    pub read_localization: bool,
    /// Run scaffolding after contig generation (otherwise contigs are emitted
    /// as single-contig scaffolds).
    pub scaffolding: bool,
    /// Drop final contigs shorter than this before scaffolding.
    pub min_contig_len: usize,
    /// Alignment parameters (shared by the local-assembly and scaffolding
    /// alignment rounds).
    pub align: AlignParams,
    /// Bubble-merging parameters.
    pub bubble: BubbleParams,
    /// Pruning parameters.
    pub prune: PruningParams,
    /// Local-assembly parameters.
    pub local: LocalAssemblyParams,
    /// Scaffolding parameters.
    pub scaffold: ScaffoldParams,
    /// Directory for checkpoints written at each k-iteration boundary
    /// (`None` — the default — disables checkpointing). Commits are atomic
    /// (staged in a temp dir, then renamed in), so a run killed mid-write
    /// never leaves a loadable-but-torn checkpoint behind. See
    /// `core::checkpoint`.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Resume from the latest valid checkpoint in `checkpoint_dir` whose
    /// configuration fingerprint matches, skipping the already-completed
    /// k iterations. The resuming team may have a *different* rank count
    /// than the writer: every shard is re-partitioned through the tables'
    /// partitioners on load (elastic resume), and the final scaffolds are
    /// byte-identical to an uninterrupted run.
    pub resume: bool,
}

impl Default for AssemblyConfig {
    fn default() -> Self {
        AssemblyConfig {
            k_min: 21,
            k_max: 43,
            k_step: 22,
            min_kmer_count: 2,
            use_bloom: true,
            use_supermers: true,
            minimizer_len: 15,
            use_segment_traversal: true,
            use_distributed_contigs: true,
            contig_cache_bytes: 1 << 20,
            balanced_contig_partition: true,
            use_distributed_reads: true,
            read_cache_bytes: 1 << 20,
            read_block_reads: 64,
            ranks_per_node: usize::MAX,
            use_hierarchical_exchange: true,
            threshold: ThresholdPolicy::metahipmer_default(),
            bubble_merging: true,
            pruning: true,
            local_assembly: true,
            read_localization: true,
            scaffolding: true,
            min_contig_len: 0,
            align: AlignParams {
                seed_len: 15,
                stride: 5,
                min_aligned_len: 30,
                ..Default::default()
            },
            bubble: BubbleParams::default(),
            prune: PruningParams::default(),
            local: LocalAssemblyParams::default(),
            scaffold: ScaffoldParams::default(),
            checkpoint_dir: None,
            resume: false,
        }
    }
}

impl AssemblyConfig {
    /// Checks the cross-field invariants that would otherwise surface as
    /// obscure panics deep inside the pipeline (an empty k schedule, a read
    /// block that splits pairs, a zero-rank node). Called by
    /// [`crate::MetaHipMer::new`], so a bad configuration fails at
    /// construction with a message naming the field, not mid-assembly.
    pub fn validate(&self) -> Result<(), String> {
        if self.k_min < 3 || self.k_min.is_multiple_of(2) {
            return Err(format!(
                "k_min must be odd and >= 3, got {} (even k makes a k-mer its own reverse complement)",
                self.k_min
            ));
        }
        if self.k_step < 2 || !self.k_step.is_multiple_of(2) {
            return Err(format!(
                "k_step must be even and >= 2 so every k stays odd, got {}",
                self.k_step
            ));
        }
        if self.k_max < self.k_min {
            return Err(format!(
                "k schedule is non-increasing: k_max {} < k_min {} leaves no iterations to run",
                self.k_max, self.k_min
            ));
        }
        if self.read_block_reads == 0 || !self.read_block_reads.is_multiple_of(2) {
            return Err(format!(
                "read_block_reads must be even and positive so paired mates always share a \
                 read-store block, got {}",
                self.read_block_reads
            ));
        }
        if self.ranks_per_node == 0 {
            return Err(
                "ranks_per_node must be >= 1 (the default usize::MAX means all ranks on one \
                 node), got 0"
                    .to_string(),
            );
        }
        Ok(())
    }

    /// A 64-bit fingerprint of every result-affecting field (FNV-1a over the
    /// `Debug` rendering, with the checkpoint bookkeeping fields normalised
    /// away). A checkpoint records the writer's fingerprint and a resume
    /// refuses to load state produced under a different configuration —
    /// mixing, say, different k schedules would silently corrupt the run.
    pub fn fingerprint(&self) -> u64 {
        let mut normalized = self.clone();
        normalized.checkpoint_dir = None;
        normalized.resume = false;
        let text = format!("{normalized:?}");
        let mut h: u64 = 0xcbf29ce484222325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// The sequence of k values the pipeline will iterate over.
    pub fn k_values(&self) -> Vec<usize> {
        assert!(
            self.k_min >= 3 && self.k_min % 2 == 1,
            "k_min must be odd and >= 3"
        );
        assert!(
            self.k_step >= 2 && self.k_step.is_multiple_of(2),
            "k_step must be even so k stays odd"
        );
        assert!(self.k_max >= self.k_min);
        (self.k_min..=self.k_max).step_by(self.k_step).collect()
    }

    /// Parameters for k-mer analysis at a given k.
    pub fn analysis_params(&self, k: usize) -> KmerAnalysisParams {
        KmerAnalysisParams {
            k,
            min_count: self.min_kmer_count,
            use_bloom: self.use_bloom,
            use_supermers: self.use_supermers,
            minimizer_len: self.minimizer_len,
            ..Default::default()
        }
    }

    /// Parameters for graph traversal.
    pub fn traversal_params(&self) -> TraversalParams {
        TraversalParams {
            min_contig_len: self.min_contig_len,
            use_segment_traversal: self.use_segment_traversal,
        }
    }

    /// The machine topology for a run over `ranks` ranks: `ranks_per_node`
    /// is clamped to the rank count (so the `usize::MAX` default puts every
    /// rank on one node) and any smaller value groups ranks that many to a
    /// node (the last node may be partial).
    pub fn topology(&self, ranks: usize) -> pgas::Topology {
        pgas::Topology::new(ranks, self.ranks_per_node.min(ranks).max(1))
    }

    /// A team over [`AssemblyConfig::topology`] with the hierarchical-exchange
    /// mode of this configuration already applied.
    pub fn team(&self, ranks: usize) -> std::sync::Arc<pgas::Team> {
        let team = pgas::Team::new(self.topology(ranks));
        team.set_hierarchical_exchange(self.use_hierarchical_exchange);
        team
    }

    /// Parameters for the distributed contig store.
    pub fn contig_store_params(&self) -> dbg::ContigStoreParams {
        dbg::ContigStoreParams {
            cache_bytes: self.contig_cache_bytes,
            balanced: self.balanced_contig_partition,
            ..Default::default()
        }
    }

    /// Parameters for the distributed read store.
    pub fn read_store_params(&self) -> readstore::ReadStoreParams {
        readstore::ReadStoreParams {
            block_reads: self.read_block_reads,
            cache_bytes: self.read_cache_bytes,
            ..Default::default()
        }
    }

    /// Sets the aggregated-lookup batch size on every stage that reads the
    /// distributed tables remotely: alignment seed lookups, contig-graph
    /// anchor lookups during bubble merging and pruning, and local-assembly
    /// pool fetches. `1` disables lookup aggregation everywhere (the
    /// fine-grained, communication-per-key baseline of the
    /// `ablation_batched_lookup` harness); the result of an assembly is
    /// byte-identical either way.
    pub fn with_lookup_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "lookup batch must be positive");
        self.align.lookup_batch = batch;
        self.bubble.lookup_batch = batch;
        self.prune.lookup_batch = batch;
        self.local.lookup_batch = batch;
        self
    }

    /// A configuration suitable for the small simulated communities used in
    /// tests and examples (fewer, smaller k values and permissive support
    /// thresholds).
    pub fn small_test() -> Self {
        let mut cfg = AssemblyConfig {
            k_min: 21,
            k_max: 33,
            k_step: 12,
            use_bloom: false,
            ..Default::default()
        };
        cfg.scaffold.links.min_splint_support = 2;
        cfg.scaffold.links.min_span_support = 2;
        // The test communities plant strain variants at ~1% divergence; SNPs
        // closer than k create bubble branches longer than 2k, and leaving
        // them unmerged feeds the scaffolder two parallel contigs for the
        // same locus. Trade strain splitting for contiguity at this scale.
        cfg.bubble.merge_long_bubbles = true;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_k_schedule() {
        let cfg = AssemblyConfig::default();
        assert_eq!(cfg.k_values(), vec![21, 43]);
    }

    #[test]
    fn custom_k_schedule() {
        let cfg = AssemblyConfig {
            k_min: 21,
            k_max: 55,
            k_step: 10,
            ..Default::default()
        };
        assert_eq!(cfg.k_values(), vec![21, 31, 41, 51]);
    }

    #[test]
    #[should_panic]
    fn even_k_min_rejected() {
        let cfg = AssemblyConfig {
            k_min: 20,
            ..Default::default()
        };
        let _ = cfg.k_values();
    }

    #[test]
    #[should_panic]
    fn odd_step_rejected() {
        let cfg = AssemblyConfig {
            k_step: 5,
            ..Default::default()
        };
        let _ = cfg.k_values();
    }

    #[test]
    fn validate_accepts_the_defaults_and_names_the_broken_field() {
        assert_eq!(AssemblyConfig::default().validate(), Ok(()));
        assert_eq!(AssemblyConfig::small_test().validate(), Ok(()));
        let cases = [
            (
                AssemblyConfig {
                    k_min: 20,
                    ..Default::default()
                },
                "k_min",
            ),
            (
                AssemblyConfig {
                    k_step: 5,
                    ..Default::default()
                },
                "k_step",
            ),
            (
                AssemblyConfig {
                    k_min: 31,
                    k_max: 21,
                    ..Default::default()
                },
                "non-increasing",
            ),
            (
                AssemblyConfig {
                    read_block_reads: 63,
                    ..Default::default()
                },
                "read_block_reads",
            ),
            (
                AssemblyConfig {
                    read_block_reads: 0,
                    ..Default::default()
                },
                "read_block_reads",
            ),
            (
                AssemblyConfig {
                    ranks_per_node: 0,
                    ..Default::default()
                },
                "ranks_per_node",
            ),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().expect_err(needle);
            assert!(err.contains(needle), "error {err:?} must name {needle:?}");
        }
    }

    #[test]
    fn fingerprint_ignores_checkpoint_bookkeeping_but_not_results_fields() {
        let base = AssemblyConfig::default();
        let mut with_ckpt = base.clone();
        with_ckpt.checkpoint_dir = Some(std::path::PathBuf::from("/tmp/somewhere"));
        with_ckpt.resume = true;
        assert_eq!(
            base.fingerprint(),
            with_ckpt.fingerprint(),
            "where a run checkpoints must not change what it computes"
        );
        let mut other_k = base.clone();
        other_k.k_max = 21;
        assert_ne!(base.fingerprint(), other_k.fingerprint());
        let mut other_eps = base.clone();
        other_eps.min_kmer_count = 3;
        assert_ne!(base.fingerprint(), other_eps.fingerprint());
    }

    #[test]
    fn with_lookup_batch_threads_the_size_through_every_stage() {
        let cfg = AssemblyConfig::default().with_lookup_batch(64);
        assert_eq!(cfg.align.lookup_batch, 64);
        assert_eq!(cfg.bubble.lookup_batch, 64);
        assert_eq!(cfg.prune.lookup_batch, 64);
        assert_eq!(cfg.local.lookup_batch, 64);
        let fine = AssemblyConfig::default().with_lookup_batch(1);
        assert_eq!(fine.align.lookup_batch, 1);
    }

    #[test]
    fn topology_defaults_to_single_node_and_threads_ranks_per_node() {
        let cfg = AssemblyConfig::default();
        assert!(cfg.use_hierarchical_exchange);
        assert_eq!(cfg.topology(8), pgas::Topology::single_node(8));
        let multi = AssemblyConfig {
            ranks_per_node: 2,
            ..Default::default()
        };
        assert_eq!(multi.topology(8), pgas::Topology::new(8, 2));
        assert_eq!(multi.topology(8).nodes(), 4);
        let team = multi.team(8);
        assert_eq!(team.topology(), pgas::Topology::new(8, 2));
        assert!(team.hierarchical_exchange());
        let flat = AssemblyConfig {
            ranks_per_node: 2,
            use_hierarchical_exchange: false,
            ..Default::default()
        };
        assert!(!flat.team(4).hierarchical_exchange());
    }

    #[test]
    fn read_store_params_inherit_config() {
        assert!(AssemblyConfig::default().use_distributed_reads);
        let cfg = AssemblyConfig {
            read_cache_bytes: 4096,
            read_block_reads: 32,
            ..Default::default()
        };
        let p = cfg.read_store_params();
        assert_eq!(p.cache_bytes, 4096);
        assert_eq!(p.block_reads, 32);
    }

    #[test]
    fn analysis_params_inherit_config() {
        let cfg = AssemblyConfig {
            min_kmer_count: 3,
            use_bloom: false,
            use_supermers: false,
            minimizer_len: 11,
            ..Default::default()
        };
        let p = cfg.analysis_params(31);
        assert_eq!(p.k, 31);
        assert_eq!(p.min_count, 3);
        assert!(!p.use_bloom);
        assert!(!p.use_supermers);
        assert_eq!(p.minimizer_len, 11);
        let default_params = AssemblyConfig::default().analysis_params(21);
        assert!(default_params.use_supermers);
        assert_eq!(default_params.effective_minimizer_len(), 15);
    }
}
