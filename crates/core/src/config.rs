//! Pipeline configuration.

use aligner::AlignParams;
use dbg::{BubbleParams, KmerAnalysisParams, PruningParams, ThresholdPolicy, TraversalParams};
use scaffolding::ScaffoldParams;

use crate::local_assembly::LocalAssemblyParams;

/// Configuration of a MetaHipMer run.
#[derive(Debug, Clone)]
pub struct AssemblyConfig {
    /// Smallest k of the iterative contig generation.
    pub k_min: usize,
    /// Largest k (inclusive; the iteration stops at the largest value of the
    /// form `k_min + i*k_step` that does not exceed it).
    pub k_max: usize,
    /// Step s between successive k values.
    pub k_step: usize,
    /// Minimum k-mer count ε.
    pub min_kmer_count: u32,
    /// Use the Bloom-filter pre-pass during k-mer analysis.
    pub use_bloom: bool,
    /// Route k-mer analysis by supermers to minimizer-owned shards (one
    /// extraction pass, one packed shipment per owner). `false` selects the
    /// per-k-mer baseline — same counts table (for `min_kmer_count >= 2`),
    /// byte-identical assembly, far more k-mer-analysis wire bytes — used by
    /// the `ablation_supermer` harness.
    pub use_supermers: bool,
    /// Minimizer length m for supermer routing (clamped to each iteration's
    /// k and to `kmers::MAX_MINIMIZER_LEN`).
    pub minimizer_len: usize,
    /// Generate contigs with the segment-compaction + stitching traversal
    /// (owner-local in-memory compaction, then aggregated pointer-jumping
    /// stitch rounds). `false` selects the per-hop walker — one fine-grained
    /// lookup per k-mer per walk, byte-identical contigs — used by the
    /// `ablation_traversal` harness as the baseline.
    pub use_segment_traversal: bool,
    /// Serve contig sequences from the sharded `dbg::ContigStore` (2-bit
    /// packed, owner-rank sharded, read through per-rank byte-bounded caches
    /// with aggregated window fetches) instead of replicating the full
    /// `ContigSet` on every rank. `false` keeps the replicated baseline —
    /// byte-identical scaffolds, O(total assembly size) contig bytes per rank
    /// — used by the `ablation_contig_store` harness.
    pub use_distributed_contigs: bool,
    /// Per-rank bound (packed bytes) of each contig reader's software cache.
    pub contig_cache_bytes: usize,
    /// Assign contigs to owner ranks longest-first onto the least-loaded rank
    /// (bounding every rank's shard by total/ranks + one contig) instead of
    /// hashing contig ids.
    pub balanced_contig_partition: bool,
    /// Serve read sequences from the sharded `readstore::ReadStore` (2-bit
    /// packed with run-length-encoded qualities, block-sharded by owner rank,
    /// streamed through per-rank byte-bounded caches) instead of replicating
    /// the full `ReadLibrary` on every rank. `false` keeps the replicated
    /// baseline — byte-identical scaffolds, O(total input) read bytes per
    /// rank — used by the `ablation_read_store` harness.
    pub use_distributed_reads: bool,
    /// Per-rank bound (packed bytes) of each read reader's software cache.
    pub read_cache_bytes: usize,
    /// Reads per packed block in the distributed read store (rounded down to
    /// even for paired libraries so mates always share a block).
    pub read_block_reads: usize,
    /// Ranks per simulated node (the paper runs 32 per Cori node). `0` — the
    /// default — means "all ranks on one node", matching the historical
    /// single-node harness behaviour; any other value must divide into the
    /// rank count sensibly but need not evenly (the last node may be
    /// partial). See [`AssemblyConfig::topology`].
    pub ranks_per_node: usize,
    /// Route aggregated exchanges through node leaders (gather at the source
    /// node's leader, one combined message per destination node, scatter
    /// on-node): up to `ranks_per_node`× fewer off-node messages per
    /// direction, byte-identical assembly. `false` keeps the flat
    /// rank-to-rank all-to-all — the ablation baseline of the
    /// `ablation_topology` harness. No effect on a single-node topology.
    pub use_hierarchical_exchange: bool,
    /// Extension-threshold policy (dynamic for MetaHipMer, global for HipMer).
    pub threshold: ThresholdPolicy,
    /// Run bubble merging and hair removal.
    pub bubble_merging: bool,
    /// Run iterative graph pruning.
    pub pruning: bool,
    /// Run local assembly (mer-walking contig extension).
    pub local_assembly: bool,
    /// Apply the read-localisation optimisation between iterations.
    pub read_localization: bool,
    /// Run scaffolding after contig generation (otherwise contigs are emitted
    /// as single-contig scaffolds).
    pub scaffolding: bool,
    /// Drop final contigs shorter than this before scaffolding.
    pub min_contig_len: usize,
    /// Alignment parameters (shared by the local-assembly and scaffolding
    /// alignment rounds).
    pub align: AlignParams,
    /// Bubble-merging parameters.
    pub bubble: BubbleParams,
    /// Pruning parameters.
    pub prune: PruningParams,
    /// Local-assembly parameters.
    pub local: LocalAssemblyParams,
    /// Scaffolding parameters.
    pub scaffold: ScaffoldParams,
}

impl Default for AssemblyConfig {
    fn default() -> Self {
        AssemblyConfig {
            k_min: 21,
            k_max: 43,
            k_step: 22,
            min_kmer_count: 2,
            use_bloom: true,
            use_supermers: true,
            minimizer_len: 15,
            use_segment_traversal: true,
            use_distributed_contigs: true,
            contig_cache_bytes: 1 << 20,
            balanced_contig_partition: true,
            use_distributed_reads: true,
            read_cache_bytes: 1 << 20,
            read_block_reads: 64,
            ranks_per_node: 0,
            use_hierarchical_exchange: true,
            threshold: ThresholdPolicy::metahipmer_default(),
            bubble_merging: true,
            pruning: true,
            local_assembly: true,
            read_localization: true,
            scaffolding: true,
            min_contig_len: 0,
            align: AlignParams {
                seed_len: 15,
                stride: 5,
                min_aligned_len: 30,
                ..Default::default()
            },
            bubble: BubbleParams::default(),
            prune: PruningParams::default(),
            local: LocalAssemblyParams::default(),
            scaffold: ScaffoldParams::default(),
        }
    }
}

impl AssemblyConfig {
    /// The sequence of k values the pipeline will iterate over.
    pub fn k_values(&self) -> Vec<usize> {
        assert!(
            self.k_min >= 3 && self.k_min % 2 == 1,
            "k_min must be odd and >= 3"
        );
        assert!(
            self.k_step >= 2 && self.k_step.is_multiple_of(2),
            "k_step must be even so k stays odd"
        );
        assert!(self.k_max >= self.k_min);
        (self.k_min..=self.k_max).step_by(self.k_step).collect()
    }

    /// Parameters for k-mer analysis at a given k.
    pub fn analysis_params(&self, k: usize) -> KmerAnalysisParams {
        KmerAnalysisParams {
            k,
            min_count: self.min_kmer_count,
            use_bloom: self.use_bloom,
            use_supermers: self.use_supermers,
            minimizer_len: self.minimizer_len,
            ..Default::default()
        }
    }

    /// Parameters for graph traversal.
    pub fn traversal_params(&self) -> TraversalParams {
        TraversalParams {
            min_contig_len: self.min_contig_len,
            use_segment_traversal: self.use_segment_traversal,
        }
    }

    /// The machine topology for a run over `ranks` ranks:
    /// `ranks_per_node == 0` puts every rank on one node, any other value
    /// groups ranks `ranks_per_node` to a node (the last node may be
    /// partial).
    pub fn topology(&self, ranks: usize) -> pgas::Topology {
        if self.ranks_per_node == 0 {
            pgas::Topology::single_node(ranks)
        } else {
            pgas::Topology::new(ranks, self.ranks_per_node)
        }
    }

    /// A team over [`AssemblyConfig::topology`] with the hierarchical-exchange
    /// mode of this configuration already applied.
    pub fn team(&self, ranks: usize) -> std::sync::Arc<pgas::Team> {
        let team = pgas::Team::new(self.topology(ranks));
        team.set_hierarchical_exchange(self.use_hierarchical_exchange);
        team
    }

    /// Parameters for the distributed contig store.
    pub fn contig_store_params(&self) -> dbg::ContigStoreParams {
        dbg::ContigStoreParams {
            cache_bytes: self.contig_cache_bytes,
            balanced: self.balanced_contig_partition,
            ..Default::default()
        }
    }

    /// Parameters for the distributed read store.
    pub fn read_store_params(&self) -> readstore::ReadStoreParams {
        readstore::ReadStoreParams {
            block_reads: self.read_block_reads,
            cache_bytes: self.read_cache_bytes,
            ..Default::default()
        }
    }

    /// Sets the aggregated-lookup batch size on every stage that reads the
    /// distributed tables remotely: alignment seed lookups, contig-graph
    /// anchor lookups during bubble merging and pruning, and local-assembly
    /// pool fetches. `1` disables lookup aggregation everywhere (the
    /// fine-grained, communication-per-key baseline of the
    /// `ablation_batched_lookup` harness); the result of an assembly is
    /// byte-identical either way.
    pub fn with_lookup_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "lookup batch must be positive");
        self.align.lookup_batch = batch;
        self.bubble.lookup_batch = batch;
        self.prune.lookup_batch = batch;
        self.local.lookup_batch = batch;
        self
    }

    /// A configuration suitable for the small simulated communities used in
    /// tests and examples (fewer, smaller k values and permissive support
    /// thresholds).
    pub fn small_test() -> Self {
        let mut cfg = AssemblyConfig {
            k_min: 21,
            k_max: 33,
            k_step: 12,
            use_bloom: false,
            ..Default::default()
        };
        cfg.scaffold.links.min_splint_support = 2;
        cfg.scaffold.links.min_span_support = 2;
        // The test communities plant strain variants at ~1% divergence; SNPs
        // closer than k create bubble branches longer than 2k, and leaving
        // them unmerged feeds the scaffolder two parallel contigs for the
        // same locus. Trade strain splitting for contiguity at this scale.
        cfg.bubble.merge_long_bubbles = true;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_k_schedule() {
        let cfg = AssemblyConfig::default();
        assert_eq!(cfg.k_values(), vec![21, 43]);
    }

    #[test]
    fn custom_k_schedule() {
        let cfg = AssemblyConfig {
            k_min: 21,
            k_max: 55,
            k_step: 10,
            ..Default::default()
        };
        assert_eq!(cfg.k_values(), vec![21, 31, 41, 51]);
    }

    #[test]
    #[should_panic]
    fn even_k_min_rejected() {
        let cfg = AssemblyConfig {
            k_min: 20,
            ..Default::default()
        };
        let _ = cfg.k_values();
    }

    #[test]
    #[should_panic]
    fn odd_step_rejected() {
        let cfg = AssemblyConfig {
            k_step: 5,
            ..Default::default()
        };
        let _ = cfg.k_values();
    }

    #[test]
    fn with_lookup_batch_threads_the_size_through_every_stage() {
        let cfg = AssemblyConfig::default().with_lookup_batch(64);
        assert_eq!(cfg.align.lookup_batch, 64);
        assert_eq!(cfg.bubble.lookup_batch, 64);
        assert_eq!(cfg.prune.lookup_batch, 64);
        assert_eq!(cfg.local.lookup_batch, 64);
        let fine = AssemblyConfig::default().with_lookup_batch(1);
        assert_eq!(fine.align.lookup_batch, 1);
    }

    #[test]
    fn topology_defaults_to_single_node_and_threads_ranks_per_node() {
        let cfg = AssemblyConfig::default();
        assert!(cfg.use_hierarchical_exchange);
        assert_eq!(cfg.topology(8), pgas::Topology::single_node(8));
        let multi = AssemblyConfig {
            ranks_per_node: 2,
            ..Default::default()
        };
        assert_eq!(multi.topology(8), pgas::Topology::new(8, 2));
        assert_eq!(multi.topology(8).nodes(), 4);
        let team = multi.team(8);
        assert_eq!(team.topology(), pgas::Topology::new(8, 2));
        assert!(team.hierarchical_exchange());
        let flat = AssemblyConfig {
            ranks_per_node: 2,
            use_hierarchical_exchange: false,
            ..Default::default()
        };
        assert!(!flat.team(4).hierarchical_exchange());
    }

    #[test]
    fn read_store_params_inherit_config() {
        assert!(AssemblyConfig::default().use_distributed_reads);
        let cfg = AssemblyConfig {
            read_cache_bytes: 4096,
            read_block_reads: 32,
            ..Default::default()
        };
        let p = cfg.read_store_params();
        assert_eq!(p.cache_bytes, 4096);
        assert_eq!(p.block_reads, 32);
    }

    #[test]
    fn analysis_params_inherit_config() {
        let cfg = AssemblyConfig {
            min_kmer_count: 3,
            use_bloom: false,
            use_supermers: false,
            minimizer_len: 11,
            ..Default::default()
        };
        let p = cfg.analysis_params(31);
        assert_eq!(p.k, 31);
        assert_eq!(p.min_count, 3);
        assert!(!p.use_bloom);
        assert!(!p.use_supermers);
        assert_eq!(p.minimizer_len, 11);
        let default_params = AssemblyConfig::default().analysis_params(21);
        assert!(default_params.use_supermers);
        assert_eq!(default_params.effective_minimizer_len(), 15);
    }
}
