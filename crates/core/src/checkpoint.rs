//! Checkpoint/restart of the cross-iteration pipeline state (ROADMAP item:
//! fault tolerance with elastic resume).
//!
//! At the end of every non-final k iteration, [`crate::MetaHipMer`] can
//! serialise everything the next iteration needs — the current contig set
//! (sharded or replicated), the read-store block map, the read-localisation
//! placement and the iteration position — into a versioned, checksummed
//! on-disk checkpoint. A later run pointed at the same directory resumes
//! from the newest checkpoint whose configuration fingerprint matches,
//! skipping the completed iterations, and produces byte-identical final
//! scaffolds.
//!
//! # On-disk format
//!
//! A committed checkpoint is a directory `ckpt_<iter>` holding one
//! `manifest.bin` (replicated state: fingerprint, iteration position,
//! contig metadata, localisation targets, read-store header) and one
//! `shard_<r>.bin` per writer rank (that rank's owned contig sequences and
//! packed read blocks). Every file starts with the magic `MHMCKPT1` and a
//! format version, followed by tagged sections framed as
//! `[tag u32][payload len u64][payload][crc32 u32]` — a flipped bit
//! anywhere is caught by the per-section CRC before any payload is trusted.
//!
//! Commits are atomic: all files are staged into a `.tmp_ckpt_<iter>`
//! directory, and only after every rank has written its shard does rank 0
//! write the manifest and `rename(2)` the staging directory to its final
//! name. A run killed mid-write leaves only a staging directory, which
//! discovery ([`find_latest`]) never looks at — a torn checkpoint is never
//! loadable.
//!
//! # Elastic resume
//!
//! Shard files record state keyed the same way the distributed tables key
//! it (contig id, block id), *not* by rank. A resuming team of R′ ranks
//! splits the writer's R shard files across its ranks
//! ([`load_shards_for_rank`]) and feeds the entries through
//! `ContigStore::restore` / `ReadStore::restore`, which re-route every
//! entry through the table's partitioner for the *new* rank count. The
//! read-localisation placement is persisted in its rank-count-independent
//! form (`ReadDistribution::targets`) and rebuilt with
//! `ReadDistribution::from_targets`. R′ may be larger or smaller than R;
//! the restored state is identical to what a fresh run at R′ ranks would
//! have built at the same cut point.

use dbg::{ContigMeta, PackedSeq};
use pgas::Ctx;
use readstore::{PackedRead, PackedReadBlock, ReadStoreHeader};
use seqio::PairOrientation;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File magic: every checkpoint file starts with these 8 bytes.
pub const MAGIC: [u8; 8] = *b"MHMCKPT1";
/// Format version; bumped on any incompatible layout change.
pub const VERSION: u32 = 2;

const TAG_META: u32 = u32::from_be_bytes(*b"META");
const TAG_CTGM: u32 = u32::from_be_bytes(*b"CTGM");
const TAG_DIST: u32 = u32::from_be_bytes(*b"DIST");
const TAG_READ: u32 = u32::from_be_bytes(*b"READ");
const TAG_SCTG: u32 = u32::from_be_bytes(*b"SCTG");
const TAG_SRDB: u32 = u32::from_be_bytes(*b"SRDB");

// ---------------------------------------------------------------------------
// CRC32 (IEEE, polynomial 0xEDB88320) — the same checksum gzip/PNG use.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut j = 0;
        while j < 8 {
            c = if c & 1 != 0 {
                0xEDB88320 ^ (c >> 1)
            } else {
                c >> 1
            };
            j += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 of a byte slice (IEEE reflected, init/final xor `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Little-endian payload encoding/decoding.
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.u64()? as usize;
        self.take(n)
    }
    fn done(&self) -> Result<(), String> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(format!(
                "payload holds {} trailing bytes",
                self.data.len() - self.pos
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Section framing: [tag u32][payload len u64][payload][crc32 u32].
// ---------------------------------------------------------------------------

fn push_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Splits a file body (after magic + version) into `(tag, payload)`
/// sections, verifying each section's CRC before its payload is exposed.
fn read_sections(body: &[u8]) -> Result<Vec<(u32, &[u8])>, String> {
    let mut d = Dec::new(body);
    let mut out = Vec::new();
    while d.pos < body.len() {
        let tag = d.u32()?;
        let len = d.u64()? as usize;
        let payload = d.take(len)?;
        let stored = d.u32()?;
        let actual = crc32(payload);
        if stored != actual {
            return Err(format!(
                "section {:?} CRC mismatch: stored {stored:#010x}, computed {actual:#010x}",
                tag.to_be_bytes().map(|b| b as char)
            ));
        }
        out.push((tag, payload));
    }
    Ok(out)
}

fn write_file_atomic(path: &Path, sections: &[(u32, Vec<u8>)]) -> Result<(), String> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    for (tag, payload) in sections {
        push_section(&mut out, *tag, payload);
    }
    let mut f = fs::File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    f.write_all(&out)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    f.sync_all()
        .map_err(|e| format!("sync {}: {e}", path.display()))?;
    Ok(())
}

fn read_file(path: &Path) -> Result<Vec<u8>, String> {
    let data = fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    if data.len() < MAGIC.len() + 4 || data[..MAGIC.len()] != MAGIC {
        return Err(format!("{} is not a checkpoint file", path.display()));
    }
    let version = u32::from_le_bytes(data[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap());
    if version != VERSION {
        return Err(format!(
            "{}: unsupported checkpoint version {version} (expected {VERSION})",
            path.display()
        ));
    }
    Ok(data[MAGIC.len() + 4..].to_vec())
}

// ---------------------------------------------------------------------------
// Manifest: the replicated half of a checkpoint.
// ---------------------------------------------------------------------------

/// Everything a resume needs that is not per-rank sequence data. Written
/// once per checkpoint by rank 0; replicated (read by every resuming rank).
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// [`crate::AssemblyConfig::fingerprint`] of the writing run; a resume
    /// under a different configuration refuses the checkpoint.
    pub fingerprint: u64,
    /// Rank count of the writing team (= number of shard files).
    pub ranks: usize,
    /// Index into `AssemblyConfig::k_values()` of the first iteration still
    /// to run.
    pub next_iter: usize,
    /// Pair count of the input library (sanity-checked against the resume
    /// input: a checkpoint is only valid for the data it was written from).
    pub num_pairs: usize,
    /// Barriers each rank had entered when the checkpoint committed
    /// (barrier counts are collective, hence rank-uniform). The
    /// fault-injection harness uses this to aim a kill *after* the commit.
    pub barriers_at_commit: u64,
    /// k of the checkpointed contig set.
    pub contig_k: usize,
    /// Replicated per-contig metadata, in id order (the shard entries are
    /// verified against it on restore).
    pub contig_meta: Vec<ContigMeta>,
    /// Read-localisation placement in rank-count-independent form
    /// (`ReadDistribution::targets`); `None` means the block distribution.
    pub targets: Option<Vec<u64>>,
    /// Read-store header when the run keeps reads distributed; `None` for
    /// the replicated-reads baseline (whose reads are the caller's input
    /// and need no checkpointing).
    pub read_header: Option<ReadStoreHeader>,
    /// Per-rank collective-conformance stamps `(ops, digest)` taken at the
    /// top of [`commit`]: the number of collective operations the rank had
    /// issued and the running digest over their descriptors. A conforming
    /// SPMD run produces identical stamps on every rank, so the decoder
    /// refuses a manifest whose stamps diverge — the writing run's
    /// collective schedule had already split when it checkpointed, and
    /// resuming from it would replay state of uncertain provenance.
    pub conformance: Vec<(u64, u64)>,
}

fn encode_manifest(m: &Manifest) -> Vec<(u32, Vec<u8>)> {
    let mut meta = Enc::new();
    meta.u64(m.fingerprint);
    meta.u64(m.ranks as u64);
    meta.u64(m.next_iter as u64);
    meta.u64(m.num_pairs as u64);
    meta.u64(m.barriers_at_commit);
    meta.u64(m.conformance.len() as u64);
    for &(ops, digest) in &m.conformance {
        meta.u64(ops);
        meta.u64(digest);
    }

    let mut ctgm = Enc::new();
    ctgm.u64(m.contig_k as u64);
    ctgm.u64(m.contig_meta.len() as u64);
    for cm in &m.contig_meta {
        ctgm.u32(cm.len);
        ctgm.f64(cm.depth);
    }

    let mut dist = Enc::new();
    match &m.targets {
        None => dist.u8(0),
        Some(targets) => {
            dist.u8(1);
            dist.u64(targets.len() as u64);
            for &t in targets {
                dist.u64(t);
            }
        }
    }

    let mut read = Enc::new();
    match &m.read_header {
        None => read.u8(0),
        Some(h) => {
            read.u8(1);
            read.bytes(h.name.as_bytes());
            read.u8(h.paired as u8);
            read.u64(h.insert_size as u64);
            read.u64(h.insert_sd as u64);
            read.u8(match h.orientation {
                PairOrientation::ForwardReverse => 0,
                PairOrientation::ReverseForward => 1,
            });
            read.u64(h.block_reads as u64);
            read.u64(h.lens.len() as u64);
            for &l in &h.lens {
                read.u32(l);
            }
        }
    }

    vec![
        (TAG_META, meta.buf),
        (TAG_CTGM, ctgm.buf),
        (TAG_DIST, dist.buf),
        (TAG_READ, read.buf),
    ]
}

fn decode_manifest(body: &[u8]) -> Result<Manifest, String> {
    let sections = read_sections(body)?;
    let find = |tag: u32| -> Result<&[u8], String> {
        sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| *p)
            .ok_or_else(|| {
                format!(
                    "manifest is missing section {:?}",
                    tag.to_be_bytes().map(|b| b as char)
                )
            })
    };

    let mut d = Dec::new(find(TAG_META)?);
    let fingerprint = d.u64()?;
    let ranks = d.u64()? as usize;
    let next_iter = d.u64()? as usize;
    let num_pairs = d.u64()? as usize;
    let barriers_at_commit = d.u64()?;
    let n_stamps = d.u64()? as usize;
    let mut conformance = Vec::with_capacity(n_stamps.min(1 << 20));
    for _ in 0..n_stamps {
        let ops = d.u64()?;
        let digest = d.u64()?;
        conformance.push((ops, digest));
    }
    d.done()?;
    if ranks == 0 {
        return Err("manifest declares zero writer ranks".to_string());
    }
    if let Some(&first) = conformance.first() {
        if let Some((skew, &stamp)) = conformance.iter().enumerate().find(|&(_, &s)| s != first) {
            return Err(format!(
                "checkpoint's collective schedule diverged before commit: rank 0 stamped \
                 (ops {}, digest {:#018x}) but rank {skew} stamped (ops {}, digest {:#018x}); \
                 refusing to resume from a non-conforming run",
                first.0, first.1, stamp.0, stamp.1
            ));
        }
    }

    let mut d = Dec::new(find(TAG_CTGM)?);
    let contig_k = d.u64()? as usize;
    let n = d.u64()? as usize;
    let mut contig_meta = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        contig_meta.push(ContigMeta {
            len: d.u32()?,
            depth: d.f64()?,
        });
    }
    d.done()?;

    let mut d = Dec::new(find(TAG_DIST)?);
    let targets = match d.u8()? {
        0 => None,
        1 => {
            let n = d.u64()? as usize;
            let mut t = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                t.push(d.u64()?);
            }
            Some(t)
        }
        other => return Err(format!("bad distribution flag {other}")),
    };
    d.done()?;

    let mut d = Dec::new(find(TAG_READ)?);
    let read_header = match d.u8()? {
        0 => None,
        1 => {
            let name = String::from_utf8(d.bytes()?.to_vec())
                .map_err(|_| "library name is not UTF-8".to_string())?;
            let paired = d.u8()? != 0;
            let insert_size = d.u64()? as usize;
            let insert_sd = d.u64()? as usize;
            let orientation = match d.u8()? {
                0 => PairOrientation::ForwardReverse,
                1 => PairOrientation::ReverseForward,
                other => return Err(format!("bad pair orientation {other}")),
            };
            let block_reads = d.u64()? as usize;
            let n = d.u64()? as usize;
            let mut lens = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                lens.push(d.u32()?);
            }
            Some(ReadStoreHeader {
                name,
                paired,
                insert_size,
                insert_sd,
                orientation,
                block_reads,
                lens,
            })
        }
        other => return Err(format!("bad read-header flag {other}")),
    };
    d.done()?;

    Ok(Manifest {
        fingerprint,
        ranks,
        next_iter,
        num_pairs,
        barriers_at_commit,
        contig_k,
        contig_meta,
        targets,
        read_header,
        conformance,
    })
}

/// Loads and validates one checkpoint's manifest.
pub fn load_manifest(ckpt_dir: &Path) -> Result<Manifest, String> {
    decode_manifest(&read_file(&ckpt_dir.join("manifest.bin"))?)
}

// ---------------------------------------------------------------------------
// Shards: one file per writer rank, holding its owned table entries.
// ---------------------------------------------------------------------------

/// One rank's slice of the sharded state: its owned contig sequences and
/// packed read blocks. Keys are global (contig id, block id), so a resuming
/// team at any rank count can re-route them through its own partitioners.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardData {
    pub contigs: Vec<(u64, PackedSeq)>,
    pub read_blocks: Vec<(u64, PackedReadBlock)>,
}

fn encode_packed_seq(e: &mut Enc, seq: &PackedSeq) {
    let (len, data, exceptions) = seq.to_parts();
    e.u64(len as u64);
    e.bytes(data);
    e.u64(exceptions.len() as u64);
    for &(pos, b) in exceptions {
        e.u32(pos);
        e.u8(b);
    }
}

fn decode_packed_seq(d: &mut Dec) -> Result<PackedSeq, String> {
    let len = d.u64()? as usize;
    let data = d.bytes()?.to_vec();
    let n = d.u64()? as usize;
    if data.len() != len.div_ceil(4) {
        return Err(format!(
            "packed sequence of {len} bases has {} code bytes",
            data.len()
        ));
    }
    let mut exceptions = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        exceptions.push((d.u32()?, d.u8()?));
    }
    let sorted = exceptions.windows(2).all(|w| w[0].0 < w[1].0)
        && exceptions.last().is_none_or(|&(p, _)| (p as usize) < len);
    if !sorted {
        return Err("exception list is unsorted or out of bounds".to_string());
    }
    Ok(PackedSeq::from_parts(len, data, exceptions))
}

fn encode_shard(shard: &ShardData) -> Vec<(u32, Vec<u8>)> {
    let mut sctg = Enc::new();
    sctg.u64(shard.contigs.len() as u64);
    for (id, seq) in &shard.contigs {
        sctg.u64(*id);
        encode_packed_seq(&mut sctg, seq);
    }

    let mut srdb = Enc::new();
    srdb.u64(shard.read_blocks.len() as u64);
    for (block_id, block) in &shard.read_blocks {
        srdb.u64(*block_id);
        srdb.u64(block.first_id);
        srdb.u64(block.reads.len() as u64);
        for read in &block.reads {
            let (seq, qual_runs) = read.to_parts();
            encode_packed_seq(&mut srdb, seq);
            srdb.u64(qual_runs.len() as u64);
            for &(q, run) in qual_runs {
                srdb.u8(q);
                srdb.u8(run);
            }
        }
    }

    vec![(TAG_SCTG, sctg.buf), (TAG_SRDB, srdb.buf)]
}

fn decode_shard(body: &[u8]) -> Result<ShardData, String> {
    let sections = read_sections(body)?;
    let find = |tag: u32| -> Result<&[u8], String> {
        sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| *p)
            .ok_or_else(|| {
                format!(
                    "shard is missing section {:?}",
                    tag.to_be_bytes().map(|b| b as char)
                )
            })
    };

    let mut d = Dec::new(find(TAG_SCTG)?);
    let n = d.u64()? as usize;
    let mut contigs = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let id = d.u64()?;
        contigs.push((id, decode_packed_seq(&mut d)?));
    }
    d.done()?;

    let mut d = Dec::new(find(TAG_SRDB)?);
    let n = d.u64()? as usize;
    let mut read_blocks = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let block_id = d.u64()?;
        let first_id = d.u64()?;
        let reads_n = d.u64()? as usize;
        let mut reads = Vec::with_capacity(reads_n.min(1 << 20));
        for _ in 0..reads_n {
            let seq = decode_packed_seq(&mut d)?;
            let runs_n = d.u64()? as usize;
            let mut qual_runs = Vec::with_capacity(runs_n.min(1 << 20));
            for _ in 0..runs_n {
                qual_runs.push((d.u8()?, d.u8()?));
            }
            let covered: usize = qual_runs.iter().map(|&(_, run)| run as usize).sum();
            if covered != seq.len() {
                return Err(format!(
                    "quality runs cover {covered} bases of a {}-base read",
                    seq.len()
                ));
            }
            reads.push(PackedRead::from_parts(seq, qual_runs));
        }
        read_blocks.push((block_id, PackedReadBlock { first_id, reads }));
    }
    d.done()?;

    Ok(ShardData {
        contigs,
        read_blocks,
    })
}

/// Loads and validates one writer rank's shard file.
pub fn load_shard(ckpt_dir: &Path, writer_rank: usize) -> Result<ShardData, String> {
    decode_shard(&read_file(
        &ckpt_dir.join(format!("shard_{writer_rank}.bin")),
    )?)
}

/// Loads the slice of a checkpoint's shard files that resuming rank `rank`
/// of `ranks` is responsible for: the writer's `writer_ranks` files are
/// block-partitioned over the new team, so every file is read by exactly
/// one resuming rank regardless of how the two team sizes compare.
pub fn load_shards_for_rank(
    ckpt_dir: &Path,
    rank: usize,
    ranks: usize,
    writer_ranks: usize,
) -> Result<ShardData, String> {
    let mut out = ShardData::default();
    for w in pgas::team::block_range_for(rank, ranks, writer_ranks) {
        let mut shard = load_shard(ckpt_dir, w)?;
        out.contigs.append(&mut shard.contigs);
        out.read_blocks.append(&mut shard.read_blocks);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Discovery and atomic commit.
// ---------------------------------------------------------------------------

/// The directory of a committed checkpoint for iteration boundary `iter`.
pub fn checkpoint_dir(dir: &Path, next_iter: usize) -> PathBuf {
    dir.join(format!("ckpt_{next_iter}"))
}

fn staging_dir(dir: &Path, next_iter: usize) -> PathBuf {
    dir.join(format!(".tmp_ckpt_{next_iter}"))
}

/// Finds the newest committed checkpoint in `dir` whose manifest parses,
/// passes every CRC and carries `fingerprint`. Staging directories (torn
/// writes) and checkpoints from other configurations are skipped silently;
/// a corrupt manifest disqualifies its checkpoint rather than the resume.
pub fn find_latest(dir: &Path, fingerprint: u64) -> Option<(Manifest, PathBuf)> {
    let entries = fs::read_dir(dir).ok()?;
    let mut iters: Vec<usize> = entries
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_prefix("ckpt_")?.parse().ok()
        })
        .collect();
    iters.sort_unstable();
    for iter in iters.into_iter().rev() {
        let path = checkpoint_dir(dir, iter);
        match load_manifest(&path) {
            Ok(m) if m.fingerprint == fingerprint && m.next_iter == iter => {
                return Some((m, path));
            }
            _ => {}
        }
    }
    None
}

/// **Collective** atomic commit of one checkpoint: rank 0 prepares the
/// staging directory, every rank writes its own shard file into it, and
/// rank 0 then writes the manifest (stamping the collective barrier count)
/// and renames the staging directory into place. Until the rename, the
/// checkpoint does not exist as far as [`find_latest`] is concerned; after
/// it, every file inside has already been written and synced.
pub fn commit(ctx: &Ctx, dir: &Path, mut manifest: Manifest, shard: &ShardData) {
    let stage = staging_dir(dir, manifest.next_iter);
    let target = checkpoint_dir(dir, manifest.next_iter);
    manifest.ranks = ctx.ranks();
    // Gather every rank's conformance stamp *before* the staging collectives
    // below perturb the op counts: each rank reads its own (ops, digest) at
    // the same point in the schedule and ships it to rank 0. The gather
    // itself is a collective, but it runs after the stamps were read, so the
    // stamps describe the application's schedule up to this commit.
    let (ops, digest) = ctx.team().conformance_stamp(ctx.rank());
    let mut outgoing: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); ctx.ranks()];
    outgoing[0].push((ctx.rank() as u64, ops, digest));
    let gathered = ctx.exchange(outgoing);
    if ctx.rank() == 0 {
        let mut stamps: Vec<(u64, u64, u64)> = gathered;
        stamps.sort_unstable_by_key(|&(rank, _, _)| rank);
        manifest.conformance = stamps.into_iter().map(|(_, o, d)| (o, d)).collect();
    }
    if ctx.rank() == 0 {
        if stage.exists() {
            fs::remove_dir_all(&stage)
                .unwrap_or_else(|e| panic!("checkpoint: clear stale staging dir: {e}"));
        }
        fs::create_dir_all(&stage)
            .unwrap_or_else(|e| panic!("checkpoint: create staging dir: {e}"));
    }
    ctx.barrier();
    let shard_path = stage.join(format!("shard_{}.bin", ctx.rank()));
    write_file_atomic(&shard_path, &encode_shard(shard))
        .unwrap_or_else(|e| panic!("checkpoint: {e}"));
    ctx.barrier();
    if ctx.rank() == 0 {
        // Stamp the rank-uniform barrier count as of this commit so a fault
        // harness can aim a kill strictly after the checkpoint exists.
        manifest.barriers_at_commit = ctx.barriers_entered();
        write_file_atomic(&stage.join("manifest.bin"), &encode_manifest(&manifest))
            .unwrap_or_else(|e| panic!("checkpoint: {e}"));
        if target.exists() {
            fs::remove_dir_all(&target)
                .unwrap_or_else(|e| panic!("checkpoint: clear old checkpoint: {e}"));
        }
        fs::rename(&stage, &target).unwrap_or_else(|e| panic!("checkpoint: commit rename: {e}"));
        expire_old_checkpoints(dir, keep_checkpoints());
    }
    ctx.barrier();
}

/// How many committed checkpoints [`commit`] retains, from `MHM_KEEP_CKPTS`
/// (clamped to at least 1 — the checkpoint just committed is never its own
/// sweep victim). Defaults to 3.
pub fn keep_checkpoints() -> usize {
    std::env::var("MHM_KEEP_CKPTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(3)
        .max(1)
}

/// Removes stale checkpoint state from `dir`: every leftover staging
/// directory (a torn write from a killed run — its iteration's commit either
/// never happened or happened through a later, complete staging pass) and
/// all but the newest `keep` committed `ckpt_*` directories. Runs on rank 0
/// only, strictly *after* the commit rename, so the newest checkpoint — the
/// one [`find_latest`] would hand a concurrent resume — is never a victim:
/// the sweep deletes only strictly older iterations. Removal errors are
/// ignored (a half-removed old checkpoint fails its CRC pass and is skipped
/// by discovery anyway).
pub fn expire_old_checkpoints(dir: &Path, keep: usize) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut committed: Vec<usize> = Vec::new();
    for entry in entries.flatten() {
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        if name.strip_prefix(".tmp_ckpt_").is_some() {
            let _ = fs::remove_dir_all(entry.path());
        } else if let Some(iter) = name.strip_prefix("ckpt_").and_then(|s| s.parse().ok()) {
            committed.push(iter);
        }
    }
    committed.sort_unstable();
    let keep = keep.max(1);
    if committed.len() > keep {
        for &iter in &committed[..committed.len() - keep] {
            let _ = fs::remove_dir_all(checkpoint_dir(dir, iter));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        Manifest {
            fingerprint: 0xDEADBEEFCAFEF00D,
            ranks: 3,
            next_iter: 1,
            num_pairs: 12,
            barriers_at_commit: 321,
            contig_k: 21,
            contig_meta: vec![
                ContigMeta {
                    len: 100,
                    depth: 12.5,
                },
                ContigMeta {
                    len: 37,
                    depth: 2.0,
                },
            ],
            targets: Some(vec![0, u64::MAX, 5, 1]),
            read_header: Some(ReadStoreHeader {
                name: "lib".to_string(),
                paired: true,
                insert_size: 280,
                insert_sd: 25,
                orientation: PairOrientation::ForwardReverse,
                block_reads: 4,
                lens: vec![90, 90, 88, 90],
            }),
            conformance: vec![(321, 0xFEED_FACE); 3],
        }
    }

    fn sample_shard() -> ShardData {
        let seq = PackedSeq::from_bytes(b"ACGTNACGTACG");
        let read = PackedRead::from_parts(PackedSeq::from_bytes(b"ACGT"), vec![(40, 3), (2, 1)]);
        ShardData {
            contigs: vec![(0, seq.clone()), (7, PackedSeq::from_bytes(b"TTT"))],
            read_blocks: vec![(
                3,
                PackedReadBlock {
                    first_id: 12,
                    reads: vec![read.clone(), read],
                },
            )],
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn manifest_round_trips() {
        for manifest in [
            sample_manifest(),
            Manifest {
                targets: None,
                read_header: None,
                contig_meta: Vec::new(),
                conformance: Vec::new(),
                ..sample_manifest()
            },
        ] {
            let dir = tempdir("manifest_rt");
            let path = dir.join("ck");
            fs::create_dir_all(&path).unwrap();
            write_file_atomic(&path.join("manifest.bin"), &encode_manifest(&manifest)).unwrap();
            assert_eq!(load_manifest(&path).unwrap(), manifest);
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn shard_round_trips() {
        let shard = sample_shard();
        let dir = tempdir("shard_rt");
        fs::create_dir_all(&dir).unwrap();
        write_file_atomic(&dir.join("shard_2.bin"), &encode_shard(&shard)).unwrap();
        assert_eq!(load_shard(&dir, 2).unwrap(), shard);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_flipped_bit_is_refused() {
        // Flip one bit at a time across the whole file: the load must fail
        // every single time (CRC, framing or magic), never deliver wrong
        // data, and never panic.
        let dir = tempdir("flip");
        fs::create_dir_all(&dir).unwrap();
        write_file_atomic(
            &dir.join("manifest.bin"),
            &encode_manifest(&sample_manifest()),
        )
        .unwrap();
        let clean = fs::read(dir.join("manifest.bin")).unwrap();
        assert!(load_manifest(&dir).is_ok());
        let step = (clean.len() / 97).max(1);
        for byte in (0..clean.len()).step_by(step) {
            let mut corrupt = clean.clone();
            corrupt[byte] ^= 0x10;
            fs::write(dir.join("manifest.bin"), &corrupt).unwrap();
            let loaded = decode_manifest(&read_file(&dir.join("manifest.bin")).unwrap_or_default());
            assert!(
                load_manifest(&dir).is_err() || loaded != Ok(sample_manifest()),
                "flipped byte {byte} went unnoticed"
            );
            assert!(
                load_manifest(&dir).is_err(),
                "flipped byte {byte} loaded anyway"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_is_refused() {
        let dir = tempdir("trunc");
        fs::create_dir_all(&dir).unwrap();
        write_file_atomic(&dir.join("shard_0.bin"), &encode_shard(&sample_shard())).unwrap();
        let clean = fs::read(dir.join("shard_0.bin")).unwrap();
        for cut in [0, 4, MAGIC.len() + 3, clean.len() / 2, clean.len() - 1] {
            fs::write(dir.join("shard_0.bin"), &clean[..cut]).unwrap();
            assert!(load_shard(&dir, 0).is_err(), "truncation at {cut} loaded");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn find_latest_skips_foreign_torn_and_stale_checkpoints() {
        let dir = tempdir("latest");
        let manifest = sample_manifest();
        // Committed checkpoints for iterations 0 and 1.
        for iter in [0usize, 1] {
            let path = checkpoint_dir(&dir, iter);
            fs::create_dir_all(&path).unwrap();
            let m = Manifest {
                next_iter: iter,
                ..manifest.clone()
            };
            write_file_atomic(&path.join("manifest.bin"), &encode_manifest(&m)).unwrap();
        }
        // A torn write: staging dir only, never renamed.
        fs::create_dir_all(staging_dir(&dir, 2)).unwrap();
        // A foreign checkpoint (different fingerprint) at a later iteration.
        let foreign = checkpoint_dir(&dir, 3);
        fs::create_dir_all(&foreign).unwrap();
        let m = Manifest {
            next_iter: 3,
            fingerprint: 1,
            ..manifest.clone()
        };
        write_file_atomic(&foreign.join("manifest.bin"), &encode_manifest(&m)).unwrap();
        // A corrupt later checkpoint.
        let corrupt = checkpoint_dir(&dir, 4);
        fs::create_dir_all(&corrupt).unwrap();
        fs::write(corrupt.join("manifest.bin"), b"garbage").unwrap();

        let (found, path) = find_latest(&dir, manifest.fingerprint).expect("checkpoint found");
        assert_eq!(found.next_iter, 1, "newest valid matching checkpoint wins");
        assert_eq!(path, checkpoint_dir(&dir, 1));
        assert!(find_latest(&dir, 0xF00).is_none(), "no fingerprint match");
        assert!(find_latest(Path::new("/nonexistent/nowhere"), 1).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn divergent_conformance_stamps_are_refused() {
        let mut manifest = sample_manifest();
        manifest.conformance[2] = (320, 0x0BAD_CAFE);
        let dir = tempdir("diverged");
        let path = dir.join("ck");
        fs::create_dir_all(&path).unwrap();
        write_file_atomic(&path.join("manifest.bin"), &encode_manifest(&manifest)).unwrap();
        let err = load_manifest(&path).unwrap_err();
        assert!(
            err.contains("collective schedule diverged") && err.contains("rank 2"),
            "unexpected diagnostic: {err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweeper_keeps_newest_checkpoints_and_clears_staging() {
        let dir = tempdir("sweep");
        let manifest = sample_manifest();
        for iter in 0..5usize {
            let path = checkpoint_dir(&dir, iter);
            fs::create_dir_all(&path).unwrap();
            let m = Manifest {
                next_iter: iter,
                ..manifest.clone()
            };
            write_file_atomic(&path.join("manifest.bin"), &encode_manifest(&m)).unwrap();
        }
        fs::create_dir_all(staging_dir(&dir, 5)).unwrap();

        expire_old_checkpoints(&dir, 2);
        assert!(!staging_dir(&dir, 5).exists(), "staging dir survived sweep");
        for iter in 0..3usize {
            assert!(!checkpoint_dir(&dir, iter).exists(), "ckpt_{iter} survived");
        }
        for iter in 3..5usize {
            assert!(checkpoint_dir(&dir, iter).exists(), "ckpt_{iter} swept");
        }
        // The checkpoint discovery would hand a resume is intact afterwards.
        let (found, _) = find_latest(&dir, manifest.fingerprint).expect("resume target intact");
        assert_eq!(found.next_iter, 4);

        // keep=0 is clamped: the newest checkpoint is never a sweep victim.
        expire_old_checkpoints(&dir, 0);
        assert!(checkpoint_dir(&dir, 4).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The commit-then-sweep order means a resume that called [`find_latest`]
    /// between two commits still loads a live directory: the sweep after
    /// commit `i+1` deletes only iterations older than the kept window, so
    /// with `keep >= 2` the checkpoint a racing resume just discovered is
    /// still on disk.
    #[test]
    fn resume_never_races_the_sweeper_within_the_kept_window() {
        let dir = tempdir("race");
        let manifest = sample_manifest();
        let commit_iter = |iter: usize| {
            let path = checkpoint_dir(&dir, iter);
            fs::create_dir_all(&path).unwrap();
            let m = Manifest {
                next_iter: iter,
                ..manifest.clone()
            };
            write_file_atomic(&path.join("manifest.bin"), &encode_manifest(&m)).unwrap();
            expire_old_checkpoints(&dir, 2);
        };
        commit_iter(0);
        commit_iter(1);
        // A resume discovers ckpt_1 ...
        let (found, path) = find_latest(&dir, manifest.fingerprint).unwrap();
        assert_eq!(found.next_iter, 1);
        // ... the writer commits iteration 2 (sweeping ckpt_0) ...
        commit_iter(2);
        // ... and the discovered checkpoint still loads.
        assert_eq!(load_manifest(&path).unwrap().next_iter, 1);
        assert!(!checkpoint_dir(&dir, 0).exists(), "oldest not swept");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_slices_cover_every_writer_file_exactly_once() {
        let dir = tempdir("slices");
        fs::create_dir_all(&dir).unwrap();
        let writer_ranks = 3;
        for w in 0..writer_ranks {
            let shard = ShardData {
                contigs: vec![(w as u64, PackedSeq::from_bytes(b"ACGT"))],
                read_blocks: Vec::new(),
            };
            write_file_atomic(&dir.join(format!("shard_{w}.bin")), &encode_shard(&shard)).unwrap();
        }
        for ranks in [1usize, 2, 3, 6] {
            let mut seen: Vec<u64> = Vec::new();
            for r in 0..ranks {
                let s = load_shards_for_rank(&dir, r, ranks, writer_ranks).unwrap();
                seen.extend(s.contigs.iter().map(|(id, _)| *id));
            }
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2], "ranks={ranks}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A unique temp directory under the target dir (no external tempfile
    /// crate; tests clean up after themselves).
    fn tempdir(tag: &str) -> PathBuf {
        let pid = std::process::id();
        let dir = std::env::temp_dir().join(format!("mhm_ckpt_test_{tag}_{pid}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }
}
