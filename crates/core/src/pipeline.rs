//! The MetaHipMer pipeline: iterative contig generation + scaffolding.

use crate::checkpoint;
use crate::config::AssemblyConfig;
use crate::local_assembly::extend_contigs_locally_ref;
use crate::timing::StageTimings;
use aligner::{
    align_reads_ref, build_seed_index_ref, localize_pairs, AlignmentSet, ReadDistribution,
};
use dbg::{
    build_graph, inject_contig_kmers_ref, kmer_analysis_from, merge_bubbles_and_remove_hair,
    prune_iteratively, traverse_contigs, ContigMeta, ContigSet, ContigStore, ContigsRef, PackedSeq,
    ThresholdPolicy,
};
use pgas::{Ctx, RankFault, StatsSnapshot, Team};
use readstore::{ReadStore, ReadsRef};
use rrna_hmm::RrnaDetector;
use scaffolding::{scaffold_ref, Scaffold, ScaffoldEntry, ScaffoldSet};
use seqio::{LibraryReads, ReadId, ReadLibrary};
use std::sync::Arc;
use std::time::Instant;

/// How the pipeline holds the current iteration's contigs between stages:
/// the replicated baseline keeps the full set on every rank; distributed
/// mode converts each freshly generated set into a sharded
/// [`dbg::ContigStore`] and drops the replica, so the downstream stages only
/// ever see O(total/ranks + cache) contig bytes per rank.
enum ContigsHolder {
    Local(ContigSet),
    Store(Arc<ContigStore>),
}

impl ContigsHolder {
    /// Collective: wraps a freshly produced (transiently replicated) contig
    /// set according to the configuration, recording the per-rank contig
    /// residency either way.
    fn wrap(ctx: &Ctx, cfg: &AssemblyConfig, set: ContigSet) -> ContigsHolder {
        if cfg.use_distributed_contigs {
            let store = ContigStore::build(ctx, &set, &cfg.contig_store_params());
            ContigsHolder::Store(store)
        } else {
            // The replicated baseline keeps every raw sequence byte resident
            // on every rank.
            ctx.record_contig_resident(set.total_bases());
            ContigsHolder::Local(set)
        }
    }

    fn as_ref(&self) -> ContigsRef<'_> {
        match self {
            ContigsHolder::Local(set) => ContigsRef::Local(set),
            ContigsHolder::Store(store) => ContigsRef::Store(store),
        }
    }

    fn is_empty(&self) -> bool {
        self.as_ref().is_empty()
    }

    /// Collective: the full contig set (cloned from the replica, or
    /// regathered from the shards) for the pipeline's output.
    fn materialize(&self, ctx: &Ctx) -> ContigSet {
        match self {
            ContigsHolder::Local(set) => set.clone(),
            ContigsHolder::Store(store) => store.materialize(ctx),
        }
    }
}

/// How the pipeline holds the input reads for the whole run: the replicated
/// baseline borrows the caller's full [`ReadLibrary`] on every rank; the
/// distributed mode packs it once into a block-sharded
/// [`readstore::ReadStore`] and every stage streams or fetches read blocks on
/// demand, bounding per-rank read residency by O(total/ranks + cache).
enum ReadsHolder<'a> {
    Local(&'a ReadLibrary),
    Store(Arc<ReadStore>),
}

impl<'a> ReadsHolder<'a> {
    /// Collective: wraps the input library according to the configuration,
    /// recording the per-rank read residency either way.
    fn wrap(ctx: &Ctx, cfg: &AssemblyConfig, library: &'a ReadLibrary) -> ReadsHolder<'a> {
        if cfg.use_distributed_reads {
            ReadsHolder::Store(ReadStore::build(ctx, library, &cfg.read_store_params()))
        } else {
            // The replicated baseline keeps every raw sequence, quality and
            // name byte of the input resident on every rank.
            let bytes: usize = library
                .reads
                .iter()
                .map(|r| r.seq.len() + r.qual.len() + r.name.len())
                .sum();
            ctx.record_read_resident(bytes);
            ReadsHolder::Local(library)
        }
    }

    fn as_ref(&self) -> ReadsRef<'_> {
        match self {
            ReadsHolder::Local(lib) => ReadsRef::Local(lib),
            ReadsHolder::Store(store) => ReadsRef::Store(store),
        }
    }

    /// Aligns `ids` (in order) against the current contigs, reading sequences
    /// by borrow from the replica or as a one-sided block stream from the
    /// store — no per-read clone either way.
    fn align(
        &self,
        ctx: &Ctx,
        ids: Vec<ReadId>,
        contigs: ContigsRef<'_>,
        params: &aligner::AlignParams,
    ) -> AlignmentSet {
        let index = build_seed_index_ref(ctx, contigs, params.seed_len);
        ctx.barrier();
        match self {
            ReadsHolder::Local(lib) => {
                let reads = ids.into_iter().map(|id| (id, lib.read(id)));
                align_reads_ref(ctx, reads, contigs, &index, params)
            }
            ReadsHolder::Store(store) => {
                align_reads_ref(ctx, store.stream(ctx, ids), contigs, &index, params)
            }
        }
    }
}

/// Everything a MetaHipMer run produces.
#[derive(Debug, Clone)]
pub struct AssemblyOutput {
    /// The final gap-closed scaffolds (the assembly).
    pub scaffolds: ScaffoldSet,
    /// The final contigs (before scaffolding).
    pub contigs: ContigSet,
    /// Per-stage `(name, max-seconds-across-ranks, summed communication)`.
    pub stages: Vec<(String, f64, StatsSnapshot)>,
    /// End-to-end wall-clock seconds (max across ranks).
    pub total_seconds: f64,
    /// Per-rank contigs processed during local assembly (load-balance signal).
    pub local_assembly_work: Vec<usize>,
}

impl AssemblyOutput {
    /// The assembly as plain sequences (input to `asm_metrics::evaluate`).
    pub fn sequences(&self) -> Vec<Vec<u8>> {
        self.scaffolds.sequences()
    }

    /// Seconds attributed to one stage.
    pub fn stage_seconds(&self, stage: &str) -> f64 {
        self.stages
            .iter()
            .find(|(n, _, _)| n == stage)
            .map(|(_, s, _)| *s)
            .unwrap_or(0.0)
    }

    /// Communication snapshot of one stage.
    pub fn stage_stats(&self, stage: &str) -> StatsSnapshot {
        self.stages
            .iter()
            .find(|(n, _, _)| n == stage)
            .map(|(_, _, s)| *s)
            .unwrap_or_default()
    }
}

/// The MetaHipMer assembler.
#[derive(Debug, Clone, Default)]
pub struct MetaHipMer {
    pub config: AssemblyConfig,
}

impl MetaHipMer {
    /// Creates an assembler with the given configuration.
    ///
    /// # Panics
    /// Panics with the [`AssemblyConfig::validate`] message if the
    /// configuration is inconsistent, so a bad field fails here by name
    /// instead of as an obscure panic mid-assembly.
    pub fn new(config: AssemblyConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid assembly configuration: {msg}");
        }
        MetaHipMer { config }
    }

    /// The HipMer (single-genome) configuration used as a Table I baseline:
    /// one k value, a global extension threshold, and none of the
    /// metagenome-specific passes.
    pub fn hipmer_mode(mut config: AssemblyConfig) -> Self {
        config.k_min = config.k_max;
        config.threshold = ThresholdPolicy::hipmer_default();
        config.bubble_merging = false;
        config.pruning = false;
        config.read_localization = false;
        MetaHipMer::new(config)
    }

    /// Assembles a read library on a team of ranks. This is the library-level
    /// entry point used by examples, tests and benches; it drives the SPMD
    /// region internally and returns rank 0's (identical) output.
    pub fn assemble(
        &self,
        team: &Arc<Team>,
        library: &ReadLibrary,
        rrna_consensus: Option<&[u8]>,
    ) -> AssemblyOutput {
        match self.try_assemble(team, library, rrna_consensus) {
            Ok(out) => out,
            Err(fault) => panic!("SPMD rank panicked: {fault}"),
        }
    }

    /// [`MetaHipMer::assemble`], but an injected rank fault (a
    /// [`pgas::FaultPlan`] armed on the team) surfaces as `Err` instead of a
    /// panic. With `checkpoint_dir` set, the state committed before the
    /// fault survives on disk, and a follow-up run with `resume` — on a team
    /// of *any* rank count — completes the assembly with byte-identical
    /// scaffolds. This is the entry point of the fault-injection harness.
    pub fn try_assemble(
        &self,
        team: &Arc<Team>,
        library: &ReadLibrary,
        rrna_consensus: Option<&[u8]>,
    ) -> Result<AssemblyOutput, RankFault> {
        let detector = rrna_consensus
            .filter(|c| !c.is_empty())
            .map(RrnaDetector::from_consensus);
        // The exchange-routing mode is per-team state, set outside the SPMD
        // region so every rank constructs its aggregators under it.
        team.set_hierarchical_exchange(self.config.use_hierarchical_exchange);
        let outputs = team.try_run(|ctx| self.assemble_rank(ctx, library, detector.as_ref()))?;
        Ok(outputs.into_iter().next().expect("at least one rank"))
    }

    /// The SPMD body: every rank calls this with its own context. Returns the
    /// same output on every rank.
    pub fn assemble_rank(
        &self,
        ctx: &Ctx,
        library: &ReadLibrary,
        rrna: Option<&RrnaDetector>,
    ) -> AssemblyOutput {
        let cfg = &self.config;
        let start = Instant::now();
        let mut timings = StageTimings::new();
        let num_pairs = if library.paired {
            library.num_pairs()
        } else {
            library.num_reads()
        };
        let mut distribution = ReadDistribution::block(num_pairs, ctx.ranks());
        let mut contigs: Option<ContigsHolder> = None;
        let mut last_alignments = AlignmentSet::default();
        let mut local_work = 0usize;
        let mut start_iter = 0usize;

        // With `resume` set, pick up from the newest checkpoint whose
        // configuration fingerprint matches. Discovery is per-rank but
        // deterministic (no writer runs concurrently), so every rank agrees
        // on the checkpoint before any collective call.
        let resume_from = if cfg.resume {
            cfg.checkpoint_dir
                .as_deref()
                .and_then(|dir| checkpoint::find_latest(dir, cfg.fingerprint()))
        } else {
            None
        };

        // The input reads are materialised exactly once for the whole run:
        // restored from checkpoint shards on resume, otherwise either packed
        // into the block-sharded read store (dropping per-rank residency to
        // O(total/ranks + cache)) or borrowed as the replicated baseline.
        let reads = if let Some((manifest, path)) = resume_from {
            let (reads, restored_contigs, restored_distribution) =
                timings.time(ctx, "checkpoint_restore", || {
                    self.restore_checkpoint(ctx, library, num_pairs, manifest, &path)
                });
            start_iter = restored_contigs.1;
            contigs = Some(restored_contigs.0);
            distribution = restored_distribution;
            reads
        } else {
            timings.time(ctx, "read_ingestion", || {
                ReadsHolder::wrap(ctx, cfg, library)
            })
        };

        let k_values = cfg.k_values();
        for (iter, &k) in k_values.iter().enumerate().skip(start_iter) {
            let my_read_ids: Vec<ReadId> = self.read_ids_of(ctx, library, &distribution);

            // --- 1. k-mer analysis ------------------------------------------
            // The store streams this rank's *owned* packed blocks (zero read
            // communication); the baseline streams id-keyed borrows. Either
            // partition yields the same global k-mer counts.
            let analysis = timings.time(ctx, "kmer_analysis", || match &reads {
                ReadsHolder::Local(lib) => {
                    let mut source = LibraryReads::new(lib, &my_read_ids);
                    kmer_analysis_from(ctx, &mut source, &cfg.analysis_params(k))
                }
                ReadsHolder::Store(store) => {
                    let mut source = store.owned_reads(ctx);
                    kmer_analysis_from(ctx, &mut source, &cfg.analysis_params(k))
                }
            });

            // --- 2. merge k-mers extracted from the previous iteration -------
            // (an owner-local pass over the sharded store in distributed mode)
            if let Some(prev) = &contigs {
                timings.time(ctx, "kmer_merging", || {
                    inject_contig_kmers_ref(
                        ctx,
                        &analysis.counts,
                        prev.as_ref(),
                        k,
                        cfg.min_kmer_count,
                    )
                });
            }

            // --- 3. de Bruijn graph traversal --------------------------------
            let (graph, traversed) = timings.time(ctx, "graph_traversal", || {
                let graph = build_graph(ctx, &analysis.counts, cfg.threshold);
                let set = traverse_contigs(ctx, &graph, k, &cfg.traversal_params());
                (graph, set)
            });

            // --- 4. bubble merging / hair removal + iterative pruning --------
            // The freshly traversed set is then sharded into the distributed
            // contig store (or kept replicated in baseline mode): everything
            // downstream reads contig sequences through that holder.
            let cleaned = timings.time(ctx, "bubble_pruning", || {
                let mut current = traversed;
                if cfg.bubble_merging {
                    current = merge_bubbles_and_remove_hair(ctx, &current, &graph, &cfg.bubble).0;
                }
                if cfg.pruning {
                    current = prune_iteratively(ctx, &current, &graph, &cfg.prune).0;
                }
                ContigsHolder::wrap(ctx, cfg, current)
            });

            // --- 5. read-to-contig alignment ----------------------------------
            let alignments = timings.time(ctx, "alignment", || {
                reads.align(ctx, my_read_ids, cleaned.as_ref(), &cfg.align)
            });

            // --- 6. local assembly (mer-walking) -------------------------------
            let is_last = iter + 1 == k_values.len();
            let extended = if cfg.local_assembly {
                let (set, work) = timings.time(ctx, "local_assembly", || {
                    let (set, work) = extend_contigs_locally_ref(
                        ctx,
                        cleaned.as_ref(),
                        &alignments,
                        reads.as_ref(),
                        &cfg.local,
                    );
                    (ContigsHolder::wrap(ctx, cfg, set), work)
                });
                local_work += work;
                set
            } else {
                cleaned
            };

            // --- 7. read localisation for the next iteration -------------------
            if cfg.read_localization && !is_last {
                distribution = timings.time(ctx, "read_localization", || {
                    localize_pairs(ctx, num_pairs, &alignments.alignments)
                });
            }
            last_alignments = alignments;
            contigs = Some(extended);

            // --- 8. checkpoint at the k-iteration boundary ---------------------
            // Everything the next iteration consumes is on disk after this:
            // a kill any time later loses at most the current iteration.
            if !is_last {
                if let Some(dir) = cfg.checkpoint_dir.clone() {
                    timings.time(ctx, "checkpoint_write", || {
                        self.write_checkpoint(
                            ctx,
                            &dir,
                            iter + 1,
                            num_pairs,
                            &reads,
                            contigs.as_ref().expect("contigs set this iteration"),
                            &distribution,
                        );
                    });
                }
            }
        }

        let final_contigs =
            contigs.unwrap_or_else(|| ContigsHolder::Local(ContigSet::new(cfg.k_max)));

        // --- Scaffolding -------------------------------------------------------
        // (the full contig set the output contract owes callers is regathered
        // exactly once per branch, after every stage has run against the
        // sharded store)
        let (scaffolds, final_contigs) = if cfg.scaffolding && !final_contigs.is_empty() {
            let scaffolds = timings.time(ctx, "scaffolding", || {
                // Scaffolding aligns the reads onto the *final* contigs; reuse
                // the last alignment round only if local assembly is disabled
                // (otherwise the contigs changed and must be re-aligned).
                let alignments = if cfg.local_assembly {
                    let ids = self.read_ids_of(ctx, library, &distribution);
                    reads.align(ctx, ids, final_contigs.as_ref(), &cfg.align)
                } else {
                    last_alignments.clone()
                };
                scaffold_ref(
                    ctx,
                    final_contigs.as_ref(),
                    &alignments,
                    reads.as_ref(),
                    rrna,
                    &cfg.scaffold,
                )
                .0
            });
            (scaffolds, final_contigs.materialize(ctx))
        } else {
            // Emit each contig as its own scaffold.
            let set = final_contigs.materialize(ctx);
            let scaffolds = ScaffoldSet {
                scaffolds: set
                    .contigs
                    .iter()
                    .map(|c| Scaffold {
                        id: c.id,
                        entries: vec![ScaffoldEntry {
                            contig: c.id,
                            forward: true,
                            gap_after: None,
                            suspended_after: None,
                        }],
                        seq: c.seq.clone(),
                    })
                    .collect(),
            };
            (scaffolds, set)
        };

        let stages = timings.reduce(ctx);
        let total_seconds = ctx.allreduce_max_f64(start.elapsed().as_secs_f64());
        let work_per_rank = {
            let mut outgoing: Vec<Vec<(usize, usize)>> = vec![Vec::new(); ctx.ranks()];
            outgoing[0] = vec![(ctx.rank(), local_work)];
            let gathered = ctx.exchange(outgoing);
            let per_rank = if ctx.rank() == 0 {
                let mut v = vec![0usize; ctx.ranks()];
                for (r, w) in gathered {
                    v[r] = w;
                }
                v
            } else {
                Vec::new()
            };
            ctx.broadcast(|| per_rank)
        };
        AssemblyOutput {
            scaffolds,
            contigs: final_contigs,
            stages,
            total_seconds,
            local_assembly_work: work_per_rank,
        }
    }

    /// **Collective**: exports this rank's slice of the cross-iteration
    /// state and commits checkpoint `ckpt_<next_iter>` atomically. Sharded
    /// holders export their owned table entries; the replicated baselines
    /// export this rank's block slice (reads are not checkpointed at all in
    /// replicated mode — they are the caller's input).
    #[allow(clippy::too_many_arguments)]
    fn write_checkpoint(
        &self,
        ctx: &Ctx,
        dir: &std::path::Path,
        next_iter: usize,
        num_pairs: usize,
        reads: &ReadsHolder<'_>,
        contigs: &ContigsHolder,
        distribution: &ReadDistribution,
    ) {
        let cfg = &self.config;
        let (contig_k, contig_meta, contig_entries) = match contigs {
            ContigsHolder::Store(store) => {
                let meta: Vec<ContigMeta> = (0..store.num_contigs() as u64)
                    .map(|id| store.meta(id).expect("meta table covers every id"))
                    .collect();
                (store.k(), meta, store.map().local_entries(ctx))
            }
            ContigsHolder::Local(set) => {
                let meta = set
                    .contigs
                    .iter()
                    .map(|c| ContigMeta {
                        len: c.len() as u32,
                        depth: c.depth,
                    })
                    .collect();
                let entries = set.contigs[ctx.block_range(set.contigs.len())]
                    .iter()
                    .map(|c| (c.id, PackedSeq::from_bytes(&c.seq)))
                    .collect();
                (set.k, meta, entries)
            }
        };
        let (read_header, read_blocks) = match reads {
            ReadsHolder::Store(store) => (Some(store.header()), store.map().local_entries(ctx)),
            ReadsHolder::Local(_) => (None, Vec::new()),
        };
        let manifest = checkpoint::Manifest {
            fingerprint: cfg.fingerprint(),
            ranks: ctx.ranks(),
            next_iter,
            num_pairs,
            barriers_at_commit: 0, // stamped by commit
            contig_k,
            contig_meta,
            targets: (!distribution.targets.is_empty()).then(|| distribution.targets.clone()),
            read_header,
            conformance: Vec::new(), // stamped by commit
        };
        let shard = checkpoint::ShardData {
            contigs: contig_entries,
            read_blocks,
        };
        checkpoint::commit(ctx, dir, manifest, &shard);
    }

    /// **Collective**: rebuilds the cross-iteration state from a committed
    /// checkpoint, re-partitioning every shard for this team's rank count.
    /// Returns the reads holder, `(contigs, next_iter)` and the read
    /// distribution — everything `assemble_rank`'s loop needs to continue
    /// exactly where the writer stopped.
    fn restore_checkpoint<'a>(
        &self,
        ctx: &Ctx,
        library: &'a ReadLibrary,
        num_pairs: usize,
        manifest: checkpoint::Manifest,
        path: &std::path::Path,
    ) -> (ReadsHolder<'a>, (ContigsHolder, usize), ReadDistribution) {
        let cfg = &self.config;
        assert_eq!(
            manifest.num_pairs,
            num_pairs,
            "checkpoint at {} was written for a different input library",
            path.display()
        );
        let shard = checkpoint::load_shards_for_rank(path, ctx.rank(), ctx.ranks(), manifest.ranks)
            .unwrap_or_else(|e| panic!("checkpoint restore from {}: {e}", path.display()));

        let reads = match manifest.read_header {
            Some(header) => ReadsHolder::Store(ReadStore::restore(
                ctx,
                header,
                &cfg.read_store_params(),
                shard.read_blocks,
            )),
            // Replicated baseline: the reads are the caller's input.
            None => ReadsHolder::wrap(ctx, cfg, library),
        };

        let contigs = if cfg.use_distributed_contigs {
            ContigsHolder::Store(ContigStore::restore(
                ctx,
                manifest.contig_k,
                manifest.contig_meta,
                &cfg.contig_store_params(),
                shard.contigs,
            ))
        } else {
            // Replicated baseline: route the shard entries through a
            // transient hash-partitioned store, regather the full set on
            // every rank, and drop the store.
            let params = dbg::ContigStoreParams {
                balanced: false,
                ..cfg.contig_store_params()
            };
            let store = ContigStore::restore(
                ctx,
                manifest.contig_k,
                manifest.contig_meta,
                &params,
                shard.contigs,
            );
            let set = store.materialize(ctx);
            ctx.record_contig_resident(set.total_bases());
            ContigsHolder::Local(set)
        };

        let distribution = match manifest.targets {
            Some(targets) => ReadDistribution::from_targets(targets, ctx.ranks()),
            None => ReadDistribution::block(num_pairs, ctx.ranks()),
        };
        (reads, (contigs, manifest.next_iter), distribution)
    }

    fn read_ids_of(
        &self,
        ctx: &Ctx,
        library: &ReadLibrary,
        distribution: &ReadDistribution,
    ) -> Vec<ReadId> {
        if library.paired {
            distribution.read_ids_of(ctx.rank())
        } else {
            distribution.pairs_of(ctx.rank()).to_vec()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_metrics::{evaluate, EvalParams};
    use mgsim::{CommunityParams, ReadSimParams};
    use pgas::Team;

    /// A small two-genome community assembled end to end.
    fn small_dataset(seed: u64) -> (seqio::ReferenceSet, ReadLibrary, Vec<u8>) {
        let (refs, consensus) = mgsim::generate_community(&CommunityParams {
            num_taxa: 2,
            genome_len_range: (4_000, 5_000),
            abundance_sigma: 0.4,
            strain_variants: 0,
            rrna_len: 300,
            repeats_per_genome: 1,
            repeat_len: 120,
            seed,
            ..Default::default()
        });
        let reads = mgsim::simulate_reads(
            &refs,
            &ReadSimParams {
                read_len: 90,
                insert_size: 280,
                insert_sd: 25,
                error_rate: 0.003,
                seed: seed + 1,
                ..Default::default()
            }
            .with_target_coverage(&refs, 22.0),
        );
        (refs, reads, consensus)
    }

    #[test]
    fn end_to_end_assembly_recovers_most_of_the_community() {
        let (refs, library, consensus) = small_dataset(41);
        let cfg = AssemblyConfig::small_test();
        let mhm = MetaHipMer::new(cfg);
        let team = Team::single_node(4);
        let out = mhm.assemble(&team, &library, Some(&consensus));
        assert!(!out.scaffolds.is_empty(), "no scaffolds produced");
        let report = evaluate(
            &out.sequences(),
            &refs,
            &EvalParams {
                min_block: 200,
                length_thresholds: vec![1_000, 2_000],
                ..Default::default()
            },
        );
        assert!(
            report.genome_fraction > 0.85,
            "genome fraction too low: {} ({})",
            report.genome_fraction,
            report.summary_line()
        );
        assert!(
            report.misassemblies <= 2,
            "too many misassemblies: {}",
            report.misassemblies
        );
        // Stage accounting covers the whole pipeline.
        assert!(out.stage_seconds("kmer_analysis") > 0.0);
        assert!(out.stage_seconds("alignment") > 0.0);
        assert!(out.stage_seconds("scaffolding") > 0.0);
        assert!(out.total_seconds > 0.0);
        assert_eq!(out.local_assembly_work.len(), 4);
    }

    #[test]
    fn assembly_is_rank_count_invariant() {
        let (_refs, library, consensus) = small_dataset(43);
        let mut cfg = AssemblyConfig::small_test();
        // Read localisation changes which rank aligns which read (not the
        // result); keep it on to exercise the path.
        cfg.local_assembly = false; // keep the comparison strict and fast
        let mhm = MetaHipMer::new(cfg);
        let out1 = mhm.assemble(&Team::single_node(1), &library, Some(&consensus));
        let out3 = mhm.assemble(&Team::single_node(3), &library, Some(&consensus));
        let mut seqs1 = out1.sequences();
        let mut seqs3 = out3.sequences();
        seqs1.sort();
        seqs3.sort();
        assert_eq!(seqs1, seqs3, "assembly must not depend on the rank count");
    }

    #[test]
    fn iterative_multi_k_matches_single_k_on_easy_data() {
        // On a small, evenly covered community a single small k already
        // assembles everything, so the iterative schedule must not *hurt*;
        // the benefit of multiple k values on uneven-coverage communities is
        // demonstrated by the threshold/iteration ablation benches instead.
        let (_refs, library, consensus) = small_dataset(47);
        let multi = MetaHipMer::new(AssemblyConfig::small_test());
        let single = MetaHipMer::new(AssemblyConfig {
            k_max: 21,
            ..AssemblyConfig::small_test()
        });
        let team = Team::single_node(2);
        let out_multi = multi.assemble(&team, &library, Some(&consensus));
        let out_single = single.assemble(&team, &library, Some(&consensus));
        let (multi_n50, single_n50) = (out_multi.scaffolds.n50(), out_single.scaffolds.n50());
        assert!(
            multi_n50 as f64 >= 0.9 * single_n50 as f64,
            "multi-k N50 {multi_n50} much worse than single-k N50 {single_n50}"
        );
        assert!(
            out_multi.scaffolds.total_bases() as f64
                >= 0.9 * out_single.scaffolds.total_bases() as f64
        );
    }

    #[test]
    fn supermer_routing_does_not_change_the_assembly() {
        // The supermer-routed single-pass k-mer analysis must be a pure
        // communication optimisation: toggling it changes how observations
        // travel (and who owns which k-mer), never the final scaffolds.
        let (_refs, library, consensus) = small_dataset(53);
        let mut on = AssemblyConfig::small_test();
        on.use_supermers = true;
        let mut off = on.clone();
        off.use_supermers = false;
        let team = Team::single_node(3);
        let out_on = MetaHipMer::new(on).assemble(&team, &library, Some(&consensus));
        let out_off = MetaHipMer::new(off).assemble(&team, &library, Some(&consensus));
        let mut seqs_on = out_on.sequences();
        let mut seqs_off = out_off.sequences();
        seqs_on.sort();
        seqs_off.sort();
        assert_eq!(
            seqs_on, seqs_off,
            "supermer routing must be byte-identical to the per-kmer baseline"
        );
        // And it must actually save k-mer-analysis wire bytes.
        let on_bytes = out_on.stage_stats("kmer_analysis").bytes_sent;
        let off_bytes = out_off.stage_stats("kmer_analysis").bytes_sent;
        assert!(
            on_bytes * 4 <= off_bytes,
            "expected >=4x byte saving, got {on_bytes} vs {off_bytes}"
        );
        assert!(out_on.stage_stats("kmer_analysis").supermer_bytes > 0);
    }

    #[test]
    fn distributed_read_store_does_not_change_the_assembly() {
        // The block-sharded read store is a pure memory optimisation: the
        // same reads reach every stage (streamed, fetched one-sided, or
        // pooled collectively instead of borrowed from a replica), so the
        // scaffolds must be byte-identical to the replicated baseline at any
        // rank count.
        let (_refs, library, consensus) = small_dataset(61);
        let on = AssemblyConfig::small_test();
        assert!(on.use_distributed_reads, "store must be the default");
        let mut off = on.clone();
        off.use_distributed_reads = false;
        for ranks in [1usize, 3] {
            let team_on = Team::single_node(ranks);
            let team_off = Team::single_node(ranks);
            let out_on = MetaHipMer::new(on.clone()).assemble(&team_on, &library, Some(&consensus));
            let out_off =
                MetaHipMer::new(off.clone()).assemble(&team_off, &library, Some(&consensus));
            let mut seqs_on = out_on.sequences();
            let mut seqs_off = out_off.sequences();
            seqs_on.sort();
            seqs_off.sort();
            assert_eq!(
                seqs_on, seqs_off,
                "read-store mode must not change the assembly at {ranks} ranks"
            );
            // Residency is recorded in both modes; the store only ever holds
            // packed bytes, so it must come in under the replica.
            let stats_on = team_on.stats_total();
            let stats_off = team_off.stats_total();
            assert!(stats_on.read_bytes_resident > 0);
            assert!(stats_off.read_bytes_resident > 0);
            assert!(stats_on.read_bytes_resident < stats_off.read_bytes_resident);
            if ranks > 1 {
                assert!(
                    stats_on.read_fetch_bytes > 0,
                    "a multi-rank store run must fetch foreign read blocks"
                );
            }
        }
    }

    #[test]
    fn hierarchical_exchange_does_not_change_the_assembly() {
        // Two-level routing is a pure transport optimisation: same scaffolds,
        // same off-node payload bytes (every byte crosses the interconnect
        // exactly once either way), fewer off-node messages.
        let (_refs, library, consensus) = small_dataset(59);
        let mut cfg = AssemblyConfig::small_test();
        cfg.local_assembly = false; // keep the comparison fast
        cfg.ranks_per_node = 2;
        cfg.use_hierarchical_exchange = true;
        let mut flat_cfg = cfg.clone();
        flat_cfg.use_hierarchical_exchange = false;
        let hier_team = cfg.team(4);
        let flat_team = flat_cfg.team(4);
        let out_hier = MetaHipMer::new(cfg).assemble(&hier_team, &library, Some(&consensus));
        let out_flat = MetaHipMer::new(flat_cfg).assemble(&flat_team, &library, Some(&consensus));
        let mut seqs_hier = out_hier.sequences();
        let mut seqs_flat = out_flat.sequences();
        seqs_hier.sort();
        seqs_flat.sort();
        assert_eq!(
            seqs_hier, seqs_flat,
            "node-leader routing must be byte-identical to the flat exchange"
        );
        let hs = hier_team.stats_total();
        let fs = flat_team.stats_total();
        assert_eq!(
            hs.off_node_bytes, fs.off_node_bytes,
            "off-node payload bytes are mode-independent"
        );
        assert!(
            hs.off_node_msgs < fs.off_node_msgs,
            "expected fewer off-node messages: hier={} flat={}",
            hs.off_node_msgs,
            fs.off_node_msgs
        );
    }

    #[test]
    fn hipmer_mode_disables_metagenome_passes() {
        let mhm = MetaHipMer::hipmer_mode(AssemblyConfig::small_test());
        assert_eq!(mhm.config.k_values().len(), 1);
        assert!(!mhm.config.bubble_merging);
        assert!(!mhm.config.pruning);
        assert!(matches!(
            mhm.config.threshold,
            ThresholdPolicy::Global { .. }
        ));
    }
}
