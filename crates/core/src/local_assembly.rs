//! Local assembly: mer-walking contig extension with dynamic work stealing
//! (§II-G).
//!
//! For every contig, the reads that align near its ends (plus mates of
//! aligned reads that themselves did not align, projected outward by the
//! library insert size) are gathered into a local pool. The contig end is then
//! extended base by base: at each step the pool is scanned for reads whose
//! last `m` assembled bases occur in them, and the bases observed immediately
//! after form votes. A unanimous-enough vote extends the contig; a conflicted
//! vote *upshifts* the mer size `m` (more context disambiguates repeats); no
//! votes *downshift* it (less context rescues thin coverage). The walk
//! terminates when it encounters a fork after downshifting or a dead end after
//! upshifting, as in the paper.
//!
//! Because the cost of a walk is unpredictable, contigs are dealt to ranks in
//! blocks through the shared atomic counter of [`pgas::DynamicBlocks`].

use aligner::AlignmentSet;
use dbg::{ContigSet, ContigsRef};
use dht::{bulk_merge, DistMap, FxHashMap};
use pgas::{Ctx, DynamicBlocks};
use readstore::ReadsRef;
use seqio::alphabet::revcomp;
use seqio::{ReadId, ReadLibrary};
use std::sync::Arc;

/// Parameters of local assembly.
#[derive(Debug, Clone, Copy)]
pub struct LocalAssemblyParams {
    /// Initial mer size used for walking.
    pub mer_size: usize,
    /// Step L by which the mer size is shifted up/down.
    pub shift: usize,
    /// Smallest mer size before a downshift terminates the walk.
    pub min_mer: usize,
    /// Largest mer size before an upshift terminates the walk.
    pub max_mer: usize,
    /// Minimum votes for an extension base to be accepted.
    pub min_votes: usize,
    /// Maximum number of contradicting votes tolerated for an extension.
    pub max_contradictions: usize,
    /// Maximum bases added per contig end (safety bound).
    pub max_extension: usize,
    /// Reads whose alignment ends within this distance of a contig end (or
    /// whose projected mate lands beyond it) join the end's read pool.
    pub end_window: usize,
    /// Work-stealing block size (contigs per grab).
    pub block_size: usize,
    /// Aggregated-lookup batch size for pool-table fetches: `> 1` fetches a
    /// grabbed block's pools in one aggregated message pair per owner instead
    /// of one fine-grained read per contig; `1` keeps the per-contig reads.
    pub lookup_batch: usize,
}

impl Default for LocalAssemblyParams {
    fn default() -> Self {
        LocalAssemblyParams {
            mer_size: 19,
            shift: 4,
            min_mer: 11,
            max_mer: 33,
            min_votes: 2,
            max_contradictions: 1,
            max_extension: 400,
            end_window: 150,
            block_size: 16,
            lookup_batch: 4096,
        }
    }
}

/// Extends every contig of a replicated set at both ends. Collective.
pub fn extend_contigs_locally(
    ctx: &Ctx,
    contigs: &ContigSet,
    alignments: &AlignmentSet,
    library: &ReadLibrary,
    params: &LocalAssemblyParams,
) -> (ContigSet, usize) {
    extend_contigs_locally_ref(
        ctx,
        ContigsRef::Local(contigs),
        alignments,
        ReadsRef::Local(library),
        params,
    )
}

/// Extends every contig at both ends using locally gathered reads. Collective.
/// Returns the extended contig set (identical on every rank) and the per-rank
/// number of contigs processed (the Figure-5 load-balance signal).
///
/// Against the distributed contig store, a grabbed block's contig sequences
/// travel in the same kind of *one-sided* aggregated batch as its read pools
/// ([`dbg::ContigReader::get_many_onesided`]) — the steal loop cannot reach a
/// collective in lockstep — so the walks themselves stay communication-free.
///
/// Against the distributed *read* store, pool membership is decided from the
/// replicated length table alone; the sequences of pool members (aligned
/// reads near contig ends plus their projected mates) are then fetched in one
/// collective aggregated round before the steal loop starts, so the loop
/// itself touches no read storage.
pub fn extend_contigs_locally_ref(
    ctx: &Ctx,
    contigs: ContigsRef<'_>,
    alignments: &AlignmentSet,
    reads: ReadsRef<'_>,
    params: &LocalAssemblyParams,
) -> (ContigSet, usize) {
    // ---- Decide pool membership from metadata only --------------------------
    // Each entry is one pool push: (contig, read id, orientation). Pool order
    // must be deterministic and identical to the replicated baseline's, so
    // decisions are recorded in alignment order before any sequence bytes
    // move.
    let mut entries: Vec<(u64, ReadId, bool)> = Vec::new();
    for a in &alignments.alignments {
        let Some(contig_len) = contigs.len_of(a.contig) else {
            continue;
        };
        let read_len = reads.len_of(a.read_id);
        let near_head = a.contig_offset < params.end_window as i64;
        let near_tail =
            a.contig_offset + read_len as i64 > contig_len as i64 - params.end_window as i64;
        if !(near_head || near_tail) {
            continue;
        }
        entries.push((a.contig, a.read_id, a.forward));
        // Project the unaligned mate outward: if the mate did not align to this
        // contig it likely lies in the unassembled flank, so add it (in the
        // orientation implied by the library) to the pool as well.
        if reads.paired() {
            if let Some(mate_id) = reads.mate_of(a.read_id) {
                if !alignments
                    .alignments
                    .iter()
                    .any(|m| m.read_id == mate_id && m.contig == a.contig)
                {
                    // FR library: the mate points back toward the read, so in
                    // contig orientation it appears reverse-complemented
                    // relative to the aligned read's orientation.
                    entries.push((a.contig, mate_id, !a.forward));
                }
            }
        }
    }

    // ---- Fetch pool member sequences, then build the pools ------------------
    // Distributed read store: one collective aggregated fetch for every pool
    // member this rank named (block-deduplicated); the replicated baseline
    // borrows straight from the library. Collective — every rank reaches this
    // point with its own (possibly empty) id set.
    let fetched: FxHashMap<ReadId, seqio::Read> = match reads {
        ReadsRef::Local(_) => FxHashMap::default(),
        ReadsRef::Store(store) => {
            let ids: Vec<ReadId> = entries.iter().map(|&(_, id, _)| id).collect();
            store.reader(ctx).fetch_reads(ctx, &ids, false)
        }
    };
    let seq_of = |id: ReadId| -> &[u8] {
        match reads {
            ReadsRef::Local(lib) => &lib.read(id).seq,
            ReadsRef::Store(_) => &fetched.get(&id).expect("pool read fetched").seq,
        }
    };
    let mut pools: FxHashMap<u64, Vec<Vec<u8>>> = FxHashMap::default();
    for &(contig, id, forward) in &entries {
        pools
            .entry(contig)
            .or_default()
            .push(oriented_seq(seq_of(id), forward));
    }
    drop(entries);

    // ---- Store each contig's read pool in a global hash table ----------------
    // "Each thread reads a portion of the reads file, and stores the reads into
    // a global hash table. Then each thread processes a local subset of
    // contigs, and extracts the reads relevant to each contig to local
    // storage." (§II-G). The pool table is a distributed hash table populated
    // with the usual aggregated update-only phase.
    let ranks = ctx.ranks();
    let pool_table: Arc<DistMap<u64, Vec<Vec<u8>>>> = DistMap::shared(ctx);
    bulk_merge(ctx, &pool_table, pools, 1024, |a, mut b| a.append(&mut b));

    // ---- Walk contigs with dynamic work stealing ----------------------------
    // Once a contig's reads are extracted to local storage the walk itself
    // needs no communication; blocks of contigs are grabbed through the shared
    // atomic counter so ranks with cheap walks steal from slower ones. A
    // grabbed block's read pools — and, with a distributed contig store, its
    // contig sequences — are fetched with one *one-sided* aggregated batch
    // per block (the steal loop cannot reach a collective in lockstep, so the
    // two-sided `get_many` is not usable here) instead of one fine-grained
    // read per contig.
    let blocks = ctx.share(|| DynamicBlocks::new(contigs.num_contigs(), params.block_size));
    let mut reader = contigs.store().map(|s| s.reader(ctx));
    let mut extended_local: Vec<(u64, Vec<u8>, f64)> = Vec::new();
    let mut processed = 0usize;
    let mut first = true;
    while let Some(range) = blocks.next_block(ctx, first) {
        first = false;
        // Contig ids are dense (`ContigSet::from_sequences` numbers them
        // 0..n in order), so the block range is the id range.
        let ids: Vec<u64> = range.clone().map(|idx| idx as u64).collect();
        let pools: Vec<Option<Vec<Vec<u8>>>> = if params.lookup_batch > 1 {
            pool_table.get_many_onesided(ctx, &ids)
        } else {
            ids.iter()
                .map(|id| pool_table.get_cloned(ctx, id))
                .collect()
        };
        let block_seqs: Option<Vec<Vec<u8>>> = reader.as_mut().map(|reader| {
            let fetched = if params.lookup_batch > 1 {
                reader.get_many_onesided(ctx, &ids)
            } else {
                ids.iter().map(|id| reader.get(ctx, *id)).collect()
            };
            fetched
                .into_iter()
                .map(|p| p.expect("contig present in store").unpack())
                .collect()
        });
        for ((j, idx), pool) in range.enumerate().zip(pools) {
            let id = idx as u64;
            processed += 1;
            let pool = pool.unwrap_or_default();
            let seq: &[u8] = match (&contigs, &block_seqs) {
                (ContigsRef::Local(set), _) => &set.contigs[idx].seq,
                (ContigsRef::Store(_), Some(seqs)) => &seqs[j],
                (ContigsRef::Store(_), None) => unreachable!("store sources fetch blocks"),
            };
            let depth = contigs.depth_of(id).expect("contig exists");
            let new_seq = extend_one(seq, &pool, params);
            extended_local.push((id, new_seq, depth));
        }
    }
    ctx.barrier();

    // ---- Gather the extended contigs into a new deterministic set ------------
    let mut out: Vec<Vec<(u64, Vec<u8>, f64)>> = vec![Vec::new(); ranks];
    out[0] = extended_local;
    let gathered = ctx.exchange(out);
    let set = if ctx.rank() == 0 {
        ContigSet::from_sequences(
            contigs.k(),
            gathered
                .into_iter()
                .map(|(_, seq, depth)| (seq, depth))
                .collect(),
        )
    } else {
        ContigSet::new(contigs.k())
    };
    (ctx.broadcast(|| set), processed)
}

fn oriented_seq(seq: &[u8], forward: bool) -> Vec<u8> {
    if forward {
        seq.to_vec()
    } else {
        revcomp(seq)
    }
}

/// Extends one contig sequence at both ends using its read pool.
fn extend_one(contig_seq: &[u8], pool: &[Vec<u8>], params: &LocalAssemblyParams) -> Vec<u8> {
    if pool.is_empty() {
        return contig_seq.to_vec();
    }
    // Right (tail) extension on the forward strand, then left extension done as
    // a right extension of the reverse complement.
    let mut seq = contig_seq.to_vec();
    let right = walk_extension(&seq, pool, params);
    seq.extend_from_slice(&right);
    let mut rc = revcomp(&seq);
    let rc_pool: Vec<Vec<u8>> = pool.iter().map(|r| revcomp(r)).collect();
    let left = walk_extension(&rc, &rc_pool, params);
    rc.extend_from_slice(&left);
    revcomp(&rc)
}

/// Mer-walks rightwards from the end of `seq`, returning the appended bases.
fn walk_extension(seq: &[u8], pool: &[Vec<u8>], params: &LocalAssemblyParams) -> Vec<u8> {
    let mut added: Vec<u8> = Vec::new();
    let mut mer = params.mer_size;
    let mut shifted_up = false;
    let mut shifted_down = false;
    while added.len() < params.max_extension {
        // Current context: the last `mer` bases of the assembled sequence.
        let ctx_len = seq.len() + added.len();
        if ctx_len < mer {
            break;
        }
        let mut context: Vec<u8> = Vec::with_capacity(mer);
        let from_seq = mer.min(ctx_len - added.len().min(ctx_len));
        let _ = from_seq;
        if added.len() >= mer {
            context.extend_from_slice(&added[added.len() - mer..]);
        } else {
            let need_from_seq = mer - added.len();
            context.extend_from_slice(&seq[seq.len() - need_from_seq..]);
            context.extend_from_slice(&added);
        }
        // Vote on the next base.
        let mut votes = [0usize; 4];
        for read in pool {
            if read.len() <= mer {
                continue;
            }
            let mut start = 0usize;
            while let Some(pos) = find_sub(&read[start..], &context) {
                let abs = start + pos;
                if abs + mer < read.len() {
                    if let Some(code) = seqio::alphabet::encode_base(read[abs + mer]) {
                        votes[code as usize] += 1;
                    }
                }
                start = abs + 1;
                if start >= read.len() {
                    break;
                }
            }
        }
        let total: usize = votes.iter().sum();
        let (best, best_votes) = votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .map(|(i, &v)| (i, v))
            .expect("four vote slots");
        let contradictions = total - best_votes;
        if total == 0 {
            // Dead end: downshift, or stop if we already upshifted / hit bottom.
            if shifted_up || mer <= params.min_mer {
                break;
            }
            mer = mer.saturating_sub(params.shift).max(params.min_mer);
            shifted_down = true;
            continue;
        }
        if best_votes >= params.min_votes && contradictions <= params.max_contradictions {
            added.push(seqio::alphabet::decode_base(best as u8));
            continue;
        }
        // Fork: upshift, or stop if we already downshifted / hit the ceiling.
        if shifted_down || mer >= params.max_mer {
            break;
        }
        mer = (mer + params.shift).min(params.max_mer);
        shifted_up = true;
    }
    added
}

/// Naive substring search (pools and contexts are tiny).
fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligner::Alignment;
    use pgas::Team;
    use seqio::Read;

    fn genome(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                b"ACGT"[(state % 4) as usize]
            })
            .collect()
    }

    #[test]
    fn walk_extension_recovers_truncated_tail() {
        let g = genome(300, 5);
        let contig_end = &g[..200];
        // Reads covering the region around position 180..280.
        let pool: Vec<Vec<u8>> = (150..230)
            .step_by(7)
            .map(|i| g[i..i + 60].to_vec())
            .collect();
        let added = walk_extension(contig_end, &pool, &LocalAssemblyParams::default());
        assert!(!added.is_empty(), "no extension recovered");
        // Everything added must match the true genome continuation.
        let truth = &g[200..200 + added.len()];
        assert_eq!(added.as_slice(), truth);
    }

    #[test]
    fn walk_stops_without_reads() {
        let g = genome(200, 6);
        let added = walk_extension(&g, &[], &LocalAssemblyParams::default());
        assert!(added.is_empty());
    }

    #[test]
    fn walk_stops_at_genuine_fork() {
        let g = genome(200, 7);
        let contig_end = &g[..120];
        // Two divergent continuations after position 140, both well covered:
        // a fork the walk should not blindly cross.
        let mut variant_a = g[..170].to_vec();
        let mut variant_b = g[..140].to_vec();
        variant_b.extend_from_slice(&genome(60, 99));
        variant_a.truncate(200);
        let mut pool = Vec::new();
        for i in (100..140).step_by(5) {
            pool.push(variant_a[i..(i + 50).min(variant_a.len())].to_vec());
            pool.push(variant_b[i..(i + 50).min(variant_b.len())].to_vec());
        }
        let added = walk_extension(contig_end, &pool, &LocalAssemblyParams::default());
        // It may extend through the shared region (up to ~20 bases) but must
        // stop around the divergence point rather than picking a side forever.
        assert!(
            added.len() <= 30,
            "walk crossed a fork: {} bases",
            added.len()
        );
        // Whatever was added matches the shared prefix.
        let truth = &g[120..120 + added.len().min(20)];
        assert_eq!(&added[..added.len().min(20)], truth);
    }

    #[test]
    fn extend_contigs_locally_grows_contig_toward_covered_flank() {
        let g = genome(600, 8);
        // The contig covers only the middle of the genome.
        let contig_seq = g[150..450].to_vec();
        let contigs = ContigSet::from_sequences(21, vec![(contig_seq.clone(), 12.0)]);
        let stored_forward = contigs.contigs[0].seq == contig_seq;
        // Paired reads tile the whole genome.
        let mut lib = ReadLibrary::new_paired("lib", 200, 20);
        let mut alignments = AlignmentSet::default();
        let read_len = 60usize;
        for (pair, i) in (0..g.len() - 200).step_by(9).enumerate() {
            let pair = pair as u64;
            let r1 = &g[i..i + read_len];
            let r2 = revcomp(&g[i + 200 - read_len..i + 200]);
            lib.push_pair(
                Read::with_uniform_quality(format!("p{pair}/1"), r1, 35),
                Read::with_uniform_quality(format!("p{pair}/2"), &r2, 35),
            );
            // Hand-build alignments of any read that lies fully inside the
            // contig region (150..450), in contig coordinates.
            for (mate, start, fwd_on_genome) in [(0u64, i, true), (1u64, i + 200 - read_len, false)]
            {
                if start >= 150 && start + read_len <= 450 {
                    let contig_off = (start - 150) as i64;
                    let (forward, contig_offset) = if stored_forward {
                        (fwd_on_genome, contig_off)
                    } else {
                        (!fwd_on_genome, 300 - contig_off - read_len as i64)
                    };
                    alignments.alignments.push(Alignment {
                        read_id: 2 * pair + mate,
                        contig: 0,
                        forward,
                        contig_offset,
                        aligned_len: read_len,
                        matches: read_len,
                    });
                }
            }
        }
        let team = Team::single_node(2);
        let lib2 = lib.clone();
        let out = team.run(|ctx| {
            // Each rank contributes the alignments of "its" pairs only.
            let range = ctx.block_range(lib2.num_pairs());
            let mine = AlignmentSet {
                alignments: alignments
                    .alignments
                    .iter()
                    .filter(|a| range.contains(&((a.read_id / 2) as usize)))
                    .copied()
                    .collect(),
            };
            extend_contigs_locally(ctx, &contigs, &mine, &lib2, &LocalAssemblyParams::default())
        });
        for (set, _) in &out[1..] {
            assert_eq!(set, &out[0].0);
        }
        let extended = &out[0].0;
        assert_eq!(extended.len(), 1);
        assert!(
            extended.contigs[0].len() > contigs.contigs[0].len() + 20,
            "contig was not extended: {} -> {}",
            contigs.contigs[0].len(),
            extended.contigs[0].len()
        );
        // The extension must match the real genome (no junk bases).
        let ext = String::from_utf8(extended.contigs[0].seq.clone()).unwrap();
        let fwd = String::from_utf8(g.clone()).unwrap();
        let rc = String::from_utf8(revcomp(&g)).unwrap();
        assert!(
            fwd.contains(&ext) || rc.contains(&ext),
            "extended contig is not a substring of the genome"
        );
    }
}
