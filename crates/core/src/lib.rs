//! MetaHipMer: the end-to-end metagenome assembly pipeline (the paper's
//! primary contribution).
//!
//! The pipeline follows Algorithm 1 (iterative contig generation) and
//! Algorithm 3 (scaffolding) of the paper:
//!
//! ```text
//! for k = k_min .. k_max step s:
//!     k-mer analysis                      (dbg::analysis)
//!     merge k-mers from previous contigs  (dbg::merge)
//!     de Bruijn graph traversal           (dbg::graph, dbg::traversal)
//!     bubble merging + hair removal       (dbg::bubble)
//!     iterative graph pruning             (dbg::pruning)
//!     align reads to contigs              (aligner)
//!     local assembly (mer-walking)        (local_assembly, work stealing)
//!     read localisation                   (aligner::localize)
//! scaffolding                             (scaffolding)
//! ```
//!
//! Every stage runs SPMD over the `pgas` runtime; per-stage wall-clock and
//! communication statistics are collected so the experiment harnesses can
//! reproduce the paper's scaling figures.
//!
//! The crate exposes two entry points: [`MetaHipMer`], the full metagenome
//! pipeline, and [`MetaHipMer::hipmer_mode`], the single-genome configuration
//! (single k, global extension threshold, no metagenome-specific passes) used
//! as the HipMer comparison row of Table I.

pub mod checkpoint;
pub mod config;
pub mod local_assembly;
pub mod pipeline;
pub mod timing;

pub use config::AssemblyConfig;
pub use local_assembly::{extend_contigs_locally, LocalAssemblyParams};
pub use pipeline::{AssemblyOutput, MetaHipMer};
pub use timing::StageTimings;
