//! Property test of the supermer-routed single-pass k-mer analysis: over
//! randomised reads (with sequencing errors, ambiguous bases and mixed base
//! qualities), team widths of 1–8 ranks, and both Bloom settings, the
//! minimizer-partitioned supermer path must produce a counts table —
//! keys, occurrence counts *and* per-side extension tallies — identical to
//! the per-k-mer baseline's.

use dbg::{kmer_analysis, KmerAnalysisParams};
use kmers::{Kmer, KmerCounts};
use pgas::{Ctx, Team};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqio::Read;

/// A random read: mostly sampled from a couple of shared "genomes" (so many
/// k-mers recur and survive ε=2), with point errors, occasional Ns and a mix
/// of high/low base qualities.
fn random_reads(rng: &mut StdRng, genomes: &[Vec<u8>], n: usize) -> Vec<Read> {
    let bases = [b'A', b'C', b'G', b'T'];
    (0..n)
        .map(|i| {
            let g = &genomes[rng.gen_range(0..genomes.len())];
            let len = rng.gen_range(40..120usize).min(g.len());
            let start = rng.gen_range(0..=g.len() - len);
            let mut seq: Vec<u8> = g[start..start + len].to_vec();
            // Sprinkle errors and ambiguous bases.
            for b in seq.iter_mut() {
                let roll = rng.gen_range(0..100u32);
                if roll < 2 {
                    *b = bases[rng.gen_range(0..4)];
                } else if roll < 3 {
                    *b = b'N';
                }
            }
            let qual: Vec<u8> = (0..seq.len()).map(|_| rng.gen_range(5..45u8)).collect();
            Read::new(format!("r{i}"), &seq, &qual)
        })
        .collect()
}

/// Runs analysis on `ranks` ranks and gathers the whole table, sorted by key.
fn run_table(reads: &[Read], ranks: usize, params: &KmerAnalysisParams) -> Vec<(Kmer, KmerCounts)> {
    let team = Team::single_node(ranks);
    let mut all: Vec<(Kmer, KmerCounts)> = team
        .run(move |ctx: &Ctx| {
            let range = ctx.block_range(reads.len());
            let res = kmer_analysis(ctx, &reads[range], params);
            ctx.barrier();
            res.counts.local_entries(ctx)
        })
        .into_iter()
        .flatten()
        .collect();
    all.sort_by_key(|a| a.0);
    all
}

#[test]
fn supermer_routing_matches_per_kmer_baseline_on_randomised_reads() {
    let mut rng = StdRng::seed_from_u64(20260728);
    for trial in 0..6 {
        let genomes: Vec<Vec<u8>> = (0..2)
            .map(|_| {
                (0..rng.gen_range(150..400usize))
                    .map(|_| [b'A', b'C', b'G', b'T'][rng.gen_range(0..4)])
                    .collect()
            })
            .collect();
        let n_reads = rng.gen_range(20..80);
        let reads = random_reads(&mut rng, &genomes, n_reads);
        let k = *[7usize, 11, 17, 21].get(rng.gen_range(0..4)).unwrap();
        let m = rng.gen_range(3..=k.min(19));
        // With the Bloom pre-pass, admission is only deterministic for
        // k-mers seen at least twice, so pair it with ε >= 2.
        let use_bloom = rng.gen_range(0..2) == 0;
        let min_count = if use_bloom {
            2
        } else {
            rng.gen_range(1..=3u32)
        };
        let params = KmerAnalysisParams {
            k,
            min_count,
            use_bloom,
            minimizer_len: m,
            heavy_hitter_capacity: 16,
            batch: *[1usize, 7, 4096].get(rng.gen_range(0..3)).unwrap(),
            ..Default::default()
        };
        let mut supermer = params.clone();
        supermer.use_supermers = true;
        let mut per_kmer = params.clone();
        per_kmer.use_supermers = false;

        // The per-k-mer baseline on one rank is the reference.
        let reference = run_table(&reads, 1, &per_kmer);
        for ranks in 1..=8usize {
            let got = run_table(&reads, ranks, &supermer);
            assert_eq!(
                got, reference,
                "supermer table diverged: trial={trial} ranks={ranks} k={k} m={m} \
                 bloom={use_bloom} eps={min_count}"
            );
        }
        // And the baseline itself must be rank-count invariant too.
        let baseline_4 = run_table(&reads, 4, &per_kmer);
        assert_eq!(
            baseline_4, reference,
            "baseline not rank-invariant: trial={trial}"
        );
    }
}
