//! Property tests for the distributed contig store: window fetches must equal
//! direct slicing of the replicated sequences for arbitrary (id, start, len)
//! triples — including out-of-range ids, starts and lengths — at every rank
//! count and under both owner-assignment strategies.

use dbg::{ContigSet, ContigStore, ContigStoreParams, ContigsRef, PackedSeq};
use pgas::Team;

/// Deterministic xorshift sequence generator (avoids any RNG dependency).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn random_set(seed: u64, contigs: usize) -> ContigSet {
    let mut rng = Rng(seed | 1);
    let seqs = (0..contigs)
        .map(|_| {
            let len = 20 + (rng.next() % 600) as usize;
            let seq: Vec<u8> = (0..len)
                .map(|_| {
                    // Occasional N so the exception path is exercised.
                    if rng.next().is_multiple_of(53) {
                        b'N'
                    } else {
                        b"ACGT"[(rng.next() % 4) as usize]
                    }
                })
                .collect();
            (seq, 1.0 + (rng.next() % 50) as f64)
        })
        .collect();
    ContigSet::from_sequences(21, seqs)
}

#[test]
fn window_fetches_equal_direct_slicing_for_random_triples() {
    let set = random_set(20260729, 25);
    for balanced in [false, true] {
        for ranks in [1usize, 2, 5, 8] {
            let set2 = set.clone();
            let team = Team::single_node(ranks);
            team.run(|ctx| {
                let store = ContigStore::build(
                    ctx,
                    &set2,
                    &ContigStoreParams {
                        cache_bytes: 2048, // small: force evictions mid-test
                        balanced,
                        ..Default::default()
                    },
                );
                let mut reader = store.reader(ctx);
                // Different random triples on every rank.
                let mut rng = Rng(0x9E37 + ctx.rank() as u64 * 77 + ranks as u64);
                for round in 0..40 {
                    // A batch of ids, some unknown; every rank keeps calling
                    // the collective the same number of times.
                    let ids: Vec<u64> = (0..8)
                        .map(|_| rng.next() % (set2.len() as u64 + 4))
                        .collect();
                    let fetched = if round % 2 == 0 {
                        reader.get_many(ctx, &ids)
                    } else {
                        reader.get_many_onesided(ctx, &ids)
                    };
                    for (id, packed) in ids.iter().zip(fetched) {
                        match set2.get(*id) {
                            None => assert!(packed.is_none(), "unknown id {id} yielded bytes"),
                            Some(contig) => {
                                let packed = packed.expect("known id");
                                let n = contig.seq.len();
                                assert_eq!(packed.len(), n);
                                for _ in 0..4 {
                                    let start = (rng.next() % (n as u64 + 20)) as usize;
                                    let wlen = (rng.next() % (n as u64 + 20)) as usize;
                                    let lo = start.min(n);
                                    let hi = start.saturating_add(wlen).min(n).max(lo);
                                    assert_eq!(
                                        packed.window(start, wlen),
                                        &contig.seq[lo..hi],
                                        "id={id} start={start} len={wlen}"
                                    );
                                }
                            }
                        }
                    }
                }
                ctx.barrier();
            });
        }
    }
}

#[test]
fn store_metadata_matches_the_replicated_set() {
    let set = random_set(42, 15);
    let team = Team::single_node(3);
    let set2 = set.clone();
    team.run(|ctx| {
        let store = ContigStore::build(ctx, &set2, &ContigStoreParams::default());
        let as_ref = ContigsRef::Store(&store);
        let local = ContigsRef::Local(&set2);
        assert_eq!(as_ref.k(), local.k());
        assert_eq!(as_ref.num_contigs(), local.num_contigs());
        assert_eq!(as_ref.total_bases(), local.total_bases());
        for id in 0..set2.len() as u64 + 3 {
            assert_eq!(as_ref.len_of(id), local.len_of(id));
            assert_eq!(as_ref.depth_of(id), local.depth_of(id));
        }
        // Packed size is close to a quarter of the raw bytes (plus the tiny
        // per-contig and per-N overheads).
        let owned_total = ctx.allreduce_sum_u64(store.owned_packed_bytes(ctx) as u64);
        let raw_total = set2.total_bases() as u64;
        assert!(owned_total < raw_total / 2, "{owned_total} vs {raw_total}");
        // The packed type itself round-trips.
        for c in &set2.contigs {
            assert_eq!(PackedSeq::from_bytes(&c.seq).unpack(), c.seq);
        }
    });
}
