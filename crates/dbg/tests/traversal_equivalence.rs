//! Equivalence of the two contig-traversal implementations: over randomised
//! cycle-heavy and palindrome-adjacent graphs, team widths of 1–8 ranks and
//! both table partitioners (hash-partitioned per-k-mer analysis and
//! minimizer-partitioned supermer analysis), the segment-compaction +
//! stitching traversal must emit exactly the per-hop walker's contig set.

use dbg::{build_graph, kmer_analysis, traverse_contigs, KmerAnalysisParams, ThresholdPolicy};
use dbg::{ContigSet, TraversalParams};
use pgas::Team;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqio::alphabet::revcomp;
use seqio::Read;

fn random_seq(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| [b'A', b'C', b'G', b'T'][rng.gen_range(0..4)])
        .collect()
}

/// Builds a read set whose graph is rich in the traversal's hard cases:
/// circular templates (cross-rank and single-owner cycles), sequences that
/// share a repeat (forks), hairpins (a stretch followed by its own reverse
/// complement) and exact even-length palindromes — the "palindrome-adjacent"
/// structures where orientation bookkeeping is easiest to get wrong.
fn stress_reads(rng: &mut StdRng, k: usize) -> Vec<Read> {
    let mut templates: Vec<Vec<u8>> = Vec::new();
    // Linear sequences with a shared repeat to plant forks.
    let repeat = random_seq(rng, 2 * k);
    for _ in 0..rng.gen_range(1..3) {
        let slen = rng.gen_range(60..160);
        let mut s = random_seq(rng, slen);
        let tlen = rng.gen_range(60..160);
        let mut t = random_seq(rng, tlen);
        s.extend_from_slice(&repeat);
        s.extend_from_slice(&random_seq(rng, 40));
        t.extend_from_slice(&repeat);
        t.extend_from_slice(&random_seq(rng, 40));
        templates.push(s);
        templates.push(t);
    }
    // Hairpin: a stem followed by its reverse complement, plus an exact
    // even-length palindrome embedded in a random context.
    let stem_len = rng.gen_range(40..80);
    let stem = random_seq(rng, stem_len);
    let mut hairpin = stem.clone();
    hairpin.extend_from_slice(&revcomp(&stem));
    templates.push(hairpin);
    let half = random_seq(rng, k);
    let mut palindrome = random_seq(rng, 50);
    palindrome.extend_from_slice(&half);
    palindrome.extend_from_slice(&revcomp(&half));
    palindrome.extend_from_slice(&random_seq(rng, 50));
    templates.push(palindrome);

    let mut reads: Vec<Read> = Vec::new();
    let push_cover = |reads: &mut Vec<Read>, seq: &[u8]| {
        // 3x coverage so min_count = 2 keeps every k-mer.
        for c in 0..3 {
            reads.push(Read::with_uniform_quality(
                format!("r{}_{}", reads.len(), c),
                seq,
                35,
            ));
        }
    };
    for t in &templates {
        push_cover(&mut reads, t);
    }
    // Circular templates: tile the doubled circle so every junction-spanning
    // k-mer is observed. Several small circles make single-owner cycles
    // likely even at 8 ranks; one larger circle crosses owners.
    for _ in 0..rng.gen_range(2..5) {
        let clen = rng.gen_range(k + 5..120);
        let circle = random_seq(rng, clen);
        let mut doubled = circle.clone();
        doubled.extend_from_slice(&circle);
        let window = (2 * k).min(circle.len());
        for start in 0..circle.len() {
            push_cover(&mut reads, &doubled[start..start + window]);
        }
    }
    reads
}

fn run_traversal(
    reads: &[Read],
    ranks: usize,
    params: &KmerAnalysisParams,
    segment: bool,
) -> ContigSet {
    let team = Team::single_node(ranks);
    let sets = team.run(|ctx| {
        let range = ctx.block_range(reads.len());
        let res = kmer_analysis(ctx, &reads[range], params);
        let graph = build_graph(ctx, &res.counts, ThresholdPolicy::metahipmer_default());
        traverse_contigs(
            ctx,
            &graph,
            params.k,
            &TraversalParams {
                use_segment_traversal: segment,
                ..Default::default()
            },
        )
    });
    for s in &sets[1..] {
        assert_eq!(s, &sets[0], "contig set must be identical on every rank");
    }
    sets.into_iter().next().unwrap()
}

#[test]
fn segment_traversal_matches_per_hop_on_randomised_graphs() {
    let mut rng = StdRng::seed_from_u64(20260729);
    for trial in 0..5u64 {
        let k = *[11usize, 15, 21].get(rng.gen_range(0..3)).unwrap();
        let reads = stress_reads(&mut rng, k);
        // Both partitioners: the per-k-mer analysis hash-partitions the
        // tables; the supermer analysis partitions them by minimizer, which
        // co-locates consecutive path k-mers on one owner (fewer, longer
        // segments — a different stitching workload).
        for use_supermers in [false, true] {
            let params = KmerAnalysisParams {
                k,
                min_count: 2,
                use_bloom: false,
                use_supermers,
                minimizer_len: 7,
                ..Default::default()
            };
            let ranks_list = [1usize, 2, 3, 5, 8];
            let reference = run_traversal(&reads, 1, &params, false);
            assert!(
                !reference.is_empty(),
                "trial {trial}: stress graph produced no contigs"
            );
            for &ranks in &ranks_list {
                let per_hop = run_traversal(&reads, ranks, &params, false);
                let seg = run_traversal(&reads, ranks, &params, true);
                assert_eq!(
                    per_hop, reference,
                    "trial {trial}: per-hop traversal not rank-invariant \
                     (k={k} ranks={ranks} supermers={use_supermers})"
                );
                assert_eq!(
                    seg, reference,
                    "trial {trial}: segment traversal diverged from per-hop \
                     (k={k} ranks={ranks} supermers={use_supermers})"
                );
            }
        }
    }
}

#[test]
fn segment_traversal_handles_tiny_and_degenerate_graphs() {
    // Single-vertex paths, self-loop homopolymer cycles and empty graphs are
    // the tie-break corners of the emitter rules.
    let cases: Vec<Vec<Read>> = vec![
        // One isolated k-mer (a read exactly k long).
        (0..3)
            .map(|i| Read::with_uniform_quality(format!("a{i}"), b"ACGTACGTACG", 35))
            .collect(),
        // A homopolymer run: the AAA...A k-mer is its own successor.
        (0..3)
            .map(|i| Read::with_uniform_quality(format!("h{i}"), &[b'A'; 40], 35))
            .collect(),
        // Nothing survives the count threshold.
        vec![Read::with_uniform_quality("solo", b"ACGTACGTACGTACGT", 35)],
    ];
    for (ci, reads) in cases.iter().enumerate() {
        let params = KmerAnalysisParams {
            k: 11,
            min_count: 2,
            use_bloom: false,
            ..Default::default()
        };
        for ranks in [1usize, 2, 4] {
            let per_hop = run_traversal(reads, ranks, &params, false);
            let seg = run_traversal(reads, ranks, &params, true);
            assert_eq!(seg, per_hop, "case {ci} ranks {ranks}");
        }
    }
}
