//! Randomized round-trip properties of [`dbg::PackedSeq`] on top of the bulk
//! pack/unpack kernels, including non-ACGT exception handling and clamped
//! windows. CI runs this in both dispatch modes (`MHM_FORCE_SCALAR=1` and
//! default), so the kernel and its scalar twin are both held to the same
//! lossless contract.

use dbg::PackedSeq;
use rand::{Rng, SeedableRng};

type StdRng = rand::rngs::StdRng;

/// Bases with lower-case, `N` runs and junk bytes mixed in.
fn noisy_bases(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut seq: Vec<u8> = (0..len)
        .map(|_| b"ACGT"[rng.gen_range(0..4usize)])
        .collect();
    for b in seq.iter_mut() {
        match rng.gen_range(0..20usize) {
            0 => *b = b'N',
            1 => *b = b.to_ascii_lowercase(),
            2 => *b = b'x',
            _ => {}
        }
    }
    if len >= 8 {
        let at = rng.gen_range(0..len - 4);
        seq[at..at + 4].fill(b'N');
    }
    seq
}

/// What lossless packing preserves: exception bytes verbatim, valid bases
/// case-folded to upper case (the 2-bit codes have no case).
fn normalized(seq: &[u8]) -> Vec<u8> {
    seq.iter()
        .map(|&b| {
            if matches!(b.to_ascii_uppercase(), b'A' | b'C' | b'G' | b'T') {
                b.to_ascii_uppercase()
            } else {
                b
            }
        })
        .collect()
}

#[test]
fn packed_seq_roundtrips_with_exceptions_and_clamped_windows() {
    let mut rng = StdRng::seed_from_u64(0xFACADE);
    for len in [0usize, 1, 3, 7, 8, 9, 40, 63, 64, 65, 500] {
        for _ in 0..10 {
            let seq = noisy_bases(&mut rng, len);
            let ps = PackedSeq::from_bytes(&seq);
            let expect = normalized(&seq);
            assert_eq!(ps.unpack(), expect, "len={len}");
            // Clamped and interior windows, including past-the-end starts.
            for _ in 0..8 {
                let start = rng.gen_range(0..len + 3);
                let wlen = rng.gen_range(0..len + 3);
                let lo = start.min(len);
                let hi = (start + wlen).min(len);
                assert_eq!(
                    ps.window(start, wlen),
                    expect[lo..hi],
                    "len={len} window={start}+{wlen}"
                );
            }
        }
    }
}

#[test]
fn packing_is_identical_in_both_dispatch_modes() {
    let mut rng = StdRng::seed_from_u64(0x0DDC0DE);
    for len in [5usize, 33, 128, 301] {
        let seq = noisy_bases(&mut rng, len);
        let fast = PackedSeq::from_bytes(&seq);
        let was_forced = mhm_simd::force_scalar();
        mhm_simd::set_force_scalar(true);
        let scalar = PackedSeq::from_bytes(&seq);
        mhm_simd::set_force_scalar(was_forced);
        assert_eq!(fast, scalar, "len={len}");
    }
}
