//! Iterative graph pruning (Algorithm 2, §II-E).
//!
//! Short contigs whose depth is far below that of their neighbourhood are
//! probably artefacts of erroneous edges and are removed. The depth cutoff τ
//! starts at 1 and grows geometrically (τ ← τ·(1+α)) until it exceeds the
//! maximum contig depth; a contig is removed when it is short (≤ 2k) **and**
//! its depth is at most min(τ, β × neighbourhood depth). Convergence is
//! detected with an all-reduce over a per-rank "pruned anything" flag, exactly
//! as described in the paper.

use crate::contig_graph::build_adjacency;
use crate::graph::KmerGraph;
use crate::types::{ContigId, ContigSet};
use pgas::Ctx;
use std::collections::HashSet;

/// Parameters of iterative pruning.
#[derive(Debug, Clone, Copy)]
pub struct PruningParams {
    /// Geometric growth factor of the depth cutoff (τ ← τ·(1+α)).
    pub alpha: f64,
    /// Neighbourhood-depth factor β.
    pub beta: f64,
    /// Hard cap on the number of iterations (safety net; the geometric
    /// schedule normally terminates long before this).
    pub max_rounds: usize,
    /// Aggregation batch size for the anchor lookups behind the contig graph
    /// (`1` falls back to fine-grained per-contig reads).
    pub lookup_batch: usize,
}

impl Default for PruningParams {
    fn default() -> Self {
        PruningParams {
            alpha: 0.25,
            beta: 0.5,
            max_rounds: 200,
            lookup_batch: 4096,
        }
    }
}

/// Summary of a pruning run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruningReport {
    /// Contigs removed in total.
    pub removed: usize,
    /// Iterations executed.
    pub rounds: usize,
}

/// Collectively prunes the contig set, returning the surviving contigs
/// (identical on every rank) and a report.
pub fn prune_iteratively(
    ctx: &Ctx,
    contigs: &ContigSet,
    graph: &KmerGraph,
    params: &PruningParams,
) -> (ContigSet, PruningReport) {
    assert!(params.alpha > 0.0, "alpha must be positive");
    let adjacency = build_adjacency(ctx, contigs, graph, params.lookup_batch);
    let n = contigs.len();
    let mut alive = vec![true; n];
    let mut report = PruningReport::default();
    let k = contigs.k;

    let max_depth = contigs.max_depth();
    let mut tau = 1.0f64;
    while tau < max_depth && report.rounds < params.max_rounds {
        report.rounds += 1;
        // Each rank evaluates its block of contigs against the current τ.
        let my_range = ctx.block_range(n);
        let mut my_removals: Vec<ContigId> = Vec::new();
        for idx in my_range {
            if !alive[idx] {
                continue;
            }
            let c = &contigs.contigs[idx];
            if c.len() > 2 * k {
                continue;
            }
            let neighborhood = adjacency.neighbor_mean_depth(contigs, c.id, &alive);
            let cutoff = tau.min(params.beta * neighborhood);
            if c.depth <= cutoff {
                my_removals.push(c.id);
            }
        }
        let pruned_any = ctx.allreduce_any(!my_removals.is_empty());
        // Share removals so every rank updates the same alive mask.
        let mut outgoing: Vec<Vec<ContigId>> = vec![Vec::new(); ctx.ranks()];
        outgoing[0] = my_removals;
        let gathered = ctx.exchange(outgoing);
        let all_removals: Vec<ContigId> = if ctx.rank() == 0 {
            gathered
        } else {
            Vec::new()
        };
        let all_removals = ctx.broadcast(|| all_removals);
        for id in &all_removals {
            if alive[*id as usize] {
                alive[*id as usize] = false;
                report.removed += 1;
            }
        }
        if !pruned_any {
            // Converged at the current cutoff; the remaining rounds with larger
            // τ can still prune, so only stop early once τ has passed every
            // surviving short contig's depth.
            let max_short_depth = contigs
                .contigs
                .iter()
                .filter(|c| alive[c.id as usize] && c.len() <= 2 * k)
                .map(|c| c.depth)
                .fold(0.0, f64::max);
            if tau > max_short_depth {
                break;
            }
        }
        tau *= 1.0 + params.alpha;
    }

    let removed_set: HashSet<ContigId> = contigs
        .contigs
        .iter()
        .filter(|c| !alive[c.id as usize])
        .map(|c| c.id)
        .collect();
    let pruned = contigs.without(&removed_set);
    ctx.barrier();
    (pruned, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{kmer_analysis, KmerAnalysisParams};
    use crate::graph::{build_graph, ThresholdPolicy};
    use crate::traversal::{traverse_contigs, TraversalParams};
    use pgas::Team;
    use seqio::Read;

    fn assemble_and_prune(
        read_specs: &[(&str, usize)],
        k: usize,
        ranks: usize,
    ) -> (ContigSet, ContigSet, PruningReport) {
        let reads: Vec<Read> = read_specs
            .iter()
            .flat_map(|(s, copies)| {
                let s = s.to_string();
                (0..*copies)
                    .map(move |i| Read::with_uniform_quality(format!("r{i}"), s.as_bytes(), 35))
                    .collect::<Vec<_>>()
            })
            .collect();
        let team = Team::single_node(ranks);
        let out = team.run(|ctx| {
            let range = ctx.block_range(reads.len());
            let aparams = KmerAnalysisParams {
                k,
                min_count: 2,
                use_bloom: false,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, &reads[range], &aparams);
            let graph = build_graph(ctx, &res.counts, ThresholdPolicy::metahipmer_default());
            let contigs = traverse_contigs(ctx, &graph, k, &TraversalParams::default());
            let (pruned, report) =
                prune_iteratively(ctx, &contigs, &graph, &PruningParams::default());
            (contigs, pruned, report)
        });
        for o in &out[1..] {
            assert_eq!(o.1, out[0].1);
            assert_eq!(o.2, out[0].2);
        }
        out[0].clone()
    }

    const LEFT: &str = "ACGGTCAGGTTCAAGGACTCCGTA";
    const RIGHT: &str = "TCAGCATTAGCGTAGGACCTTGAC";

    #[test]
    fn shallow_short_branch_next_to_deep_path_is_pruned() {
        // Deep main path (20x) and a shallow short branch (4x) hanging off a
        // fork in its middle — the classic erroneous-edge artefact. The branch
        // depth is above the dynamic extension-threshold budget so the junction
        // truly forks, but far below the neighbourhood depth.
        let main = format!("{LEFT}GGCATTACGGATACCAGGATCCAG{RIGHT}");
        let branch = format!("{}ACAGATTTACAGG", &main[..30]);
        let (before, after, report) = assemble_and_prune(&[(&main, 20), (&branch, 4)], 15, 2);
        assert!(report.removed >= 1, "nothing pruned: {report:?}");
        assert!(after.len() < before.len());
        // The deep path's pieces survive.
        let deep_bases: usize = after
            .contigs
            .iter()
            .filter(|c| c.depth > 10.0)
            .map(|c| c.len())
            .sum();
        assert!(deep_bases > 40);
        // The shallow branch tail is gone.
        assert!(after.contigs.iter().all(|c| {
            let s = String::from_utf8(c.seq.clone()).unwrap();
            let r = String::from_utf8(seqio::alphabet::revcomp(&c.seq)).unwrap();
            !s.contains("ACAGATTTACAGG") && !r.contains("ACAGATTTACAGG")
        }));
    }

    #[test]
    fn uniform_clean_assembly_is_untouched() {
        let seq = format!("{LEFT}GGCATTACGGATACCAGGATCCAG{RIGHT}");
        let (before, after, report) = assemble_and_prune(&[(&seq, 8)], 15, 1);
        assert_eq!(report.removed, 0);
        assert_eq!(before, after);
        assert!(report.rounds >= 1);
    }

    #[test]
    fn low_coverage_isolated_genome_is_not_pruned() {
        // A genome covered only 2x but with no deep neighbours must survive:
        // pruning is relative to the neighbourhood, not absolute.
        let lonely = "TTGACCGATTACAGGACCGATACCGATTAGGACCAGTTAGACC";
        let deep = format!("{LEFT}GGCATTACGGATACCAGGATCCAG{RIGHT}");
        let (_, after, _) = assemble_and_prune(&[(lonely, 2), (&deep, 20)], 15, 2);
        let lonely_present = after.contigs.iter().any(|c| {
            let s = String::from_utf8(c.seq.clone()).unwrap();
            let r = String::from_utf8(seqio::alphabet::revcomp(&c.seq)).unwrap();
            s.contains("CCGATTACAGGACCGATACC") || r.contains("CCGATTACAGGACCGATACC")
        });
        assert!(
            lonely_present,
            "isolated low-coverage contig must not be pruned"
        );
    }
}
