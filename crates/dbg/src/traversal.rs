//! Parallel de Bruijn graph traversal: turning UU k-mer paths into contigs.
//!
//! Contigs are maximal paths of k-mers that have a unique high-quality
//! extension on both sides (§II-C). Two interchangeable, byte-identical
//! implementations live here:
//!
//! * **Segment compaction + stitching** (default; the `segment` module) — each
//!   rank first compacts its *owned* shard entirely in memory through a
//!   direct [`dht::DistMap::local_view`], emitting maximal owner-local
//!   segments, then segments are stitched across ranks with one aggregated
//!   predecessor-resolution round plus `O(log chains)` pointer-jumping
//!   rounds over [`pgas::Ctx::exchange_map`] and a final aggregated
//!   segment-shipping exchange. Communication is `O(owner crossings)`
//!   aggregated messages instead of `O(contig length)` fine-grained lookups.
//! * **Per-hop walking** (`use_segment_traversal = false`, the ablation
//!   baseline) — the paper's §II-D structure: every rank scans the UU k-mers
//!   it owns and walks rightwards from *path left-ends* (UU k-mers whose
//!   left neighbour is absent, not UU, or disagrees), one `lookup_oriented`
//!   per hop. Each maximal path is discovered from both of its ends; the
//!   walker whose starting end has the lexicographically smaller canonical
//!   k-mer emits the contig. Vertices are claimed `used` — the paper's
//!   atomic claim writes — in aggregated batches through
//!   [`dht::DistMap::update_many`] (not one round trip per claim), and
//!   k-mers never touched by a path walk lie on cycles, walked in a second
//!   phase with the cycle's minimal canonical k-mer designating the emitter.
//!
//! Ownership of each path is decided *deterministically* in both modes, so
//! the contig set is identical for any rank count (which both simplifies
//! testing and removes the need for the paper's serial clean-up of aborted
//! speculative traversals) and identical between the two modes — the
//! equivalence the `traversal_equivalence` integration test and the
//! `ablation_traversal` harness enforce.

use crate::graph::{lookup_oriented, KmerGraph, KmerVertex};
use crate::types::ContigSet;
use dht::DistMap;
use kmers::{Ext, Kmer};
use pgas::Ctx;

/// Per-owner batch size for the aggregated `used`-claim writes of the
/// per-hop walker.
const CLAIM_BATCH: usize = 4096;

/// Parameters of the traversal.
#[derive(Debug, Clone, Copy)]
pub struct TraversalParams {
    /// Minimum contig length (in bases) to emit. Contigs shorter than this are
    /// dropped immediately.
    pub min_contig_len: usize,
    /// Use the segment-compaction + stitching traversal (default). `false`
    /// selects the per-hop walker — same contigs, one fine-grained lookup per
    /// k-mer per walk — used as the `ablation_traversal` baseline. Even k
    /// (where a k-mer can be its own reverse complement) always uses the
    /// per-hop walker; the pipeline only ever runs odd k.
    pub use_segment_traversal: bool,
}

impl Default for TraversalParams {
    fn default() -> Self {
        TraversalParams {
            min_contig_len: 0,
            use_segment_traversal: true,
        }
    }
}

/// True if the vertex may be part of a contig: fork vertices (an `F` on either
/// side) belong to multiple paths and are excluded; dead-end sides (`X`) are
/// fine — they simply terminate the contig.
pub(crate) fn eligible(left: Ext, right: Ext) -> bool {
    left != Ext::Fork && right != Ext::Fork
}

/// Claims a batch of vertices as `used` (idempotent; the aggregated form of
/// the paper's §II-D atomic claim writes). Collective.
fn claim_used(ctx: &Ctx, graph: &DistMap<Kmer, KmerVertex>, keys: &[Kmer]) {
    graph.update_many(ctx, keys, CLAIM_BATCH, |_, v| {
        if let Some(v) = v {
            v.used = true;
        }
    });
}

/// True if `kmer` (in walk orientation) is an eligible vertex whose left
/// neighbour does *not* continue the path — i.e. it is the left end of a
/// maximal path.
fn is_left_path_end(ctx: &Ctx, graph: &DistMap<Kmer, KmerVertex>, kmer: &Kmer) -> bool {
    let v = match lookup_oriented(ctx, graph, kmer) {
        Some(v) if eligible(v.left, v.right) => v,
        _ => return false,
    };
    let Ext::Base(c) = v.left else { return true };
    let left_kmer = kmer.extended_left(c);
    match lookup_oriented(ctx, graph, &left_kmer) {
        None => true,
        Some(lv) => {
            if !eligible(lv.left, lv.right) {
                // The left neighbour is a fork: the path starts here.
                true
            } else {
                // The left neighbour is on a path; ours only continues from it
                // if its right extension points back at us.
                match lv.right {
                    Ext::Base(rc) => left_kmer.extended_right(rc) != *kmer,
                    _ => true,
                }
            }
        }
    }
}

/// The outcome of a rightward walk.
struct Walk {
    bases: Vec<u8>,
    depth_sum: f64,
    vcount: usize,
    /// Canonical form of the final k-mer of the walk.
    last_canonical: Kmer,
    /// Canonical k-mers visited, in walk order.
    visited: Vec<Kmer>,
}

/// Walks right from `start`, appending bases while the next vertex is UU and
/// agrees with the walk. Stops when the walk returns to `start` (cycle). The
/// visited vertices are *not* claimed here; the caller batches the claims.
fn walk_right(ctx: &Ctx, graph: &DistMap<Kmer, KmerVertex>, start: Kmer, limit: usize) -> Walk {
    let mut bases = start.to_bytes();
    let mut visited = Vec::new();
    let mut current = start;
    let v0 = lookup_oriented(ctx, graph, &current).expect("start vertex exists");
    let mut depth_sum = v0.count as f64;
    let mut vcount = 1usize;
    visited.push(v0.canonical);
    let mut right = v0.right;
    let mut last_canonical = v0.canonical;
    let mut steps = 0usize;
    while let Ext::Base(c) = right {
        steps += 1;
        if steps > limit {
            break;
        }
        let next = current.extended_right(c);
        if next == start {
            // Closed the cycle.
            break;
        }
        let nv = match lookup_oriented(ctx, graph, &next) {
            Some(nv) => nv,
            None => break,
        };
        if !eligible(nv.left, nv.right) {
            break;
        }
        // The next vertex must agree that its left neighbour is `current`.
        match nv.left {
            Ext::Base(lc) if next.extended_left(lc) == current => {}
            _ => break,
        }
        bases.push(seqio::alphabet::decode_base(c));
        depth_sum += nv.count as f64;
        vcount += 1;
        visited.push(nv.canonical);
        last_canonical = nv.canonical;
        current = next;
        right = nv.right;
    }
    Walk {
        bases,
        depth_sum,
        vcount,
        last_canonical,
        visited,
    }
}

/// The per-hop baseline: one aggregated-claim batch per phase, one
/// fine-grained lookup per hop. Returns this rank's emitted contigs.
fn per_hop_contigs(
    ctx: &Ctx,
    graph: &DistMap<Kmer, KmerVertex>,
    params: &TraversalParams,
) -> Vec<(Vec<u8>, f64)> {
    // A safety bound on walk length: a walk visits each (vertex, orientation)
    // pair at most once, and Möbius-shaped structures (a walk crossing a
    // palindromic junction into its own reverse complement) legitimately
    // visit both orientations — so the bound is twice the vertex count.
    let limit = 2 * graph.len() + 2;

    let mut local: Vec<(Vec<u8>, f64)> = Vec::new();

    // ---- Phase 1: maximal paths, walked from their left ends ----------------
    let seeds: Vec<Kmer> = {
        let mut s = Vec::new();
        graph.for_each_local(ctx, |kmer, v| {
            if eligible(v.left, v.right) {
                s.push(*kmer);
            }
        });
        s
    };
    let mut claims: Vec<Kmer> = Vec::new();
    for seed in &seeds {
        // The seed is stored canonically; a path end may present itself in
        // either orientation, so test both (at most one walk per seed).
        for oriented in [*seed, seed.revcomp()] {
            if is_left_path_end(ctx, graph, &oriented) {
                let walk = walk_right(ctx, graph, oriented, limit);
                claims.extend_from_slice(&walk.visited);
                // The path is discovered from both ends; the end with the
                // smaller canonical k-mer is the designated emitter.
                if *seed <= walk.last_canonical {
                    push_contig(&mut local, walk.bases, walk.depth_sum, walk.vcount, params);
                }
                break;
            }
        }
    }
    // The claims of the whole phase travel in aggregated batches — not one
    // round trip per vertex — and phase 2 only reads them after the barrier.
    claim_used(ctx, graph, &claims);
    ctx.barrier();

    // ---- Phase 2: cycles (eligible vertices untouched by any path walk) -----
    let leftovers: Vec<Kmer> = {
        let mut s = Vec::new();
        graph.for_each_local(ctx, |kmer, v| {
            if eligible(v.left, v.right) && !v.used {
                s.push(*kmer);
            }
        });
        s
    };
    let mut claims: Vec<Kmer> = Vec::new();
    for seed in leftovers {
        // Every rank walks every cycle seed it owns; only the walk started at
        // the cycle's minimal k-mer emits.
        let walk = walk_right(ctx, graph, seed, limit);
        claims.extend_from_slice(&walk.visited);
        let min = walk.visited.iter().min().copied().unwrap_or(seed);
        if seed == min {
            push_contig(&mut local, walk.bases, walk.depth_sum, walk.vcount, params);
        }
    }
    claim_used(ctx, graph, &claims);
    ctx.barrier();
    local
}

/// Traverses the graph and returns the contig set (identical on every rank
/// and for either traversal implementation). Collective.
pub fn traverse_contigs(
    ctx: &Ctx,
    graph: &KmerGraph,
    k: usize,
    params: &TraversalParams,
) -> ContigSet {
    let local = if params.use_segment_traversal && k % 2 == 1 {
        crate::segment::segment_contigs(ctx, graph, k, params)
    } else {
        per_hop_contigs(ctx, graph, params)
    };

    // ---- Gather to a deterministic, shared contig set ------------------------
    let mut outgoing: Vec<Vec<(Vec<u8>, f64)>> = vec![Vec::new(); ctx.ranks()];
    outgoing[0] = local;
    let gathered = ctx.exchange(outgoing);
    let set = if ctx.rank() == 0 {
        ContigSet::from_sequences(k, gathered)
    } else {
        ContigSet::new(k)
    };
    ctx.broadcast(|| set)
}

pub(crate) fn push_contig(
    local: &mut Vec<(Vec<u8>, f64)>,
    bases: Vec<u8>,
    depth_sum: f64,
    vcount: usize,
    params: &TraversalParams,
) {
    if bases.len() < params.min_contig_len {
        return;
    }
    let depth = if vcount == 0 {
        0.0
    } else {
        depth_sum / vcount as f64
    };
    local.push((bases, depth));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{kmer_analysis, KmerAnalysisParams};
    use crate::graph::{build_graph, ThresholdPolicy};
    use pgas::Team;
    use seqio::alphabet::revcomp;
    use seqio::Read;

    fn assemble_with(seqs: &[&str], k: usize, ranks: usize, segment: bool) -> ContigSet {
        let reads: Vec<Read> = seqs
            .iter()
            .cycle()
            .take(seqs.len() * 3) // 3x coverage so min_count=2 passes
            .enumerate()
            .map(|(i, s)| Read::with_uniform_quality(format!("r{i}"), s.as_bytes(), 35))
            .collect();
        let team = Team::single_node(ranks);
        let sets = team.run(|ctx| {
            let range = ctx.block_range(reads.len());
            let params = KmerAnalysisParams {
                k,
                min_count: 2,
                use_bloom: false,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, &reads[range], &params);
            let graph = build_graph(ctx, &res.counts, ThresholdPolicy::metahipmer_default());
            traverse_contigs(
                ctx,
                &graph,
                k,
                &TraversalParams {
                    use_segment_traversal: segment,
                    ..Default::default()
                },
            )
        });
        for s in &sets[1..] {
            assert_eq!(s, &sets[0], "contig set must be identical on every rank");
        }
        sets[0].clone()
    }

    /// Runs both traversal implementations, asserts they agree, returns one.
    fn assemble(seqs: &[&str], k: usize, ranks: usize) -> ContigSet {
        let seg = assemble_with(seqs, k, ranks, true);
        let hop = assemble_with(seqs, k, ranks, false);
        assert_eq!(
            seg, hop,
            "segment traversal must match the per-hop baseline"
        );
        seg
    }

    #[test]
    fn single_sequence_reassembles_exactly() {
        let seq = "ACGGTCAGGTTCAAGGACTTACGGACCATGGCATTACGGATACCAGGATCCAGATCACCAGT";
        let set = assemble(&[seq], 21, 2);
        assert_eq!(set.len(), 1, "expected one contig, got {}", set.len());
        let contig = &set.contigs[0];
        let fwd = seq.as_bytes().to_vec();
        let rc = revcomp(&fwd);
        assert!(contig.seq == fwd || contig.seq == rc);
        assert!((contig.depth - 3.0).abs() < 1e-9);
    }

    #[test]
    fn result_independent_of_rank_count() {
        let seq = "ACGGTCAGGTTCAAGGACTTACGGACCATGGCATTACGGATACCAGGATCCAGATCACCAGT";
        let one = assemble(&[seq], 15, 1);
        let four = assemble(&[seq], 15, 4);
        assert_eq!(one, four);
    }

    #[test]
    fn two_separate_sequences_give_two_contigs() {
        let a = "ACGGTCAGGTTCAAGGACTTACGGACCATGGCATTACG";
        let b = "TTTTGGGGCCCCAAAATTTCTCTCTAGAGAGGCGCGAT";
        let set = assemble(&[a, b], 15, 2);
        assert_eq!(set.len(), 2);
        let lens: Vec<usize> = set.contigs.iter().map(|c| c.len()).collect();
        assert!(lens.contains(&a.len()));
        assert!(lens.contains(&b.len()));
    }

    #[test]
    fn fork_splits_contigs() {
        // Two sequences share a common middle segment, creating fork vertices
        // at both of its ends: the traversal must stop at the forks.
        let common = "GGCATTACGGATACCAGGATCCAG";
        let a = format!("ACGGTCAGGTTCAAGGACT{common}TACCGGTTAACCGGTATTC");
        let b = format!("TTTTGAGGCCACAAAATTT{common}CTCTCGAGAGAGGCGCGAT");
        let set = assemble(&[&a, &b], 15, 2);
        // Expected pieces: 4 unique flanks + 1 shared middle, all shorter than
        // the full sequences.
        assert!(
            set.len() >= 4,
            "expected the fork to split contigs, got {}",
            set.len()
        );
        assert!(set.contigs.iter().all(|c| c.len() < a.len()));
        // The shared middle must appear in exactly one contig.
        let middles = set
            .contigs
            .iter()
            .filter(|c| {
                let s = String::from_utf8(c.seq.clone()).unwrap();
                let r = String::from_utf8(revcomp(&c.seq)).unwrap();
                s.contains("GGATACCAGGATCC") || r.contains("GGATACCAGGATCC")
            })
            .count();
        assert_eq!(middles, 1);
    }

    #[test]
    fn circular_sequence_is_recovered_as_single_contig() {
        // A circular template: reads tile the doubled sequence so every
        // junction-spanning k-mer is observed.
        let circle = "ACGGTCAGGTTCAAGGACTTACGGACCATGGCATTACGGATACCA";
        let doubled = format!("{circle}{circle}");
        let window = 30;
        let reads: Vec<&str> = (0..circle.len()).map(|i| &doubled[i..i + window]).collect();
        let set = assemble(&reads, 15, 2);
        assert_eq!(set.len(), 1, "cycle should yield one contig");
        // A k-mer cycle of L vertices is emitted as a contig of L + k - 1 bases.
        assert_eq!(set.contigs[0].len(), circle.len() + 15 - 1);
    }

    #[test]
    fn min_contig_len_filters_short_output() {
        let seq = "ACGGTCAGGTTCAAGGACTTACGG";
        let reads: Vec<Read> = (0..3)
            .map(|i| Read::with_uniform_quality(format!("r{i}"), seq.as_bytes(), 35))
            .collect();
        for segment in [true, false] {
            let team = Team::single_node(1);
            let sets = team.run(|ctx| {
                let params = KmerAnalysisParams {
                    k: 15,
                    min_count: 2,
                    use_bloom: false,
                    ..Default::default()
                };
                let res = kmer_analysis(ctx, &reads, &params);
                let graph = build_graph(ctx, &res.counts, ThresholdPolicy::metahipmer_default());
                traverse_contigs(
                    ctx,
                    &graph,
                    15,
                    &TraversalParams {
                        min_contig_len: 1000,
                        use_segment_traversal: segment,
                    },
                )
            });
            assert!(sets[0].is_empty());
        }
    }

    #[test]
    fn segment_traversal_claims_all_eligible_vertices() {
        // Both implementations must leave the same graph state behind: every
        // eligible vertex claimed.
        let seq = "ACGGTCAGGTTCAAGGACTTACGGACCATGGCATTACGGATACCAGGATCCAGATCACCAGT";
        let reads: Vec<Read> = (0..3)
            .map(|i| Read::with_uniform_quality(format!("r{i}"), seq.as_bytes(), 35))
            .collect();
        for segment in [true, false] {
            let team = Team::single_node(2);
            team.run(|ctx| {
                let params = KmerAnalysisParams {
                    k: 15,
                    min_count: 2,
                    use_bloom: false,
                    ..Default::default()
                };
                let res = kmer_analysis(ctx, &reads, &params);
                let graph = build_graph(ctx, &res.counts, ThresholdPolicy::metahipmer_default());
                traverse_contigs(
                    ctx,
                    &graph,
                    15,
                    &TraversalParams {
                        use_segment_traversal: segment,
                        ..Default::default()
                    },
                );
                graph.for_each_local(ctx, |_, v| {
                    if eligible(v.left, v.right) {
                        assert!(v.used, "eligible vertex left unclaimed");
                    }
                });
            });
        }
    }
}
