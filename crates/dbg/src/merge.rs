//! Merging k-mer sets across iterations of the multi-k loop (§II-H).
//!
//! When the pipeline moves from k to k+s, k-mers from low-coverage organisms
//! often fail the (k+s)-mer admission thresholds even though they were
//! assembled confidently at the smaller k. MetaHipMer therefore extracts all
//! (k+s)-mers from the previous iteration's contigs and injects them into the
//! new k-mer set as error-free, high-quality-extension k-mers. Injection uses
//! the same aggregated update-only hash-table phase as k-mer analysis, and
//! duplicates (k-mers present in both sets) simply merge their counts.

use crate::analysis::KmerCountsMap;
use crate::store::ContigsRef;
use crate::types::ContigSet;
use dht::bulk_merge;
use kmers::{kmers_with_exts_iter, KmerCounts};
use pgas::Ctx;

/// Collectively injects the (new_k)-mers of a replicated `contigs` set into
/// `counts`.
pub fn inject_contig_kmers(
    ctx: &Ctx,
    counts: &KmerCountsMap,
    contigs: &ContigSet,
    new_k: usize,
    weight: u32,
) -> usize {
    inject_contig_kmers_ref(ctx, counts, ContigsRef::Local(contigs), new_k, weight)
}

/// Collectively injects the (new_k)-mers of the previous iteration's contigs
/// into `counts`.
///
/// `weight` is the pseudo-count given to each injected k-mer occurrence; it
/// must be at least the analysis ε so injected k-mers survive the depth
/// filter. Extensions observed inside the contigs are recorded as high
/// quality (contig bases are error-free by construction of the previous
/// iteration).
///
/// With a replicated set every rank extracts from a block of the contigs;
/// with the distributed store every rank extracts from the contigs it owns —
/// an owner-local read pass. The merged counts are identical either way
/// because the per-k-mer merge is commutative.
pub fn inject_contig_kmers_ref(
    ctx: &Ctx,
    counts: &KmerCountsMap,
    contigs: ContigsRef<'_>,
    new_k: usize,
    weight: u32,
) -> usize {
    assert!(weight >= 1);
    let mut injected = 0usize;
    let observe = |obs: kmers::CanonicalKmerExt| {
        let mut kc = KmerCounts::default();
        for _ in 0..weight {
            kc.observe(obs.exts);
        }
        (obs.kmer, kc)
    };
    match contigs {
        ContigsRef::Local(set) => {
            let my_range = ctx.block_range(set.len());
            // Streamed straight into the aggregated exchange: the
            // allocation-free extraction iterator avoids both a per-contig
            // Vec and the collected item list.
            let items = set.contigs[my_range]
                .iter()
                .flat_map(|c| kmers_with_exts_iter(&c.seq, &[], new_k, 0))
                .map(|obs| {
                    injected += 1;
                    observe(obs)
                });
            bulk_merge(ctx, counts, items, 4096, |a, b| a.merge(&b));
        }
        ContigsRef::Store(store) => {
            // Unpack this rank's owned contigs once (O(shard) bytes), then
            // stream the extracted k-mers lazily into the aggregated
            // exchange like the replicated arm — a collected per-k-mer item
            // list would transiently dwarf the packed shard.
            let mut owned: Vec<Vec<u8>> = Vec::new();
            store
                .map()
                .for_each_local(ctx, |_, packed| owned.push(packed.unpack()));
            let items = owned
                .iter()
                .flat_map(|seq| kmers_with_exts_iter(seq, &[], new_k, 0))
                .map(|obs| {
                    injected += 1;
                    observe(obs)
                });
            bulk_merge(ctx, counts, items, 4096, |a, b| a.merge(&b));
        }
    }
    ctx.allreduce_sum_u64(injected as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{kmer_analysis, KmerAnalysisParams};
    use crate::graph::{build_graph, ThresholdPolicy};
    use crate::traversal::{traverse_contigs, TraversalParams};
    use dht::DistMap;
    use pgas::Team;
    use seqio::Read;
    use std::sync::Arc;

    #[test]
    fn injection_preserves_low_coverage_kmers_at_larger_k() {
        // A sequence covered only 2x: at k=31 with min_count=2 it still counts,
        // but pretend the next iteration's analysis missed it (we start from an
        // empty counts table) — injection from the k=21 contigs must supply the
        // 31-mers.
        let seq = "ACGGTCAGGTTCAAGGACTTACGGACCATGGCATTACGGATACCAGGATCCAGATCACCAGT";
        let reads: Vec<Read> = (0..2)
            .map(|i| Read::with_uniform_quality(format!("r{i}"), seq.as_bytes(), 35))
            .collect();
        let team = Team::single_node(2);
        let out = team.run(|ctx| {
            let range = ctx.block_range(reads.len());
            let params = KmerAnalysisParams {
                k: 21,
                min_count: 2,
                use_bloom: false,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, &reads[range], &params);
            let graph = build_graph(ctx, &res.counts, ThresholdPolicy::metahipmer_default());
            let contigs = traverse_contigs(ctx, &graph, 21, &TraversalParams::default());
            assert_eq!(contigs.len(), 1);

            // Fresh, empty counts table for k=31 ("nothing admitted").
            let new_counts: Arc<DistMap<kmers::Kmer, KmerCounts>> = DistMap::shared(ctx);
            let injected = inject_contig_kmers(ctx, &new_counts, &contigs, 31, 2);
            ctx.barrier();
            (injected, new_counts.len(), {
                // Build a graph on the injected set: the sequence must
                // re-assemble into the same single contig at k=31.
                let graph31 = build_graph(ctx, &new_counts, ThresholdPolicy::metahipmer_default());
                traverse_contigs(ctx, &graph31, 31, &TraversalParams::default())
            })
        });
        let (injected, table_len, contigs31) = &out[0];
        let expected = seq.len() - 31 + 1;
        assert_eq!(*injected, expected);
        assert_eq!(*table_len, expected);
        assert_eq!(contigs31.len(), 1);
        assert_eq!(contigs31.contigs[0].len(), seq.len());
    }

    #[test]
    fn duplicate_kmers_merge_counts() {
        let seq = "ACGGTCAGGTTCAAGGACTTACGGACCATG";
        let team = Team::single_node(1);
        team.run(|ctx| {
            let contigs = ContigSet::from_sequences(15, vec![(seq.as_bytes().to_vec(), 5.0)]);
            let counts: Arc<DistMap<kmers::Kmer, KmerCounts>> = DistMap::shared(ctx);
            inject_contig_kmers(ctx, &counts, &contigs, 15, 2);
            inject_contig_kmers(ctx, &counts, &contigs, 15, 3);
            // Every k-mer now has count 5 and there are no duplicates.
            assert_eq!(counts.len(), seq.len() - 15 + 1);
            counts.for_each_local(ctx, |_, v| assert_eq!(v.count, 5));
        });
    }
}
