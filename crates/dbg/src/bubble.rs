//! Bubble merging and hair removal (§II-D).
//!
//! Single-nucleotide polymorphisms between closely related strains create
//! *bubbles*: pairs of contigs of (nearly) the same length that connect to the
//! same fork k-mers on both sides. Sequencing errors create *hair*: short
//! dead-end contigs dangling off a real path. Bubbles are merged into one
//! contig (keeping the deeper branch and accumulating depth) and hair is
//! removed.
//!
//! The bubble-contig graph is the [`crate::contig_graph::ContigAdjacency`]
//! structure: it is orders of magnitude smaller than the k-mer graph, and the
//! merge decisions are computed redundantly by every rank from the replicated
//! adjacency (the decision pass is trivially cheap compared to building the
//! anchors, which is the distributed part).

use crate::contig_graph::{build_adjacency, ContigAdjacency};
use crate::graph::KmerGraph;
use crate::types::{ContigId, ContigSet};
use kmers::Kmer;
use pgas::Ctx;
use std::collections::{HashMap, HashSet};

/// Parameters of bubble merging and hair removal.
#[derive(Debug, Clone, Copy)]
pub struct BubbleParams {
    /// Bubble branches longer than `2k` are only merged when this is set
    /// (MetaHipMer's optional long-bubble merging, which trades strain
    /// variation for contiguity).
    pub merge_long_bubbles: bool,
    /// Two branches form a bubble when their lengths differ by at most this
    /// relative amount.
    pub len_tolerance: f64,
    /// Remove dead-end dangling contigs ("hair") shorter than `2k`.
    pub remove_hair: bool,
    /// Aggregation batch size for the anchor lookups behind the contig graph
    /// (`1` falls back to fine-grained per-contig reads).
    pub lookup_batch: usize,
}

impl Default for BubbleParams {
    fn default() -> Self {
        BubbleParams {
            merge_long_bubbles: false,
            len_tolerance: 0.05,
            remove_hair: true,
            lookup_batch: 4096,
        }
    }
}

/// What happened during the pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BubbleReport {
    pub bubbles_merged: usize,
    pub hair_removed: usize,
}

/// Collectively merges bubbles and removes hair, returning the cleaned contig
/// set (identical on every rank) and a report.
pub fn merge_bubbles_and_remove_hair(
    ctx: &Ctx,
    contigs: &ContigSet,
    graph: &KmerGraph,
    params: &BubbleParams,
) -> (ContigSet, BubbleReport) {
    let adjacency = build_adjacency(ctx, contigs, graph, params.lookup_batch);
    let (removed, extra_depth, report) = decide(contigs, &adjacency, params);

    // Apply the (identical) decisions: rebuild the contig set without the
    // removed contigs, folding the absorbed depth into the surviving branch.
    let seqs: Vec<(Vec<u8>, f64)> = contigs
        .contigs
        .iter()
        .filter(|c| !removed.contains(&c.id))
        .map(|c| {
            let bonus = extra_depth.get(&c.id).copied().unwrap_or(0.0);
            (c.seq.clone(), c.depth + bonus)
        })
        .collect();
    let cleaned = ContigSet::from_sequences(contigs.k, seqs);
    ctx.barrier();
    (cleaned, report)
}

/// The sequential decision pass (runs identically on every rank).
fn decide(
    contigs: &ContigSet,
    adjacency: &ContigAdjacency,
    params: &BubbleParams,
) -> (HashSet<ContigId>, HashMap<ContigId, f64>, BubbleReport) {
    let k = contigs.k;
    let mut removed: HashSet<ContigId> = HashSet::new();
    let mut extra_depth: HashMap<ContigId, f64> = HashMap::new();
    let mut report = BubbleReport::default();

    // ---- Bubbles: group contigs by their unordered anchor pair --------------
    let mut groups: HashMap<(Kmer, Kmer), Vec<ContigId>> = HashMap::new();
    for c in &contigs.contigs {
        let ends = &adjacency.ends[c.id as usize];
        if let (Some(l), Some(r)) = (ends.left_anchor, ends.right_anchor) {
            let key = if l <= r { (l, r) } else { (r, l) };
            groups.entry(key).or_default().push(c.id);
        }
    }
    let mut keys: Vec<(Kmer, Kmer)> = groups.keys().copied().collect();
    keys.sort();
    for key in keys {
        let members = &groups[&key];
        if members.len() < 2 {
            continue;
        }
        // Candidates sorted deepest first; the deepest surviving branch absorbs
        // similar-length shallower branches.
        let mut sorted: Vec<ContigId> = members.clone();
        sorted.sort_by(|&a, &b| {
            let (ca, cb) = (&contigs.contigs[a as usize], &contigs.contigs[b as usize]);
            cb.depth
                .partial_cmp(&ca.depth)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let winner = sorted[0];
        let winner_len = contigs.contigs[winner as usize].len();
        for &loser in &sorted[1..] {
            if removed.contains(&loser) {
                continue;
            }
            let loser_c = &contigs.contigs[loser as usize];
            let long = loser_c.len() > 2 * k || winner_len > 2 * k;
            if long && !params.merge_long_bubbles {
                continue;
            }
            let len_diff =
                (loser_c.len() as f64 - winner_len as f64).abs() / winner_len.max(1) as f64;
            if len_diff <= params.len_tolerance {
                removed.insert(loser);
                *extra_depth.entry(winner).or_default() += loser_c.depth;
                report.bubbles_merged += 1;
            }
        }
    }

    // ---- Hair: short dead-end contigs dangling off one anchor ----------------
    if params.remove_hair {
        for c in &contigs.contigs {
            if removed.contains(&c.id) {
                continue;
            }
            if c.len() < 2 * k && adjacency.anchor_count(c.id) == 1 {
                removed.insert(c.id);
                report.hair_removed += 1;
            }
        }
    }

    (removed, extra_depth, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{kmer_analysis, KmerAnalysisParams};
    use crate::graph::{build_graph, ThresholdPolicy};
    use crate::traversal::{traverse_contigs, TraversalParams};
    use pgas::Team;
    use seqio::Read;

    /// Assemble reads and run the bubble/hair pass; returns per-rank results.
    fn run_pass(
        read_specs: &[(&str, usize)],
        k: usize,
        ranks: usize,
        params: BubbleParams,
    ) -> (ContigSet, ContigSet, BubbleReport) {
        let reads: Vec<Read> = read_specs
            .iter()
            .flat_map(|(s, copies)| {
                let s = s.to_string();
                (0..*copies)
                    .map(move |i| Read::with_uniform_quality(format!("r{i}"), s.as_bytes(), 35))
                    .collect::<Vec<_>>()
            })
            .collect();
        let team = Team::single_node(ranks);
        let out = team.run(|ctx| {
            let range = ctx.block_range(reads.len());
            let aparams = KmerAnalysisParams {
                k,
                min_count: 2,
                use_bloom: false,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, &reads[range], &aparams);
            let graph = build_graph(ctx, &res.counts, ThresholdPolicy::metahipmer_default());
            let contigs = traverse_contigs(ctx, &graph, k, &TraversalParams::default());
            let (cleaned, report) = merge_bubbles_and_remove_hair(ctx, &contigs, &graph, &params);
            (contigs, cleaned, report)
        });
        for o in &out[1..] {
            assert_eq!(o.1, out[0].1, "cleaned set must agree across ranks");
            assert_eq!(o.2, out[0].2);
        }
        out[0].clone()
    }

    const LEFT: &str = "ACGGTCAGGTTCAAGGACTCCGTA";
    const RIGHT: &str = "TCAGCATTAGCGTAGGACCTTGAC";

    #[test]
    fn snp_bubble_is_merged() {
        // Two haplotypes identical except one SNP in the middle: the two
        // middle branches form a bubble between the shared flanks.
        let mid_a = "GGCATTACGGATACCAGGATCCAG";
        let mid_b = "GGCATTACGGATGCCAGGATCCAG"; // one substitution
        let hap_a = format!("{LEFT}{mid_a}{RIGHT}");
        let hap_b = format!("{LEFT}{mid_b}{RIGHT}");
        // The major haplotype is 2x deeper than the minor one; the minor depth
        // (4) exceeds the dynamic extension-threshold budget so the junction
        // k-mers genuinely fork and a bubble forms.
        let (before, after, report) =
            run_pass(&[(&hap_a, 8), (&hap_b, 4)], 15, 2, BubbleParams::default());
        assert!(report.bubbles_merged >= 1, "no bubble merged: {report:?}");
        assert!(after.len() < before.len());
        // The surviving branch carries the major haplotype's sequence.
        let merged_has_major = after.contigs.iter().any(|c| {
            let s = String::from_utf8(c.seq.clone()).unwrap();
            let r = String::from_utf8(seqio::alphabet::revcomp(&c.seq)).unwrap();
            s.contains("ACGGATACCAGG") || r.contains("ACGGATACCAGG")
        });
        assert!(merged_has_major);
        let minor_still_there = after.contigs.iter().any(|c| {
            let s = String::from_utf8(c.seq.clone()).unwrap();
            let r = String::from_utf8(seqio::alphabet::revcomp(&c.seq)).unwrap();
            s.contains("ACGGATGCCAGG") || r.contains("ACGGATGCCAGG")
        });
        assert!(!minor_still_there, "minor branch should have been absorbed");
    }

    #[test]
    fn hair_is_removed() {
        // A main path plus a short erroneous dead-end branch hanging off it.
        let main = format!("{LEFT}GGCATTACGGATACCAGGATCCAG{RIGHT}");
        // The hair shares the first 20 bases then diverges for a short tail.
        let hair = format!("{}TTTTTTAAAAAT", &main[..20]);
        let (before, after, report) =
            run_pass(&[(&main, 6), (&hair, 2)], 15, 2, BubbleParams::default());
        assert!(report.hair_removed >= 1, "no hair removed: {report:?}");
        assert!(after.total_bases() < before.total_bases());
        // The hair tail must be gone.
        assert!(after.contigs.iter().all(|c| {
            let s = String::from_utf8(c.seq.clone()).unwrap();
            !s.contains("TTTTTTAAAAAT") && !s.contains("ATTTTTAAAAAA")
        }));
    }

    #[test]
    fn clean_assembly_untouched() {
        let seq = format!("{LEFT}GGCATTACGGATACCAGGATCCAG{RIGHT}");
        let (before, after, report) = run_pass(&[(&seq, 4)], 15, 1, BubbleParams::default());
        assert_eq!(report, BubbleReport::default());
        assert_eq!(before, after);
    }

    #[test]
    fn hair_removal_can_be_disabled() {
        let main = format!("{LEFT}GGCATTACGGATACCAGGATCCAG{RIGHT}");
        let hair = format!("{}TTTTTTAAAAAT", &main[..20]);
        let params = BubbleParams {
            remove_hair: false,
            ..Default::default()
        };
        let (before, after, report) = run_pass(&[(&main, 6), (&hair, 2)], 15, 1, params);
        assert_eq!(report.hair_removed, 0);
        assert_eq!(before.len(), after.len());
    }
}
