//! Owner-local segment compaction + cross-rank stitching: the aggregated
//! contig-generation algorithm behind [`crate::traversal::traverse_contigs`].
//!
//! The per-hop walker (kept as the ablation baseline) pays one fine-grained
//! remote lookup per k-mer per walk. This module replaces it with a two-level
//! algorithm whose communication is *aggregated exchange rounds* instead:
//!
//! * **Level 1 — local compaction.** Each rank opens a
//!   [`dht::DistMap::local_view`] over its own shard of the graph (one lock
//!   acquisition for the whole phase, zero `Ctx` traffic) and walks UU runs
//!   entirely in memory. Every maximal run of vertices that are (a) owned by
//!   this rank and (b) mutually-agreeing unique extensions of each other is
//!   emitted as one *segment*: its bases, its oriented endpoint k-mers, and
//!   the unresolved neighbour k-mer dangling off each end that is owned by
//!   another rank. A path that never crosses an ownership boundary therefore
//!   finishes here, and fully-local cycles are emitted here too. Each
//!   undirected run is discovered once per direction (two mirror segments),
//!   exactly as the per-hop walker discovers every path from both ends.
//! * **Level 2 — stitching.** Segments of one direction form a linked list
//!   across ranks. One aggregated request–response round resolves every
//!   segment's predecessor (by asking the dangling left-neighbour's owner
//!   which of its segments *ends* with that oriented k-mer and extends back
//!   mutually); then iterated pointer-jumping rounds over
//!   [`pgas::Ctx::exchange_map`] double each segment's known distance to its
//!   chain head every round, so any chain of `m` segments resolves in
//!   `O(log m)` aggregated rounds. The byte volume of those rounds is kept
//!   under the per-hop baseline by three measures the bench snapshots
//!   forced:
//!   - **Only still-unresolved chains probe**, and between probe rounds each
//!     rank *compresses owner-local sub-chains in memory* (chase targets on
//!     the probing rank are merged link-by-link with zero traffic), so only
//!     cross-rank hops ever reach the wire.
//!   - **Cycles self-terminate** instead of probing until the round cap
//!     (which is exactly the multi-rank stitch-byte blowup the bench
//!     snapshots caught): a chase window on a path contains no segment
//!     twice, so a jump distance exceeding the global segment count proves
//!     the chase wrapped a cycle. Such segments go dormant, and a dedicated
//!     follow-up chase over just those few segments — carrying a
//!     minimum-`SegId` accumulator whose overlap certificate identifies
//!     each cycle's global minimum — picks every cycle's assembly site.
//!   - **Wire structs stay minimal**: the jump reply is three words, and the
//!     final shipping record carries no k-mer the receiver can recompute
//!     from the shipped bases.
//!
//!   A final aggregated exchange ships every segment to its assembly site —
//!   the chain head's rank for paths, the minimal segment's rank for cycles
//!   — which splices the bases and emits.
//!
//! **Determinism / byte-identity.** The emitter rules reproduce the per-hop
//! walker's output exactly, at any rank count:
//! * a path is emitted by the chain whose *first* terminal vertex has the
//!   lexicographically smaller canonical k-mer (mirror chains see the two
//!   endpoint canonicals in swapped order, so exactly one emits; a
//!   single-vertex path, where both mirrors see equal endpoints, is emitted
//!   by the canonical-orientation chain only);
//! * a cycle is emitted rotated to start at its minimal canonical vertex, in
//!   the direction that visits that vertex in canonical orientation — the
//!   same contig the per-hop walker emits from that vertex's canonical seed.
//!
//! Both rules need each (vertex, orientation) pair to appear at most once per
//! directed chain, which holds for odd k (no k-mer equals its own reverse
//! complement); [`crate::traversal::traverse_contigs`] falls back to the
//! per-hop walker for even k.

use crate::graph::{orient, KmerVertex, OrientedVertex};
use crate::traversal::{eligible, push_contig, TraversalParams};
use dht::{DistMap, FxHashMap, FxHashSet};
use kmers::{Ext, Kmer};
use pgas::{Aggregator, Ctx};
use seqio::alphabet::{decode_base, encode_base};

/// Per-owner batch size of the stitching request–response rounds.
const STITCH_BATCH: usize = 4096;
/// Per-owner batch size of the final segment-shipping exchange.
const ASSEMBLE_BATCH: usize = 1024;

/// Global identity of a segment: the rank that compacted it + its index in
/// that rank's segment vector. The derived `(rank, idx)` order is the total
/// order the cycle-detection accumulator minimises over — any total order
/// works, because a `SegId` occurs exactly once per directed chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SegId {
    rank: u32,
    idx: u32,
}

/// Pointer-jumping state of one segment. Kept deliberately small (16 bytes —
/// no accumulator rides along): a `RpcReply<Link>` is shipped per
/// still-chasing segment per round, so its size is the dominant factor of
/// the stitch phase's byte volume.
#[derive(Debug, Clone, Copy)]
enum Link {
    /// Resolved: the chain head is `head` and this segment sits `pos` segments
    /// after it.
    Done { head: SegId, pos: u32 },
    /// Resolved as a cross-rank cycle whose minimal `SegId` is `minseg` (the
    /// cycle's assembly site is that segment's rank).
    Cycle { minseg: SegId },
    /// Unresolved: the chain head is somewhere at or before `to`, which is
    /// `d` predecessor hops away. The window of `d` segments starting at this
    /// one contains no segment twice while the chase stays on a path, so `d`
    /// can only exceed the *global* segment count by wrapping a cycle —
    /// which is how cycles are detected without shipping any accumulator:
    /// a segment whose `d` overflows that bound goes dormant and resolves
    /// its cycle minimum in the dedicated (tiny) chase of level 2b'.
    Chase { to: SegId, d: u32 },
}

/// Merges a chasing segment's state (`d` hops covered) with the link of its
/// current target — the single step both the remote probe rounds and the
/// owner-local compression apply:
///
/// * target resolved → we sit `d` segments further down the same chain;
/// * target on a known cycle → we are on that cycle;
/// * target still chasing → jump over it: the target's window starts exactly
///   where ours ends, so the windows concatenate and the distances add.
fn merge_link(d: u32, target: Link) -> Link {
    match target {
        Link::Done { head, pos } => Link::Done { head, pos: pos + d },
        Link::Cycle { minseg } => Link::Cycle { minseg },
        Link::Chase { to: to2, d: d2 } => Link::Chase { to: to2, d: d + d2 },
    }
}

/// Level 2b' state of one dormant (proven on-cycle) segment: the minimum-
/// `SegId` chase that finds each cycle's canonical assembly site. `amin` is
/// the minimal `SegId` over the `d` segments starting at the owner
/// (exclusive of `to`); since every `SegId` occurs exactly once per directed
/// chain, two jump windows reporting the *same* minimum must overlap, which
/// for adjacent windows only happens once they wrap the cycle — and the
/// shared minimum is then the cycle's global minimum. Only the handful of
/// cross-rank cycle segments ever exchange this 24-byte state, so the
/// accumulator's cost is negligible here, unlike on the hot path-resolution
/// rounds.
#[derive(Debug, Clone, Copy)]
enum MiniLink {
    /// Cycle minimum found.
    Min { minseg: SegId },
    /// Still chasing around the cycle.
    Chase { to: SegId, d: u32, amin: SegId },
}

/// What lies beyond a segment's left (chain-predecessor) end.
#[derive(Debug, Clone, Copy)]
enum LeftBoundary {
    /// Resolved locally: the path starts here.
    Terminal,
    /// The continuing predecessor vertex `nbr` (in walk orientation) is owned
    /// by another rank; `agree` is this segment's first-vertex last base code,
    /// which the owner uses to verify the predecessor extends back mutually.
    Pending { nbr: Kmer, agree: u8 },
}

/// One owner-local maximal run, in a fixed walk direction. (The endpoint
/// k-mers are not stored: the last vertex is the `by_last` index key, and
/// everything else the stitcher ships is derivable from `bases`.)
struct Segment {
    left: LeftBoundary,
    /// The right-extension base code of the last vertex (`None` when that
    /// side is a dead end).
    right_code: Option<u8>,
    /// True when `right_code` points at a vertex owned by another rank.
    right_remote: bool,
    bases: Vec<u8>,
    depth_sum: u64,
}

/// The request of the predecessor-resolution round: "which of your segments
/// ends with `last` and extends right with base code `agree`?"
#[derive(Debug, Clone, Copy)]
struct PredQuery {
    last: Kmer,
    agree: u8,
}

/// One segment shipped to its assembly site (chain head's rank for paths,
/// minimal segment's rank for cycles). Everything the splicer needs that is
/// derivable from `bases` — the endpoint k-mers, their canonical forms, the
/// vertex count — is *recomputed at the receiver* instead of shipped: the
/// wire struct carries five fewer `Kmer`s (40 bytes each) than the obvious
/// encoding, which is most of the final exchange's byte volume.
struct AsmRecord {
    chain: Chain,
    right_code: u8,
    bases: Vec<u8>,
    depth_sum: u64,
}

enum Chain {
    Path {
        head_idx: u32,
        pos: u32,
    },
    /// `min_idx` is the cycle's minimal `SegId`'s index on the assembly rank
    /// (which is that `SegId`'s rank, so the index alone identifies it).
    Cycle {
        min_idx: u32,
    },
}

impl AsmRecord {
    /// Number of graph vertices the segment covers.
    fn vcount(&self, k: usize) -> u32 {
        (self.bases.len() + 1 - k) as u32
    }

    /// First vertex in walk orientation, recomputed from the bases.
    fn first(&self, k: usize) -> Kmer {
        Kmer::from_bytes(&self.bases[..k]).expect("segment bases start with a k-mer")
    }

    /// Last vertex in walk orientation, recomputed from the bases.
    fn last(&self, k: usize) -> Kmer {
        Kmer::from_bytes(&self.bases[self.bases.len() - k..])
            .expect("segment bases end with a k-mer")
    }
}

/// Recomputes, from a segment's bases alone, what [`walk_local`] tracked
/// while building it: the minimal canonical vertex, whether it was visited
/// in canonical orientation, and its vertex index within the segment. Only
/// the cycle emitter needs this triple, so it is derived at the assembly
/// site instead of shipped with every record. The update rule must match
/// [`walk_local`]'s exactly (first occurrence wins, upgraded only by a
/// canonical-orientation visit of the same vertex) for byte-identity with
/// the per-hop walker's cycle seeds.
fn segment_min(bases: &[u8], k: usize) -> (Kmer, bool, u32) {
    let mut kmer = Kmer::from_bytes(&bases[..k]).expect("segment bases start with a k-mer");
    let (canon, was_rc) = kmer.canonical();
    let (mut min_vertex, mut min_is_canonical, mut min_offset) = (canon, !was_rc, 0u32);
    for (i, &b) in bases[k..].iter().enumerate() {
        let code = encode_base(b).expect("segment bases are ACGT");
        kmer = kmer.extended_right(code);
        let (canon, was_rc) = kmer.canonical();
        if canon < min_vertex || (canon == min_vertex && !was_rc && !min_is_canonical) {
            min_vertex = canon;
            min_is_canonical = !was_rc;
            min_offset = (i + 1) as u32;
        }
    }
    (min_vertex, min_is_canonical, min_offset)
}

/// A borrowed, zero-traffic view of this rank's own graph shard.
struct LocalGraph<'a> {
    view: dht::LocalShardView<'a, Kmer, KmerVertex>,
    graph: &'a DistMap<Kmer, KmerVertex>,
    rank: usize,
}

enum Probe {
    /// The vertex (if it exists) is owned by another rank.
    Remote,
    /// Owned here, but not in the graph.
    Absent,
    /// Owned here, in the probe orientation.
    Present { v: OrientedVertex },
}

impl LocalGraph<'_> {
    fn probe(&self, kmer: &Kmer) -> Probe {
        let (canon, was_rc) = kmer.canonical();
        if self.graph.owner_of(&canon) != self.rank {
            return Probe::Remote;
        }
        match self.view.get(&canon) {
            None => Probe::Absent,
            Some(v) => Probe::Present {
                v: orient(*v, canon, was_rc),
            },
        }
    }
}

/// The outcome of one in-memory walk over the local shard.
struct LocalWalk {
    bases: Vec<u8>,
    depth_sum: u64,
    vcount: u32,
    /// Canonical forms of the visited vertices, in walk order.
    visited: Vec<Kmer>,
    last: Kmer,
    right_code: Option<u8>,
    right_remote: bool,
    /// The walk returned to its start (a fully-local cycle).
    closed: bool,
}

/// Walks right from `start` while the next vertex is local, eligible and
/// mutually agreeing — the same continuation rule as the per-hop walker, with
/// remote ownership as an additional stop (it becomes a segment boundary).
fn walk_local(lg: &LocalGraph, start: Kmer, v0: &OrientedVertex, limit: usize) -> LocalWalk {
    let mut w = LocalWalk {
        bases: start.to_bytes(),
        depth_sum: v0.count as u64,
        vcount: 1,
        visited: vec![v0.canonical],
        last: start,
        right_code: None,
        right_remote: false,
        closed: false,
    };
    let mut current = start;
    let mut right = v0.right;
    let mut steps = 0usize;
    while let Ext::Base(c) = right {
        steps += 1;
        if steps > limit {
            break;
        }
        let next = current.extended_right(c);
        if next == start {
            w.closed = true;
            break;
        }
        match lg.probe(&next) {
            Probe::Remote => {
                w.right_code = Some(c);
                w.right_remote = true;
                break;
            }
            Probe::Absent => {
                w.right_code = Some(c);
                break;
            }
            Probe::Present { v: nv, .. } => {
                if !eligible(nv.left, nv.right) {
                    w.right_code = Some(c);
                    break;
                }
                // The next vertex must agree that its left neighbour is
                // `current` (same mutual check as the per-hop walker, reduced
                // to a base-code comparison).
                match nv.left {
                    Ext::Base(lc) if lc == current.first_code() => {}
                    _ => {
                        w.right_code = Some(c);
                        break;
                    }
                }
                w.bases.push(decode_base(c));
                w.depth_sum += nv.count as u64;
                w.vcount += 1;
                w.visited.push(nv.canonical);
                w.last = next;
                current = next;
                right = nv.right;
            }
        }
    }
    w
}

/// Decides whether `kmer` (oriented, eligible) starts a local segment, i.e.
/// whether its left neighbour does *not* continue the path locally. Mirrors
/// the per-hop walker's `is_left_path_end`, with "owned by another rank" as
/// the extra, stitch-resolved case.
fn left_boundary(lg: &LocalGraph, kmer: &Kmer, v: &OrientedVertex) -> Option<LeftBoundary> {
    let Ext::Base(lc) = v.left else {
        return Some(LeftBoundary::Terminal);
    };
    let nbr = kmer.extended_left(lc);
    match lg.probe(&nbr) {
        Probe::Remote => Some(LeftBoundary::Pending {
            nbr,
            agree: kmer.last_code(),
        }),
        Probe::Absent => Some(LeftBoundary::Terminal),
        Probe::Present { v: lv, .. } => {
            if !eligible(lv.left, lv.right) {
                return Some(LeftBoundary::Terminal);
            }
            match lv.right {
                // The neighbour's right extension leads back into us: the
                // path continues locally, so we are mid-segment here.
                Ext::Base(rc) if rc == kmer.last_code() => None,
                _ => Some(LeftBoundary::Terminal),
            }
        }
    }
}

/// Runs the segment-compaction traversal and returns this rank's emitted
/// contigs. Collective; byte-identical to the per-hop walker's output.
pub(crate) fn segment_contigs(
    ctx: &Ctx,
    graph: &DistMap<Kmer, KmerVertex>,
    k: usize,
    params: &TraversalParams,
) -> Vec<(Vec<u8>, f64)> {
    let rank = ctx.rank();
    let mut local: Vec<(Vec<u8>, f64)> = Vec::new();
    let mut segs: Vec<Segment> = Vec::new();
    let mut by_last: FxHashMap<Kmer, u32> = FxHashMap::default();

    // ---- Level 1: owner-local compaction (zero communication) --------------
    {
        let lg = LocalGraph {
            view: graph.local_view(ctx),
            graph,
            rank,
        };
        // Same safety bound as the per-hop walker: at most every local
        // (vertex, orientation) pair once.
        let limit = 2 * lg.view.len() + 2;
        let mut covered: FxHashSet<Kmer> = FxHashSet::default();
        // Iterate the locked view directly (`iter` and `probe` both take
        // shared borrows), so the shard is never copied.
        for (key, v) in lg.view.iter() {
            if !eligible(v.left, v.right) {
                continue;
            }
            for was_rc in [false, true] {
                let okmer = if was_rc { key.revcomp() } else { *key };
                if was_rc && okmer == *key {
                    continue; // palindromic vertex (even k only): one orientation
                }
                let ov = orient(*v, *key, was_rc);
                let Some(left) = left_boundary(&lg, &okmer, &ov) else {
                    continue;
                };
                let w = walk_local(&lg, okmer, &ov, limit);
                debug_assert!(!w.closed, "a segment start cannot close a cycle");
                covered.extend(w.visited.iter().copied());
                let idx = segs.len() as u32;
                by_last.insert(w.last, idx);
                segs.push(Segment {
                    left,
                    right_code: w.right_code,
                    right_remote: w.right_remote,
                    bases: w.bases,
                    depth_sum: w.depth_sum,
                });
            }
        }
        // Eligible vertices no segment reached sit on fully-local cycles
        // (any boundary — terminal or remote — would have started a segment
        // somewhere on their chain). Emit each cycle from its minimal
        // canonical vertex, in canonical orientation, like the per-hop
        // walker's cycle phase.
        let mut cycle_seen: FxHashSet<Kmer> = FxHashSet::default();
        for (key, v) in lg.view.iter() {
            if !eligible(v.left, v.right) || covered.contains(key) || cycle_seen.contains(key) {
                continue;
            }
            let ov = orient(*v, *key, false);
            let w = walk_local(&lg, *key, &ov, limit);
            debug_assert!(w.closed, "uncovered vertices must lie on local cycles");
            cycle_seen.extend(w.visited.iter().copied());
            let min = w.visited.iter().min().copied().unwrap_or(*key);
            let wmin = if min == *key {
                w
            } else {
                let mv = *lg.view.get(&min).expect("cycle vertex is owned locally");
                walk_local(&lg, min, &orient(mv, min, false), limit)
            };
            push_contig(
                &mut local,
                wmin.bases,
                wmin.depth_sum as f64,
                wmin.vcount as usize,
                params,
            );
        }
    } // shard view dropped before any cross-rank phase

    // ---- Level 2a: one aggregated round resolves every predecessor ---------
    let me = |idx: usize| SegId {
        rank: rank as u32,
        idx: idx as u32,
    };
    let mut pending: Vec<(usize, u32)> = Vec::new(); // (seg idx, dest rank)
    let mut reqs: Vec<(usize, PredQuery)> = Vec::new();
    for (i, seg) in segs.iter().enumerate() {
        if let LeftBoundary::Pending { nbr, agree } = seg.left {
            let (canon, _) = nbr.canonical();
            let dest = graph.owner_of(&canon);
            debug_assert_ne!(dest, rank, "a pending neighbour is remote by construction");
            pending.push((i, dest as u32));
            reqs.push((dest, PredQuery { last: nbr, agree }));
            ctx.record_stitch_bytes(
                std::mem::size_of::<PredQuery>() + std::mem::size_of::<Option<u32>>(),
            );
        }
    }
    if rank == 0 {
        ctx.record_traversal_round();
    }
    let pred_resps = ctx.exchange_map(reqs, STITCH_BATCH, |q: PredQuery| -> Option<u32> {
        by_last.get(&q.last).copied().filter(|&i| {
            let p = &segs[i as usize];
            debug_assert!(p.right_remote || p.right_code != Some(q.agree));
            p.right_code == Some(q.agree)
        })
    });
    let mut links: Vec<Link> = segs
        .iter()
        .enumerate()
        .map(|(i, _)| Link::Done {
            head: me(i),
            pos: 0,
        })
        .collect();
    // Direct predecessors are remembered past the jumping: the cycle chase of
    // level 2b' restarts from them.
    let mut pred_of: Vec<Option<SegId>> = vec![None; links.len()];
    for ((i, dest), resp) in pending.iter().zip(pred_resps) {
        if let Some(p_idx) = resp {
            let pred = SegId {
                rank: *dest,
                idx: p_idx,
            };
            pred_of[*i] = Some(pred);
            links[*i] = Link::Chase { to: pred, d: 1 };
        }
    }

    // ---- Level 2b: pointer-jumping rounds (chain length halves per round) ---
    let total_segs = ctx.allreduce_sum_u64(segs.len() as u64);
    let max_rounds = (u64::BITS - total_segs.leading_zeros()) as usize + 2;
    let dormant = |d: u32| d as u64 > total_segs;
    let mut rounds = 0usize;
    loop {
        // Owner-local path compression: follow chase targets that live on
        // this rank entirely in memory, repeatedly merging with their links,
        // until the target is remote or the chase resolves. This is free
        // (zero traffic) pointer jumping: only cross-rank hops go on the
        // wire, which collapses both the round count and the probe volume —
        // at 2 ranks a chain's even-position sub-chain links up locally
        // after the first remote round and the whole chain resolves without
        // further probes. The loop terminates: every merge either resolves
        // the link or strictly grows `d`, and a `d` past the dormancy bound
        // stops the walk (a self-targeting link doubles itself past any
        // bound in logarithmically many merges).
        for i in 0..links.len() {
            while let Link::Chase { to, d } = links[i] {
                if dormant(d) || to.rank as usize != rank {
                    break;
                }
                links[i] = merge_link(d, links[to.idx as usize]);
            }
        }
        let chasing: Vec<usize> = links
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, Link::Chase { d, .. } if !dormant(*d)))
            .map(|(i, _)| i)
            .collect();
        let any = ctx.allreduce_any(!chasing.is_empty());
        if !any || rounds >= max_rounds {
            break;
        }
        rounds += 1;
        if rank == 0 {
            ctx.record_traversal_round();
        }
        let jump_reqs: Vec<(usize, u32)> = chasing
            .iter()
            .map(|&i| {
                let Link::Chase { to, .. } = links[i] else {
                    unreachable!()
                };
                ctx.record_stitch_bytes(std::mem::size_of::<u32>() + std::mem::size_of::<Link>());
                (to.rank as usize, to.idx)
            })
            .collect();
        let resps = ctx.exchange_map(jump_reqs, STITCH_BATCH, |idx: u32| links[idx as usize]);
        for (&i, resp) in chasing.iter().zip(resps) {
            let Link::Chase { d, .. } = links[i] else {
                unreachable!()
            };
            links[i] = merge_link(d, resp);
        }
    }

    // ---- Level 2b': cycle minima for the dormant (proven on-cycle) segments --
    // Paths are all resolved by now; what is left chasing proved itself to be
    // on a cross-rank cycle by overflowing the path-length bound. These are
    // rare (a handful of circular replicons crossing rank boundaries), so a
    // dedicated chase restarted from the direct predecessors — carrying the
    // minimum-`SegId` accumulator the hot rounds deliberately do not ship —
    // finds each cycle's global minimum in a few tiny exchange rounds.
    let cycset: Vec<usize> = links
        .iter()
        .enumerate()
        .filter(|(_, l)| matches!(l, Link::Chase { .. }))
        .map(|(i, _)| i)
        .collect();
    if ctx.allreduce_any(!cycset.is_empty()) {
        let mut mini: FxHashMap<u32, MiniLink> = cycset
            .iter()
            .map(|&i| {
                let pred = pred_of[i].expect("an on-cycle segment has a remote predecessor");
                (
                    i as u32,
                    MiniLink::Chase {
                        to: pred,
                        d: 1,
                        amin: me(i),
                    },
                )
            })
            .collect();
        let mut rounds2 = 0usize;
        loop {
            let chasing: Vec<u32> = cycset
                .iter()
                .filter(|&&i| matches!(mini[&(i as u32)], MiniLink::Chase { .. }))
                .map(|&i| i as u32)
                .collect();
            let any = ctx.allreduce_any(!chasing.is_empty());
            if !any || rounds2 >= max_rounds {
                break;
            }
            rounds2 += 1;
            if rank == 0 {
                ctx.record_traversal_round();
            }
            let reqs: Vec<(usize, u32)> = chasing
                .iter()
                .map(|&i| {
                    let MiniLink::Chase { to, .. } = mini[&i] else {
                        unreachable!()
                    };
                    ctx.record_stitch_bytes(
                        std::mem::size_of::<u32>() + std::mem::size_of::<MiniLink>(),
                    );
                    (to.rank as usize, to.idx)
                })
                .collect();
            let resps = ctx.exchange_map(reqs, STITCH_BATCH, |idx: u32| {
                *mini.get(&idx).expect("cycle chase targets stay on cycles")
            });
            for (&i, resp) in chasing.iter().zip(resps) {
                let MiniLink::Chase { d, amin, .. } = mini[&i] else {
                    unreachable!()
                };
                let merged = match resp {
                    // The target already knows the cycle minimum.
                    MiniLink::Min { minseg } => MiniLink::Min { minseg },
                    MiniLink::Chase {
                        to: to2,
                        d: d2,
                        amin: amin2,
                    } => {
                        if amin == amin2 {
                            // The certificate: adjacent windows sharing their
                            // minimal `SegId` overlap, so they wrap the cycle
                            // and the shared minimum is its global minimum.
                            MiniLink::Min { minseg: amin }
                        } else {
                            MiniLink::Chase {
                                to: to2,
                                d: d + d2,
                                amin: amin.min(amin2),
                            }
                        }
                    }
                };
                mini.insert(i, merged);
            }
        }
        for &i in &cycset {
            links[i] = match mini[&(i as u32)] {
                MiniLink::Min { minseg } => Link::Cycle { minseg },
                // Safety net at the round cap (the certificate normally fires
                // well before it): by then the window has wrapped the whole
                // cycle, so `amin` is its global minimum.
                MiniLink::Chase { amin, .. } => Link::Cycle { minseg: amin },
            };
        }
    }

    // ---- Level 2c: ship every segment to its assembly site ------------------
    if rank == 0 {
        ctx.record_traversal_round();
    }
    let mut agg: Aggregator<AsmRecord> = Aggregator::new(ctx, ASSEMBLE_BATCH);
    for (i, seg) in segs.into_iter().enumerate() {
        let (dest, chain) = match links[i] {
            Link::Done { head, pos } => (
                head.rank as usize,
                Chain::Path {
                    head_idx: head.idx,
                    pos,
                },
            ),
            Link::Cycle { minseg } => (
                minseg.rank as usize,
                Chain::Cycle {
                    min_idx: minseg.idx,
                },
            ),
            // Levels 2b/2b' resolve every link: paths learn their head within
            // the round cap, and everything else went dormant and was
            // assigned its cycle minimum.
            Link::Chase { .. } => unreachable!("stitch chase left unresolved"),
        };
        ctx.record_stitch_bytes(seg.bases.len() + std::mem::size_of::<AsmRecord>());
        agg.push(
            dest,
            AsmRecord {
                chain,
                right_code: seg.right_code.unwrap_or(0),
                bases: seg.bases,
                depth_sum: seg.depth_sum,
            },
        );
    }
    let records = agg.finish();

    // ---- Assembly: splice chains, apply the emitter rules -------------------
    let mut paths: FxHashMap<u32, Vec<AsmRecord>> = FxHashMap::default();
    let mut cycles: FxHashMap<u32, Vec<AsmRecord>> = FxHashMap::default();
    for rec in records {
        match rec.chain {
            Chain::Path { head_idx, .. } => paths.entry(head_idx).or_default().push(rec),
            Chain::Cycle { min_idx } => cycles.entry(min_idx).or_default().push(rec),
        }
    }
    for (_, mut recs) in paths {
        recs.sort_unstable_by_key(|r| match r.chain {
            Chain::Path { pos, .. } => pos,
            Chain::Cycle { .. } => 0,
        });
        debug_assert!(recs
            .iter()
            .enumerate()
            .all(|(i, r)| matches!(r.chain, Chain::Path { pos, .. } if pos == i as u32)));
        let first = recs[0].first(k);
        let (fc, f_was_rc) = first.canonical();
        let (lc, _) = recs[recs.len() - 1].last(k).canonical();
        let vtotal: usize = recs.iter().map(|r| r.vcount(k) as usize).sum();
        // Mirror chains see (fc, lc) swapped: the smaller-first chain emits.
        // Equal endpoints happens in two self-mirror shapes: a single-vertex
        // path (both mirrors see it identically — only the canonical-
        // orientation chain emits) and a palindromic hairpin path, which
        // ends on the reverse complement of its first vertex and *is* its
        // own mirror (exactly one chain exists — always emit).
        if fc < lc || (fc == lc && (vtotal > 1 || !f_was_rc)) {
            let mut bases = std::mem::take(&mut recs[0].bases);
            let mut depth_sum = recs[0].depth_sum;
            for r in &recs[1..] {
                bases.extend_from_slice(&r.bases[k - 1..]);
                depth_sum += r.depth_sum;
            }
            push_contig(&mut local, bases, depth_sum as f64, vtotal, params);
        }
    }
    for (_, recs) in cycles {
        // One full directed cycle lands here (its mirror assembles at its own
        // minimal segment's rank). The group's minimal canonical vertex is
        // the cycle's global minimum; emit only if this direction visits it
        // in canonical orientation — exactly one of the two mirror directions
        // does (for odd k each (vertex, orientation) pair occurs at most once
        // per directed chain), so the cycle is emitted exactly once, by the
        // same rule the per-hop walker applies from its canonical seed. A
        // self-mirror cycle contains both directions in one chain and lands
        // here whole, with a unique canonical-min record — it also emits
        // exactly once.
        let mins: Vec<(Kmer, bool, u32)> = recs.iter().map(|r| segment_min(&r.bases, k)).collect();
        let Some(e) = (0..recs.len()).min_by_key(|&i| (mins[i].0, !mins[i].1)) else {
            debug_assert!(false, "empty cycle group");
            continue;
        };
        if !mins[e].1 {
            continue; // the mirror direction sees the minimum canonically
        }
        let by_first: FxHashMap<Kmer, usize> = recs
            .iter()
            .enumerate()
            .map(|(i, r)| (r.first(k), i))
            .collect();
        let mut order = vec![e];
        loop {
            let r = &recs[*order.last().expect("order is non-empty")];
            let next_first = r.last(k).extended_right(r.right_code);
            let Some(&j) = by_first.get(&next_first) else {
                debug_assert!(false, "broken cycle chain");
                break;
            };
            if j == e || order.len() > recs.len() {
                break;
            }
            order.push(j);
        }
        let total: usize = order.iter().map(|&j| recs[j].vcount(k) as usize).sum();
        let mut circle = recs[e].bases.clone();
        for &j in &order[1..] {
            circle.extend_from_slice(&recs[j].bases[k - 1..]);
        }
        debug_assert_eq!(circle.len(), total + k - 1);
        // Rotate so the contig starts at the minimal vertex: base i of the
        // output is base (min_offset + i) of the underlying base cycle.
        let p = mins[e].2 as usize;
        let out: Vec<u8> = (0..total + k - 1)
            .map(|i| circle[(p + i) % total])
            .collect();
        let depth_sum: u64 = order.iter().map(|&j| recs[j].depth_sum).sum();
        push_contig(&mut local, out, depth_sum as f64, total, params);
    }

    // The per-hop walker leaves every eligible vertex claimed (each lies on
    // exactly one path or cycle, and every path is walked end to end from
    // both ends); replicate that final graph state with a local pass.
    graph.for_each_local_mut(ctx, |_, v| {
        if eligible(v.left, v.right) {
            v.used = true;
        }
    });
    ctx.barrier();
    local
}
