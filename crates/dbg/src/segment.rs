//! Owner-local segment compaction + cross-rank stitching: the aggregated
//! contig-generation algorithm behind [`crate::traversal::traverse_contigs`].
//!
//! The per-hop walker (kept as the ablation baseline) pays one fine-grained
//! remote lookup per k-mer per walk. This module replaces it with a two-level
//! algorithm whose communication is *aggregated exchange rounds* instead:
//!
//! * **Level 1 — local compaction.** Each rank opens a
//!   [`dht::DistMap::local_view`] over its own shard of the graph (one lock
//!   acquisition for the whole phase, zero `Ctx` traffic) and walks UU runs
//!   entirely in memory. Every maximal run of vertices that are (a) owned by
//!   this rank and (b) mutually-agreeing unique extensions of each other is
//!   emitted as one *segment*: its bases, its oriented endpoint k-mers, and
//!   the unresolved neighbour k-mer dangling off each end that is owned by
//!   another rank. A path that never crosses an ownership boundary therefore
//!   finishes here, and fully-local cycles are emitted here too. Each
//!   undirected run is discovered once per direction (two mirror segments),
//!   exactly as the per-hop walker discovers every path from both ends.
//! * **Level 2 — stitching.** Segments of one direction form a linked list
//!   across ranks. One aggregated request–response round resolves every
//!   segment's predecessor (by asking the dangling left-neighbour's owner
//!   which of its segments *ends* with that oriented k-mer and extends back
//!   mutually); then iterated pointer-jumping rounds over
//!   [`pgas::Ctx::exchange_map`] double each segment's known distance to its
//!   chain head every round, so any chain of `m` segments resolves in
//!   `O(log m)` aggregated rounds. Chains still unresolved after
//!   `ceil(log2(total segments)) + 2` rounds are cycles; by then every cycle
//!   segment's jump window has wrapped the whole cycle, so the running
//!   minimum carried alongside the jumps is the cycle's global minimum
//!   vertex. A final aggregated exchange ships every segment to its chain
//!   head (paths) or to the owner of the cycle-minimal vertex (cycles),
//!   which splices the bases and emits.
//!
//! **Determinism / byte-identity.** The emitter rules reproduce the per-hop
//! walker's output exactly, at any rank count:
//! * a path is emitted by the chain whose *first* terminal vertex has the
//!   lexicographically smaller canonical k-mer (mirror chains see the two
//!   endpoint canonicals in swapped order, so exactly one emits; a
//!   single-vertex path, where both mirrors see equal endpoints, is emitted
//!   by the canonical-orientation chain only);
//! * a cycle is emitted rotated to start at its minimal canonical vertex, in
//!   the direction that visits that vertex in canonical orientation — the
//!   same contig the per-hop walker emits from that vertex's canonical seed.
//!
//! Both rules need each (vertex, orientation) pair to appear at most once per
//! directed chain, which holds for odd k (no k-mer equals its own reverse
//! complement); [`crate::traversal::traverse_contigs`] falls back to the
//! per-hop walker for even k.

use crate::graph::{orient, KmerVertex, OrientedVertex};
use crate::traversal::{eligible, push_contig, TraversalParams};
use dht::{DistMap, FxHashMap, FxHashSet};
use kmers::{Ext, Kmer};
use pgas::{Aggregator, Ctx};
use seqio::alphabet::decode_base;

/// Per-owner batch size of the stitching request–response rounds.
const STITCH_BATCH: usize = 4096;
/// Per-owner batch size of the final segment-shipping exchange.
const ASSEMBLE_BATCH: usize = 1024;

/// Global identity of a segment: the rank that compacted it + its index in
/// that rank's segment vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SegId {
    rank: u32,
    idx: u32,
}

/// Pointer-jumping state of one segment.
#[derive(Debug, Clone, Copy)]
enum Link {
    /// Resolved: the chain head is `head` and this segment sits `pos` segments
    /// after it.
    Done { head: SegId, pos: u32 },
    /// Unresolved: the chain head is somewhere at or before `to`, which is
    /// `d` predecessor hops away; `amin` is the minimal canonical vertex over
    /// the `d` segments starting at this one (exclusive of `to`) — the
    /// accumulator that yields the cycle minimum once `d` wraps a cycle.
    Chase { to: SegId, d: u32, amin: Kmer },
}

/// What lies beyond a segment's left (chain-predecessor) end.
#[derive(Debug, Clone, Copy)]
enum LeftBoundary {
    /// Resolved locally: the path starts here.
    Terminal,
    /// The continuing predecessor vertex `nbr` (in walk orientation) is owned
    /// by another rank; `agree` is this segment's first-vertex last base code,
    /// which the owner uses to verify the predecessor extends back mutually.
    Pending { nbr: Kmer, agree: u8 },
}

/// One owner-local maximal run, in a fixed walk direction.
struct Segment {
    /// First vertex, in walk orientation.
    first: Kmer,
    /// Last vertex, in walk orientation.
    last: Kmer,
    left: LeftBoundary,
    /// The right-extension base code of `last` (`None` when that side is a
    /// dead end).
    right_code: Option<u8>,
    /// True when `right_code` points at a vertex owned by another rank.
    right_remote: bool,
    bases: Vec<u8>,
    depth_sum: u64,
    vcount: u32,
    /// Minimal canonical vertex of the segment, whether it was visited in
    /// canonical orientation, and its vertex index within the segment.
    min_vertex: Kmer,
    min_is_canonical: bool,
    min_offset: u32,
}

/// The request of the predecessor-resolution round: "which of your segments
/// ends with `last` and extends right with base code `agree`?"
#[derive(Debug, Clone, Copy)]
struct PredQuery {
    last: Kmer,
    agree: u8,
}

/// One segment shipped to its assembly site (chain head or cycle-min owner).
struct AsmRecord {
    chain: Chain,
    first: Kmer,
    last: Kmer,
    right_code: u8,
    first_canonical: Kmer,
    first_is_canonical: bool,
    last_canonical: Kmer,
    min_vertex: Kmer,
    min_is_canonical: bool,
    min_offset: u32,
    bases: Vec<u8>,
    depth_sum: u64,
    vcount: u32,
}

enum Chain {
    Path { head_idx: u32, pos: u32 },
    Cycle { min: Kmer },
}

/// A borrowed, zero-traffic view of this rank's own graph shard.
struct LocalGraph<'a> {
    view: dht::LocalShardView<'a, Kmer, KmerVertex>,
    graph: &'a DistMap<Kmer, KmerVertex>,
    rank: usize,
}

enum Probe {
    /// The vertex (if it exists) is owned by another rank.
    Remote,
    /// Owned here, but not in the graph.
    Absent,
    /// Owned here; `canonical_oriented` is true when the probe orientation is
    /// the canonical one.
    Present {
        v: OrientedVertex,
        canonical_oriented: bool,
    },
}

impl LocalGraph<'_> {
    fn probe(&self, kmer: &Kmer) -> Probe {
        let (canon, was_rc) = kmer.canonical();
        if self.graph.owner_of(&canon) != self.rank {
            return Probe::Remote;
        }
        match self.view.get(&canon) {
            None => Probe::Absent,
            Some(v) => Probe::Present {
                v: orient(*v, canon, was_rc),
                canonical_oriented: !was_rc,
            },
        }
    }
}

/// The outcome of one in-memory walk over the local shard.
struct LocalWalk {
    bases: Vec<u8>,
    depth_sum: u64,
    vcount: u32,
    /// Canonical forms of the visited vertices, in walk order.
    visited: Vec<Kmer>,
    last: Kmer,
    right_code: Option<u8>,
    right_remote: bool,
    /// The walk returned to its start (a fully-local cycle).
    closed: bool,
    min_vertex: Kmer,
    min_is_canonical: bool,
    min_offset: u32,
}

/// Walks right from `start` while the next vertex is local, eligible and
/// mutually agreeing — the same continuation rule as the per-hop walker, with
/// remote ownership as an additional stop (it becomes a segment boundary).
fn walk_local(
    lg: &LocalGraph,
    start: Kmer,
    v0: &OrientedVertex,
    start_canonical_oriented: bool,
    limit: usize,
) -> LocalWalk {
    let mut w = LocalWalk {
        bases: start.to_bytes(),
        depth_sum: v0.count as u64,
        vcount: 1,
        visited: vec![v0.canonical],
        last: start,
        right_code: None,
        right_remote: false,
        closed: false,
        min_vertex: v0.canonical,
        min_is_canonical: start_canonical_oriented,
        min_offset: 0,
    };
    let mut current = start;
    let mut right = v0.right;
    let mut steps = 0usize;
    while let Ext::Base(c) = right {
        steps += 1;
        if steps > limit {
            break;
        }
        let next = current.extended_right(c);
        if next == start {
            w.closed = true;
            break;
        }
        match lg.probe(&next) {
            Probe::Remote => {
                w.right_code = Some(c);
                w.right_remote = true;
                break;
            }
            Probe::Absent => {
                w.right_code = Some(c);
                break;
            }
            Probe::Present {
                v: nv,
                canonical_oriented,
            } => {
                if !eligible(nv.left, nv.right) {
                    w.right_code = Some(c);
                    break;
                }
                // The next vertex must agree that its left neighbour is
                // `current` (same mutual check as the per-hop walker, reduced
                // to a base-code comparison).
                match nv.left {
                    Ext::Base(lc) if lc == current.first_code() => {}
                    _ => {
                        w.right_code = Some(c);
                        break;
                    }
                }
                w.bases.push(decode_base(c));
                w.depth_sum += nv.count as u64;
                // Track the minimal canonical vertex, preferring its
                // canonical-orientation occurrence: a walk through a
                // palindromic junction can visit the same vertex in both
                // orientations, and the cycle emitter starts at the
                // canonical one (as the per-hop walker's cycle seed does).
                if nv.canonical < w.min_vertex
                    || (nv.canonical == w.min_vertex && canonical_oriented && !w.min_is_canonical)
                {
                    w.min_vertex = nv.canonical;
                    w.min_is_canonical = canonical_oriented;
                    w.min_offset = w.vcount;
                }
                w.vcount += 1;
                w.visited.push(nv.canonical);
                w.last = next;
                current = next;
                right = nv.right;
            }
        }
    }
    w
}

/// Decides whether `kmer` (oriented, eligible) starts a local segment, i.e.
/// whether its left neighbour does *not* continue the path locally. Mirrors
/// the per-hop walker's `is_left_path_end`, with "owned by another rank" as
/// the extra, stitch-resolved case.
fn left_boundary(lg: &LocalGraph, kmer: &Kmer, v: &OrientedVertex) -> Option<LeftBoundary> {
    let Ext::Base(lc) = v.left else {
        return Some(LeftBoundary::Terminal);
    };
    let nbr = kmer.extended_left(lc);
    match lg.probe(&nbr) {
        Probe::Remote => Some(LeftBoundary::Pending {
            nbr,
            agree: kmer.last_code(),
        }),
        Probe::Absent => Some(LeftBoundary::Terminal),
        Probe::Present { v: lv, .. } => {
            if !eligible(lv.left, lv.right) {
                return Some(LeftBoundary::Terminal);
            }
            match lv.right {
                // The neighbour's right extension leads back into us: the
                // path continues locally, so we are mid-segment here.
                Ext::Base(rc) if rc == kmer.last_code() => None,
                _ => Some(LeftBoundary::Terminal),
            }
        }
    }
}

/// Runs the segment-compaction traversal and returns this rank's emitted
/// contigs. Collective; byte-identical to the per-hop walker's output.
pub(crate) fn segment_contigs(
    ctx: &Ctx,
    graph: &DistMap<Kmer, KmerVertex>,
    k: usize,
    params: &TraversalParams,
) -> Vec<(Vec<u8>, f64)> {
    let rank = ctx.rank();
    let mut local: Vec<(Vec<u8>, f64)> = Vec::new();
    let mut segs: Vec<Segment> = Vec::new();
    let mut by_last: FxHashMap<Kmer, u32> = FxHashMap::default();

    // ---- Level 1: owner-local compaction (zero communication) --------------
    {
        let lg = LocalGraph {
            view: graph.local_view(ctx),
            graph,
            rank,
        };
        // Same safety bound as the per-hop walker: at most every local
        // (vertex, orientation) pair once.
        let limit = 2 * lg.view.len() + 2;
        let mut covered: FxHashSet<Kmer> = FxHashSet::default();
        // Iterate the locked view directly (`iter` and `probe` both take
        // shared borrows), so the shard is never copied.
        for (key, v) in lg.view.iter() {
            if !eligible(v.left, v.right) {
                continue;
            }
            for was_rc in [false, true] {
                let okmer = if was_rc { key.revcomp() } else { *key };
                if was_rc && okmer == *key {
                    continue; // palindromic vertex (even k only): one orientation
                }
                let ov = orient(*v, *key, was_rc);
                let Some(left) = left_boundary(&lg, &okmer, &ov) else {
                    continue;
                };
                let w = walk_local(&lg, okmer, &ov, !was_rc, limit);
                debug_assert!(!w.closed, "a segment start cannot close a cycle");
                covered.extend(w.visited.iter().copied());
                let idx = segs.len() as u32;
                by_last.insert(w.last, idx);
                segs.push(Segment {
                    first: okmer,
                    last: w.last,
                    left,
                    right_code: w.right_code,
                    right_remote: w.right_remote,
                    bases: w.bases,
                    depth_sum: w.depth_sum,
                    vcount: w.vcount,
                    min_vertex: w.min_vertex,
                    min_is_canonical: w.min_is_canonical,
                    min_offset: w.min_offset,
                });
            }
        }
        // Eligible vertices no segment reached sit on fully-local cycles
        // (any boundary — terminal or remote — would have started a segment
        // somewhere on their chain). Emit each cycle from its minimal
        // canonical vertex, in canonical orientation, like the per-hop
        // walker's cycle phase.
        let mut cycle_seen: FxHashSet<Kmer> = FxHashSet::default();
        for (key, v) in lg.view.iter() {
            if !eligible(v.left, v.right) || covered.contains(key) || cycle_seen.contains(key) {
                continue;
            }
            let ov = orient(*v, *key, false);
            let w = walk_local(&lg, *key, &ov, true, limit);
            debug_assert!(w.closed, "uncovered vertices must lie on local cycles");
            cycle_seen.extend(w.visited.iter().copied());
            let min = w.visited.iter().min().copied().unwrap_or(*key);
            let wmin = if min == *key {
                w
            } else {
                let mv = *lg.view.get(&min).expect("cycle vertex is owned locally");
                walk_local(&lg, min, &orient(mv, min, false), true, limit)
            };
            push_contig(
                &mut local,
                wmin.bases,
                wmin.depth_sum as f64,
                wmin.vcount as usize,
                params,
            );
        }
    } // shard view dropped before any cross-rank phase

    // ---- Level 2a: one aggregated round resolves every predecessor ---------
    let me = |idx: usize| SegId {
        rank: rank as u32,
        idx: idx as u32,
    };
    let mut pending: Vec<(usize, u32)> = Vec::new(); // (seg idx, dest rank)
    let mut reqs: Vec<(usize, PredQuery)> = Vec::new();
    for (i, seg) in segs.iter().enumerate() {
        if let LeftBoundary::Pending { nbr, agree } = seg.left {
            let (canon, _) = nbr.canonical();
            let dest = graph.owner_of(&canon);
            debug_assert_ne!(dest, rank, "a pending neighbour is remote by construction");
            pending.push((i, dest as u32));
            reqs.push((dest, PredQuery { last: nbr, agree }));
            ctx.record_stitch_bytes(
                std::mem::size_of::<PredQuery>() + std::mem::size_of::<Option<u32>>(),
            );
        }
    }
    if rank == 0 {
        ctx.record_traversal_round();
    }
    let pred_resps = ctx.exchange_map(reqs, STITCH_BATCH, |q: PredQuery| -> Option<u32> {
        by_last.get(&q.last).copied().filter(|&i| {
            let p = &segs[i as usize];
            debug_assert!(p.right_remote || p.right_code != Some(q.agree));
            p.right_code == Some(q.agree)
        })
    });
    let mut links: Vec<Link> = segs
        .iter()
        .enumerate()
        .map(|(i, _)| Link::Done {
            head: me(i),
            pos: 0,
        })
        .collect();
    for ((i, dest), resp) in pending.iter().zip(pred_resps) {
        if let Some(p_idx) = resp {
            links[*i] = Link::Chase {
                to: SegId {
                    rank: *dest,
                    idx: p_idx,
                },
                d: 1,
                amin: segs[*i].min_vertex,
            };
        }
    }

    // ---- Level 2b: pointer-jumping rounds (chain length halves per round) ---
    let total_segs = ctx.allreduce_sum_u64(segs.len() as u64);
    let max_rounds = (u64::BITS - total_segs.leading_zeros()) as usize + 2;
    let mut rounds = 0usize;
    loop {
        let chasing: Vec<usize> = links
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, Link::Chase { .. }))
            .map(|(i, _)| i)
            .collect();
        let any = ctx.allreduce_any(!chasing.is_empty());
        if !any || rounds >= max_rounds {
            break;
        }
        rounds += 1;
        if rank == 0 {
            ctx.record_traversal_round();
        }
        let jump_reqs: Vec<(usize, u32)> = chasing
            .iter()
            .map(|&i| {
                let Link::Chase { to, .. } = links[i] else {
                    unreachable!()
                };
                ctx.record_stitch_bytes(std::mem::size_of::<u32>() + std::mem::size_of::<Link>());
                (to.rank as usize, to.idx)
            })
            .collect();
        let resps = ctx.exchange_map(jump_reqs, STITCH_BATCH, |idx: u32| links[idx as usize]);
        for (&i, resp) in chasing.iter().zip(resps) {
            let Link::Chase { d, amin, .. } = links[i] else {
                unreachable!()
            };
            links[i] = match resp {
                // The target knows its head: we sit `d` segments after it.
                Link::Done { head, pos } => Link::Done { head, pos: pos + d },
                // Jump over the target: distance doubles, minima merge.
                Link::Chase {
                    to: to2,
                    d: d2,
                    amin: amin2,
                } => Link::Chase {
                    to: to2,
                    d: d + d2,
                    amin: amin.min(amin2),
                },
            };
        }
    }

    // ---- Level 2c: ship every segment to its assembly site ------------------
    if rank == 0 {
        ctx.record_traversal_round();
    }
    let mut agg: Aggregator<AsmRecord> = Aggregator::new(ctx, ASSEMBLE_BATCH);
    for (i, seg) in segs.into_iter().enumerate() {
        let (dest, chain) = match links[i] {
            Link::Done { head, pos } => (
                head.rank as usize,
                Chain::Path {
                    head_idx: head.idx,
                    pos,
                },
            ),
            // Still chasing after the round cap: a cross-rank cycle; `amin`
            // wrapped the whole cycle, so it is the cycle's global minimum.
            Link::Chase { amin, .. } => (graph.owner_of(&amin), Chain::Cycle { min: amin }),
        };
        let (first_canonical, f_was_rc) = seg.first.canonical();
        let (last_canonical, _) = seg.last.canonical();
        ctx.record_stitch_bytes(seg.bases.len() + 4 * std::mem::size_of::<Kmer>() + 32);
        agg.push(
            dest,
            AsmRecord {
                chain,
                first: seg.first,
                last: seg.last,
                right_code: seg.right_code.unwrap_or(0),
                first_canonical,
                first_is_canonical: !f_was_rc,
                last_canonical,
                min_vertex: seg.min_vertex,
                min_is_canonical: seg.min_is_canonical,
                min_offset: seg.min_offset,
                bases: seg.bases,
                depth_sum: seg.depth_sum,
                vcount: seg.vcount,
            },
        );
    }
    let records = agg.finish();

    // ---- Assembly: splice chains, apply the emitter rules -------------------
    let mut paths: FxHashMap<u32, Vec<AsmRecord>> = FxHashMap::default();
    let mut cycles: FxHashMap<Kmer, Vec<AsmRecord>> = FxHashMap::default();
    for rec in records {
        match rec.chain {
            Chain::Path { head_idx, .. } => paths.entry(head_idx).or_default().push(rec),
            Chain::Cycle { min } => cycles.entry(min).or_default().push(rec),
        }
    }
    for (_, mut recs) in paths {
        recs.sort_unstable_by_key(|r| match r.chain {
            Chain::Path { pos, .. } => pos,
            Chain::Cycle { .. } => 0,
        });
        debug_assert!(recs
            .iter()
            .enumerate()
            .all(|(i, r)| matches!(r.chain, Chain::Path { pos, .. } if pos == i as u32)));
        let fc = recs[0].first_canonical;
        let lc = recs[recs.len() - 1].last_canonical;
        let vtotal: usize = recs.iter().map(|r| r.vcount as usize).sum();
        // Mirror chains see (fc, lc) swapped: the smaller-first chain emits.
        // Equal endpoints happens in two self-mirror shapes: a single-vertex
        // path (both mirrors see it identically — only the canonical-
        // orientation chain emits) and a palindromic hairpin path, which
        // ends on the reverse complement of its first vertex and *is* its
        // own mirror (exactly one chain exists — always emit).
        if fc < lc || (fc == lc && (vtotal > 1 || recs[0].first_is_canonical)) {
            let mut bases = std::mem::take(&mut recs[0].bases);
            let mut depth_sum = recs[0].depth_sum;
            for r in &recs[1..] {
                bases.extend_from_slice(&r.bases[k - 1..]);
                depth_sum += r.depth_sum;
            }
            push_contig(&mut local, bases, depth_sum as f64, vtotal, params);
        }
    }
    for (min, recs) in cycles {
        // Both directed cycles land here (same minimum). Emit the direction
        // that visits the minimal vertex canonically, starting at it.
        let Some(e) = recs
            .iter()
            .position(|r| r.min_vertex == min && r.min_is_canonical)
        else {
            debug_assert!(false, "cycle group without a canonical-min emitter");
            continue;
        };
        let by_first: FxHashMap<Kmer, usize> =
            recs.iter().enumerate().map(|(i, r)| (r.first, i)).collect();
        let mut order = vec![e];
        loop {
            let r = &recs[*order.last().expect("order is non-empty")];
            let next_first = r.last.extended_right(r.right_code);
            let Some(&j) = by_first.get(&next_first) else {
                debug_assert!(false, "broken cycle chain");
                break;
            };
            if j == e || order.len() > recs.len() {
                break;
            }
            order.push(j);
        }
        let total: usize = order.iter().map(|&j| recs[j].vcount as usize).sum();
        let mut circle = recs[e].bases.clone();
        for &j in &order[1..] {
            circle.extend_from_slice(&recs[j].bases[k - 1..]);
        }
        debug_assert_eq!(circle.len(), total + k - 1);
        // Rotate so the contig starts at the minimal vertex: base i of the
        // output is base (min_offset + i) of the underlying base cycle.
        let p = recs[e].min_offset as usize;
        let out: Vec<u8> = (0..total + k - 1)
            .map(|i| circle[(p + i) % total])
            .collect();
        let depth_sum: u64 = order.iter().map(|&j| recs[j].depth_sum).sum();
        push_contig(&mut local, out, depth_sum as f64, total, params);
    }

    // The per-hop walker leaves every eligible vertex claimed (each lies on
    // exactly one path or cycle, and every path is walked end to end from
    // both ends); replicate that final graph state with a local pass.
    graph.for_each_local_mut(ctx, |_, v| {
        if eligible(v.left, v.right) {
            v.used = true;
        }
    });
    ctx.barrier();
    local
}
