//! Parallel k-mer analysis (§II-B).
//!
//! Every rank processes its slice of the reads, extracts canonical k-mers with
//! their left/right extension observations, and routes them to owner ranks
//! with aggregated messages. Owners count in their local shard of a
//! distributed hash table. Three refinements from the paper are reproduced:
//!
//! * **supermer routing** (the default): instead of shipping every canonical
//!   k-mer as a ~32-byte packed struct — twice, once for the Bloom pass and
//!   once for counting — each read is decomposed once into *supermers*
//!   (maximal runs of consecutive k-mers sharing a canonical minimizer, see
//!   [`kmers::minimizer`]) which travel as packed 2-bit sequence with a
//!   quality/extension sidecar, ~(s+k−1)/4 bytes per s k-mers. The counts
//!   table is partitioned by minimizer ([`MinimizerPartitioner`]), so every
//!   occurrence of a k-mer arrives at its owner and Bloom admission, exact
//!   counting and heavy-hitter sketching all happen on the receive side of a
//!   *single* exchange;
//! * **Bloom-filter admission** admits a k-mer into the final counting table
//!   only once it has (probably) been seen at least twice, so singleton error
//!   k-mers never survive into the table downstream stages consume. (Unlike
//!   the real UPC implementation, this reproduction keeps counting *exact*:
//!   the per-k-mer path counts everything and filters afterwards, and the
//!   supermer path parks first sightings in a side map until a second
//!   occurrence arrives — so admission here shapes the communication and the
//!   result, not the peak memory.) The filter is sized from an all-reduced
//!   global k-mer estimate so shards stay correctly provisioned however
//!   unevenly the reads are distributed;
//! * a **streaming heavy-hitter sketch** identifies k-mers with enormous
//!   counts (ubiquitous in metagenomes because of highly abundant organisms)
//!   so callers can inspect/treat them specially; the counting itself remains
//!   exact. Per-rank sketches are combined with a deterministic binomial-tree
//!   reduction rather than funnelling every sketch to rank 0.
//!
//! Setting [`KmerAnalysisParams::use_supermers`] to `false` selects the
//! legacy per-k-mer path (hash partitioning, separate Bloom round trip,
//! per-k-mer counting exchange). With `min_count >= 2` both paths produce an
//! identical counts table — the `ablation_supermer` harness relies on this to
//! measure the wire-byte saving with byte-identical assemblies. (With
//! `min_count == 1` *and* the Bloom pre-pass enabled, the set of admitted
//! singletons depends on Bloom false positives, which differ between the two
//! partitionings.)

use dht::{DistBloom, DistMap, FxHashMap, Partitioner, SpaceSaving};
use kmers::minimizer::{
    encode_supermer, expand_supermer, kmer_minimizer, minimizer_shard, SupermerBlobIter,
    SupermerIter, MAX_MINIMIZER_LEN,
};
use kmers::{kmers_with_exts_iter, Kmer, KmerCounts};
use pgas::{BlobAggregator, Ctx};
use seqio::{Read, ReadSource};
use std::sync::Arc;

/// The distributed k-mer → counts table produced by analysis.
pub type KmerCountsMap = Arc<DistMap<Kmer, KmerCounts>>;

/// Routes a canonical k-mer to the shard of its canonical minimizer, so that
/// table ownership agrees with supermer routing: every k-mer expanded from a
/// supermer is owned by the rank the supermer was shipped to. Because the
/// canonical minimizer is strand-invariant, the partitioner can be evaluated
/// on canonical keys while senders route read-orientation supermers.
#[derive(Debug, Clone, Copy)]
pub struct MinimizerPartitioner {
    m: usize,
}

impl MinimizerPartitioner {
    /// Creates a partitioner for minimizer length `m`
    /// (`1..=`[`MAX_MINIMIZER_LEN`]).
    pub fn new(m: usize) -> Self {
        assert!(
            (1..=MAX_MINIMIZER_LEN).contains(&m),
            "minimizer length must be in 1..={MAX_MINIMIZER_LEN}, got {m}"
        );
        MinimizerPartitioner { m }
    }

    /// The minimizer length.
    pub fn m(&self) -> usize {
        self.m
    }
}

impl Partitioner<Kmer> for MinimizerPartitioner {
    fn owner_of(&self, key: &Kmer, ranks: usize) -> usize {
        minimizer_shard(kmer_minimizer(key, self.m.min(key.k())), ranks)
    }
}

/// Parameters of k-mer analysis.
#[derive(Debug, Clone)]
pub struct KmerAnalysisParams {
    /// k-mer length (must be odd so no k-mer is its own reverse complement).
    pub k: usize,
    /// Minimum count ε for a k-mer to be kept (the paper uses ε ≈ 2–3).
    pub min_count: u32,
    /// Phred threshold above which an extension base counts as high quality.
    pub hq_threshold: u8,
    /// Whether to run the Bloom-filter admission (as a separate pre-pass in
    /// the per-k-mer path, folded into the receive side in the supermer path).
    pub use_bloom: bool,
    /// Capacity of the per-rank heavy-hitter sketch (0 disables it).
    pub heavy_hitter_capacity: usize,
    /// Aggregation batch size for the all-to-all exchanges (items for the
    /// per-k-mer path; multiplied by the packed k-mer size to obtain the
    /// supermer path's byte batch).
    pub batch: usize,
    /// Route supermers to minimizer-owned shards (single exchange) instead of
    /// individual k-mers to hash-owned shards (Bloom + counting exchanges).
    pub use_supermers: bool,
    /// Minimizer length m for supermer routing; clamped to
    /// `min(k, `[`MAX_MINIMIZER_LEN`]`)`.
    pub minimizer_len: usize,
}

impl Default for KmerAnalysisParams {
    fn default() -> Self {
        KmerAnalysisParams {
            k: 21,
            min_count: 2,
            hq_threshold: 20,
            use_bloom: true,
            heavy_hitter_capacity: 64,
            batch: 4096,
            use_supermers: true,
            minimizer_len: 15,
        }
    }
}

impl KmerAnalysisParams {
    /// The effective minimizer length: `minimizer_len` clamped into
    /// `1..=min(k, MAX_MINIMIZER_LEN)`.
    pub fn effective_minimizer_len(&self) -> usize {
        self.minimizer_len.clamp(1, self.k.min(MAX_MINIMIZER_LEN))
    }
}

/// The result of k-mer analysis.
pub struct KmerAnalysis {
    /// Distributed table of canonical k-mers that passed the ε filter.
    pub counts: KmerCountsMap,
    /// Heavy hitters detected by the streaming sketch, with estimated counts
    /// (same list on every rank).
    pub heavy_hitters: Vec<(Kmer, u64)>,
}

/// Runs k-mer analysis over this rank's slice of the reads. Collective: every
/// rank must call with its own `reads` slice. Returns the shared distributed
/// counts table (identical `Arc` on every rank).
pub fn kmer_analysis(ctx: &Ctx, reads: &[Read], params: &KmerAnalysisParams) -> KmerAnalysis {
    let mut source: &[Read] = reads;
    kmer_analysis_from(ctx, &mut source, params)
}

/// Runs k-mer analysis over a streaming [`ReadSource`] — the distributed
/// read store's ingest path, where this rank's reads are unpacked one at a
/// time from owned packed blocks instead of living in a replicated slice.
/// Collective: every rank must call with its own source. The result is
/// independent of how reads are distributed over ranks (counts are global
/// sums and Bloom admission triggers on the second occurrence wherever it
/// arrives), which is what keeps distributed-read assemblies byte-identical
/// to the replicated baseline.
pub fn kmer_analysis_from(
    ctx: &Ctx,
    source: &mut dyn ReadSource,
    params: &KmerAnalysisParams,
) -> KmerAnalysis {
    assert!(params.k >= 3, "k must be at least 3");
    assert!(
        params.k % 2 == 1,
        "k must be odd so canonical k-mers are unambiguous"
    );
    assert!(params.min_count >= 1);
    if params.use_supermers {
        supermer_analysis(ctx, source, params)
    } else {
        per_kmer_analysis(ctx, source, params)
    }
}

/// Shares a Bloom filter sized from the *global* k-mer estimate: every rank
/// contributes its local estimate to an all-reduce, and each of the `ranks`
/// shards is provisioned for an equal split of the total. Sizing from one
/// rank's local estimate (as the seed did) under-provisions every shard when
/// reads are unevenly distributed, inflating the false-positive rate.
fn shared_bloom(ctx: &Ctx, local_estimate: usize) -> Arc<DistBloom> {
    let global = ctx.allreduce_sum_u64(local_estimate as u64) as usize;
    let expected_per_shard = global / ctx.ranks() + 16;
    ctx.share(|| DistBloom::new(ctx.ranks(), expected_per_shard * 2, 0.01))
}

/// The supermer-routed single-pass analysis: one extraction pass per read,
/// one aggregated shipment per owner, and all per-k-mer work (Bloom
/// admission, exact counting, heavy-hitter sketching) on the receive side.
fn supermer_analysis(
    ctx: &Ctx,
    source: &mut dyn ReadSource,
    params: &KmerAnalysisParams,
) -> KmerAnalysis {
    let k = params.k;
    let m = params.effective_minimizer_len();
    let ranks = ctx.ranks();
    let counts: KmerCountsMap =
        ctx.share(|| DistMap::with_partitioner(ranks, Arc::new(MinimizerPartitioner::new(m))));
    let bloom = params
        .use_bloom
        .then(|| shared_bloom(ctx, source.estimate_kmers(k)));

    // --- Send side: one streaming supermer pass over this rank's reads ------
    // The byte batch matches the per-k-mer path's message size (batch items of
    // a packed k-mer each) so message counts stay comparable across modes.
    let batch_bytes = params
        .batch
        .saturating_mul(std::mem::size_of::<Kmer>())
        .max(64);
    let mut agg = BlobAggregator::new(ctx, batch_bytes);
    source.for_each_read(&mut |read| {
        for sm in SupermerIter::new(&read.seq, k, m) {
            let dest = minimizer_shard(sm.minimizer, ranks);
            let wrote = agg.push_with(dest, |buf| {
                encode_supermer(buf, &read.seq, &read.qual, params.hq_threshold, &sm)
            });
            ctx.record_supermer_bytes(wrote);
        }
    });
    let blobs = agg.finish();

    // --- Receive side: expansion, admission, counting, sketching ------------
    let mut sketch = (params.heavy_hitter_capacity > 0)
        .then(|| SpaceSaving::<Kmer>::new(params.heavy_hitter_capacity));
    // First sightings not yet admitted by the Bloom filter are parked here;
    // they join the table when (if) a second occurrence arrives, so admitted
    // k-mers keep their exact count including the first observation.
    // Whatever is still parked at the end of the stream (singletons, bar
    // Bloom false positives) is dropped, mirroring the per-k-mer path's
    // retain-by-admission.
    let mut parked: FxHashMap<Kmer, KmerCounts> = FxHashMap::default();
    let rank = ctx.rank();
    for blob in &blobs {
        for record in SupermerBlobIter::new(blob) {
            expand_supermer(&record, k, |obs| {
                debug_assert_eq!(counts.owner_of(&obs.kmer), rank, "misrouted supermer");
                if let Some(s) = sketch.as_mut() {
                    s.offer(obs.kmer, 1);
                }
                let mut c = KmerCounts::default();
                c.observe(obs.exts);
                match &bloom {
                    Some(bloom) => {
                        if bloom.insert_and_check_shard(rank, &obs.kmer) {
                            // Seen before (or a false positive): admitted.
                            if let Some(mut held) = parked.remove(&obs.kmer) {
                                held.merge(&c);
                                c = held;
                            }
                            counts.merge_local(ctx, obs.kmer, c, |a, b| a.merge(&b));
                        } else {
                            parked
                                .entry(obs.kmer)
                                .and_modify(|held| held.merge(&c))
                                .or_insert(c);
                        }
                    }
                    None => counts.merge_local(ctx, obs.kmer, c, |a, b| a.merge(&b)),
                }
            });
        }
    }
    drop(parked);
    ctx.barrier();

    let heavy_hitters = match sketch {
        Some(s) => merge_heavy_hitters(ctx, s, params),
        None => Vec::new(),
    };

    counts.retain_local(ctx, |_, v| v.count >= params.min_count);
    ctx.barrier();

    KmerAnalysis {
        counts,
        heavy_hitters,
    }
}

/// The legacy per-k-mer analysis: a Bloom admission exchange, a heavy-hitter
/// pass and a counting exchange, each re-extracting the reads. Kept (behind
/// `use_supermers = false`) as the measurable baseline of the supermer
/// ablation.
fn per_kmer_analysis(
    ctx: &Ctx,
    source: &mut dyn ReadSource,
    params: &KmerAnalysisParams,
) -> KmerAnalysis {
    let counts: KmerCountsMap = DistMap::shared(ctx);

    // --- Optional pass 1: Bloom admission ------------------------------------
    // The admission set lives on the owner rank: a k-mer is admitted once the
    // Bloom filter has seen it before, i.e. from its second occurrence on.
    let admitted: Option<Arc<DistMap<Kmer, ()>>> = if params.use_bloom {
        let bloom = shared_bloom(ctx, source.estimate_kmers(params.k));
        let admitted: Arc<DistMap<Kmer, ()>> = DistMap::shared(ctx);
        let mut agg: pgas::Aggregator<Kmer> = pgas::Aggregator::new(ctx, params.batch);
        source.for_each_read(&mut |read| {
            for obs in kmers_with_exts_iter(&read.seq, &read.qual, params.k, params.hq_threshold) {
                agg.push(counts.owner_of(&obs.kmer), obs.kmer);
            }
        });
        let mine = agg.finish();
        for kmer in mine {
            if bloom.insert_and_check(ctx, &kmer) {
                admitted.upsert(ctx, kmer, || (), |_| {});
            }
        }
        ctx.barrier();
        Some(admitted)
    } else {
        None
    };

    // --- Heavy-hitter sketch over the local stream ---------------------------
    let heavy_hitters = if params.heavy_hitter_capacity > 0 {
        let mut sketch: SpaceSaving<Kmer> = SpaceSaving::new(params.heavy_hitter_capacity);
        source.for_each_read(&mut |read| {
            for obs in kmers_with_exts_iter(&read.seq, &read.qual, params.k, params.hq_threshold) {
                sketch.offer(obs.kmer, 1);
            }
        });
        merge_heavy_hitters(ctx, sketch, params)
    } else {
        Vec::new()
    };

    // --- Pass 2: exact counting with extensions ------------------------------
    // `dht::bulk_merge` inlined around the streaming source (the callback
    // contract cannot hand it a by-value iterator without buffering reads).
    let mut agg: pgas::Aggregator<(Kmer, KmerCounts)> = pgas::Aggregator::new(ctx, params.batch);
    source.for_each_read(&mut |read| {
        for obs in kmers_with_exts_iter(&read.seq, &read.qual, params.k, params.hq_threshold) {
            let mut c = KmerCounts::default();
            c.observe(obs.exts);
            agg.push(counts.owner_of(&obs.kmer), (obs.kmer, c));
        }
    });
    let mine = agg.finish();
    counts.apply_local_batch(ctx, mine, |v| v, |a, b| a.merge(&b));
    ctx.barrier();

    // --- Filtering: Bloom admission and the ε depth cutoff -------------------
    if let Some(admitted) = &admitted {
        counts.retain_local(ctx, |k, _| {
            // `contains` on a key this rank owns is a purely local check.
            admitted.contains(ctx, k)
        });
    }
    counts.retain_local(ctx, |_, v| v.count >= params.min_count);
    ctx.barrier();

    KmerAnalysis {
        counts,
        heavy_hitters,
    }
}

/// Combines the per-rank sketches with a deterministic binomial-tree
/// reduction — round `2^i` merges rank `q·2^(i+1) + 2^i` into rank
/// `q·2^(i+1)` — and broadcasts from rank 0 the heavy hitters whose
/// estimated count is at least `min_count × 64` (a scale-free proxy for
/// "orders of magnitude more frequent than the admission cutoff"). Each round
/// every receiving rank merges at most one sketch, so no rank ever funnels
/// all `P` sketches the way the old gather-on-rank-0 scheme did, and the
/// merge order (hence the resulting list) is independent of thread timing.
fn merge_heavy_hitters(
    ctx: &Ctx,
    sketch: SpaceSaving<Kmer>,
    params: &KmerAnalysisParams,
) -> Vec<(Kmer, u64)> {
    let mut acc = sketch;
    let mut stride = 1usize;
    while stride < ctx.ranks() {
        let mut outgoing: Vec<Vec<SpaceSaving<Kmer>>> = vec![Vec::new(); ctx.ranks()];
        let rank = ctx.rank();
        if rank % (2 * stride) == stride {
            // This rank's subtree is fully merged; hand it to the parent.
            let done = std::mem::replace(&mut acc, SpaceSaving::new(1));
            outgoing[rank - stride] = vec![done];
        }
        for other in ctx.exchange(outgoing) {
            acc.merge(&other);
        }
        stride *= 2;
    }
    let merged: Vec<(Kmer, u64)> = if ctx.rank() == 0 {
        let mut hh = acc.heavy_hitters(params.min_count as u64 * 64);
        // `heavy_hitters` sorts by estimate only; break ties by key so the
        // list is a pure function of the merged sketch.
        hh.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        hh
    } else {
        Vec::new()
    };
    ctx.broadcast(|| merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::Team;
    use seqio::Read;

    fn reads_from(seqs: &[&str]) -> Vec<Read> {
        seqs.iter()
            .enumerate()
            .map(|(i, s)| Read::with_uniform_quality(format!("r{i}"), s.as_bytes(), 35))
            .collect()
    }

    /// Partition reads across ranks the way the pipeline does.
    fn my_slice<'a>(ctx: &Ctx, reads: &'a [Read]) -> &'a [Read] {
        let range = ctx.block_range(reads.len());
        &reads[range]
    }

    /// Every analysis test runs both routing modes.
    fn both_modes(base: KmerAnalysisParams) -> [KmerAnalysisParams; 2] {
        let mut supermer = base.clone();
        supermer.use_supermers = true;
        let mut per_kmer = base;
        per_kmer.use_supermers = false;
        [supermer, per_kmer]
    }

    #[test]
    fn counts_match_naive_counting() {
        // 3 identical reads: every k-mer appears 3 times.
        let reads = reads_from(&["ACGTACGGTTCAGGCA"; 3]);
        let team = Team::single_node(2);
        let k = 7;
        for params in both_modes(KmerAnalysisParams {
            k,
            min_count: 2,
            use_bloom: false,
            ..Default::default()
        }) {
            let reads = &reads;
            let params = &params;
            let out = team.run(move |ctx| {
                let mine = my_slice(ctx, reads);
                let res = kmer_analysis(ctx, mine, params);
                ctx.barrier();
                (res.counts.len(), {
                    let mut all = Vec::new();
                    res.counts.for_each_local(ctx, |_, v| all.push(v.count));
                    all
                })
            });
            let expected_kmers = 16 - k + 1;
            assert_eq!(out[0].0, expected_kmers);
            let counts: Vec<u32> = out.iter().flat_map(|(_, c)| c.clone()).collect();
            assert_eq!(counts.len(), expected_kmers);
            assert!(counts.iter().all(|&c| c == 3));
        }
    }

    #[test]
    fn min_count_filters_singletons() {
        // One read seen twice plus one singleton read: the singleton's unique
        // k-mers must be filtered out by ε = 2.
        let mut reads = reads_from(&["ACGTACGGTTCAGGCAT", "ACGTACGGTTCAGGCAT"]);
        reads.extend(reads_from(&["GGGGGCCCCCAAAAATTTTT"]));
        let team = Team::single_node(2);
        for params in both_modes(KmerAnalysisParams {
            k: 9,
            min_count: 2,
            use_bloom: false,
            ..Default::default()
        }) {
            let reads = &reads;
            let params = &params;
            let total = team.run(move |ctx| {
                let mine = my_slice(ctx, reads);
                let res = kmer_analysis(ctx, mine, params);
                ctx.barrier();
                res.counts.len()
            });
            // The duplicated read contributes 17-9+1 = 9 distinct canonical
            // k-mers. Two of the singleton read's windows happen to be
            // canonical pairs of each other (GGGGGCCCC/GGGGCCCCC and
            // AAAAATTTT/AAAATTTTT), so those two canonical k-mers reach count
            // 2 within a single read and survive the ε filter as well.
            assert_eq!(total[0], 9 + 2);
        }
    }

    #[test]
    fn bloom_prepass_gives_same_result_as_exact_for_repeated_kmers() {
        let reads = reads_from(&["ACGTACGGTTCAGGCATTACG"; 4]);
        let team = Team::single_node(3);
        for use_supermers in [true, false] {
            let run = |use_bloom: bool| {
                let reads = &reads;
                team.run(move |ctx| {
                    let params = KmerAnalysisParams {
                        k: 11,
                        min_count: 2,
                        use_bloom,
                        use_supermers,
                        ..Default::default()
                    };
                    let res = kmer_analysis(ctx, my_slice(ctx, reads), &params);
                    ctx.barrier();
                    res.counts.len()
                })[0]
            };
            let (with_bloom, without_bloom) = (run(true), run(false));
            assert_eq!(with_bloom, without_bloom);
            assert_eq!(with_bloom, 21 - 11 + 1);
        }
    }

    #[test]
    fn extensions_recorded_for_interior_kmers() {
        let reads = reads_from(&["AAACCCGGGTTTACG"; 2]);
        let team = Team::single_node(1);
        for params in both_modes(KmerAnalysisParams {
            k: 5,
            min_count: 2,
            use_bloom: false,
            ..Default::default()
        }) {
            let reads = &reads;
            let params = &params;
            team.run(move |ctx| {
                let res = kmer_analysis(ctx, reads, params);
                // Interior k-mer CCCGG; its reverse complement CCGGG also
                // occurs in the read, so the canonical entry is observed twice
                // per read.
                let km: Kmer = "CCCGG".parse().unwrap();
                let (canon, _) = km.canonical();
                let entry = res
                    .counts
                    .get_cloned(ctx, &canon)
                    .expect("interior k-mer present");
                assert_eq!(entry.count, 4);
                assert!(entry.left.total() > 0);
                assert!(entry.right.total() > 0);
            });
        }
    }

    #[test]
    fn heavy_hitters_surface_dominant_kmer() {
        // A single k-mer repeated a huge number of times (a homopolymer run)
        // among diverse reads.
        let mut seqs: Vec<String> = vec!["A".repeat(40); 50];
        seqs.push("ACGGTCAGGTTCAAGGACT".to_string());
        let reads: Vec<Read> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| Read::with_uniform_quality(format!("r{i}"), s.as_bytes(), 35))
            .collect();
        let team = Team::single_node(2);
        for params in both_modes(KmerAnalysisParams {
            k: 15,
            min_count: 2,
            use_bloom: false,
            heavy_hitter_capacity: 8,
            ..Default::default()
        }) {
            let reads = &reads;
            let params = &params;
            let hh = team.run(move |ctx| {
                let res = kmer_analysis(ctx, my_slice(ctx, reads), params);
                ctx.barrier();
                res.heavy_hitters
            });
            let poly_a: Kmer = "AAAAAAAAAAAAAAA".parse().unwrap();
            for rank_hh in &hh {
                assert!(
                    rank_hh.iter().any(|(k, _)| *k == poly_a),
                    "poly-A heavy hitter not reported: {rank_hh:?}"
                );
            }
        }
    }

    #[test]
    fn supermer_and_per_kmer_tables_are_identical_with_bloom() {
        // Bloom on, ε = 2: admission is deterministic for every surviving
        // k-mer, so the two routing modes must agree exactly — including
        // counts and extension tallies.
        let reads = reads_from(&[
            "ACGTACGGTTCAGGCATTACGGATCCAGTT",
            "ACGTACGGTTCAGGCATTACGGATCCAGTT",
            "TTGACCGGATNACCAGGTTCCAGGAACCTT",
            "TTGACCGGATAACCAGGTTCCAGGAACCTT",
            "GGGGGCCCCCAAAAATTTTTGGGGGCCCCC",
        ]);
        let collect = |use_supermers: bool| {
            let team = Team::single_node(3);
            let reads = &reads;
            let mut all: Vec<(Kmer, KmerCounts)> = team
                .run(move |ctx| {
                    let params = KmerAnalysisParams {
                        k: 11,
                        min_count: 2,
                        use_bloom: true,
                        use_supermers,
                        ..Default::default()
                    };
                    let res = kmer_analysis(ctx, my_slice(ctx, reads), &params);
                    ctx.barrier();
                    res.counts.local_entries(ctx)
                })
                .into_iter()
                .flatten()
                .collect();
            all.sort_by_key(|a| a.0);
            all
        };
        let supermer = collect(true);
        let per_kmer = collect(false);
        assert!(!supermer.is_empty());
        assert_eq!(supermer, per_kmer);
    }

    #[test]
    fn heavy_hitter_list_is_rank_count_invariant() {
        // Capacity comfortably above the distinct-k-mer count keeps every
        // per-rank sketch exact, so the tree reduction must give the same
        // list on 1–8 ranks, in both routing modes.
        let mut seqs = vec!["ACGGTCAGGTTCAAGGACTTACGGTACCAGT".to_string(); 6];
        seqs.extend(vec!["TTTTTTTTTTTTTTTTTTTTTTTTT".to_string(); 9]);
        let reads: Vec<Read> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| Read::with_uniform_quality(format!("r{i}"), s.as_bytes(), 35))
            .collect();
        for use_supermers in [true, false] {
            let mut lists: Vec<Vec<(Kmer, u64)>> = Vec::new();
            for ranks in 1..=8usize {
                let team = Team::single_node(ranks);
                let reads = &reads;
                let hh = team.run(move |ctx| {
                    let params = KmerAnalysisParams {
                        k: 15,
                        min_count: 1,
                        use_bloom: false,
                        heavy_hitter_capacity: 256,
                        use_supermers,
                        ..Default::default()
                    };
                    let res = kmer_analysis(ctx, my_slice(ctx, reads), &params);
                    ctx.barrier();
                    res.heavy_hitters
                });
                // Identical on every rank…
                for rank_hh in &hh[1..] {
                    assert_eq!(rank_hh, &hh[0]);
                }
                assert!(!hh[0].is_empty(), "expected at least the poly-T hitter");
                lists.push(hh.into_iter().next().unwrap());
            }
            // …and identical across rank counts.
            for list in &lists[1..] {
                assert_eq!(list, &lists[0], "use_supermers={use_supermers}");
            }
        }
    }

    #[test]
    fn supermer_mode_ships_fewer_bytes() {
        let seq: String = (0..400)
            .map(|i| ['A', 'C', 'G', 'T'][((i * 2654435761usize) >> 5) % 4])
            .collect();
        let reads = reads_from(&[seq.as_str(); 6]);
        let bytes_for = |use_supermers: bool| {
            let team = Team::single_node(4);
            let reads = &reads;
            team.run(move |ctx| {
                let params = KmerAnalysisParams {
                    k: 21,
                    min_count: 2,
                    use_bloom: true,
                    use_supermers,
                    ..Default::default()
                };
                let _ = kmer_analysis(ctx, my_slice(ctx, reads), &params);
            });
            team.stats_total()
        };
        let supermer = bytes_for(true);
        let per_kmer = bytes_for(false);
        assert!(
            supermer.bytes_sent * 4 < per_kmer.bytes_sent,
            "supermer routing must cut k-mer analysis bytes >=4x: {} vs {}",
            supermer.bytes_sent,
            per_kmer.bytes_sent
        );
        assert!(supermer.supermer_bytes > 0);
        assert!(supermer.supermer_bytes <= supermer.bytes_sent);
        assert_eq!(per_kmer.supermer_bytes, 0);
    }

    #[test]
    #[should_panic]
    fn even_k_rejected() {
        let team = Team::single_node(1);
        team.run(|ctx| {
            let params = KmerAnalysisParams {
                k: 10,
                ..Default::default()
            };
            let _ = kmer_analysis(ctx, &[], &params);
        });
    }
}
