//! Parallel k-mer analysis (§II-B).
//!
//! Every rank processes its slice of the reads, extracts canonical k-mers with
//! their left/right extension observations, and routes them to owner ranks
//! with aggregated messages. Owners count in their local shard of a
//! distributed hash table. Two refinements from the paper are reproduced:
//!
//! * a **distributed Bloom filter pre-pass** admits a k-mer into the counting
//!   table only once it has (probably) been seen at least twice, which keeps
//!   the flood of singleton error k-mers out of memory;
//! * a **streaming heavy-hitter sketch** identifies k-mers with enormous
//!   counts (ubiquitous in metagenomes because of highly abundant organisms)
//!   so callers can inspect/treat them specially; the counting itself remains
//!   exact.

use dht::{bulk_merge, DistBloom, DistMap, SpaceSaving};
use kmers::{kmers_with_exts, Kmer, KmerCounts};
use pgas::Ctx;
use seqio::Read;
use std::sync::Arc;

/// The distributed k-mer → counts table produced by analysis.
pub type KmerCountsMap = Arc<DistMap<Kmer, KmerCounts>>;

/// Parameters of k-mer analysis.
#[derive(Debug, Clone)]
pub struct KmerAnalysisParams {
    /// k-mer length (must be odd so no k-mer is its own reverse complement).
    pub k: usize,
    /// Minimum count ε for a k-mer to be kept (the paper uses ε ≈ 2–3).
    pub min_count: u32,
    /// Phred threshold above which an extension base counts as high quality.
    pub hq_threshold: u8,
    /// Whether to run the Bloom-filter pre-pass.
    pub use_bloom: bool,
    /// Capacity of the per-rank heavy-hitter sketch (0 disables it).
    pub heavy_hitter_capacity: usize,
    /// Aggregation batch size for the all-to-all exchanges.
    pub batch: usize,
}

impl Default for KmerAnalysisParams {
    fn default() -> Self {
        KmerAnalysisParams {
            k: 21,
            min_count: 2,
            hq_threshold: 20,
            use_bloom: true,
            heavy_hitter_capacity: 64,
            batch: 4096,
        }
    }
}

/// The result of k-mer analysis.
pub struct KmerAnalysis {
    /// Distributed table of canonical k-mers that passed the ε filter.
    pub counts: KmerCountsMap,
    /// Heavy hitters detected by the streaming sketch, with estimated counts
    /// (same list on every rank).
    pub heavy_hitters: Vec<(Kmer, u64)>,
}

/// Runs k-mer analysis over this rank's slice of the reads. Collective: every
/// rank must call with its own `reads` slice. Returns the shared distributed
/// counts table (identical `Arc` on every rank).
pub fn kmer_analysis(ctx: &Ctx, reads: &[Read], params: &KmerAnalysisParams) -> KmerAnalysis {
    assert!(params.k >= 3, "k must be at least 3");
    assert!(
        params.k % 2 == 1,
        "k must be odd so canonical k-mers are unambiguous"
    );
    assert!(params.min_count >= 1);

    let counts: KmerCountsMap = DistMap::shared(ctx);

    // --- Optional pass 1: Bloom admission + heavy hitters -------------------
    // The admission set lives on the owner rank: a k-mer is admitted once the
    // Bloom filter has seen it before, i.e. from its second occurrence on.
    let admitted: Option<Arc<DistMap<Kmer, ()>>> = if params.use_bloom {
        let expected_per_rank = estimate_kmers(reads, params.k) + 16;
        let bloom = ctx.share(|| DistBloom::new(ctx.ranks(), expected_per_rank * 2, 0.01));
        let admitted: Arc<DistMap<Kmer, ()>> = DistMap::shared(ctx);
        let mut agg: pgas::Aggregator<Kmer> = pgas::Aggregator::new(ctx, params.batch);
        for read in reads {
            for obs in kmers_with_exts(&read.seq, &read.qual, params.k, params.hq_threshold) {
                agg.push(counts.owner_of(&obs.kmer), obs.kmer);
            }
        }
        let mine = agg.finish();
        for kmer in mine {
            if bloom.insert_and_check(ctx, &kmer) {
                admitted.upsert(ctx, kmer, || (), |_| {});
            }
        }
        ctx.barrier();
        Some(admitted)
    } else {
        None
    };

    // --- Heavy-hitter sketch over the local stream ---------------------------
    let heavy_hitters = if params.heavy_hitter_capacity > 0 {
        let mut sketch: SpaceSaving<Kmer> = SpaceSaving::new(params.heavy_hitter_capacity);
        for read in reads {
            for obs in kmers_with_exts(&read.seq, &read.qual, params.k, params.hq_threshold) {
                sketch.offer(obs.kmer, 1);
            }
        }
        merge_heavy_hitters(ctx, sketch, params)
    } else {
        Vec::new()
    };

    // --- Pass 2: exact counting with extensions ------------------------------
    let items = reads.iter().flat_map(|read| {
        kmers_with_exts(&read.seq, &read.qual, params.k, params.hq_threshold)
            .into_iter()
            .map(|obs| {
                let mut c = KmerCounts::default();
                c.observe(obs.exts);
                (obs.kmer, c)
            })
    });
    bulk_merge(ctx, &counts, items, params.batch, |a, b| a.merge(&b));

    // --- Filtering: Bloom admission and the ε depth cutoff -------------------
    if let Some(admitted) = &admitted {
        counts.retain_local(ctx, |k, _| {
            // `contains` on a key this rank owns is a purely local check.
            admitted.contains(ctx, k)
        });
    }
    counts.retain_local(ctx, |_, v| v.count >= params.min_count);
    ctx.barrier();

    KmerAnalysis {
        counts,
        heavy_hitters,
    }
}

/// Rough number of k-mers this rank will contribute (for Bloom sizing).
fn estimate_kmers(reads: &[Read], k: usize) -> usize {
    reads
        .iter()
        .map(|r| r.seq.len().saturating_sub(k - 1))
        .sum()
}

/// Gathers per-rank sketches on rank 0, merges them and broadcasts the heavy
/// hitters whose estimated count is at least `min_count × 64` (a scale-free
/// proxy for "orders of magnitude more frequent than the admission cutoff").
fn merge_heavy_hitters(
    ctx: &Ctx,
    sketch: SpaceSaving<Kmer>,
    params: &KmerAnalysisParams,
) -> Vec<(Kmer, u64)> {
    // Ship every rank's tracked entries to rank 0.
    let mut outgoing: Vec<Vec<(Kmer, u64)>> = vec![Vec::new(); ctx.ranks()];
    outgoing[0] = sketch.heavy_hitters(0);
    let received = ctx.exchange(outgoing);
    let merged: Vec<(Kmer, u64)> = if ctx.rank() == 0 {
        let mut combined: SpaceSaving<Kmer> = SpaceSaving::new(params.heavy_hitter_capacity.max(1));
        for (k, c) in received {
            combined.offer(k, c);
        }
        combined.heavy_hitters(params.min_count as u64 * 64)
    } else {
        Vec::new()
    };
    ctx.broadcast(|| merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::Team;
    use seqio::Read;

    fn reads_from(seqs: &[&str]) -> Vec<Read> {
        seqs.iter()
            .enumerate()
            .map(|(i, s)| Read::with_uniform_quality(format!("r{i}"), s.as_bytes(), 35))
            .collect()
    }

    /// Partition reads across ranks the way the pipeline does.
    fn my_slice<'a>(ctx: &Ctx, reads: &'a [Read]) -> &'a [Read] {
        let range = ctx.block_range(reads.len());
        &reads[range]
    }

    #[test]
    fn counts_match_naive_counting() {
        // 3 identical reads: every k-mer appears 3 times.
        let reads = reads_from(&["ACGTACGGTTCAGGCA"; 3]);
        let team = Team::single_node(2);
        let k = 7;
        let out = team.run(|ctx| {
            let mine = my_slice(ctx, &reads);
            let params = KmerAnalysisParams {
                k,
                min_count: 2,
                use_bloom: false,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, mine, &params);
            ctx.barrier();
            (res.counts.len(), {
                let mut all = Vec::new();
                res.counts.for_each_local(ctx, |_, v| all.push(v.count));
                all
            })
        });
        let expected_kmers = 16 - k + 1;
        assert_eq!(out[0].0, expected_kmers);
        let counts: Vec<u32> = out.iter().flat_map(|(_, c)| c.clone()).collect();
        assert_eq!(counts.len(), expected_kmers);
        assert!(counts.iter().all(|&c| c == 3));
    }

    #[test]
    fn min_count_filters_singletons() {
        // One read seen twice plus one singleton read: the singleton's unique
        // k-mers must be filtered out by ε = 2.
        let mut reads = reads_from(&["ACGTACGGTTCAGGCAT", "ACGTACGGTTCAGGCAT"]);
        reads.extend(reads_from(&["GGGGGCCCCCAAAAATTTTT"]));
        let team = Team::single_node(2);
        let total = team.run(|ctx| {
            let mine = my_slice(ctx, &reads);
            let params = KmerAnalysisParams {
                k: 9,
                min_count: 2,
                use_bloom: false,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, mine, &params);
            ctx.barrier();
            res.counts.len()
        });
        // The duplicated read contributes 17-9+1 = 9 distinct canonical k-mers.
        // Two of the singleton read's windows happen to be canonical pairs of
        // each other (GGGGGCCCC/GGGGCCCCC and AAAAATTTT/AAAATTTTT), so those
        // two canonical k-mers reach count 2 within a single read and survive
        // the ε filter as well.
        assert_eq!(total[0], 9 + 2);
    }

    #[test]
    fn bloom_prepass_gives_same_result_as_exact_for_repeated_kmers() {
        let reads = reads_from(&["ACGTACGGTTCAGGCATTACG"; 4]);
        let team = Team::single_node(3);
        let (with_bloom, without_bloom) = {
            let reads2 = reads.clone();
            let a = team.run(|ctx| {
                let params = KmerAnalysisParams {
                    k: 11,
                    min_count: 2,
                    use_bloom: true,
                    ..Default::default()
                };
                let res = kmer_analysis(ctx, my_slice(ctx, &reads2), &params);
                ctx.barrier();
                res.counts.len()
            })[0];
            let b = team.run(|ctx| {
                let params = KmerAnalysisParams {
                    k: 11,
                    min_count: 2,
                    use_bloom: false,
                    ..Default::default()
                };
                let res = kmer_analysis(ctx, my_slice(ctx, &reads), &params);
                ctx.barrier();
                res.counts.len()
            })[0];
            (a, b)
        };
        assert_eq!(with_bloom, without_bloom);
        assert_eq!(with_bloom, 21 - 11 + 1);
    }

    #[test]
    fn extensions_recorded_for_interior_kmers() {
        let reads = reads_from(&["AAACCCGGGTTTACG"; 2]);
        let team = Team::single_node(1);
        team.run(|ctx| {
            let params = KmerAnalysisParams {
                k: 5,
                min_count: 2,
                use_bloom: false,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, &reads, &params);
            // Interior k-mer CCCGG; its reverse complement CCGGG also occurs in
            // the read, so the canonical entry is observed twice per read.
            let km: Kmer = "CCCGG".parse().unwrap();
            let (canon, _) = km.canonical();
            let entry = res
                .counts
                .get_cloned(ctx, &canon)
                .expect("interior k-mer present");
            assert_eq!(entry.count, 4);
            assert!(entry.left.total() > 0);
            assert!(entry.right.total() > 0);
        });
    }

    #[test]
    fn heavy_hitters_surface_dominant_kmer() {
        // A single k-mer repeated a huge number of times (a homopolymer run)
        // among diverse reads.
        let mut seqs: Vec<String> = vec!["A".repeat(40); 50];
        seqs.push("ACGGTCAGGTTCAAGGACT".to_string());
        let reads: Vec<Read> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| Read::with_uniform_quality(format!("r{i}"), s.as_bytes(), 35))
            .collect();
        let team = Team::single_node(2);
        let hh = team.run(|ctx| {
            let params = KmerAnalysisParams {
                k: 15,
                min_count: 2,
                use_bloom: false,
                heavy_hitter_capacity: 8,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, my_slice(ctx, &reads), &params);
            ctx.barrier();
            res.heavy_hitters
        });
        let poly_a: Kmer = "AAAAAAAAAAAAAAA".parse().unwrap();
        for rank_hh in &hh {
            assert!(
                rank_hh.iter().any(|(k, _)| *k == poly_a),
                "poly-A heavy hitter not reported: {rank_hh:?}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn even_k_rejected() {
        let team = Team::single_node(1);
        team.run(|ctx| {
            let params = KmerAnalysisParams {
                k: 10,
                ..Default::default()
            };
            let _ = kmer_analysis(ctx, &[], &params);
        });
    }
}
