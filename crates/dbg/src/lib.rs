//! Parallel k-mer analysis and the distributed de Bruijn graph.
//!
//! This crate implements stages 1–4 (and 8) of MetaHipMer's iterative contig
//! generation (Figure 1 of the paper):
//!
//! 1. [`analysis`] — **k-mer analysis** with distributed histograms, a
//!    distributed Bloom filter to keep singleton (mostly erroneous) k-mers out
//!    of the tables, streaming heavy-hitter detection and high-quality
//!    extension counting (§II-B);
//! 2. [`graph`] — construction of the **distributed de Bruijn graph** hash
//!    table, reducing extension counts to `[ACGT]/F/X` codes under either the
//!    HipMer global threshold or the MetaHipMer depth-dependent threshold
//!    `thq = max(t_base, e·d)` (§II-C);
//! 3. [`traversal`] — the **parallel contig traversal** that claims vertices
//!    with atomics and emits contigs (§II-C/D);
//! 4. [`bubble`] — **bubble merging and hair removal** on the contig graph
//!    (§II-D);
//! 5. [`pruning`] — the **iterative graph pruning** of Algorithm 2 (§II-E);
//! 6. [`merge`] — **k-mer set merging** across iterations: (k+s)-mers
//!    extracted from the previous iteration's contigs are injected into the
//!    next iteration's k-mer set as confident k-mers (§II-H).
//!
//! The shared [`types::Contig`] / [`types::ContigSet`] types produced here are
//! consumed by the aligner, the scaffolder and the evaluation crates.

pub mod analysis;
pub mod bubble;
pub mod contig_graph;
pub mod graph;
pub mod merge;
pub mod pruning;
mod segment;
pub mod store;
pub mod traversal;
pub mod types;

pub use analysis::{
    kmer_analysis, kmer_analysis_from, KmerAnalysis, KmerAnalysisParams, KmerCountsMap,
    MinimizerPartitioner,
};
pub use bubble::{merge_bubbles_and_remove_hair, BubbleParams, BubbleReport};
pub use contig_graph::ContigAdjacency;
pub use graph::{build_graph, KmerGraph, KmerVertex, ThresholdPolicy};
pub use merge::{inject_contig_kmers, inject_contig_kmers_ref};
pub use pruning::{prune_iteratively, PruningParams, PruningReport};
pub use store::{ContigMeta, ContigReader, ContigStore, ContigStoreParams, ContigsRef, PackedSeq};
pub use traversal::{traverse_contigs, TraversalParams};
pub use types::{Contig, ContigId, ContigSet};
