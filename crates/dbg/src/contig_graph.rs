//! Contig-end anchors and contig adjacency.
//!
//! Several stages (bubble merging, hair removal, iterative pruning) need to
//! know how contigs connect to each other through the fork k-mers that
//! terminated the traversal. For a contig's end we call the k-mer *just
//! outside* the contig (reached through the end k-mer's extension) the end's
//! **anchor**; two contigs that share an anchor are neighbours in the contig
//! graph. The anchor index is a distributed hash table keyed by anchor k-mer,
//! exactly the "bubble-contig graph" construction of §II-D.

use crate::graph::{lookup_oriented, lookup_oriented_many, KmerGraph, OrientedVertex};
use crate::types::{ContigId, ContigSet};
use dht::{bulk_merge, DistMap};
use kmers::{Ext, Kmer};
use pgas::Ctx;
use std::sync::Arc;

/// Which end of a contig an anchor belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// The anchors of one contig (in the contig's stored orientation).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ContigEnds {
    pub left_anchor: Option<Kmer>,
    pub right_anchor: Option<Kmer>,
}

/// Anchor information and adjacency for a whole contig set. Identical on every
/// rank after construction.
#[derive(Debug, Clone, Default)]
pub struct ContigAdjacency {
    /// Indexed by contig id.
    pub ends: Vec<ContigEnds>,
    /// For every contig, the ids of contigs sharing at least one anchor k-mer.
    pub neighbors: Vec<Vec<ContigId>>,
}

impl ContigAdjacency {
    /// Mean depth of a contig's (alive) neighbours; 0 when it has none.
    pub fn neighbor_mean_depth(&self, contigs: &ContigSet, id: ContigId, alive: &[bool]) -> f64 {
        let ns = &self.neighbors[id as usize];
        let mut sum = 0.0;
        let mut n = 0usize;
        for &other in ns {
            if alive[other as usize] {
                sum += contigs.contigs[other as usize].depth;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Number of anchors a contig has (0, 1 or 2).
    pub fn anchor_count(&self, id: ContigId) -> usize {
        let e = &self.ends[id as usize];
        usize::from(e.left_anchor.is_some()) + usize::from(e.right_anchor.is_some())
    }
}

/// Computes the end anchors of one contig from the k-mer graph with
/// fine-grained lookups (the unaggregated baseline; the batched path in
/// [`build_adjacency`] must produce exactly the same anchors).
fn contig_ends(ctx: &Ctx, graph: &KmerGraph, seq: &[u8], k: usize) -> ContigEnds {
    if seq.len() < k {
        return ContigEnds::default();
    }
    let first = Kmer::from_bytes(&seq[..k]);
    let last = Kmer::from_bytes(&seq[seq.len() - k..]);
    let left_anchor =
        first.and_then(|f| lookup_oriented(ctx, graph, &f).and_then(|v| left_anchor_of(&f, &v)));
    let right_anchor =
        last.and_then(|l| lookup_oriented(ctx, graph, &l).and_then(|v| right_anchor_of(&l, &v)));
    ContigEnds {
        left_anchor,
        right_anchor,
    }
}

fn left_anchor_of(first: &Kmer, v: &OrientedVertex) -> Option<Kmer> {
    match v.left {
        Ext::Base(c) => Some(first.extended_left(c).canonical().0),
        _ => None,
    }
}

fn right_anchor_of(last: &Kmer, v: &OrientedVertex) -> Option<Kmer> {
    match v.right {
        Ext::Base(c) => Some(last.extended_right(c).canonical().0),
        _ => None,
    }
}

/// A contig's slots in the batched anchor lookup: its id plus, for each end
/// that has a query, the index of that query and the end k-mer itself.
type EndQuerySlots = (ContigId, Option<(usize, Kmer)>, Option<(usize, Kmer)>);

/// Batched anchor computation: the end k-mers of the rank's whole contig
/// block are resolved in one aggregated round trip instead of two
/// fine-grained graph reads per contig.
fn batched_ends(
    ctx: &Ctx,
    graph: &KmerGraph,
    contigs: &ContigSet,
    my_range: std::ops::Range<usize>,
    lookup_batch: usize,
) -> Vec<(ContigId, ContigEnds)> {
    let k = contigs.k;
    // queries[2 * i] is contig i's first k-mer, queries[2 * i + 1] its last
    // (when present) — `positions` maps each contig to its query slots.
    let mut queries: Vec<Kmer> = Vec::with_capacity(2 * my_range.len());
    let mut positions: Vec<EndQuerySlots> = Vec::with_capacity(my_range.len());
    for idx in my_range {
        let c = &contigs.contigs[idx];
        if c.seq.len() < k {
            positions.push((c.id, None, None));
            continue;
        }
        let first = Kmer::from_bytes(&c.seq[..k]).map(|f| {
            queries.push(f);
            (queries.len() - 1, f)
        });
        let last = Kmer::from_bytes(&c.seq[c.seq.len() - k..]).map(|l| {
            queries.push(l);
            (queries.len() - 1, l)
        });
        positions.push((c.id, first, last));
    }
    let vertices = lookup_oriented_many(ctx, graph, &queries, lookup_batch);
    positions
        .into_iter()
        .map(|(id, first, last)| {
            let left_anchor = first
                .and_then(|(slot, f)| vertices[slot].as_ref().and_then(|v| left_anchor_of(&f, v)));
            let right_anchor = last
                .and_then(|(slot, l)| vertices[slot].as_ref().and_then(|v| right_anchor_of(&l, v)));
            (
                id,
                ContigEnds {
                    left_anchor,
                    right_anchor,
                },
            )
        })
        .collect()
}

/// Collectively builds anchors and adjacency for a contig set.
///
/// `lookup_batch` controls how the anchor k-mers are read from the graph: a
/// value greater than one resolves the rank's whole block in a single
/// aggregated request–response round trip of messages of (at most) that many
/// lookups; `1` (or `0`) falls back to per-contig fine-grained reads, the
/// unaggregated baseline the ablation harness measures against. Both paths
/// produce identical adjacency.
pub fn build_adjacency(
    ctx: &Ctx,
    contigs: &ContigSet,
    graph: &KmerGraph,
    lookup_batch: usize,
) -> ContigAdjacency {
    let n = contigs.len();
    let my_range = ctx.block_range(n);

    // --- Anchors for this rank's block of contigs ----------------------------
    let my_ends: Vec<(ContigId, ContigEnds)> = if lookup_batch > 1 {
        batched_ends(ctx, graph, contigs, my_range, lookup_batch)
    } else {
        my_range
            .map(|idx| {
                let c = &contigs.contigs[idx];
                (c.id, contig_ends(ctx, graph, &c.seq, contigs.k))
            })
            .collect()
    };

    // --- Distributed anchor index: anchor k-mer -> [(contig, side)] ----------
    let index: Arc<DistMap<Kmer, Vec<(ContigId, Side)>>> = DistMap::shared(ctx);
    let items = my_ends.iter().flat_map(|(id, ends)| {
        let mut v = Vec::new();
        if let Some(a) = ends.left_anchor {
            v.push((a, vec![(*id, Side::Left)]));
        }
        if let Some(a) = ends.right_anchor {
            v.push((a, vec![(*id, Side::Right)]));
        }
        v
    });
    bulk_merge(ctx, &index, items, 1024, |a, mut b| a.append(&mut b));

    // --- Neighbour pairs from locally owned anchor buckets -------------------
    let mut my_pairs: Vec<(ContigId, ContigId)> = Vec::new();
    index.for_each_local(ctx, |_, members| {
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                let (a, b) = (members[i].0, members[j].0);
                if a != b {
                    my_pairs.push((a, b));
                }
            }
        }
    });

    // --- Gather ends and pairs on rank 0, broadcast the result ----------------
    let mut ends_out: Vec<Vec<(ContigId, ContigEnds)>> = vec![Vec::new(); ctx.ranks()];
    ends_out[0] = my_ends;
    let all_ends = ctx.exchange(ends_out);
    let mut pairs_out: Vec<Vec<(ContigId, ContigId)>> = vec![Vec::new(); ctx.ranks()];
    pairs_out[0] = my_pairs;
    let all_pairs = ctx.exchange(pairs_out);

    let adjacency = if ctx.rank() == 0 {
        let mut ends = vec![ContigEnds::default(); n];
        for (id, e) in all_ends {
            ends[id as usize] = e;
        }
        let mut neighbors: Vec<Vec<ContigId>> = vec![Vec::new(); n];
        for (a, b) in all_pairs {
            neighbors[a as usize].push(b);
            neighbors[b as usize].push(a);
        }
        for ns in &mut neighbors {
            ns.sort_unstable();
            ns.dedup();
        }
        ContigAdjacency { ends, neighbors }
    } else {
        ContigAdjacency::default()
    };
    (*ctx.share(|| adjacency)).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{kmer_analysis, KmerAnalysisParams};
    use crate::graph::{build_graph, ThresholdPolicy};
    use crate::traversal::{traverse_contigs, TraversalParams};
    use pgas::Team;
    use seqio::Read;

    /// Build a forked structure (two sequences sharing a middle segment) and
    /// return (contigs, adjacency) for inspection.
    fn forked_assembly(ranks: usize) -> (ContigSet, ContigAdjacency) {
        let common = "GGCATTACGGATACCAGGATCCAG";
        let a = format!("ACGGTCAGGTTCAAGGACT{common}TACCGGTTAACCGGTATTC");
        let b = format!("TTTTGAGGCCACAAAATTT{common}CTCTCGAGAGAGGCGCGAT");
        let reads: Vec<Read> = [&a, &b]
            .iter()
            .flat_map(|s| {
                (0..3).map(move |i| Read::with_uniform_quality(format!("r{i}"), s.as_bytes(), 35))
            })
            .collect();
        let team = Team::single_node(ranks);
        let out = team.run(|ctx| {
            let range = ctx.block_range(reads.len());
            let params = KmerAnalysisParams {
                k: 15,
                min_count: 2,
                use_bloom: false,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, &reads[range], &params);
            let graph = build_graph(ctx, &res.counts, ThresholdPolicy::metahipmer_default());
            let contigs = traverse_contigs(ctx, &graph, 15, &TraversalParams::default());
            let adj = build_adjacency(ctx, &contigs, &graph, 4096);
            (contigs, adj)
        });
        // All ranks agree.
        for (c, a2) in &out[1..] {
            assert_eq!(c, &out[0].0);
            assert_eq!(a2.ends, out[0].1.ends);
            assert_eq!(a2.neighbors, out[0].1.neighbors);
        }
        out[0].clone()
    }

    #[test]
    fn fork_contigs_are_adjacent_through_their_anchors() {
        let (contigs, adj) = forked_assembly(2);
        assert_eq!(adj.ends.len(), contigs.len());
        // The shared-middle contig must have at least two neighbours (the
        // flanking contigs on one side at minimum).
        let middle_id = contigs
            .contigs
            .iter()
            .find(|c| {
                let s = String::from_utf8(c.seq.clone()).unwrap();
                let r = String::from_utf8(seqio::alphabet::revcomp(&c.seq)).unwrap();
                s.contains("GGATACCAGGATCC") || r.contains("GGATACCAGGATCC")
            })
            .map(|c| c.id)
            .expect("shared middle contig exists");
        assert!(
            adj.neighbors[middle_id as usize].len() >= 2,
            "middle contig should neighbour the flanks: {:?}",
            adj.neighbors
        );
        // Flank contigs neighbour the middle contig.
        let some_flank = contigs
            .contigs
            .iter()
            .find(|c| c.id != middle_id)
            .unwrap()
            .id;
        assert!(
            adj.neighbors[some_flank as usize].contains(&middle_id)
                || adj.neighbors[middle_id as usize].contains(&some_flank)
        );
    }

    #[test]
    fn batched_and_fine_grained_anchor_lookups_agree() {
        let common = "GGCATTACGGATACCAGGATCCAG";
        let a = format!("ACGGTCAGGTTCAAGGACT{common}TACCGGTTAACCGGTATTC");
        let b = format!("TTTTGAGGCCACAAAATTT{common}CTCTCGAGAGAGGCGCGAT");
        let reads: Vec<Read> = [&a, &b]
            .iter()
            .flat_map(|s| {
                (0..3).map(move |i| Read::with_uniform_quality(format!("r{i}"), s.as_bytes(), 35))
            })
            .collect();
        let team = Team::single_node(3);
        team.run(|ctx| {
            let range = ctx.block_range(reads.len());
            let params = KmerAnalysisParams {
                k: 15,
                min_count: 2,
                use_bloom: false,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, &reads[range], &params);
            let graph = build_graph(ctx, &res.counts, ThresholdPolicy::metahipmer_default());
            let contigs = traverse_contigs(ctx, &graph, 15, &TraversalParams::default());
            let fine = build_adjacency(ctx, &contigs, &graph, 1);
            for batch in [2usize, 3, 4096] {
                let batched = build_adjacency(ctx, &contigs, &graph, batch);
                assert_eq!(batched.ends, fine.ends, "batch={batch}");
                assert_eq!(batched.neighbors, fine.neighbors, "batch={batch}");
            }
        });
    }

    #[test]
    fn adjacency_identical_across_rank_counts() {
        let (c1, a1) = forked_assembly(1);
        let (c3, a3) = forked_assembly(3);
        assert_eq!(c1, c3);
        assert_eq!(a1.ends, a3.ends);
        assert_eq!(a1.neighbors, a3.neighbors);
    }

    #[test]
    fn isolated_contig_has_no_anchors() {
        let seq = "ACGGTCAGGTTCAAGGACTTACGGACCATGGCATTACG";
        let reads: Vec<Read> = (0..3)
            .map(|i| Read::with_uniform_quality(format!("r{i}"), seq.as_bytes(), 35))
            .collect();
        let team = Team::single_node(2);
        let out = team.run(|ctx| {
            let range = ctx.block_range(reads.len());
            let params = KmerAnalysisParams {
                k: 15,
                min_count: 2,
                use_bloom: false,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, &reads[range], &params);
            let graph = build_graph(ctx, &res.counts, ThresholdPolicy::metahipmer_default());
            let contigs = traverse_contigs(ctx, &graph, 15, &TraversalParams::default());
            build_adjacency(ctx, &contigs, &graph, 4096)
        });
        let adj = &out[0];
        assert_eq!(adj.ends.len(), 1);
        assert_eq!(adj.anchor_count(0), 0);
        assert!(adj.neighbors[0].is_empty());
    }

    #[test]
    fn neighbor_mean_depth_respects_alive_mask() {
        let (contigs, adj) = forked_assembly(1);
        if contigs.len() < 2 {
            return;
        }
        let alive_all = vec![true; contigs.len()];
        let alive_none = vec![false; contigs.len()];
        for c in &contigs.contigs {
            let with = adj.neighbor_mean_depth(&contigs, c.id, &alive_all);
            let without = adj.neighbor_mean_depth(&contigs, c.id, &alive_none);
            assert!(with >= 0.0);
            assert_eq!(without, 0.0);
        }
    }
}
