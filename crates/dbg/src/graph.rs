//! The distributed de Bruijn graph hash table (§II-C).
//!
//! Vertices are canonical k-mers; edges are implicit in the per-side extension
//! codes, exactly as in the UPC implementation ("a two-letter code
//! `[ACGT][ACGT]` that indicates the unique bases that immediately precede and
//! follow the k-mer"). The difference between HipMer and MetaHipMer lives in
//! [`ThresholdPolicy`]: HipMer applies one global limit on contradicting
//! extensions, MetaHipMer scales the limit with the k-mer's depth so that both
//! very-high-coverage and very-low-coverage organisms keep their unique
//! extensions.

use crate::analysis::KmerCountsMap;
use dht::DistMap;
use kmers::{Ext, Kmer};
use pgas::Ctx;
use std::sync::Arc;

/// How many contradicting high-quality extension observations a k-mer may
/// have while still being assigned a unique extension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// HipMer: one global threshold for every k-mer, regardless of depth.
    Global { thq: u32 },
    /// MetaHipMer: `thq = max(t_base, error_rate × depth)` — §II-C.
    Dynamic { t_base: u32, error_rate: f64 },
}

impl ThresholdPolicy {
    /// The contradiction budget for a k-mer of the given depth.
    pub fn max_contradictions(&self, depth: u32) -> u32 {
        match *self {
            ThresholdPolicy::Global { thq } => thq,
            ThresholdPolicy::Dynamic { t_base, error_rate } => {
                t_base.max((error_rate * depth as f64).floor() as u32)
            }
        }
    }

    /// The default MetaHipMer policy used by the pipeline.
    pub fn metahipmer_default() -> Self {
        ThresholdPolicy::Dynamic {
            t_base: 2,
            error_rate: 0.05,
        }
    }

    /// The default HipMer (single-genome) policy used by the baseline.
    pub fn hipmer_default() -> Self {
        ThresholdPolicy::Global { thq: 2 }
    }
}

/// A de Bruijn graph vertex: depth, reduced extensions, and the traversal
/// claim flag (`used`) manipulated with atomic-style entry updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmerVertex {
    pub count: u32,
    pub left: Ext,
    pub right: Ext,
    /// Set by the traversal when the vertex has been claimed into a contig.
    pub used: bool,
}

impl KmerVertex {
    /// True if the vertex has a unique high-quality extension on both sides —
    /// the "UU" k-mers that form contig interiors.
    pub fn is_uu(&self) -> bool {
        self.left.is_extendable() && self.right.is_extendable()
    }
}

/// The distributed de Bruijn graph.
pub type KmerGraph = Arc<DistMap<Kmer, KmerVertex>>;

/// Builds the graph from the k-mer counts table by reducing each side's
/// extension counts under the given threshold policy. Collective. The counts
/// table is left untouched (it is reused by later stages, e.g. pruning needs
/// fork k-mers and §II-H merges new k-mers into it).
pub fn build_graph(ctx: &Ctx, counts: &KmerCountsMap, policy: ThresholdPolicy) -> KmerGraph {
    // The graph inherits the counts table's partitioner (hash by default,
    // minimizer-based under supermer routing) so that both tables agree on
    // ownership and the per-rank rebuild below stays purely local.
    let graph: KmerGraph =
        ctx.share(|| DistMap::with_partitioner(ctx.ranks(), counts.partitioner()));
    let mut local: Vec<(Kmer, KmerVertex)> = Vec::new();
    counts.for_each_local(ctx, |kmer, c| {
        let budget = policy.max_contradictions(c.count);
        local.push((
            *kmer,
            KmerVertex {
                count: c.count,
                left: c.left.reduce(budget),
                right: c.right.reduce(budget),
                used: false,
            },
        ));
    });
    // Keys keep the same owner in the new map (same partitioner, same rank
    // count), so the insertion is purely local.
    graph.apply_local_batch(ctx, local, |v| v, |slot, v| *slot = v);
    ctx.barrier();
    graph
}

/// Looks up a k-mer *in the orientation the caller is walking in*: the k-mer
/// is canonicalised for the table lookup and, if the canonical form is the
/// reverse complement, the left/right extensions are swapped and complemented
/// so they are expressed in the caller's orientation.
pub fn lookup_oriented(
    ctx: &Ctx,
    graph: &DistMap<Kmer, KmerVertex>,
    kmer: &Kmer,
) -> Option<OrientedVertex> {
    let (canon, was_rc) = kmer.canonical();
    let v = graph.get_cloned(ctx, &canon)?;
    Some(orient(v, canon, was_rc))
}

/// Batched, collective counterpart of [`lookup_oriented`]: canonicalises
/// every queried k-mer, resolves all of them in a single aggregated
/// request–response round trip ([`DistMap::get_many`]), and re-orients each
/// result into its caller's walk orientation. Every rank must call this in
/// the same phase (an empty `kmers` slice still participates); `batch` is the
/// per-owner aggregation size of the underlying messages.
pub fn lookup_oriented_many(
    ctx: &Ctx,
    graph: &DistMap<Kmer, KmerVertex>,
    kmers: &[Kmer],
    batch: usize,
) -> Vec<Option<OrientedVertex>> {
    let canon: Vec<(Kmer, bool)> = kmers.iter().map(|k| k.canonical()).collect();
    let keys: Vec<Kmer> = canon.iter().map(|&(c, _)| c).collect();
    let fetched = graph.get_many(ctx, &keys, batch);
    fetched
        .into_iter()
        .zip(canon)
        .map(|(v, (c, was_rc))| v.map(|v| orient(v, c, was_rc)))
        .collect()
}

/// A vertex expressed in walk orientation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrientedVertex {
    /// The canonical key under which the vertex is stored (needed for claims).
    pub canonical: Kmer,
    pub count: u32,
    pub left: Ext,
    pub right: Ext,
    pub used: bool,
}

pub(crate) fn flip_ext(e: Ext) -> Ext {
    match e {
        Ext::Base(c) => Ext::Base(3 - c),
        other => other,
    }
}

pub(crate) fn orient(v: KmerVertex, canonical: Kmer, was_rc: bool) -> OrientedVertex {
    if was_rc {
        OrientedVertex {
            canonical,
            count: v.count,
            left: flip_ext(v.right),
            right: flip_ext(v.left),
            used: v.used,
        }
    } else {
        OrientedVertex {
            canonical,
            count: v.count,
            left: v.left,
            right: v.right,
            used: v.used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{kmer_analysis, KmerAnalysisParams};
    use pgas::Team;
    use seqio::Read;

    #[test]
    fn threshold_policies() {
        let global = ThresholdPolicy::Global { thq: 3 };
        assert_eq!(global.max_contradictions(10), 3);
        assert_eq!(global.max_contradictions(100_000), 3);
        let dynamic = ThresholdPolicy::Dynamic {
            t_base: 2,
            error_rate: 0.01,
        };
        assert_eq!(dynamic.max_contradictions(10), 2);
        assert_eq!(dynamic.max_contradictions(1000), 10);
        assert_eq!(dynamic.max_contradictions(100_000), 1000);
    }

    #[test]
    fn graph_from_clean_reads_is_all_uu_inside() {
        // A single sequence covered 3x: interior k-mers have unique extensions.
        let seq = "ACGGTCAGGTTCAAGGACTTACGGACCATG";
        let reads: Vec<Read> = (0..3)
            .map(|i| Read::with_uniform_quality(format!("r{i}"), seq.as_bytes(), 35))
            .collect();
        let team = Team::single_node(2);
        let uu_counts = team.run(|ctx| {
            let range = ctx.block_range(reads.len());
            let params = KmerAnalysisParams {
                k: 11,
                min_count: 2,
                use_bloom: false,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, &reads[range], &params);
            let graph = build_graph(ctx, &res.counts, ThresholdPolicy::metahipmer_default());
            let mut uu = 0usize;
            let mut total = 0usize;
            graph.for_each_local(ctx, |_, v| {
                total += 1;
                if v.is_uu() {
                    uu += 1;
                }
            });
            (
                ctx.allreduce_sum_u64(uu as u64),
                ctx.allreduce_sum_u64(total as u64),
            )
        });
        let (uu, total) = uu_counts[0];
        let expected_total = seq.len() as u64 - 11 + 1;
        assert_eq!(total, expected_total);
        // The two terminal k-mers have a missing extension on one side.
        assert_eq!(uu, expected_total - 2);
    }

    #[test]
    fn oriented_lookup_flips_extensions() {
        let seq = "ACGGTCAGGTTCAAGGACT";
        let reads: Vec<Read> = (0..2)
            .map(|i| Read::with_uniform_quality(format!("r{i}"), seq.as_bytes(), 35))
            .collect();
        let team = Team::single_node(1);
        team.run(|ctx| {
            let params = KmerAnalysisParams {
                k: 7,
                min_count: 2,
                use_bloom: false,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, &reads, &params);
            let graph = build_graph(ctx, &res.counts, ThresholdPolicy::metahipmer_default());
            // Interior k-mer at position 5: "CAGGTTC"; previous base T, next A.
            let fwd: Kmer = "CAGGTTC".parse().unwrap();
            let v = lookup_oriented(ctx, &graph, &fwd).expect("present");
            assert_eq!(v.left, Ext::Base(3), "expected T on the left");
            assert_eq!(v.right, Ext::Base(0), "expected A on the right");
            // Looking the same position up in the reverse orientation swaps and
            // complements: left becomes comp(A)=T, right becomes comp(T)=A.
            let rc = fwd.revcomp();
            let v_rc = lookup_oriented(ctx, &graph, &rc).expect("present");
            assert_eq!(v_rc.left, Ext::Base(3));
            assert_eq!(v_rc.right, Ext::Base(0));
            assert_eq!(v.canonical, v_rc.canonical);
        });
    }

    #[test]
    fn batched_oriented_lookup_matches_fine_grained() {
        let seq = "ACGGTCAGGTTCAAGGACTTACGGACCATG";
        let reads: Vec<Read> = (0..2)
            .map(|i| Read::with_uniform_quality(format!("r{i}"), seq.as_bytes(), 35))
            .collect();
        let team = Team::single_node(3);
        team.run(|ctx| {
            let params = KmerAnalysisParams {
                k: 9,
                min_count: 2,
                use_bloom: false,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, &reads, &params);
            let graph = build_graph(ctx, &res.counts, ThresholdPolicy::metahipmer_default());
            // Query every window in both orientations, plus an absent k-mer.
            let mut queries: Vec<Kmer> = Vec::new();
            for i in 0..=seq.len() - 9 {
                let km = Kmer::from_bytes(&seq.as_bytes()[i..i + 9]).unwrap();
                queries.push(km);
                queries.push(km.revcomp());
            }
            queries.push("TTTTTTTTT".parse().unwrap());
            let batched = lookup_oriented_many(ctx, &graph, &queries, 5);
            for (q, b) in queries.iter().zip(&batched) {
                assert_eq!(*b, lookup_oriented(ctx, &graph, q));
            }
            assert!(batched.last().unwrap().is_none());
        });
    }

    #[test]
    fn dynamic_threshold_tolerates_errors_on_deep_kmers() {
        // Simulate a deep k-mer: 200 clean copies plus 6 copies with an error
        // in the following base. A global thq=2 forks it; the dynamic policy
        // (5% of depth = 10) keeps the unique extension.
        let clean = "ACGGTCAGGTTCAAGGACT";
        let erroneous = "ACGGTCAGGTTCAAGGACG"; // last base differs
        let mut reads: Vec<Read> = (0..200)
            .map(|i| Read::with_uniform_quality(format!("c{i}"), clean.as_bytes(), 35))
            .collect();
        reads.extend(
            (0..6).map(|i| Read::with_uniform_quality(format!("e{i}"), erroneous.as_bytes(), 35)),
        );
        let team = Team::single_node(1);
        team.run(|ctx| {
            let params = KmerAnalysisParams {
                k: 11,
                min_count: 2,
                use_bloom: false,
                ..Default::default()
            };
            let res = kmer_analysis(ctx, &reads, &params);
            // The k-mer ending just before the final base: "TCAAGGAC" + ...
            let target: Kmer = "GTTCAAGGACT"[0..11].parse().unwrap(); // GTTCAAGGACT
            let (canon, _) = target.canonical();
            assert!(res.counts.contains(ctx, &canon));

            let global = build_graph(ctx, &res.counts, ThresholdPolicy::Global { thq: 2 });
            let dynamic = build_graph(
                ctx,
                &res.counts,
                ThresholdPolicy::Dynamic {
                    t_base: 2,
                    error_rate: 0.05,
                },
            );
            // k-mer whose *right* extension is contested: the one ending at
            // position len-2 ("CAAGGAC..."), i.e. the k-mer covering bases
            // [7..18) = "GGTTCAAGGAC". Its right extension is T (200x) vs G (6x).
            let contested: Kmer = "GGTTCAAGGAC".parse().unwrap();
            let g = lookup_oriented(ctx, &global, &contested).unwrap();
            let d = lookup_oriented(ctx, &dynamic, &contested).unwrap();
            assert_eq!(g.right, Ext::Fork, "global threshold should fork");
            assert_eq!(d.right, Ext::Base(3), "dynamic threshold should keep T");
        });
    }
}
