//! The distributed contig store (§II-F/III of the paper, memory side).
//!
//! Every pipeline stage downstream of contig generation reads contig
//! sequences: alignment verifies candidate placements against contig windows,
//! scaffolding measures link geometry, gap closing splices flank sequences,
//! and local assembly walks outward from contig ends. HipMer keeps those
//! sequences in the PGAS global address space — each rank owns a shard and
//! fetches foreign contigs on demand through aggregated, software-cached
//! lookups — which is exactly what lets it assemble metagenomes that do not
//! fit in one node's memory. This module is that layer:
//!
//! * [`PackedSeq`] — a 2-bit-packed sequence (4 bases/byte) with a tiny
//!   exception list for non-ACGT bytes, sliceable by window without unpacking
//!   the whole contig;
//! * [`ContigStore`] — contig id → [`PackedSeq`], sharded over the ranks by a
//!   [`dht::DistMap`] (size-balanced owner table by default, so no rank holds
//!   more than its fair share plus one contig), plus a small *replicated*
//!   per-contig metadata table (length and depth — O(#contigs), not
//!   O(bases)) that answers the geometry queries every stage makes;
//! * [`ContigReader`] — a per-rank read-through view with a byte-bounded FIFO
//!   [`dht::SoftwareCache`]; batch fetches fill all misses through
//!   [`dht::DistMap::get_many`] on collective paths and
//!   [`dht::DistMap::get_many_onesided`] inside dynamically scheduled
//!   (work-stealing) loops;
//! * [`ContigsRef`] — the handle consumers take: either a replicated
//!   [`ContigSet`] (the ablation baseline) or a [`ContigStore`].
//!
//! Residency accounting: the store records each rank's peak resident contig
//! bytes (owned shard + reader caches, packed) in
//! `CommStats::contig_bytes_resident` and every cache-miss fill in
//! `CommStats::contig_fetch_bytes`, which is what the `ablation_contig_store`
//! harness asserts the `total/ranks + cache bound` memory ceiling on.

use crate::types::{Contig, ContigId, ContigSet};
use dht::{DistMap, FxHashMap, SoftwareCache, TablePartitioner};
use pgas::Ctx;
use std::sync::Arc;

// The packed representation is shared with the distributed read store, so it
// lives in `kmers` next to the codec kernels it is built on.
pub use kmers::PackedSeq;

/// Replicated per-contig metadata: O(#contigs) and cheap, unlike the
/// sequence bytes it describes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContigMeta {
    /// Sequence length in bases.
    pub len: u32,
    /// Mean k-mer depth.
    pub depth: f64,
}

/// Construction parameters of a [`ContigStore`].
#[derive(Debug, Clone, Copy)]
pub struct ContigStoreParams {
    /// Per-rank reader cache bound in *packed* bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Per-owner request batch handed to the aggregated lookup layer.
    pub batch: usize,
    /// Assign contigs to owners longest-first onto the least-loaded rank
    /// (guaranteeing owned bytes <= total/ranks + one contig) instead of
    /// hashing ids.
    pub balanced: bool,
}

impl Default for ContigStoreParams {
    fn default() -> Self {
        ContigStoreParams {
            cache_bytes: 1 << 20,
            batch: 1024,
            balanced: true,
        }
    }
}

/// Size-balanced owner table: contigs are dealt longest-first to the rank
/// with the least packed bytes so far (ties to the lowest rank). Deterministic
/// given the set, so every rank computes the same table.
fn balanced_owners(set: &ContigSet, ranks: usize) -> Vec<u32> {
    // Contig ids are assigned longest-first by `ContigSet::from_sequences`,
    // so iterating in id order is the greedy longest-first order.
    balanced_owners_from_lens(set.contigs.iter().map(|c| c.len() as u32), ranks)
}

/// The owner-table computation behind [`ContigStore`]'s balanced partition,
/// keyed only by contig lengths in id order. Exposed so a checkpoint restore
/// on a *different* rank count can recompute, from the replicated metadata
/// alone, exactly the table `ContigStore::build` would have produced there —
/// the property elastic resume's byte-identical guarantee rests on.
pub fn balanced_owners_from_lens(lens: impl IntoIterator<Item = u32>, ranks: usize) -> Vec<u32> {
    let mut owners = Vec::new();
    let mut load = vec![0usize; ranks];
    for len in lens {
        let owner = (0..ranks).min_by_key(|&r| (load[r], r)).unwrap_or(0);
        owners.push(owner as u32);
        load[owner] += (len as usize).div_ceil(4) + 4;
    }
    owners
}

/// The distributed contig store: packed sequences sharded by owner rank plus
/// replicated per-contig metadata. Built collectively; shared by the team.
pub struct ContigStore {
    map: Arc<DistMap<ContigId, PackedSeq>>,
    meta: Vec<ContigMeta>,
    k: usize,
    cache_bytes: usize,
    batch: usize,
}

impl ContigStore {
    /// Collectively builds the store from a (transiently replicated) contig
    /// set: every rank packs and stores exactly the contigs it owns — an
    /// owner-local update phase with no wire traffic — then records its
    /// owned packed bytes in the residency accounting. Callers in
    /// distributed mode drop the replicated set right after this returns.
    pub fn build(ctx: &Ctx, set: &ContigSet, params: &ContigStoreParams) -> Arc<ContigStore> {
        let ranks = ctx.ranks();
        let map: Arc<DistMap<ContigId, PackedSeq>> = if params.balanced {
            ctx.share(|| {
                DistMap::with_partitioner(
                    ranks,
                    Arc::new(TablePartitioner::new(balanced_owners(set, ranks))),
                )
            })
        } else {
            DistMap::shared(ctx)
        };
        let mine: Vec<(ContigId, PackedSeq)> = set
            .contigs
            .iter()
            .filter(|c| map.owner_of(&c.id) == ctx.rank())
            .map(|c| (c.id, PackedSeq::from_bytes(&c.seq)))
            .collect();
        map.apply_local_batch(ctx, mine, |v| v, |a, b| *a = b);
        ctx.barrier();
        let store = ctx.share(|| ContigStore {
            map: Arc::clone(&map),
            meta: set
                .contigs
                .iter()
                .map(|c| ContigMeta {
                    len: c.len() as u32,
                    depth: c.depth,
                })
                .collect(),
            k: set.k,
            cache_bytes: params.cache_bytes,
            batch: params.batch,
        });
        ctx.record_contig_resident(store.owned_packed_bytes(ctx));
        ctx.barrier();
        store
    }

    /// Collectively rebuilds a store from checkpointed state: the replicated
    /// metadata table plus whatever slice of the packed entries each rank
    /// recovered from the shard files of the *writing* run. The entries are
    /// re-routed to their new owners through the freshly computed partitioner
    /// (`bulk_merge`), so the rank count may differ from the writer's — the
    /// resulting store is identical to one `build` would have produced on
    /// this team, because the balanced owner table depends only on the
    /// lengths in id order. Each rank then verifies its restored shard
    /// against the metadata and clears the verification reader's cache so
    /// the resumed run starts as cold as a fresh build.
    pub fn restore(
        ctx: &Ctx,
        k: usize,
        meta: Vec<ContigMeta>,
        params: &ContigStoreParams,
        entries: Vec<(ContigId, PackedSeq)>,
    ) -> Arc<ContigStore> {
        let ranks = ctx.ranks();
        let map: Arc<DistMap<ContigId, PackedSeq>> = if params.balanced {
            let lens = meta.iter().map(|m| m.len).collect::<Vec<u32>>();
            ctx.share(|| {
                DistMap::with_partitioner(
                    ranks,
                    Arc::new(TablePartitioner::new(balanced_owners_from_lens(
                        lens, ranks,
                    ))),
                )
            })
        } else {
            DistMap::shared(ctx)
        };
        dht::bulk_merge(ctx, &map, entries, params.batch, |a, b| *a = b);
        let store = ctx.share(|| ContigStore {
            map: Arc::clone(&map),
            meta,
            k,
            cache_bytes: params.cache_bytes,
            batch: params.batch,
        });
        // Verify the restored shards: every contig must be present with the
        // length the manifest promised (a shard file swapped between
        // checkpoints would pass its own CRC but fail here).
        let mut reader = store.reader(ctx);
        let my = ctx.block_range(store.num_contigs());
        let ids: Vec<ContigId> = (my.start as u64..my.end as u64).collect();
        let got = reader.get_many(ctx, &ids);
        for (id, p) in ids.iter().zip(&got) {
            let expect = store.meta(*id).map(|m| m.len as usize);
            assert_eq!(
                p.as_ref().map(|p| p.len()),
                expect,
                "restored contig {id} does not match checkpoint metadata"
            );
        }
        reader.clear_cache();
        ctx.record_contig_resident(store.owned_packed_bytes(ctx));
        ctx.barrier();
        store
    }

    /// The k the contigs were assembled with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of contigs in the store.
    pub fn num_contigs(&self) -> usize {
        self.meta.len()
    }

    /// True if the store holds no contigs.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Metadata of one contig.
    pub fn meta(&self, id: ContigId) -> Option<ContigMeta> {
        self.meta.get(id as usize).copied()
    }

    /// Total assembled bases across all shards.
    pub fn total_bases(&self) -> usize {
        self.meta.iter().map(|m| m.len as usize).sum()
    }

    /// The sharded sequence table (for owner-local passes).
    pub fn map(&self) -> &Arc<DistMap<ContigId, PackedSeq>> {
        &self.map
    }

    /// Packed bytes of the calling rank's owned shard.
    pub fn owned_packed_bytes(&self, ctx: &Ctx) -> usize {
        let mut owned = 0usize;
        self.map
            .for_each_local(ctx, |_, v| owned += v.packed_bytes());
        owned
    }

    /// Creates this rank's cached read-through view.
    pub fn reader(&self, ctx: &Ctx) -> ContigReader<'_> {
        ContigReader {
            store: self,
            cache: SoftwareCache::new_weighted(self.cache_bytes, |v: &PackedSeq| v.packed_bytes()),
            owned_bytes: self.owned_packed_bytes(ctx),
        }
    }

    /// Collectively regathers the full replicated [`ContigSet`] (rank 0
    /// collects the owned shards, orders by id, broadcast). Used to
    /// materialise the pipeline's final output; the hot paths never call it.
    pub fn materialize(&self, ctx: &Ctx) -> ContigSet {
        let mut outgoing: Vec<Vec<(ContigId, Vec<u8>)>> = vec![Vec::new(); ctx.ranks()];
        let mut local: Vec<(ContigId, Vec<u8>)> = Vec::new();
        self.map
            .for_each_local(ctx, |id, v| local.push((*id, v.unpack())));
        outgoing[0] = local;
        let gathered = ctx.exchange(outgoing);
        let set = if ctx.rank() == 0 {
            let mut gathered = gathered;
            gathered.sort_by_key(|(id, _)| *id);
            ContigSet {
                contigs: gathered
                    .into_iter()
                    .map(|(id, seq)| Contig {
                        id,
                        seq,
                        depth: self.meta[id as usize].depth,
                    })
                    .collect(),
                k: self.k,
            }
        } else {
            ContigSet::new(self.k)
        };
        ctx.broadcast(|| set)
    }
}

/// A per-rank cached read-through view of a [`ContigStore`]: lookups are
/// served from a byte-bounded FIFO cache of packed contigs when possible, and
/// the misses of a batch travel to their owners in one aggregated round.
/// Create one per phase with [`ContigStore::reader`]; it is not shared
/// between ranks.
pub struct ContigReader<'s> {
    store: &'s ContigStore,
    cache: SoftwareCache<ContigId, PackedSeq>,
    owned_bytes: usize,
}

impl ContigReader<'_> {
    /// The store this reader serves from.
    pub fn store(&self) -> &ContigStore {
        self.store
    }

    /// Resident bytes of this reader's rank right now: owned shard plus the
    /// reader cache, packed.
    pub fn resident_bytes(&self) -> usize {
        self.owned_bytes + self.cache.resident_weight()
    }

    /// Drops every cached foreign contig (capacity and eviction accounting
    /// are untouched). Used after restore-time verification reads so a
    /// resumed run starts with the same cold cache a fresh build would.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// **Collective** batched fetch: cache hits are served locally and every
    /// distinct miss of the batch travels in one aggregated request–response
    /// round through [`DistMap::get_many`]. Returns packed sequences in id
    /// order (duplicates and unknown ids are fine). Every rank must call this
    /// in the same phase, even with an empty `ids` slice.
    pub fn get_many(&mut self, ctx: &Ctx, ids: &[ContigId]) -> Vec<Option<PackedSeq>> {
        self.get_many_with(ctx, ids, false)
    }

    /// One-sided batched fetch for dynamically scheduled loops (work
    /// stealing) that cannot reach a collective in lockstep: misses are read
    /// through [`DistMap::get_many_onesided`]. Not collective.
    pub fn get_many_onesided(&mut self, ctx: &Ctx, ids: &[ContigId]) -> Vec<Option<PackedSeq>> {
        self.get_many_with(ctx, ids, true)
    }

    fn get_many_with(
        &mut self,
        ctx: &Ctx,
        ids: &[ContigId],
        onesided: bool,
    ) -> Vec<Option<PackedSeq>> {
        let mut misses: Vec<ContigId> = Vec::new();
        let mut miss_index: FxHashMap<ContigId, usize> = FxHashMap::default();
        // Ok(value) = served from cache; Err(i) = misses[i].
        let mut resolved: Vec<Result<Option<PackedSeq>, usize>> = Vec::with_capacity(ids.len());
        let mut hits = 0u64;
        for id in ids {
            if let Some(cached) = self.cache.peek(id) {
                hits += 1;
                resolved.push(Ok(cached.clone()));
            } else if let Some(&i) = miss_index.get(id) {
                hits += 1; // duplicate of an in-flight fetch
                resolved.push(Err(i));
            } else {
                let i = misses.len();
                miss_index.insert(*id, i);
                misses.push(*id);
                resolved.push(Err(i));
            }
        }
        ctx.record_cache_hits(hits);
        ctx.record_cache_misses(misses.len() as u64);
        let fetched = if onesided {
            self.store.map.get_many_onesided(ctx, &misses)
        } else {
            self.store.map.get_many(ctx, &misses, self.store.batch)
        };
        // Only *foreign* contigs go through the cache and the fetch-byte
        // accounting: ids this rank owns are answered from its own shard
        // with no wire traffic, and caching them would both waste the
        // byte-bounded cache on data already resident and double-count
        // those bytes in `resident_bytes`.
        let mut fetched_bytes = 0usize;
        for (id, value) in misses.iter().zip(&fetched) {
            if self.store.map.owner_of(id) == ctx.rank() {
                continue;
            }
            if let Some(p) = value {
                fetched_bytes += p.packed_bytes();
            }
            self.cache.insert(ctx, *id, value.clone());
        }
        ctx.record_contig_fetch_bytes(fetched_bytes);
        ctx.record_contig_resident(self.resident_bytes());
        resolved
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(i) => fetched[i].clone(),
            })
            .collect()
    }

    /// Fine-grained single fetch through the cache (not collective): the
    /// per-key baseline the aggregated paths are measured against.
    pub fn get(&mut self, ctx: &Ctx, id: ContigId) -> Option<PackedSeq> {
        if let Some(cached) = self.cache.peek(&id) {
            ctx.record_cache_hits(1);
            return cached.clone();
        }
        ctx.record_cache_misses(1);
        let fetched = self.store.map.get_cloned(ctx, &id);
        if self.store.map.owner_of(&id) != ctx.rank() {
            if let Some(p) = &fetched {
                ctx.record_contig_fetch_bytes(p.packed_bytes());
            }
            self.cache.insert(ctx, id, fetched.clone());
            ctx.record_contig_resident(self.resident_bytes());
        }
        fetched
    }
}

/// How a pipeline stage accesses contig sequences: a replicated [`ContigSet`]
/// (the baseline, O(total) bytes on every rank) or the sharded
/// [`ContigStore`] (O(total/ranks + cache) bytes per rank). Geometry queries
/// (length, depth, count) are answered locally in both variants.
#[derive(Clone, Copy)]
pub enum ContigsRef<'a> {
    /// Every rank holds the full set.
    Local(&'a ContigSet),
    /// Sequences are sharded; reads go through a [`ContigReader`].
    Store(&'a ContigStore),
}

impl<'a> ContigsRef<'a> {
    /// The k the contigs were assembled with.
    pub fn k(&self) -> usize {
        match self {
            ContigsRef::Local(set) => set.k,
            ContigsRef::Store(store) => store.k(),
        }
    }

    /// Number of contigs.
    pub fn num_contigs(&self) -> usize {
        match self {
            ContigsRef::Local(set) => set.len(),
            ContigsRef::Store(store) => store.num_contigs(),
        }
    }

    /// True if there are no contigs.
    pub fn is_empty(&self) -> bool {
        self.num_contigs() == 0
    }

    /// Length of one contig, if it exists.
    pub fn len_of(&self, id: ContigId) -> Option<usize> {
        match self {
            ContigsRef::Local(set) => set.get(id).map(|c| c.len()),
            ContigsRef::Store(store) => store.meta(id).map(|m| m.len as usize),
        }
    }

    /// Mean k-mer depth of one contig, if it exists.
    pub fn depth_of(&self, id: ContigId) -> Option<f64> {
        match self {
            ContigsRef::Local(set) => set.get(id).map(|c| c.depth),
            ContigsRef::Store(store) => store.meta(id).map(|m| m.depth),
        }
    }

    /// Total assembled bases.
    pub fn total_bases(&self) -> usize {
        match self {
            ContigsRef::Local(set) => set.total_bases(),
            ContigsRef::Store(store) => store.total_bases(),
        }
    }

    /// The replicated set, when this is the baseline variant.
    pub fn local(&self) -> Option<&'a ContigSet> {
        match self {
            ContigsRef::Local(set) => Some(set),
            ContigsRef::Store(_) => None,
        }
    }

    /// The distributed store, when this is the sharded variant.
    pub fn store(&self) -> Option<&'a ContigStore> {
        match self {
            ContigsRef::Local(_) => None,
            ContigsRef::Store(store) => Some(store),
        }
    }
}

impl<'a> From<&'a ContigSet> for ContigsRef<'a> {
    fn from(set: &'a ContigSet) -> Self {
        ContigsRef::Local(set)
    }
}

impl<'a> From<&'a ContigStore> for ContigsRef<'a> {
    fn from(store: &'a ContigStore) -> Self {
        ContigsRef::Store(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::Team;

    /// Deterministic pseudo-random sequence with occasional N bytes.
    fn seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(31) {
                    b'N'
                } else {
                    b"ACGT"[(state % 4) as usize]
                }
            })
            .collect()
    }

    #[test]
    fn balanced_owners_bound_the_heaviest_rank() {
        let set = ContigSet::from_sequences(
            21,
            (0..40)
                .map(|i| (seq(40 + (i * 37) % 400, i as u64), 1.0))
                .collect(),
        );
        for ranks in [1usize, 2, 3, 5, 8] {
            let owners = balanced_owners(&set, ranks);
            let mut load = vec![0usize; ranks];
            let mut max_item = 0usize;
            for c in &set.contigs {
                let w = c.len().div_ceil(4) + 4;
                load[owners[c.id as usize] as usize] += w;
                max_item = max_item.max(w);
            }
            let total: usize = load.iter().sum();
            let bound = total / ranks + max_item;
            assert!(
                load.iter().all(|&l| l <= bound),
                "ranks={ranks} load={load:?} bound={bound}"
            );
        }
    }

    #[test]
    fn store_serves_exact_sequences_through_every_path() {
        let set = ContigSet::from_sequences(
            21,
            (0..12)
                .map(|i| (seq(60 + i * 13, 100 + i as u64), 2.0))
                .collect(),
        );
        for balanced in [false, true] {
            for ranks in [1usize, 3, 4] {
                let team = Team::single_node(ranks);
                let set2 = set.clone();
                team.run(|ctx| {
                    let store = ContigStore::build(
                        ctx,
                        &set2,
                        &ContigStoreParams {
                            cache_bytes: 1 << 16,
                            balanced,
                            ..Default::default()
                        },
                    );
                    assert_eq!(store.num_contigs(), set2.len());
                    assert_eq!(store.total_bases(), set2.total_bases());
                    let mut reader = store.reader(ctx);
                    let ids: Vec<ContigId> = (0..set2.len() as u64).chain([999, 3, 3]).collect();
                    let got = reader.get_many(ctx, &ids);
                    for (id, p) in ids.iter().zip(&got) {
                        match set2.get(*id) {
                            Some(c) => assert_eq!(p.as_ref().unwrap().unpack(), c.seq),
                            None => assert!(p.is_none()),
                        }
                    }
                    let one = reader.get_many_onesided(ctx, &ids);
                    assert_eq!(one, got);
                    for id in &ids {
                        let expect = set2.get(*id).map(|c| PackedSeq::from_bytes(&c.seq));
                        assert_eq!(reader.get(ctx, *id), expect);
                    }
                    ctx.barrier();
                    // Materialise reproduces the original set exactly.
                    let back = store.materialize(ctx);
                    assert_eq!(back, set2);
                });
            }
        }
    }

    #[test]
    fn restore_on_a_different_rank_count_matches_a_fresh_build() {
        let set = ContigSet::from_sequences(
            21,
            (0..15)
                .map(|i| (seq(50 + i * 17, 900 + i as u64), 1.5))
                .collect(),
        );
        let params = ContigStoreParams::default();
        // "Write" at 3 ranks: export each rank's owned shard entries.
        let writer = Team::single_node(3);
        let set2 = set.clone();
        let shards: Vec<Vec<(ContigId, PackedSeq)>> = writer.run(|ctx| {
            let store = ContigStore::build(ctx, &set2, &params);
            store.map().local_entries(ctx)
        });
        let meta: Vec<ContigMeta> = set
            .contigs
            .iter()
            .map(|c| ContigMeta {
                len: c.len() as u32,
                depth: c.depth,
            })
            .collect();
        // Restore at 2x and 1/3 the writer's rank count: each new rank takes
        // a block of the old shard files; entries re-route to the new owners.
        for new_ranks in [6usize, 1, 3] {
            let team = Team::single_node(new_ranks);
            let meta = meta.clone();
            let shards = &shards;
            let set = &set;
            team.run(|ctx| {
                let mut mine = Vec::new();
                for old in ctx.block_range(shards.len()) {
                    mine.extend(shards[old].iter().cloned());
                }
                let restored = ContigStore::restore(ctx, 21, meta.clone(), &params, mine);
                // Same owner table a fresh build would compute on this team...
                let fresh = ContigStore::build(ctx, set, &params);
                for id in 0..set.len() as u64 {
                    assert_eq!(restored.map().owner_of(&id), fresh.map().owner_of(&id));
                }
                assert_eq!(
                    restored.owned_packed_bytes(ctx),
                    fresh.owned_packed_bytes(ctx)
                );
                // ...and the same sequences.
                assert_eq!(restored.materialize(ctx), *set);
            });
        }
    }

    #[test]
    fn resident_accounting_stays_within_shard_plus_cache() {
        let set = ContigSet::from_sequences(
            21,
            (0..20).map(|i| (seq(200, 500 + i as u64), 2.0)).collect(),
        );
        let ranks = 4usize;
        let cache_bytes = 256usize;
        let team = Team::single_node(ranks);
        let total_packed: usize = set
            .contigs
            .iter()
            .map(|c| PackedSeq::from_bytes(&c.seq).packed_bytes())
            .sum();
        let max_packed: usize = set
            .contigs
            .iter()
            .map(|c| PackedSeq::from_bytes(&c.seq).packed_bytes())
            .max()
            .unwrap();
        team.run(|ctx| {
            ctx.stats().reset();
            let store = ContigStore::build(
                ctx,
                &set,
                &ContigStoreParams {
                    cache_bytes,
                    balanced: true,
                    ..Default::default()
                },
            );
            let mut reader = store.reader(ctx);
            let ids: Vec<ContigId> = (0..set.len() as u64).collect();
            let _ = reader.get_many(ctx, &ids);
            let _ = reader.get_many_onesided(ctx, &ids);
            ctx.barrier();
            let peak = ctx.stats().snapshot().contig_bytes_resident as usize;
            let bound = total_packed / ctx.ranks() + max_packed + cache_bytes;
            assert!(peak > 0, "residency must be recorded");
            assert!(peak <= bound, "peak {peak} > bound {bound}");
            assert!(ctx.stats().snapshot().contig_fetch_bytes > 0);
        });
    }
}
