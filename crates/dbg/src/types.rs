//! Contigs and contig sets: the output of de Bruijn graph traversal and the
//! currency passed between all later pipeline stages.

use seqio::alphabet::revcomp;

/// Identifier of a contig inside a [`ContigSet`].
pub type ContigId = u64;

/// A contiguous assembled sequence with its mean k-mer depth (coverage).
#[derive(Debug, Clone, PartialEq)]
pub struct Contig {
    pub id: ContigId,
    /// The assembled bases (canonical orientation: lexicographically not
    /// larger than its reverse complement, so contig identity is
    /// strand-independent).
    pub seq: Vec<u8>,
    /// Mean depth of the k-mers making up the contig.
    pub depth: f64,
}

impl Contig {
    /// Creates a contig, canonicalising its orientation.
    pub fn new(id: ContigId, seq: Vec<u8>, depth: f64) -> Self {
        let rc = revcomp(&seq);
        let seq = if rc < seq { rc } else { seq };
        Contig { id, seq, depth }
    }

    /// Length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the contig holds no bases.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// A set of contigs produced with a particular k.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContigSet {
    pub contigs: Vec<Contig>,
    /// The k-mer size the contigs were assembled with.
    pub k: usize,
}

impl ContigSet {
    /// Creates an empty set for the given k.
    pub fn new(k: usize) -> Self {
        ContigSet {
            contigs: Vec::new(),
            k,
        }
    }

    /// Builds a set from raw `(sequence, depth)` pairs, canonicalising and
    /// sorting the contigs (longest first, ties by sequence) so that contig
    /// ids are deterministic regardless of the rank count or traversal order.
    pub fn from_sequences(k: usize, seqs: Vec<(Vec<u8>, f64)>) -> Self {
        let mut contigs: Vec<Contig> = seqs
            .into_iter()
            .map(|(seq, depth)| Contig::new(0, seq, depth))
            .collect();
        contigs.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.seq.cmp(&b.seq)));
        for (i, c) in contigs.iter_mut().enumerate() {
            c.id = i as ContigId;
        }
        ContigSet { contigs, k }
    }

    /// Number of contigs.
    pub fn len(&self) -> usize {
        self.contigs.len()
    }

    /// True if the set holds no contigs.
    pub fn is_empty(&self) -> bool {
        self.contigs.is_empty()
    }

    /// Total assembled bases.
    pub fn total_bases(&self) -> usize {
        self.contigs.iter().map(|c| c.len()).sum()
    }

    /// The contig with the given id.
    pub fn get(&self, id: ContigId) -> Option<&Contig> {
        self.contigs.get(id as usize)
    }

    /// The maximum contig depth (0 for an empty set).
    pub fn max_depth(&self) -> f64 {
        self.contigs.iter().map(|c| c.depth).fold(0.0, f64::max)
    }

    /// N50: the length L such that contigs of length ≥ L cover at least half
    /// the total assembled bases. Returns 0 for an empty set.
    pub fn n50(&self) -> usize {
        let total = self.total_bases();
        if total == 0 {
            return 0;
        }
        let mut lens: Vec<usize> = self.contigs.iter().map(|c| c.len()).collect();
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let mut acc = 0usize;
        for l in lens {
            acc += l;
            if 2 * acc >= total {
                return l;
            }
        }
        0
    }

    /// Removes the contigs whose ids are in `remove` (a sorted or unsorted
    /// list), renumbering the survivors deterministically.
    pub fn without(&self, remove: &std::collections::HashSet<ContigId>) -> ContigSet {
        let seqs = self
            .contigs
            .iter()
            .filter(|c| !remove.contains(&c.id))
            .map(|c| (c.seq.clone(), c.depth))
            .collect();
        ContigSet::from_sequences(self.k, seqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn contig_canonical_orientation() {
        let a = Contig::new(0, b"TTTT".to_vec(), 1.0);
        assert_eq!(a.seq, b"AAAA".to_vec());
        let b = Contig::new(0, b"AAAA".to_vec(), 1.0);
        assert_eq!(a.seq, b.seq);
        let c = Contig::new(0, b"ACGTT".to_vec(), 2.0);
        assert_eq!(c.seq, b"AACGT".to_vec()); // revcomp(ACGTT) = AACGT < ACGTT
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn from_sequences_assigns_deterministic_ids() {
        let seqs = vec![
            (b"AC".to_vec(), 1.0),
            (b"ACGTACGT".to_vec(), 2.0),
            (b"GGGG".to_vec(), 3.0),
        ];
        let set = ContigSet::from_sequences(21, seqs.clone());
        assert_eq!(set.k, 21);
        assert_eq!(set.contigs[0].len(), 8);
        assert_eq!(set.contigs[1].len(), 4);
        assert_eq!(set.contigs[2].len(), 2);
        assert_eq!(set.contigs[0].id, 0);
        // Shuffled input produces the same ordering.
        let mut shuffled = seqs;
        shuffled.reverse();
        let set2 = ContigSet::from_sequences(21, shuffled);
        assert_eq!(set, set2);
    }

    #[test]
    fn n50_computation() {
        let set = ContigSet::from_sequences(
            31,
            vec![
                (vec![b'A'; 100], 1.0),
                (vec![b'C'; 50], 1.0),
                (vec![b'G'; 50], 1.0),
            ],
        );
        // total 200; largest contig (100) already covers half.
        assert_eq!(set.n50(), 100);
        assert_eq!(ContigSet::new(31).n50(), 0);
        let even = ContigSet::from_sequences(
            31,
            vec![
                (vec![b'A'; 60], 1.0),
                (vec![b'C'; 50], 1.0),
                (vec![b'G'; 40], 1.0),
            ],
        );
        // total 150, cumulative 60 -> 110 >= 75 at the second contig (50).
        assert_eq!(even.n50(), 50);
    }

    #[test]
    fn without_removes_and_renumbers() {
        let set = ContigSet::from_sequences(
            21,
            vec![
                (vec![b'A'; 30], 1.0),
                (vec![b'C'; 20], 1.0),
                (vec![b'G'; 10], 1.0),
            ],
        );
        let mut remove = HashSet::new();
        remove.insert(1 as ContigId);
        let pruned = set.without(&remove);
        assert_eq!(pruned.len(), 2);
        assert_eq!(pruned.contigs[0].len(), 30);
        assert_eq!(pruned.contigs[1].len(), 10);
        assert_eq!(pruned.contigs[1].id, 1);
        assert_eq!(set.len(), 3, "original untouched");
    }

    #[test]
    fn stats_helpers() {
        let set = ContigSet::from_sequences(21, vec![(vec![b'A'; 30], 2.0), (vec![b'C'; 20], 8.0)]);
        assert_eq!(set.total_bases(), 50);
        assert!((set.max_depth() - 8.0).abs() < 1e-12);
        assert!(set.get(0).is_some());
        assert!(set.get(5).is_none());
    }
}
