//! Shared experiment-harness utilities.
//!
//! Every table and figure of the paper's evaluation section has a matching
//! binary in `src/bin/` (see DESIGN.md §3 for the index); this library holds
//! the pieces they share: dataset construction, timed assembly runs over a
//! sweep of rank counts, and table formatting. Absolute numbers differ from
//! the paper (laptop-scale simulated data instead of Cori + SRA datasets); the
//! harnesses reproduce the *shape* of each result, and EXPERIMENTS.md records
//! the comparison.

use asm_metrics::{evaluate, AssemblyReport, EvalParams};
use baselines::Assembler;
use mgsim::SimDataset;
use mhm_core::AssemblyOutput;
use pgas::{Team, Topology};
use std::sync::Arc;
use std::time::Instant;

/// Scale factor for harness runs, read from `MHM_SCALE` (1 = default small).
/// Larger values enlarge the simulated datasets proportionally.
pub fn scale() -> usize {
    std::env::var("MHM_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// Ranks per simulated node for harness runs, read from `MHM_RANKS_PER_NODE`
/// (0 = default = all ranks on one node, the historical harness behaviour).
pub fn ranks_per_node() -> usize {
    std::env::var("MHM_RANKS_PER_NODE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The topology for a harness run over `ranks` ranks, honouring
/// [`ranks_per_node`]: `0` keeps everything on one node, any other value
/// groups ranks that many to a node (the last node may be partial).
pub fn topology(ranks: usize) -> Topology {
    match ranks_per_node() {
        0 => Topology::single_node(ranks),
        rpn => Topology::new(ranks, rpn),
    }
}

/// A team over [`topology`], so every harness exercises the node structure
/// requested by the environment instead of hard-wiring a single node.
pub fn team(ranks: usize) -> Arc<Team> {
    Team::new(topology(ranks))
}

/// Rank counts to sweep for scaling experiments, bounded by the machine's
/// available parallelism.
pub fn rank_sweep(max: usize) -> Vec<usize> {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut out = Vec::new();
    let mut r = 1;
    while r <= max.min(hw.max(2)) {
        out.push(r);
        r *= 2;
    }
    out
}

/// One timed assembly run.
pub struct RunResult {
    pub assembler: String,
    pub ranks: usize,
    pub seconds: f64,
    pub output: AssemblyOutput,
    pub report: AssemblyReport,
}

/// Runs one assembler on one dataset with the given number of ranks and
/// evaluates the result against the dataset's references.
pub fn run_assembler(
    assembler: &dyn Assembler,
    dataset: &SimDataset,
    ranks: usize,
    eval: &EvalParams,
) -> RunResult {
    let team = team(ranks);
    let start = Instant::now();
    let output = assembler.assemble(&team, &dataset.library, Some(&dataset.rrna_consensus));
    let seconds = start.elapsed().as_secs_f64();
    let report = evaluate(&output.sequences(), &dataset.refs, eval);
    RunResult {
        assembler: assembler.name().to_string(),
        ranks,
        seconds,
        output,
        report,
    }
}

/// Evaluation parameters scaled to the simulated communities (thresholds are
/// ~10³ smaller than the paper's 5 k/25 k/50 k because the genomes are ~10³
/// smaller).
pub fn scaled_eval_params() -> EvalParams {
    EvalParams {
        min_block: 200,
        length_thresholds: vec![1_000, 2_500, 5_000],
        ..Default::default()
    }
}

/// Prints a Markdown-style table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats a float with the given precision.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Runs a harness body and computes the exit code it earned: `0` when it
/// completed cleanly, `1` when it panicked **or** when any thread panicked
/// with an unclaimed payload while it ran. The second clause is the
/// important one: an assertion failing inside a spawned rank thread whose
/// `join()` result is discarded would otherwise print a backtrace and let
/// the process exit `0`, turning a red harness green in CI. The
/// process-global counter behind [`pgas::unexpected_panics`] is bumped by
/// the panic hook itself, so no join-result plumbing can mask it.
pub fn harness_exit_code(body: impl FnOnce()) -> i32 {
    pgas::install_panic_accounting();
    let masked_before = pgas::unexpected_panics();
    let direct_panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)).is_err();
    let masked = pgas::unexpected_panics() - masked_before;
    if direct_panic {
        eprintln!("harness: FAILED (panic propagated to main)");
        1
    } else if masked > 0 {
        eprintln!("harness: FAILED ({masked} rank-thread panic(s) were not propagated to main)");
        1
    } else {
        0
    }
}

/// Entry point wrapper for the `ablation_*`/figure binaries: runs `body`
/// via [`harness_exit_code`] and exits with the earned code.
pub fn run_harness(body: impl FnOnce()) -> ! {
    std::process::exit(harness_exit_code(body))
}

/// Parallel efficiency of a timing series relative to its first entry.
pub fn efficiency(ranks: &[usize], seconds: &[f64]) -> Vec<f64> {
    assert_eq!(ranks.len(), seconds.len());
    if ranks.is_empty() {
        return Vec::new();
    }
    let (r0, t0) = (ranks[0] as f64, seconds[0]);
    ranks
        .iter()
        .zip(seconds)
        .map(|(&r, &t)| (t0 * r0) / (t * r as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_relative_to_first_point() {
        let e = efficiency(&[1, 2, 4], &[8.0, 4.0, 4.0]);
        assert!((e[0] - 1.0).abs() < 1e-12);
        assert!((e[1] - 1.0).abs() < 1e-12);
        assert!((e[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rank_sweep_is_powers_of_two() {
        let s = rank_sweep(8);
        assert!(!s.is_empty());
        assert_eq!(s[0], 1);
        for w in s.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn scale_defaults_to_one() {
        assert!(scale() >= 1);
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt(1.23456, 2), "1.23");
    }

    /// The three cases run sequentially inside one test because the masked
    /// case bumps a process-global counter: interleaving them across test
    /// threads would let one case's panic land in another's delta window.
    #[test]
    fn harness_exit_code_propagates_masked_rank_thread_panics() {
        assert_eq!(harness_exit_code(|| {}), 0, "clean body must exit 0");

        // A worker panic whose join result is deliberately discarded — the
        // regression this guards against: the process used to exit 0 here.
        let masked = harness_exit_code(|| {
            let handle = std::thread::spawn(|| panic!("worker assertion failed"));
            let _ = handle.join();
        });
        assert_eq!(masked, 1, "masked rank-thread panic must exit 1");

        let direct = harness_exit_code(|| panic!("harness assertion failed"));
        assert_eq!(direct, 1, "direct panic must exit 1");
    }
}
