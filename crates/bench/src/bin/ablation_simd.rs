//! Ablation: word-parallel/SIMD compute kernels vs their scalar twins.
//!
//! PRs 2–6 removed the communication bottlenecks; the remaining hot loops are
//! pure compute — reverse complement / canonical comparison on packed k-mers,
//! bulk ASCII↔2-bit translation in the codecs, and the aligner's ungapped
//! window verification. `kmers::kernels` + `mhm_simd` replace those per-base
//! loops with word-parallel and SSE2/AVX2 implementations behind runtime
//! dispatch, keeping the scalar twins selectable via `MHM_FORCE_SCALAR=1`.
//!
//! This harness times each kernel against its scalar twin (best of several
//! trials on identical inputs) and runs the full assembler in both dispatch
//! modes at 1 and 4 ranks. It exits non-zero unless:
//!
//! * the dispatched revcomp, bulk-encode, bulk-decode and verify kernels are
//!   each at least 2x their scalar twins (canonical is reported but not
//!   load-bearing: its first-base early exit speeds the *scalar* mode too,
//!   so its ratio understates the kernel win), and
//! * the scaffolds are **byte-identical** between `MHM_FORCE_SCALAR=1` and
//!   the dispatched path at both rank counts — dispatch must never change
//!   results, only speed.
//!
//! The measured ratios are written to `BENCH_simd.json`; the >=2x assertion
//! doubles as the CI drift guard on that file's contents.

use baselines::{Assembler, MetaHipMerAssembler};
use kmers::kernels;
use kmers::Kmer;
use mhm_bench::{fmt, print_table, scaled_eval_params, team};
use mhm_core::AssemblyConfig;
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

/// Deterministic pseudo-random ACGT sequence.
fn pseudo_seq(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            b"ACGT"[(x & 3) as usize]
        })
        .collect()
}

/// Best-of-`trials` wall time of `work`; the returned sink defeats dead-code
/// elimination.
fn time_best(trials: usize, work: &mut dyn FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut sink = 0u64;
    for _ in 0..trials {
        let t = Instant::now();
        sink = sink.wrapping_add(work());
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, sink)
}

struct KernelRow {
    name: &'static str,
    scalar_s: f64,
    fast_s: f64,
    /// Hard floor asserted on the ratio (0.0 = report only).
    floor: f64,
}

impl KernelRow {
    fn ratio(&self) -> f64 {
        self.scalar_s / self.fast_s
    }
}

/// Times `work` with the kernels pinned to scalar and then dispatched.
fn bench_kernel(name: &'static str, floor: f64, mut work: impl FnMut() -> u64) -> KernelRow {
    const TRIALS: usize = 7;
    mhm_simd::set_force_scalar(true);
    let (scalar_s, a) = time_best(TRIALS, &mut work);
    mhm_simd::set_force_scalar(false);
    let (fast_s, b) = time_best(TRIALS, &mut work);
    black_box((a, b));
    KernelRow {
        name,
        scalar_s,
        fast_s,
        floor,
    }
}

/// FNV-1a digest over the sorted scaffold sequences.
fn scaffold_digest(seqs: &[Vec<u8>]) -> u64 {
    let mut sorted: Vec<&Vec<u8>> = seqs.iter().collect();
    sorted.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in sorted {
        for &b in s.iter().chain(&[0xFFu8]) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn run() {
    mhm_simd::set_force_scalar(false);
    let level = mhm_simd::level().name();
    println!("dispatch level: {level}");

    // --- kernel micro-timings on identical inputs in both modes ------------
    const BASES: usize = 1 << 20;
    let seq = pseudo_seq(BASES, 0x5EED_CAFE);
    let mut noisy = seq.clone();
    for i in (0..BASES).step_by(997) {
        noisy[i] = b'N';
    }
    let mut packed = vec![0u8; BASES.div_ceil(4)];
    kernels::pack_ascii(&seq, &mut packed, |_, _| {});
    let kmer_windows: Vec<Kmer> = (0..2_000)
        .map(|i| Kmer::from_bytes(&seq[i * 97..i * 97 + 95]).expect("clean bases"))
        .collect();
    // Correlated pair for the verify kernel: ~85% agreement plus N runs.
    let read_side: Vec<u8> = noisy
        .iter()
        .enumerate()
        .map(|(i, &b)| if i % 7 == 0 { b'A' } else { b })
        .collect();

    let rows = vec![
        bench_kernel("revcomp_k95", 2.0, || {
            let mut sink = 0u64;
            for _ in 0..20 {
                for km in &kmer_windows {
                    sink = sink.wrapping_add(black_box(km.revcomp()).first_code() as u64);
                }
            }
            sink
        }),
        bench_kernel("canonical_k95", 0.0, || {
            let mut sink = 0u64;
            for _ in 0..20 {
                for km in &kmer_windows {
                    sink = sink.wrapping_add(black_box(km.canonical()).0.first_code() as u64);
                }
            }
            sink
        }),
        bench_kernel("bulk_encode_1mb", 2.0, {
            let mut data = vec![0u8; BASES.div_ceil(4)];
            let noisy = noisy.clone();
            move || {
                data.fill(0);
                let mut exceptions = 0u64;
                kernels::pack_ascii(&noisy, &mut data, |_, _| exceptions += 1);
                black_box(&data);
                data[0] as u64 + exceptions
            }
        }),
        bench_kernel("bulk_decode_1mb", 2.0, {
            let packed = packed.clone();
            let mut out = Vec::with_capacity(BASES);
            move || {
                out.clear();
                kernels::unpack_ascii(&packed, 0, BASES, &mut out);
                black_box(&out);
                out[0] as u64
            }
        }),
        bench_kernel("verify_window_1mb", 2.0, || {
            let mut sink = 0u64;
            for _ in 0..8 {
                sink = sink
                    .wrapping_add(mhm_simd::match_count_except(&noisy, &read_side, b'N') as u64);
            }
            sink
        }),
    ];

    print_table(
        &format!("Kernel vs scalar twin (dispatch level: {level})"),
        &["kernel", "scalar s", "kernel s", "speedup", "floor"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    fmt(r.scalar_s, 4),
                    fmt(r.fast_s, 4),
                    format!("{}x", fmt(r.ratio(), 2)),
                    if r.floor > 0.0 {
                        format!(">={}x", fmt(r.floor, 1))
                    } else {
                        "report".to_string()
                    },
                ]
            })
            .collect::<Vec<_>>(),
    );

    // --- end-to-end equality across dispatch modes -------------------------
    let ds = mgsim::mg64_sim(mgsim::Mg64Scale::Tiny, 20260808);
    let eval = scaled_eval_params();
    let mut e2e = Vec::new();
    let mut e2e_rows = Vec::new();
    for ranks in [1usize, 4] {
        let mut digests = Vec::new();
        let mut times = Vec::new();
        for force_scalar in [true, false] {
            mhm_simd::set_force_scalar(force_scalar);
            let team = team(ranks);
            let assembler = MetaHipMerAssembler {
                config: AssemblyConfig::default(),
            };
            let start = Instant::now();
            let output = assembler.assemble(&team, &ds.library, Some(&ds.rrna_consensus));
            times.push(start.elapsed().as_secs_f64());
            let seqs = output.sequences();
            let report = asm_metrics::evaluate(&seqs, &ds.refs, &eval);
            digests.push((scaffold_digest(&seqs), seqs.len(), report.n50));
        }
        mhm_simd::set_force_scalar(false);
        assert_eq!(
            digests[0].0, digests[1].0,
            "ranks={ranks}: scaffolds must be byte-identical across dispatch modes"
        );
        println!(
            "ranks={ranks}: digest {:016x} identical across modes ({} scaffolds, N50 {})",
            digests[0].0, digests[0].1, digests[0].2
        );
        e2e_rows.push(vec![
            ranks.to_string(),
            fmt(times[0], 2),
            fmt(times[1], 2),
            format!("{:016x}", digests[0].0),
        ]);
        e2e.push((ranks, times[0], times[1], digests[0].0));
    }
    print_table(
        "End-to-end assembly across dispatch modes",
        &["ranks", "scalar s", "kernel s", "scaffold digest"],
        &e2e_rows,
    );

    // --- hard claims --------------------------------------------------------
    for r in &rows {
        if r.floor > 0.0 {
            assert!(
                r.ratio() >= r.floor,
                "{} speedup {:.2}x below the {:.1}x floor (scalar {:.4}s vs kernel {:.4}s)",
                r.name,
                r.ratio(),
                r.floor,
                r.scalar_s,
                r.fast_s
            );
        }
    }
    println!("\nall kernel floors met; scaffolds identical across dispatch modes");

    // --- snapshot -----------------------------------------------------------
    let kernel_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"kernel\": \"{}\", \"scalar_s\": {:.6}, \"kernel_s\": {:.6}, \
                 \"speedup\": {:.2}}}",
                r.name,
                r.scalar_s,
                r.fast_s,
                r.ratio()
            )
        })
        .collect();
    let e2e_json: Vec<String> = e2e
        .iter()
        .map(|(ranks, scalar_s, fast_s, digest)| {
            format!(
                "    {{\"ranks\": {ranks}, \"scalar_s\": {scalar_s:.2}, \
                 \"kernel_s\": {fast_s:.2}, \"scaffold_digest\": \"{digest:016x}\"}}"
            )
        })
        .collect();
    let snapshot = format!(
        "{{\n  \"dispatch_level\": \"{level}\",\n  \"kernels\": [\n{}\n  ],\n  \
         \"end_to_end\": [\n{}\n  ]\n}}\n",
        kernel_json.join(",\n"),
        e2e_json.join(",\n")
    );
    let path = "BENCH_simd.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(snapshot.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}

fn main() {
    // Exit non-zero even when a failure happens on a spawned rank thread
    // whose join result nobody inspects (see mhm_bench::harness_exit_code).
    mhm_bench::run_harness(run);
}
