//! Ablation: distributed read store vs a full `ReadLibrary` replica per rank.
//!
//! Reads are the largest input of an assembly run, and every stage touches
//! them: k-mer analysis streams them, alignment walks them, local assembly
//! and scaffolding read them back by id. The replicated baseline gives each
//! rank its own copy of the whole library — O(total input) read bytes per
//! rank, the other half of the single-node memory ceiling the paper's PGAS
//! design removes (the contig half is `ablation_contig_store`). The
//! distributed store packs reads 2-bit with run-length-encoded qualities
//! (names dropped), shards fixed-size blocks by owner rank, and serves every
//! consumer through per-rank byte-bounded caches — streaming owned blocks
//! for k-mer analysis, one-sided block fetches for alignment, and one
//! aggregated collective fetch for local-assembly pools — so per-rank read
//! residency drops to `total/ranks + cache bound`.
//!
//! This harness runs the same assembly with the store on and off at 1, 2, 4
//! and 8 ranks and exits non-zero unless, at every rank count:
//!
//! * the scaffolds are **byte-identical** across the two modes, and
//! * every rank's peak resident read bytes (`read_bytes_resident`, owned
//!   shard + reader caches, packed) stay within `replicated_total/ranks +
//!   cache_bytes` — the ~6x packing margin (2 bits/base vs seq + qual +
//!   name) absorbs block-hash shard imbalance — and
//! * the peak-residency ratio (replicated / distributed, the memory-scaling
//!   figure of merit) does not drift below `max(1.8, ranks/2)` — at one
//!   rank the win is pure packing; at higher rank counts sharding compounds
//!   it, diluted on this tiny dataset by the fixed cache bound.
//!
//! The measured numbers are written to `BENCH_read_mem.json` so the memory
//! trajectory accumulates across commits; the ratio assertion doubles as the
//! CI drift guard on that file's contents.

use baselines::{Assembler, MetaHipMerAssembler};
use mhm_bench::{fmt, print_table, scaled_eval_params, team};
use mhm_core::AssemblyConfig;
use std::io::Write;

/// Per-rank reader cache bound used for the run (small enough that the
/// shard, not the cache, dominates residency at every rank count).
const CACHE_BYTES: usize = 32 << 10;

/// FNV-1a digest over the sorted scaffold sequences.
fn scaffold_digest(seqs: &[Vec<u8>]) -> u64 {
    let mut sorted: Vec<&Vec<u8>> = seqs.iter().collect();
    sorted.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in sorted {
        for &b in s.iter().chain(&[0xFFu8]) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn run() {
    let ds = mgsim::mg64_sim(mgsim::Mg64Scale::Tiny, 20260809);
    let eval = scaled_eval_params();

    let mut rows = Vec::new();
    let mut snapshots = Vec::new();
    for ranks in [1usize, 2, 4, 8] {
        let mut outputs = Vec::new();
        let mut per_rank_stats = Vec::new();
        for distributed in [false, true] {
            let cfg = AssemblyConfig {
                use_distributed_reads: distributed,
                read_cache_bytes: CACHE_BYTES,
                ..Default::default()
            };
            let team = team(ranks);
            let assembler = MetaHipMerAssembler { config: cfg };
            outputs.push(assembler.assemble(&team, &ds.library, Some(&ds.rrna_consensus)));
            per_rank_stats.push(team.stats_per_rank());
        }
        let (rep, dist) = (&outputs[0], &outputs[1]);
        let rep_resident: Vec<u64> = per_rank_stats[0]
            .iter()
            .map(|s| s.read_bytes_resident)
            .collect();
        let dist_resident: Vec<u64> = per_rank_stats[1]
            .iter()
            .map(|s| s.read_bytes_resident)
            .collect();
        let rep_max = *rep_resident.iter().max().unwrap();
        let dist_max = *dist_resident.iter().max().unwrap();
        let fetch_bytes: u64 = per_rank_stats[1].iter().map(|s| s.read_fetch_bytes).sum();
        let ratio = rep_max as f64 / dist_max.max(1) as f64;
        rows.push(vec![
            ranks.to_string(),
            rep_max.to_string(),
            dist_max.to_string(),
            (rep_max / ranks as u64 + CACHE_BYTES as u64).to_string(),
            fetch_bytes.to_string(),
            fmt(ratio, 1),
        ]);

        // ---- The hard claims, per rank count --------------------------------
        let (seq_rep, seq_dist) = (rep.sequences(), dist.sequences());
        assert_eq!(
            seq_rep, seq_dist,
            "scaffolds must be byte-identical across read-store modes at {ranks} ranks"
        );
        let bound = rep_max / ranks as u64 + CACHE_BYTES as u64;
        for (rank, &resident) in dist_resident.iter().enumerate() {
            assert!(
                resident <= bound,
                "rank {rank}/{ranks}: resident read bytes {resident} exceed \
                 total/ranks + cache = {bound}"
            );
        }
        let min_ratio = (ranks as f64 / 2.0).max(1.8);
        assert!(
            ratio >= min_ratio,
            "memory ratio drifted below {min_ratio:.0}x at {ranks} ranks: \
             {ratio:.1}x ({rep_max} -> {dist_max})"
        );
        let report = asm_metrics::evaluate(&seq_dist, &ds.refs, &eval);
        println!(
            "ranks={ranks}: {ratio:.1}x less resident read memory per rank \
             ({rep_max} -> {dist_max} bytes, bound {bound}), {}",
            report.summary_line()
        );
        snapshots.push(format!(
            "    {{\"ranks\": {ranks}, \"resident_replicated_max\": {rep_max}, \
             \"resident_distributed_max\": {dist_max}, \"residency_bound\": {bound}, \
             \"cache_bytes\": {CACHE_BYTES}, \"mem_ratio\": {ratio:.2}, \
             \"read_fetch_bytes\": {fetch_bytes}, \
             \"scaffold_digest\": \"{:016x}\", \"scaffolds\": {}}}",
            scaffold_digest(&seq_dist),
            seq_dist.len(),
        ));
    }
    print_table(
        "Ablation — distributed read store",
        &[
            "Ranks",
            "Resident (replica)",
            "Resident (store)",
            "Bound",
            "Fetch bytes",
            "Ratio",
        ],
        &rows,
    );

    // ---- Snapshot for the memory trajectory ---------------------------------
    let snapshot = format!(
        "{{\n  \"bench\": \"ablation_read_store\",\n  \"dataset\": \"mg64_tiny\",\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        snapshots.join(",\n")
    );
    let path = "BENCH_read_mem.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(snapshot.as_bytes())) {
        Ok(()) => println!("Wrote {path}"),
        Err(e) => eprintln!("Could not write {path}: {e}"),
    }
}

fn main() {
    // Exit non-zero even when a failure happens on a spawned rank thread
    // whose join result nobody inspects (see mhm_bench::harness_exit_code).
    mhm_bench::run_harness(run);
}
