//! Ablation (§II-C design choice): the metagenome dynamic extension threshold
//! `thq = max(t_base, e·d)` vs HipMer's single global threshold, on a
//! two-species community with a ~100× abundance ratio.
//!
//! Expected shape: the dynamic threshold keeps the high-coverage genome in few
//! long contigs *and* covers the rare genome; a global threshold fragments one
//! of the two depending on where it is set.

use baselines::MetaHipMerAssembler;
use dbg::ThresholdPolicy;
use mhm_bench::{fmt, print_table, run_assembler, scaled_eval_params};
use mhm_core::AssemblyConfig;

fn run() {
    let ds = mgsim::two_species_skewed(20260614);
    let eval = scaled_eval_params();
    let ranks = 4usize.min(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
    );
    let policies: Vec<(&str, ThresholdPolicy)> = vec![
        (
            "dynamic max(2, 0.05 d)",
            ThresholdPolicy::metahipmer_default(),
        ),
        ("global thq=2", ThresholdPolicy::Global { thq: 2 }),
        ("global thq=16", ThresholdPolicy::Global { thq: 16 }),
    ];
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let cfg = AssemblyConfig {
            threshold: policy,
            ..Default::default()
        };
        let run = run_assembler(&MetaHipMerAssembler { config: cfg }, &ds, ranks, &eval);
        let abundant = &run.report.per_genome[0];
        let rare = &run.report.per_genome[1];
        rows.push(vec![
            name.to_string(),
            run.report.num_seqs.to_string(),
            run.report.n50.to_string(),
            fmt(100.0 * abundant.genome_fraction, 1),
            abundant.nga50.to_string(),
            fmt(100.0 * rare.genome_fraction, 1),
            rare.nga50.to_string(),
        ]);
    }
    print_table(
        "Ablation — extension threshold policy (abundant vs rare genome)",
        &[
            "Policy",
            "Seqs",
            "N50",
            "Abundant gen. frac. %",
            "Abundant NGA50",
            "Rare gen. frac. %",
            "Rare NGA50",
        ],
        &rows,
    );
}

fn main() {
    // Exit non-zero even when a failure happens on a spawned rank thread
    // whose join result nobody inspects (see mhm_bench::harness_exit_code).
    mhm_bench::run_harness(run);
}
