//! Ablation (§II-G design choice): dynamic work stealing for local assembly.
//!
//! The paper reports that dynamic block dealing improves the local-assembly
//! load balance from ~0.33 to ~0.55 at scale. This harness measures the
//! balance of the shared-counter block dealer against a static block
//! partition on a synthetic workload with heavily skewed per-item costs.

use mhm_bench::{fmt, print_table, team};
use pgas::stats::load_balance_ratio;
use pgas::DynamicBlocks;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Simulated per-contig walk cost: a few contigs are 100x more expensive.
fn cost(i: usize) -> u64 {
    if i.is_multiple_of(97) {
        200
    } else {
        2
    }
}

fn busy(units: u64, sink: &AtomicU64) {
    let mut acc = 0u64;
    for i in 0..units * 2_000 {
        acc = acc.wrapping_add(i).rotate_left(3);
    }
    sink.fetch_add(acc, Ordering::Relaxed);
}

fn run() {
    let items = 2_000usize;
    let ranks = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let sink = Arc::new(AtomicU64::new(0));
    let mut rows = Vec::new();
    for (name, dynamic) in [("static blocks", false), ("dynamic work stealing", true)] {
        let team = team(ranks);
        let sink2 = Arc::clone(&sink);
        let start = std::time::Instant::now();
        let work = team.run(|ctx| {
            let mut my_cost = 0u64;
            if dynamic {
                let blocks = ctx.share(|| DynamicBlocks::new(items, 8));
                blocks.drive(ctx, |i| {
                    busy(cost(i), &sink2);
                    my_cost += cost(i);
                });
            } else {
                for i in ctx.block_range(items) {
                    busy(cost(i), &sink2);
                    my_cost += cost(i);
                }
            }
            ctx.barrier();
            my_cost as f64
        });
        let elapsed = start.elapsed().as_secs_f64();
        let balance = load_balance_ratio(&work);
        let steals = team.stats_total().steals;
        rows.push(vec![
            name.to_string(),
            fmt(elapsed, 3),
            fmt(balance, 2),
            steals.to_string(),
        ]);
    }
    print_table(
        "Ablation — local-assembly work distribution",
        &[
            "Strategy",
            "Wall-clock (s)",
            "Load balance (avg/max)",
            "Steals",
        ],
        &rows,
    );
}

fn main() {
    // Exit non-zero even when a failure happens on a spawned rank thread
    // whose join result nobody inspects (see mhm_bench::harness_exit_code).
    mhm_bench::run_harness(run);
}
