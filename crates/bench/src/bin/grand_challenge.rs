//! §IV-C grand challenge: full Wetlands-sim assembly vs its 3-lane subset.
//!
//! Expected shape: assembling the full (deeper, more complex) sample yields a
//! much longer assembly than the subset, and a far larger fraction of all
//! reads maps back to it (the paper: 18× longer, 42% vs 7.6% of reads mapping
//! back).

use aligner::{align_reads, build_seed_index, AlignParams};
use baselines::MetaHipMerAssembler;
use dbg::ContigSet;
use mhm_bench::{fmt, print_table, run_assembler, scale, scaled_eval_params, team};
use mhm_core::AssemblyConfig;

/// Fraction of reads with at least one alignment to the assembly.
fn fraction_mapping_back(ds: &mgsim::SimDataset, assembly: &[Vec<u8>], ranks: usize) -> f64 {
    let contigs =
        ContigSet::from_sequences(31, assembly.iter().map(|s| (s.clone(), 1.0)).collect());
    let team = team(ranks);
    let mapped: u64 = team
        .run(|ctx| {
            let index = build_seed_index(ctx, &contigs, 15);
            ctx.barrier();
            let range = ctx.block_range(ds.library.num_reads());
            let reads = range.map(|i| (i as u64, ds.library.read(i as u64).clone()));
            let aligned = align_reads(
                ctx,
                reads,
                &contigs,
                &index,
                &AlignParams {
                    seed_len: 15,
                    stride: 7,
                    ..Default::default()
                },
            );
            let distinct: std::collections::HashSet<u64> =
                aligned.alignments.iter().map(|a| a.read_id).collect();
            ctx.allreduce_sum_u64(distinct.len() as u64)
        })
        .into_iter()
        .next()
        .unwrap();
    mapped as f64 / ds.library.num_reads() as f64
}

fn main() {
    let eval = scaled_eval_params();
    let ranks = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let subset = mgsim::wetlands_sim(3 * scale(), 20260614);
    let full = mgsim::wetlands_sim(21 * scale(), 20260614);
    let mut rows = Vec::new();
    let mut lens = Vec::new();
    for (name, ds) in [("3-lane subset", &subset), ("full 21-lane", &full)] {
        let run = run_assembler(
            &MetaHipMerAssembler {
                config: AssemblyConfig::default(),
            },
            ds,
            ranks,
            &eval,
        );
        let total = run.output.scaffolds.total_bases();
        lens.push(total);
        let map_back = fraction_mapping_back(ds, &run.output.sequences(), ranks);
        rows.push(vec![
            name.to_string(),
            ds.library.num_reads().to_string(),
            total.to_string(),
            fmt(run.seconds, 1),
            fmt(100.0 * map_back, 1),
            fmt(100.0 * run.report.genome_fraction, 1),
        ]);
    }
    print_table(
        "Grand challenge — full Wetlands-sim vs subset",
        &[
            "Dataset",
            "Reads",
            "Assembly length (bp)",
            "Time (s)",
            "Reads mapping back %",
            "Gen. frac. %",
        ],
        &rows,
    );
    println!(
        "\nFull assembly is {:.1}x longer than the subset assembly",
        lens[1] as f64 / lens[0].max(1) as f64
    );
}
