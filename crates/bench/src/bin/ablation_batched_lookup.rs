//! Ablation: aggregated request–response lookups vs fine-grained reads.
//!
//! The paper's central communication optimisation aggregates *lookups*, not
//! just inserts: ranks buffer hash-table requests per owner, ship them in
//! large messages and receive batched responses (use case 3 of §II-A). This
//! harness runs the same assembly twice — once with the lookup batch size
//! forced to 1 (every remote read is a synchronous fine-grained access) and
//! once with aggregation on — and compares the *lookup traffic* of each
//! stage: fine-grained accesses plus aggregated messages. Expected shape:
//! the alignment stage's traffic collapses by well over an order of
//! magnitude, and the assembly output is byte-identical.
//!
//! The process exits non-zero if the ≥10× reduction on the alignment stage
//! or the byte-identity of the assembly does not hold, so CI can run it as a
//! smoke check.

use baselines::{Assembler, MetaHipMerAssembler};
use mhm_bench::{fmt, print_table, scaled_eval_params, team};
use mhm_core::AssemblyConfig;
use pgas::StatsSnapshot;

/// Events that cross (or would cross) the network for lookups: one per
/// fine-grained access, one per aggregated message.
fn lookup_traffic(s: &StatsSnapshot) -> u64 {
    s.fine_grained_ops() + s.msgs_sent
}

fn run() {
    let ranks = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(4);
    let ds = mgsim::mg64_sim(mgsim::Mg64Scale::Tiny, 20260614);
    let eval = scaled_eval_params();

    let mut outputs = Vec::new();
    for (label, batch) in [
        ("fine-grained (batch 1)", 1usize),
        ("aggregated (batch 4096)", 4096),
    ] {
        let cfg = AssemblyConfig::default().with_lookup_batch(batch);
        let team = team(ranks);
        let assembler = MetaHipMerAssembler { config: cfg };
        let output = assembler.assemble(&team, &ds.library, Some(&ds.rrna_consensus));
        let report = asm_metrics::evaluate(&output.sequences(), &ds.refs, &eval);
        println!("{label}: {}", report.summary_line());
        outputs.push((label, output));
    }
    let fine = &outputs[0].1;
    let agg = &outputs[1].1;

    let mut rows = Vec::new();
    for (stage, _, _) in &fine.stages {
        let f = fine.stage_stats(stage);
        let a = agg.stage_stats(stage);
        let (tf, ta) = (lookup_traffic(&f), lookup_traffic(&a));
        rows.push(vec![
            stage.clone(),
            tf.to_string(),
            f.msgs_sent.to_string(),
            ta.to_string(),
            a.msgs_sent.to_string(),
            a.rpc_round_trips.to_string(),
            fmt(tf as f64 / (ta as f64).max(1.0), 1),
        ]);
    }
    print_table(
        "Ablation — aggregated request–response lookups",
        &[
            "Stage",
            "Traffic (batch 1)",
            "Msgs (batch 1)",
            "Traffic (batch 4096)",
            "Msgs (batch 4096)",
            "Round trips",
            "Traffic ratio",
        ],
        &rows,
    );

    // ---- The two hard claims of the ablation --------------------------------
    let fine_align = lookup_traffic(&fine.stage_stats("alignment"));
    let agg_align = lookup_traffic(&agg.stage_stats("alignment"));
    let ratio = fine_align as f64 / (agg_align as f64).max(1.0);
    println!("\nAlignment-stage lookup traffic: {fine_align} -> {agg_align} ({ratio:.1}x fewer)");
    assert!(
        ratio >= 10.0,
        "aggregated lookups must cut alignment-stage traffic >= 10x, got {ratio:.1}x"
    );
    let (seq_fine, seq_agg) = (fine.sequences(), agg.sequences());
    assert_eq!(
        seq_fine, seq_agg,
        "assembly must be byte-identical with and without lookup aggregation"
    );
    println!(
        "Assembly byte-identical across batch sizes: {} scaffolds, {} bases",
        seq_agg.len(),
        seq_agg.iter().map(|s| s.len()).sum::<usize>()
    );
}

fn main() {
    // Exit non-zero even when a failure happens on a spawned rank thread
    // whose join result nobody inspects (see mhm_bench::harness_exit_code).
    mhm_bench::run_harness(run);
}
