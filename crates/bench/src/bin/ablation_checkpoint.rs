//! Ablation: checkpoint/restart with elastic rank-count resume under an
//! injected rank fault.
//!
//! Long assemblies die — node failures, walltime limits, preemption — and
//! without checkpoints every k iteration already completed dies with them.
//! The `core::checkpoint` subsystem serialises the cross-iteration state
//! (contig shards, read-store block map, read-localisation targets,
//! iteration position) at each k boundary into a versioned, CRC-checked,
//! atomically committed on-disk format, and restores it onto a team of any
//! rank count by re-routing every shard entry through the tables'
//! partitioners.
//!
//! This harness turns "kill after iteration i, restart elsewhere, identical
//! output" into a CI-checked property instead of a hope. It runs, on the
//! same dataset:
//!
//! 1. an uninterrupted baseline (2 ranks, no checkpointing) — the golden
//!    scaffolds;
//! 2. the same run with checkpointing on — must be byte-identical, and the
//!    measured `checkpoint_write` stage is the write overhead;
//! 3. a run with a [`pgas::FaultPlan`] armed to kill rank 1 just after the
//!    iteration-0 commit (aimed with the manifest's collective barrier
//!    stamp) — must fail, leaving a committed checkpoint behind;
//! 4. resumes of that dead run at 2x the ranks, at half, and at the same
//!    count — each must complete with scaffolds byte-identical to the
//!    baseline, and the measured `checkpoint_restore` stage is the restore
//!    overhead.
//!
//! Local assembly is disabled for the same reason the pipeline's
//! rank-invariance test disables it: its dynamically scheduled extension
//! walk is the one stage whose output is not a pure function of the rank
//! count, and the property checked here is cross-rank-count byte equality.
//!
//! The timings land in `BENCH_checkpoint.json` (write overhead, restore
//! seconds per resume rank count, checkpoint size on disk) so the
//! fault-tolerance cost trajectory accumulates across commits.

use mhm_bench::{fmt, print_table, scaled_eval_params};
use mhm_core::{checkpoint, AssemblyConfig, MetaHipMer};
use pgas::{FaultPlan, Team};
use std::io::Write;
use std::path::Path;

/// FNV-1a digest over the sorted scaffold sequences.
fn scaffold_digest(seqs: &[Vec<u8>]) -> u64 {
    let mut sorted: Vec<&Vec<u8>> = seqs.iter().collect();
    sorted.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in sorted {
        for &b in s.iter().chain(&[0xFFu8]) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Total bytes of every file under a committed checkpoint directory.
fn dir_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            if let Ok(meta) = e.metadata() {
                if meta.is_file() {
                    total += meta.len();
                } else if meta.is_dir() {
                    total += dir_bytes(&e.path());
                }
            }
        }
    }
    total
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mhm_ablation_ckpt_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

const WRITER_RANKS: usize = 2;

fn run() {
    let ds = mgsim::mg64_sim(mgsim::Mg64Scale::Tiny, 20260809);
    let eval = scaled_eval_params();
    let cfg = AssemblyConfig {
        local_assembly: false,
        ..Default::default()
    };
    assert!(
        cfg.k_values().len() >= 2,
        "need at least one k boundary to checkpoint at"
    );

    // ---- 1. Uninterrupted baseline ------------------------------------------
    let baseline = MetaHipMer::new(cfg.clone()).assemble(
        &Team::single_node(WRITER_RANKS),
        &ds.library,
        Some(&ds.rrna_consensus),
    );
    let golden_seqs = baseline.sequences();
    let golden = scaffold_digest(&golden_seqs);
    let report = asm_metrics::evaluate(&golden_seqs, &ds.refs, &eval);
    println!(
        "baseline: {} scaffolds, digest {golden:016x}, {:.2}s, {}",
        golden_seqs.len(),
        baseline.total_seconds,
        report.summary_line()
    );

    // ---- 2. Same run, checkpointing on: overhead + byte equality ------------
    let clean_dir = scratch("clean");
    let mut ckpt_cfg = cfg.clone();
    ckpt_cfg.checkpoint_dir = Some(clean_dir.clone());
    let written = MetaHipMer::new(ckpt_cfg).assemble(
        &Team::single_node(WRITER_RANKS),
        &ds.library,
        Some(&ds.rrna_consensus),
    );
    assert_eq!(
        scaffold_digest(&written.sequences()),
        golden,
        "checkpointing changed the assembly"
    );
    let write_seconds = written.stage_seconds("checkpoint_write");
    assert!(write_seconds > 0.0, "checkpoint_write stage not recorded");
    let write_frac = write_seconds / written.total_seconds.max(1e-9);
    let (manifest, clean_ckpt) = checkpoint::find_latest(&clean_dir, cfg.fingerprint())
        .expect("checkpoint committed by the clean run");
    let ckpt_bytes = dir_bytes(&clean_ckpt);
    println!(
        "checkpointed: write {write_seconds:.3}s ({:.1}% of {:.2}s), {} bytes on disk, \
         commit at barrier {}",
        100.0 * write_frac,
        written.total_seconds,
        ckpt_bytes,
        manifest.barriers_at_commit
    );

    // ---- 3. Kill rank 1 right after the iteration-0 commit ------------------
    // Barrier counts are deterministic and rank-uniform, so the clean run's
    // commit stamp aims a fresh run's fault precisely past the commit.
    let fault_dir = scratch("fault");
    let mut fault_cfg = cfg.clone();
    fault_cfg.checkpoint_dir = Some(fault_dir.clone());
    let team = Team::single_node(WRITER_RANKS);
    team.set_fault_plan(Some(FaultPlan {
        rank: 1,
        after_barriers: manifest.barriers_at_commit + 16,
    }));
    let fault = MetaHipMer::new(fault_cfg.clone())
        .try_assemble(&team, &ds.library, Some(&ds.rrna_consensus))
        .expect_err("armed fault must kill the run");
    println!("fault run: {fault} (as planned)");
    assert_eq!(fault.rank, 1);
    let (fault_manifest, _) = checkpoint::find_latest(&fault_dir, cfg.fingerprint())
        .expect("iteration-0 checkpoint must have committed before the kill");
    assert_eq!(fault_manifest.next_iter, 1);

    // ---- 4. Elastic resumes of the dead run ---------------------------------
    let mut rows = Vec::new();
    let mut resume_snapshots = Vec::new();
    for ranks in [2 * WRITER_RANKS, WRITER_RANKS / 2, WRITER_RANKS] {
        let mut resume_cfg = fault_cfg.clone();
        resume_cfg.resume = true;
        let resumed = MetaHipMer::new(resume_cfg).assemble(
            &Team::single_node(ranks),
            &ds.library,
            Some(&ds.rrna_consensus),
        );
        let digest = scaffold_digest(&resumed.sequences());
        assert_eq!(
            digest, golden,
            "resume at {ranks} ranks diverged from the uninterrupted run"
        );
        let restore_seconds = resumed.stage_seconds("checkpoint_restore");
        assert!(
            restore_seconds > 0.0,
            "resume at {ranks} ranks did not restore from the checkpoint"
        );
        println!(
            "resume at {ranks} ranks (writer had {WRITER_RANKS}): restore {restore_seconds:.3}s, \
             total {:.2}s, digest {digest:016x} == baseline",
            resumed.total_seconds
        );
        rows.push(vec![
            ranks.to_string(),
            fmt(restore_seconds, 3),
            fmt(resumed.total_seconds, 2),
            "identical".to_string(),
        ]);
        resume_snapshots.push(format!(
            "    {{\"ranks\": {ranks}, \"restore_seconds\": {restore_seconds:.4}, \
             \"total_seconds\": {:.4}, \"scaffold_digest\": \"{digest:016x}\", \
             \"byte_identical\": true}}",
            resumed.total_seconds
        ));
    }
    print_table(
        "Ablation — checkpoint/restart with elastic resume",
        &["Resume ranks", "Restore (s)", "Total (s)", "Scaffolds"],
        &rows,
    );

    // ---- Snapshot for the fault-tolerance cost trajectory -------------------
    let snapshot = format!(
        "{{\n  \"bench\": \"ablation_checkpoint\",\n  \"dataset\": \"mg64_tiny\",\n  \
         \"writer_ranks\": {WRITER_RANKS},\n  \
         \"baseline_seconds\": {:.4},\n  \"checkpointed_seconds\": {:.4},\n  \
         \"write_seconds\": {write_seconds:.4},\n  \"write_overhead_frac\": {write_frac:.4},\n  \
         \"checkpoint_bytes\": {ckpt_bytes},\n  \
         \"barriers_at_commit\": {},\n  \
         \"fault\": {{\"rank\": {}, \"after_barriers\": {}}},\n  \
         \"scaffold_digest\": \"{golden:016x}\",\n  \"resumes\": [\n{}\n  ]\n}}\n",
        baseline.total_seconds,
        written.total_seconds,
        manifest.barriers_at_commit,
        fault.rank,
        manifest.barriers_at_commit + 16,
        resume_snapshots.join(",\n")
    );
    let path = "BENCH_checkpoint.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(snapshot.as_bytes())) {
        Ok(()) => println!("Wrote {path}"),
        Err(e) => eprintln!("Could not write {path}: {e}"),
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&fault_dir);
}

fn main() {
    // Exit non-zero even when a failure happens on a spawned rank thread
    // whose join result nobody inspects (see mhm_bench::harness_exit_code).
    mhm_bench::run_harness(run);
}
