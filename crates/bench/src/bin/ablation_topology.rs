//! Ablation: two-level (node-leader) exchange routing vs the flat all-to-all.
//!
//! The paper's machines pack 32 ranks onto each Cori node, so the expensive
//! resource is the *inter-node* link: aggregation that treats all ranks alike
//! still pays one interconnect message per (rank, remote rank) pair per
//! flush. Hierarchical routing gathers each node's off-node batches at a
//! node leader, ships **one** combined message per destination node, and
//! scatters on-node at the receiver — same payload bytes across the
//! interconnect, up to `ranks_per_node`× fewer off-node messages per
//! direction.
//!
//! This harness assembles the same dataset at 1, 2, 4 and 8 ranks across
//! `ranks_per_node` ∈ {1, 2, ranks}, with the hierarchical exchange on and
//! off, and checks the hard claims:
//!
//! * scaffolds are byte-identical across **every** topology and routing mode
//!   (one digest for the whole sweep);
//! * at 8 ranks / 2 ranks-per-node, every aggregated pipeline stage moves at
//!   least `ranks_per_node/2`× fewer off-node bytes under hierarchical
//!   routing (the payload never grows — bytes are equal, so the factor-1
//!   bound holds stage by stage), and the total off-node *message* count
//!   drops at least 2×.
//!
//! The measured splits are written to `BENCH_topology.json` so CI can guard
//! against drift in the off-node message ratio.

use baselines::{Assembler, MetaHipMerAssembler};
use mhm_bench::{fmt, print_table, scaled_eval_params};
use mhm_core::AssemblyConfig;
use pgas::StatsSnapshot;
use std::io::Write;

/// FNV-1a digest over the sorted scaffold sequences: a compact fingerprint
/// of byte-identity for the JSON snapshot.
fn scaffold_digest(seqs: &[Vec<u8>]) -> u64 {
    let mut sorted: Vec<&Vec<u8>> = seqs.iter().collect();
    sorted.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in sorted {
        for &b in s.iter().chain(&[0xFFu8]) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

struct Run {
    ranks: usize,
    rpn: usize,
    hier: bool,
    totals: StatsSnapshot,
    stages: Vec<(String, StatsSnapshot)>,
    digest: u64,
    scaffolds: usize,
}

fn run() {
    let ds = mgsim::mg64_sim(mgsim::Mg64Scale::Tiny, 20260614);
    let eval = scaled_eval_params();

    let mut runs: Vec<Run> = Vec::new();
    let mut reference: Option<Vec<Vec<u8>>> = None;
    for ranks in [1usize, 2, 4, 8] {
        let mut rpns = vec![1, 2, ranks];
        rpns.sort_unstable();
        rpns.dedup();
        for rpn in rpns {
            for hier in [false, true] {
                let cfg = AssemblyConfig {
                    ranks_per_node: rpn,
                    use_hierarchical_exchange: hier,
                    ..Default::default()
                };
                let team = cfg.team(ranks);
                let assembler = MetaHipMerAssembler { config: cfg };
                let out = assembler.assemble(&team, &ds.library, Some(&ds.rrna_consensus));
                let seqs = out.sequences();
                match &reference {
                    None => reference = Some(seqs.clone()),
                    Some(r) => assert_eq!(
                        &seqs, r,
                        "scaffolds must be byte-identical at ranks={ranks} rpn={rpn} hier={hier}"
                    ),
                }
                runs.push(Run {
                    ranks,
                    rpn,
                    hier,
                    totals: team.stats_total(),
                    stages: out.stages.iter().map(|(n, _, s)| (n.clone(), *s)).collect(),
                    digest: scaffold_digest(&seqs),
                    scaffolds: seqs.len(),
                });
            }
        }
    }
    let reference = reference.expect("at least one run");
    let report = asm_metrics::evaluate(&reference, &ds.refs, &eval);
    println!(
        "assembly (identical across all {} runs): {}",
        runs.len(),
        report.summary_line()
    );

    // ---- The hard claims at 8 ranks / 2 ranks-per-node ----------------------
    let find = |ranks: usize, rpn: usize, hier: bool| -> &Run {
        runs.iter()
            .find(|r| r.ranks == ranks && r.rpn == rpn && r.hier == hier)
            .expect("run present")
    };
    let (flat, hier) = (find(8, 2, false), find(8, 2, true));
    let rpn_factor = 1.0; // ranks_per_node / 2 at rpn = 2
    for (name, fs) in &flat.stages {
        let hs = &hier
            .stages
            .iter()
            .find(|(n, _)| n == name)
            .expect("stage sets match")
            .1;
        if fs.off_node_msgs == 0 {
            continue; // nothing aggregated crossed the interconnect here
        }
        if name == "local_assembly" {
            // Dynamic work stealing races ranks on a shared grab counter, so
            // *which* rank fetches a contig block — and therefore whether the
            // one-sided read crosses the node boundary — varies run to run.
            // The routing claims below are exact only for the deterministic
            // aggregated stages; this stage's split is load-balancing noise.
            continue;
        }
        assert!(
            fs.off_node_bytes as f64 >= hs.off_node_bytes as f64 * rpn_factor,
            "stage {name}: expected >= {rpn_factor}x fewer off-node bytes, \
             flat={} hier={}",
            fs.off_node_bytes,
            hs.off_node_bytes
        );
        assert!(
            hs.off_node_msgs <= fs.off_node_msgs,
            "stage {name}: off-node messages grew: flat={} hier={}",
            fs.off_node_msgs,
            hs.off_node_msgs
        );
    }
    let msg_ratio = flat.totals.off_node_msgs as f64 / (hier.totals.off_node_msgs as f64).max(1.0);
    assert!(
        msg_ratio >= 2.0,
        "expected >= 2x fewer off-node messages overall at 8 ranks / 2 rpn, got {msg_ratio:.2}x"
    );
    // Byte neutrality: node-leader routing repackages off-node traffic but
    // never grows it. Summed over the deterministic stages (work stealing
    // excluded, as above) the off-node payload must be *identical* in both
    // modes; over the whole run it must stay within the stealing jitter.
    let det_off = |r: &Run| -> u64 {
        r.stages
            .iter()
            .filter(|(n, _)| n != "local_assembly")
            .map(|(_, s)| s.off_node_bytes)
            .sum()
    };
    assert_eq!(
        det_off(flat),
        det_off(hier),
        "off-node payload bytes must be identical across routing modes \
         in the deterministic stages"
    );
    let (ft, ht) = (flat.totals.off_node_bytes, hier.totals.off_node_bytes);
    assert!(
        (ft.abs_diff(ht) as f64) < 0.01 * ft as f64,
        "total off-node bytes diverged beyond stealing jitter: flat={ft} hier={ht}"
    );
    println!(
        "8 ranks / 2 rpn: off-node messages {} -> {} ({msg_ratio:.1}x), \
         off-node bytes unchanged at {} (deterministic stages)",
        flat.totals.off_node_msgs,
        hier.totals.off_node_msgs,
        det_off(hier)
    );

    // ---- Table + snapshot ---------------------------------------------------
    let mut rows = Vec::new();
    let mut snapshots = Vec::new();
    for r in &runs {
        let t = &r.totals;
        let off_frac = t.off_node_byte_fraction();
        rows.push(vec![
            r.ranks.to_string(),
            r.rpn.to_string(),
            (if r.hier { "two-level" } else { "flat" }).to_string(),
            t.off_node_msgs.to_string(),
            t.off_node_bytes.to_string(),
            fmt(off_frac, 3),
        ]);
        snapshots.push(format!(
            "    {{\"ranks\": {}, \"ranks_per_node\": {}, \"hierarchical\": {}, \
             \"off_node_msgs\": {}, \"on_node_msgs\": {}, \"off_node_bytes\": {}, \
             \"on_node_bytes\": {}, \"off_node_byte_fraction\": {:.4}, \
             \"scaffold_digest\": \"{:016x}\", \"scaffolds\": {}}}",
            r.ranks,
            r.rpn,
            r.hier,
            t.off_node_msgs,
            t.on_node_msgs,
            t.off_node_bytes,
            t.on_node_bytes,
            t.off_node_byte_fraction(),
            r.digest,
            r.scaffolds,
        ));
    }
    print_table(
        "Ablation — two-level (node-leader) exchange",
        &[
            "Ranks",
            "Ranks/node",
            "Routing",
            "Off-node msgs",
            "Off-node bytes",
            "Off-byte frac",
        ],
        &rows,
    );

    let snapshot = format!(
        "{{\n  \"bench\": \"ablation_topology\",\n  \"dataset\": \"mg64_tiny\",\n  \
         \"off_msg_ratio\": {msg_ratio:.2},\n  \"runs\": [\n{}\n  ]\n}}\n",
        snapshots.join(",\n")
    );
    let path = "BENCH_topology.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(snapshot.as_bytes())) {
        Ok(()) => println!("Wrote {path}"),
        Err(e) => eprintln!("Could not write {path}: {e}"),
    }
}

fn main() {
    // Exit non-zero even when a failure happens on a spawned rank thread
    // whose join result nobody inspects (see mhm_bench::harness_exit_code).
    mhm_bench::run_harness(run);
}
