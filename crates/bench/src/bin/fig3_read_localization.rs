//! Figure 3: impact of the read-localisation optimisation on the k-mer
//! analysis and alignment stages.
//!
//! Expected shape: with localisation enabled the alignment stage speeds up
//! (most at small node counts — the paper reports 2.2× at 16 nodes) and the
//! software-cache hit rate rises; k-mer analysis improves by a smaller factor.

use baselines::MetaHipMerAssembler;
use mhm_bench::{fmt, print_table, rank_sweep, run_assembler, scaled_eval_params};
use mhm_core::AssemblyConfig;

fn main() {
    let ds = mgsim::mg64_sim(mgsim::Mg64Scale::Tiny, 20260614);
    let eval = scaled_eval_params();
    let mut rows = Vec::new();
    for ranks in rank_sweep(8) {
        let mut per_setting = Vec::new();
        for localized in [false, true] {
            let cfg = AssemblyConfig {
                read_localization: localized,
                ..Default::default()
            };
            let run = run_assembler(&MetaHipMerAssembler { config: cfg }, &ds, ranks, &eval);
            let align = run.output.stage_seconds("alignment");
            let kanal = run.output.stage_seconds("kmer_analysis");
            let cache = run.output.stage_stats("alignment").cache_hit_rate();
            per_setting.push((align, kanal, cache));
        }
        let (a_off, k_off, c_off) = per_setting[0];
        let (a_on, k_on, c_on) = per_setting[1];
        rows.push(vec![
            ranks.to_string(),
            fmt(a_off, 2),
            fmt(a_on, 2),
            fmt(a_off / a_on.max(1e-9), 2),
            fmt(k_off, 2),
            fmt(k_on, 2),
            fmt(k_off / k_on.max(1e-9), 2),
            fmt(100.0 * c_off, 1),
            fmt(100.0 * c_on, 1),
        ]);
    }
    print_table(
        "Figure 3 — read localisation impact",
        &[
            "Ranks",
            "Align (s) off",
            "Align (s) on",
            "Align speedup",
            "K-mer (s) off",
            "K-mer (s) on",
            "K-mer speedup",
            "Cache hit % off",
            "Cache hit % on",
        ],
        &rows,
    );
}
