//! Figure 4: strong scaling of the whole pipeline on a Wetlands-substitute
//! subset (fixed input, growing rank count).
//!
//! Expected shape: near-ideal scaling at small rank counts, gradually
//! declining efficiency as local-assembly load imbalance and fixed costs grow
//! (the paper reports 61% efficiency from 32 to 1024 nodes).

use baselines::MetaHipMerAssembler;
use mhm_bench::{
    efficiency, fmt, print_table, rank_sweep, run_assembler, scale, scaled_eval_params,
};
use mhm_core::AssemblyConfig;

fn main() {
    let ds = mgsim::wetlands_sim(3 * scale(), 20260614);
    println!(
        "Wetlands-sim subset: {} genomes, {} read pairs",
        ds.refs.len(),
        ds.library.num_pairs()
    );
    let eval = scaled_eval_params();
    let sweep = rank_sweep(16);
    let mut times = Vec::new();
    let mut rows = Vec::new();
    for &ranks in &sweep {
        let run = run_assembler(
            &MetaHipMerAssembler {
                config: AssemblyConfig::default(),
            },
            &ds,
            ranks,
            &eval,
        );
        times.push(run.seconds);
        rows.push(vec![
            ranks.to_string(),
            fmt(run.seconds, 2),
            String::new(), // efficiency filled below
            fmt(100.0 * run.report.genome_fraction, 1),
        ]);
    }
    let eff = efficiency(&sweep, &times);
    for (row, e) in rows.iter_mut().zip(&eff) {
        row[2] = fmt(100.0 * e, 1);
    }
    print_table(
        "Figure 4 — strong scaling (3-lane Wetlands-sim)",
        &["Ranks", "Time (s)", "Efficiency %", "Gen. frac. %"],
        &rows,
    );
}
