//! Figure 6: per-genome NGA50 on MG64-sim, MetaHipMer vs the MetaSPAdes-like
//! baseline.
//!
//! Expected shape: the two assemblers have very similar NGA50 for almost every
//! genome, with occasional outliers on genomes assembled into very few
//! contigs (where one misassembly swings NGA50 dramatically).

use baselines::{MetaHipMerAssembler, MetaSpadesLike};
use mhm_bench::{print_table, run_assembler, scale, scaled_eval_params};
use mhm_core::AssemblyConfig;

fn main() {
    let ds = mgsim::mg64_sim(
        if scale() > 1 {
            mgsim::Mg64Scale::Standard
        } else {
            mgsim::Mg64Scale::Small
        },
        20260614,
    );
    let eval = scaled_eval_params();
    let ranks = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let mhm = run_assembler(
        &MetaHipMerAssembler {
            config: AssemblyConfig::default(),
        },
        &ds,
        ranks,
        &eval,
    );
    let spades = run_assembler(
        &MetaSpadesLike {
            config: AssemblyConfig::default(),
        },
        &ds,
        ranks,
        &eval,
    );
    let mut rows = Vec::new();
    let mut agree = 0usize;
    for (g_m, g_s) in mhm.report.per_genome.iter().zip(&spades.report.per_genome) {
        let ratio = if g_s.nga50 > 0 {
            g_m.nga50 as f64 / g_s.nga50 as f64
        } else if g_m.nga50 == 0 {
            1.0
        } else {
            f64::INFINITY
        };
        if (0.5..=2.0).contains(&ratio) {
            agree += 1;
        }
        rows.push(vec![
            g_m.name.clone(),
            g_m.genome_len.to_string(),
            g_m.nga50.to_string(),
            g_s.nga50.to_string(),
        ]);
    }
    print_table(
        "Figure 6 — per-genome NGA50 (MetaHipMer vs MetaSPAdes-like)",
        &["Genome", "Length", "MetaHipMer NGA50", "MetaSPAdes NGA50"],
        &rows,
    );
    println!(
        "\nGenomes with NGA50 within 2x of each other: {agree}/{}",
        rows.len()
    );
}
