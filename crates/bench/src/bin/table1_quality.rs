//! Table I: comparative assembly quality on the MG64-substitute community.
//!
//! Columns mirror the paper: assembled bases above three length thresholds
//! (scaled), misassembly count, rRNA recovery, genome fraction and runtime.
//! Expected shape: MetaHipMer and MetaSPAdes lead contiguity, MetaHipMer has
//! the fewest misassemblies among the metagenome assemblers and the best rRNA
//! recovery, Megahit is fastest, HipMer (single-genome) trails on coverage,
//! contiguity and rRNA.

use baselines::table1_assemblers;
use mhm_bench::{fmt, print_table, run_assembler, scale, scaled_eval_params};
use mhm_core::AssemblyConfig;

fn main() {
    let ds = mgsim::mg64_sim(
        if scale() > 1 {
            mgsim::Mg64Scale::Standard
        } else {
            mgsim::Mg64Scale::Small
        },
        20260614,
    );
    println!(
        "MG64-sim: {} genomes, {} read pairs, {} Mbp of reads",
        ds.refs.len(),
        ds.library.num_pairs(),
        ds.total_bases() / 1_000_000
    );
    let eval = scaled_eval_params();
    let ranks = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let mut rows = Vec::new();
    for assembler in table1_assemblers(AssemblyConfig::default()) {
        let run = run_assembler(assembler.as_ref(), &ds, ranks, &eval);
        let r = &run.report;
        rows.push(vec![
            run.assembler.clone(),
            (r.length_at(1_000).unwrap_or(0) / 1000).to_string(),
            (r.length_at(2_500).unwrap_or(0) / 1000).to_string(),
            (r.length_at(5_000).unwrap_or(0) / 1000).to_string(),
            r.misassemblies.to_string(),
            format!("{}/{}", r.rrna_recovered, r.rrna_total),
            fmt(100.0 * r.genome_fraction, 1),
            fmt(run.seconds, 1),
        ]);
    }
    print_table(
        "Table I — assembly quality on MG64-sim",
        &[
            "Assembler",
            "kbp >=1k",
            "kbp >=2.5k",
            "kbp >=5k",
            "MSA",
            "rRNA",
            "Gen. frac. %",
            "Runtime (s)",
        ],
        &rows,
    );
}
